//! End-to-end property tests through the public API.

use cache_conscious_streaming::prelude::*;
use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random pipeline the planner accepts yields a valid partition
    /// and a legal, target-reaching schedule.
    #[test]
    fn planner_pipelines_end_to_end(seed in 0u64..3_000, len in 4usize..24,
                                    target in 50u64..400) {
        let cfg = PipelineCfg {
            len,
            state: StateDist::Uniform(8, 96),
            max_q: 3,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, seed);
        let planner = Planner::new(CacheParams::new(1024, 16));
        match planner.plan(&g, Horizon::SinkFirings(target)) {
            Ok(plan) => {
                prop_assert!(plan
                    .partition
                    .validate(&g, 8 * 1024)
                    .is_ok());
                let rep = planner.evaluate(&g, &plan).unwrap();
                prop_assert!(rep.outputs >= target);
                prop_assert!(rep.stats.misses > 0);
                prop_assert!(rep.stats.hits + rep.stats.misses == rep.stats.accesses);
            }
            Err(PlanError::Pipeline(_)) | Err(PlanError::Infeasible { .. }) => {
                // Oversized modules relative to M/8: legitimately refused.
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// Random dags planned with rounds: partition valid, quotas exact,
    /// channels drain to empty.
    #[test]
    fn planner_dags_end_to_end(seed in 0u64..3_000, max_q in 1u64..4) {
        let cfg = LayeredCfg {
            layers: 3,
            max_width: 3,
            density: 0.3,
            state: StateDist::Uniform(8, 48),
            max_q,
        };
        let g = gen::layered(&cfg, seed);
        let planner = Planner::new(CacheParams::new(512, 16));
        match planner.plan(&g, Horizon::Rounds(2)) {
            Ok(plan) => {
                let rep = planner.evaluate(&g, &plan).unwrap();
                prop_assert!(rep.outputs > 0);
                // Work proportions follow the repetition vector.
                let ra = RateAnalysis::analyze_single_io(&g).unwrap();
                let s = ra.source.unwrap();
                for v in g.node_ids() {
                    prop_assert_eq!(
                        rep.fired[v.idx()] as u128 * ra.q(s) as u128,
                        rep.fired[s.idx()] as u128 * ra.q(v) as u128,
                        "firing counts must follow the repetition vector"
                    );
                }
            }
            Err(PlanError::Infeasible { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// The comparison harness never returns an empty table for valid
    /// graphs, and the partitioned row is never the strict worst by more
    /// than an order of magnitude.
    #[test]
    fn comparison_sane(seed in 0u64..3_000) {
        let cfg = PipelineCfg {
            len: 10,
            state: StateDist::Uniform(16, 64),
            max_q: 2,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, seed);
        let rows = compare_schedulers(&g, CacheParams::new(1024, 16), 300);
        prop_assert!(rows.len() >= 3);
        let best = rows.iter().map(|r| r.misses_per_output).fold(f64::INFINITY, f64::min);
        let part = rows
            .iter()
            .filter(|r| r.label.starts_with("partitioned"))
            .map(|r| r.misses_per_output)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(part.is_finite());
        prop_assert!(part <= best * 10.0 + 1.0);
    }
}
