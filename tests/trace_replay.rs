//! Trace recording and replay: the executor's block trace is a faithful,
//! policy-independent artifact.

use cache_conscious_streaming::prelude::*;
use cache_conscious_streaming::sched::{baseline, ExecOptions, Executor};
use ccs_cachesim::{min, BlockCache, ClockCache, LruCache, SetAssocCache};
use ccs_graph::gen;

fn record(
    g: &StreamGraph,
    ra: &RateAnalysis,
    run: &ccs_sched::SchedRun,
    params: CacheParams,
) -> (Vec<u64>, u64) {
    let mut ex = Executor::new(
        g,
        ra,
        run.capacities.clone(),
        params,
        ExecOptions::default(),
    );
    ex.enable_recording();
    ex.run(&run.firings).unwrap();
    (
        ex.recorded_blocks().unwrap().to_vec(),
        ex.report().stats.misses,
    )
}

fn replay<C: BlockCache>(trace: &[u64], mut cache: C) -> u64 {
    trace.iter().map(|&b| cache.access(b, false) as u64).sum()
}

#[test]
fn replaying_the_trace_reproduces_the_live_miss_count() {
    let g = gen::pipeline_uniform(16, 96);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let params = CacheParams::new(512, 16);
    let run = baseline::single_appearance(&g, &ra, 64);
    let (trace, live_misses) = record(&g, &ra, &run, params);
    // Replaying through a fresh LRU of the same capacity gives the exact
    // same miss count (reads vs writes don't change hit/miss behavior).
    assert_eq!(replay(&trace, LruCache::new(params.blocks())), live_misses);
}

#[test]
fn opt_lower_bounds_every_policy_on_schedule_traces() {
    let g = gen::pipeline_uniform(24, 128);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let params = CacheParams::new(1024, 16);
    let blocks = params.blocks();
    for run in [
        baseline::single_appearance(&g, &ra, 48),
        baseline::demand_driven(&g, &ra, 48),
        baseline::phased(&g, &ra, 48),
    ] {
        let (trace, _) = record(&g, &ra, &run, params);
        let opt = min::simulate_min(&trace, blocks);
        for (name, misses) in [
            ("lru", replay(&trace, LruCache::new(blocks))),
            ("clock", replay(&trace, ClockCache::new(blocks))),
            ("8way", replay(&trace, SetAssocCache::new(blocks, 8))),
        ] {
            assert!(misses >= opt, "{}/{name}: {misses} < OPT {opt}", run.label);
        }
    }
}

#[test]
fn partitioned_trace_beats_naive_trace_under_every_policy() {
    let g = gen::pipeline_uniform(32, 128);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let params = CacheParams::new(1024, 16);
    let blocks = params.blocks();

    let naive = baseline::single_appearance(&g, &ra, 1024);
    let (naive_trace, _) = record(&g, &ra, &naive, params);

    let planner = Planner::new(params);
    let plan = planner.plan(&g, Horizon::SinkFirings(1024)).unwrap();
    let (part_trace, _) = record(&g, &ra, &plan.run, params);

    // Associativity >= 4 preserves the win. (Direct-mapped caches do
    // NOT: the Θ(M)-sized ring buffers alias every set and evict the
    // resident component state on each access — a genuine limitation of
    // applying the paper's fully-associative analysis to unmanaged
    // direct-mapped layouts; verified below as an inequality in the
    // *other* direction being absent, i.e. near-parity.)
    for ways in [4usize, 16] {
        let naive_m = replay(&naive_trace, SetAssocCache::new(blocks, ways));
        let part_m = replay(&part_trace, SetAssocCache::new(blocks, ways));
        assert!(
            part_m * 4 < naive_m,
            "{ways}-way: partitioned {part_m} vs naive {naive_m}"
        );
    }
    let naive_1 = replay(&naive_trace, SetAssocCache::new(blocks, 1));
    let part_1 = replay(&part_trace, SetAssocCache::new(blocks, 1));
    assert!(
        part_1 <= naive_1,
        "direct-mapped: partitioned {part_1} should not be worse than naive {naive_1}"
    );
    let naive_c = replay(&naive_trace, ClockCache::new(blocks));
    let part_c = replay(&part_trace, ClockCache::new(blocks));
    assert!(part_c * 4 < naive_c, "clock: {part_c} vs {naive_c}");
}
