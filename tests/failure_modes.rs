//! Failure injection: every layer must reject invalid inputs loudly, not
//! produce wrong numbers silently.

use cache_conscious_streaming::prelude::*;
use cache_conscious_streaming::sched::{ExecOptions, Executor};
use ccs_graph::{GraphBuilder, GraphError, RateError};

#[test]
fn graph_construction_rejects_malformed() {
    // Cycle.
    let mut b = GraphBuilder::new();
    let x = b.node("x", 1);
    let y = b.node("y", 1);
    b.edge(x, y, 1, 1);
    b.edge(y, x, 1, 1);
    assert!(matches!(b.build(), Err(GraphError::Cycle { .. })));

    // Zero rate.
    let mut b = GraphBuilder::new();
    let x = b.node("x", 1);
    let y = b.node("y", 1);
    b.edge(x, y, 1, 0);
    assert!(matches!(b.build(), Err(GraphError::ZeroRate { .. })));

    // Empty.
    assert!(matches!(
        GraphBuilder::new().build(),
        Err(GraphError::Empty)
    ));
}

#[test]
fn rate_analysis_rejects_unmatched_and_disconnected() {
    // Inconsistent diamond.
    let mut b = GraphBuilder::new();
    let s = b.node("s", 1);
    let a = b.node("a", 1);
    let c = b.node("c", 1);
    let t = b.node("t", 1);
    b.edge(s, a, 1, 1);
    b.edge(s, c, 3, 1);
    b.edge(a, t, 1, 1);
    b.edge(c, t, 1, 1);
    let g = b.build().unwrap();
    assert!(matches!(
        RateAnalysis::analyze(&g),
        Err(RateError::NotRateMatched { .. })
    ));

    // Disconnected.
    let mut b = GraphBuilder::new();
    b.node("a", 1);
    b.node("b", 1);
    let g = b.build().unwrap();
    assert_eq!(RateAnalysis::analyze(&g), Err(RateError::Disconnected));
}

#[test]
fn planner_propagates_rate_errors() {
    let mut b = GraphBuilder::new();
    let s1 = b.node("s1", 8);
    let s2 = b.node("s2", 8);
    let t = b.node("t", 8);
    b.edge(s1, t, 1, 1);
    b.edge(s2, t, 1, 1);
    let g = b.build().unwrap();
    let planner = Planner::new(CacheParams::new(256, 16));
    let err = planner.plan(&g, Horizon::Rounds(1)).unwrap_err();
    assert!(matches!(
        err,
        PlanError::Rates(RateError::MultipleSources { .. })
    ));
}

#[test]
fn planner_infeasible_when_module_bigger_than_cache_slice() {
    let g = ccs_graph::gen::pipeline_uniform(4, 10_000);
    let planner = Planner::new(CacheParams::new(256, 16));
    let err = planner.plan(&g, Horizon::Rounds(1)).unwrap_err();
    // Auto routes pipelines to Theorem 5, which reports the oversized
    // module.
    assert!(matches!(
        err,
        PlanError::Pipeline(ccs_partition::PipelineError::ModuleTooLarge { .. })
    ));
}

#[test]
fn executor_rejects_illegal_firings_and_preserves_state() {
    let g = ccs_graph::gen::pipeline_uniform(3, 16);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let params = CacheParams::new(256, 16);
    let mut ex = Executor::new(&g, &ra, vec![2, 2], params, ExecOptions::default());
    // Underflow at the very first firing of a non-source node.
    assert!(ex.fire(ccs_graph::NodeId(2)).is_err());
    // State unchanged: a legal firing still works.
    ex.fire(ccs_graph::NodeId(0)).unwrap();
    ex.fire(ccs_graph::NodeId(1)).unwrap();
    ex.fire(ccs_graph::NodeId(2)).unwrap();
    // Overflow: fill the first buffer beyond capacity 2.
    ex.fire(ccs_graph::NodeId(0)).unwrap();
    ex.fire(ccs_graph::NodeId(0)).unwrap();
    let err = ex.fire(ccs_graph::NodeId(0)).unwrap_err();
    assert!(matches!(err, ccs_sched::ExecError::Overflow { .. }));
}

#[test]
fn partition_validation_failures_are_specific() {
    use ccs_partition::{Partition, PartitionError};
    let g = ccs_graph::gen::pipeline_uniform(4, 10);
    // Interleaved components: not well ordered.
    let bad = Partition::from_assignment(vec![0, 1, 0, 1]);
    assert_eq!(bad.validate(&g, 100), Err(PartitionError::NotWellOrdered));
    // Oversized component.
    let fat = Partition::whole(&g);
    assert!(matches!(
        fat.validate(&g, 39),
        Err(PartitionError::ComponentTooLarge { state: 40, .. })
    ));
    // Wrong length.
    let short = Partition::from_assignment(vec![0, 0]);
    assert!(matches!(
        short.validate(&g, 100),
        Err(PartitionError::WrongLength { .. })
    ));
}

#[test]
fn partitioned_scheduler_rejects_bad_partitions() {
    use ccs_partition::Partition;
    use ccs_sched::partitioned;
    let g = ccs_graph::gen::pipeline_uniform(4, 10);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let bad = Partition::from_assignment(vec![0, 1, 0, 1]);
    assert_eq!(
        partitioned::homogeneous(&g, &ra, &bad, 8, 1).unwrap_err(),
        partitioned::PartSchedError::InvalidPartition
    );
    assert_eq!(
        partitioned::inhomogeneous(&g, &ra, &bad, 8, 1).unwrap_err(),
        partitioned::PartSchedError::InvalidPartition
    );
}

#[test]
fn exact_partitioner_refuses_oversized_graphs() {
    use ccs_partition::dag_exact;
    let g = ccs_graph::gen::pipeline_uniform(dag_exact::MAX_EXACT_NODES + 1, 4);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let result = std::panic::catch_unwind(|| dag_exact::min_bandwidth_exact(&g, &ra, 1000));
    assert!(result.is_err(), "must assert on too-large graphs");
}

#[test]
fn adaptive_config_errors_are_loud_and_specific() {
    use ccs_exec::{execute_dag_cfg, AdaptConfig, DagExecError, Migration, RunConfig};
    use ccs_partition::Partition;
    use ccs_runtime::Instance;
    let g = ccs_graph::gen::pipeline_uniform(4, 16);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = Partition::from_assignment((0..4).collect());
    let run = |cfg: &RunConfig| execute_dag_cfg(Instance::synthetic(g.clone()), &ra, &p, 8, 6, cfg);

    // Adaptive control with the window stream off would sit blind for
    // the whole run: a config error, not a silent no-op.
    let cfg = RunConfig::new(2).with_adapt(AdaptConfig::default());
    assert!(matches!(
        run(&cfg).unwrap_err(),
        DagExecError::AdaptNeedsWindows
    ));

    // Migration to a worker the run does not have.
    let cfg = RunConfig::new(2).with_forced_migrations(vec![Migration {
        seg: 1,
        to_worker: 5,
        after_batches: 2,
    }]);
    assert!(matches!(
        run(&cfg).unwrap_err(),
        DagExecError::MigrationTarget {
            seg: 1,
            to_worker: 5,
            workers: 2,
        }
    ));

    // Migration of a segment the plan does not have.
    let cfg = RunConfig::new(2).with_forced_migrations(vec![Migration {
        seg: 9,
        to_worker: 0,
        after_batches: 2,
    }]);
    assert!(matches!(
        run(&cfg).unwrap_err(),
        DagExecError::MigrationTarget { seg: 9, .. }
    ));

    // A hop boundary inside the warmup window would tear the epoch
    // measurement apart mid-reset.
    let cfg = RunConfig::new(2)
        .with_warmup(3)
        .with_forced_migrations(vec![Migration {
            seg: 1,
            to_worker: 0,
            after_batches: 2,
        }]);
    assert!(matches!(
        run(&cfg).unwrap_err(),
        DagExecError::MigrationDuringWarmup {
            seg: 1,
            after_batches: 2,
            warmup: 3,
        }
    ));

    // The same hop at the boundary itself is legal.
    let cfg = RunConfig::new(2)
        .with_warmup(3)
        .with_forced_migrations(vec![Migration {
            seg: 1,
            to_worker: 0,
            after_batches: 3,
        }]);
    assert!(run(&cfg).is_ok());
}

#[test]
fn runtime_capacity_mismatch_panics_cleanly() {
    use cache_conscious_streaming::runtime::{execute, Instance};
    let g = ccs_graph::gen::pipeline_uniform(3, 8);
    let run = ccs_sched::SchedRun {
        label: "bogus".into(),
        // Fire the middle node with nothing buffered.
        firings: vec![ccs_graph::NodeId(1)],
        capacities: vec![4, 4],
    };
    let mut inst = Instance::synthetic(g);
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(&mut inst, &run)));
    assert!(result.is_err(), "real executor must refuse illegal pops");
}
