//! Functional equivalence across schedulers and executors.
//!
//! Synchronous dataflow is deterministic: every legal schedule produces
//! the same output stream. These tests run the *same* workload through
//! every scheduler and both executors (serial and parallel) and demand
//! bit-identical sink digests.

use cache_conscious_streaming::prelude::*;
use cache_conscious_streaming::runtime::{self, Instance};
use cache_conscious_streaming::sched::{baseline, partitioned};
use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};

fn digest_of(g: &StreamGraph, run: &SchedRun) -> Option<u64> {
    let mut inst = Instance::synthetic(g.clone());
    runtime::execute(&mut inst, run).digest
}

#[test]
fn all_schedulers_agree_on_random_pipelines() {
    for seed in 0..8u64 {
        let cfg = PipelineCfg {
            len: 14,
            state: StateDist::Uniform(16, 96),
            max_q: 3,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let sink = ra.sink.unwrap();

        let sas = baseline::single_appearance(&g, &ra, 8);
        let target = sas.count(sink);
        let demand = baseline::demand_driven(&g, &ra, target);
        let kohli = baseline::kohli_greedy(&g, &ra, 256, target);

        let planner = Planner::new(CacheParams::new(1024, 16));
        let plan = planner.plan(&g, Horizon::SinkFirings(target)).unwrap();

        let reference = digest_of(&g, &sas);
        assert!(reference.is_some());
        assert_eq!(reference, digest_of(&g, &demand), "demand, seed {seed}");
        assert_eq!(reference, digest_of(&g, &kohli), "kohli, seed {seed}");

        // The dynamic partitioned schedule may overshoot the target; its
        // digest is computed over a longer prefix, so instead check the
        // shorter runs against each other and legality of the plan run.
        let mut inst = Instance::synthetic(g.clone());
        let stats = runtime::execute(&mut inst, &plan.run);
        assert!(stats.sink_items >= target, "seed {seed}");
    }
}

#[test]
fn partitioned_static_matches_baselines_exactly() {
    // Static partitioned schedules hit exact round boundaries, so the
    // digests can be compared directly by matching sink-firing counts.
    for seed in 0..6u64 {
        let cfg = LayeredCfg {
            layers: 3,
            max_width: 3,
            density: 0.3,
            state: StateDist::Uniform(8, 48),
            max_q: 2,
        };
        let g = gen::layered(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let sink = ra.sink.unwrap();

        let p = ccs_partition::dag_greedy::greedy_topo(&g, 128);
        let m_items = 24u64;
        let rounds = 2u64;
        let part = partitioned::inhomogeneous(&g, &ra, &p, m_items, rounds).unwrap();
        let part_sink = part.count(sink);

        let demand = baseline::demand_driven(&g, &ra, part_sink);
        assert_eq!(digest_of(&g, &part), digest_of(&g, &demand), "seed {seed}");
    }
}

#[test]
fn parallel_executor_matches_serial_across_partitions() {
    let cfg = LayeredCfg {
        layers: 4,
        max_width: 3,
        density: 0.35,
        state: StateDist::Uniform(8, 64),
        max_q: 1,
    };
    for seed in 0..4u64 {
        let g = gen::layered(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        for bound in [96u64, 160, 100_000] {
            if g.max_state() > bound {
                continue;
            }
            let p = ccs_partition::dag_greedy::greedy_topo(&g, bound);
            let run = partitioned::homogeneous(&g, &ra, &p, 16, 2).unwrap();
            let want = digest_of(&g, &run);
            let inst = Instance::synthetic(g.clone());
            let stats = runtime::execute_parallel(inst, &p, 16, 2, 4);
            assert_eq!(stats.digest, want, "seed {seed} bound {bound}");
        }
    }
}

#[test]
fn symbolic_and_real_executors_agree_on_legality() {
    // Any sequence the symbolic executor accepts must run on real rings
    // without panicking, and vice versa for rejects.
    let g = gen::pipeline(&PipelineCfg::default(), 3);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let run = baseline::demand_driven(&g, &ra, 10);
    // Symbolic.
    let mut ex = ccs_sched::Executor::new(
        &g,
        &ra,
        run.capacities.clone(),
        CacheParams::new(4096, 16),
        ccs_sched::ExecOptions::default(),
    );
    ex.run(&run.firings).expect("symbolically legal");
    // Real.
    let mut inst = Instance::synthetic(g.clone());
    let stats = runtime::execute(&mut inst, &run);
    assert_eq!(stats.firings, run.firings.len() as u64);
}
