//! Cross-crate integration: plan + evaluate every suite application.

use cache_conscious_streaming::apps;
use cache_conscious_streaming::prelude::*;

/// A cache spec big enough for each app's largest module, per the
/// Theorem 5 parameterization (M >= 8 * max module state).
fn params_for(g: &StreamGraph) -> CacheParams {
    let m = (8 * g.max_state())
        .max(g.total_state() / 4)
        .next_multiple_of(16);
    CacheParams::new(m, 16)
}

#[test]
fn plan_and_evaluate_every_app() {
    for app in apps::suite() {
        let g = &app.graph;
        let params = params_for(g);
        let planner = Planner::new(params);
        let plan = planner
            .plan(g, Horizon::Rounds(2))
            .unwrap_or_else(|e| panic!("{}: planning failed: {e}", app.name));
        assert!(
            plan.partition.validate(g, 8 * params.capacity).is_ok(),
            "{}: invalid partition",
            app.name
        );
        let rep = planner
            .evaluate(g, &plan)
            .unwrap_or_else(|e| panic!("{}: evaluation failed: {e}", app.name));
        assert!(rep.outputs > 0, "{}: no outputs", app.name);
        assert!(
            rep.stats.misses > 0,
            "{}: zero misses is impossible",
            app.name
        );
    }
}

#[test]
fn comparison_runs_on_every_app() {
    for app in apps::suite() {
        let g = &app.graph;
        let params = params_for(g);
        let rows = compare_schedulers(g, params, 300);
        assert!(
            rows.len() >= 3,
            "{}: expected at least 3 schedulers, got {}",
            app.name,
            rows.len()
        );
        // All rows hit the output target.
        for r in &rows {
            assert!(
                r.outputs >= 300,
                "{}/{}: {} outputs",
                app.name,
                r.label,
                r.outputs
            );
        }
        // The partitioned scheduler appears and is never the worst by
        // more than a small factor (it should usually be the best).
        let part = rows
            .iter()
            .filter(|r| r.label.starts_with("partitioned"))
            .map(|r| r.misses_per_output)
            .fold(f64::INFINITY, f64::min);
        let best = rows
            .iter()
            .map(|r| r.misses_per_output)
            .fold(f64::INFINITY, f64::min);
        assert!(part.is_finite(), "{}: no partitioned row", app.name);
        assert!(
            part <= best * 3.0 + 1.0,
            "{}: partitioned {part} far from best {best}",
            app.name
        );
    }
}

#[test]
fn partitioned_dominates_on_state_heavy_pipeline() {
    // The paper's headline claim, end to end through the public API.
    let g = cache_conscious_streaming::graph::gen::pipeline_uniform(40, 192);
    let params = CacheParams::new(1536, 16); // total state 7680 = 5x cache
    let rows = compare_schedulers(&g, params, 1536);
    let naive = rows
        .iter()
        .find(|r| r.label == "single-appearance")
        .unwrap();
    let part = rows
        .iter()
        .filter(|r| r.label.starts_with("partitioned"))
        .map(|r| r.misses_per_output)
        .fold(f64::INFINITY, f64::min);
    assert!(
        part * 4.0 < naive.misses_per_output,
        "partitioned {part} vs naive {}",
        naive.misses_per_output
    );
}

#[test]
fn lower_bound_below_measured_for_all_schedulers() {
    // Theorem 3: (T/B)·LB lower-bounds every schedule's interior misses
    // (the constant is 1 in our accounting of state-only reload floors,
    // so allow a generous constant on the measured side).
    use cache_conscious_streaming::core::bounds;
    let g = cache_conscious_streaming::graph::gen::pipeline_uniform(40, 192);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let params = CacheParams::new(1536, 16);
    let m = params.capacity;
    let lb_gain = bounds::pipeline_lb_gain(&g, &ra, m).unwrap();
    assert!(lb_gain > Ratio::ZERO);

    let rows = compare_schedulers(&g, params, 1536);
    for r in &rows {
        let lb = bounds::misses_lower_bound(lb_gain, r.inputs, params);
        assert!(
            (r.interior_misses as f64) * 8.0 >= lb,
            "{}: measured {} below LB {lb}",
            r.label,
            r.interior_misses
        );
    }
}

#[test]
fn augmented_cache_never_hurts() {
    // LRU inclusion lifts to the full system: doubling M (same B) never
    // increases a fixed schedule's misses.
    let g = apps::fm_radio(16);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let run = ccs_sched::baseline::single_appearance(&g, &ra, 20);
    let mut last = u64::MAX;
    for m in [512u64, 1024, 2048, 4096, 8192] {
        let params = CacheParams::new(m, 16);
        let mut ex = ccs_sched::Executor::new(
            &g,
            &ra,
            run.capacities.clone(),
            params,
            ccs_sched::ExecOptions::default(),
        );
        ex.run(&run.firings).unwrap();
        let misses = ex.report().stats.misses;
        assert!(misses <= last, "M={m}: {misses} > {last}");
        last = misses;
    }
}
