//! Theorem-shaped integration tests: the paper's bounds, checked
//! empirically on instances where the exact quantities are computable.

use cache_conscious_streaming::core::bounds;
use cache_conscious_streaming::prelude::*;
use cache_conscious_streaming::sched::{baseline, partitioned, ExecOptions, Executor};
use ccs_graph::gen::{self, PipelineCfg, StateDist};
use ccs_partition::{dag_exact, pipeline as ppart};

/// Lemma 4 / Theorem 5 upper bound: the partitioned schedule's interior
/// misses are O((T/B)·bandwidth + loads), with a modest constant.
#[test]
fn pipeline_upper_bound_tracks_bandwidth() {
    for seed in 0..6u64 {
        let cfg = PipelineCfg {
            len: 24,
            state: StateDist::Uniform(32, 128),
            max_q: 3,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let m = 1024u64;
        let b = 16u64;
        let params = CacheParams::new(8 * m, b); // O(1) augmentation
        let pp = ppart::greedy_theorem5(&g, &ra, m).unwrap();
        let run = partitioned::pipeline_dynamic(&g, &ra, &pp.partition, 8 * m, 4000).unwrap();
        let mut ex = Executor::new(
            &g,
            &ra,
            run.capacities.clone(),
            params,
            ExecOptions::default(),
        );
        ex.run(&run.firings).unwrap();
        let rep = ex.report();

        // Upper bound prediction: (T/B)·bandwidth for buffer traffic
        // (x2: write+read, x2 ring wrap slack) + state loads
        // T/(M)·(total_state/B) + internal slack. Require measured within
        // a constant of it.
        let t = rep.inputs as f64;
        let bw = pp.bandwidth.to_f64();
        let buffer_term = 4.0 * t * bw / b as f64;
        let state_term = (t / m as f64) * (g.total_state() as f64 / b as f64)
            + g.total_state() as f64 / b as f64;
        let predicted = buffer_term + state_term + 64.0;
        assert!(
            (rep.interior_misses() as f64) <= 4.0 * predicted,
            "seed {seed}: measured {} >> predicted O({predicted:.0})",
            rep.interior_misses()
        );
    }
}

/// Theorem 3 lower bound: no scheduler beats (T/B)·LB on interior misses
/// (constants: our LB accounting is conservative; require measured >=
/// LB/8 to allow for the paper's constant factors).
#[test]
fn no_scheduler_beats_pipeline_lower_bound() {
    for seed in 0..4u64 {
        let cfg = PipelineCfg {
            len: 20,
            state: StateDist::Uniform(64, 128),
            max_q: 2,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let params = CacheParams::new(512, 16);
        let lb_gain = bounds::pipeline_lb_gain(&g, &ra, params.capacity).unwrap();
        if lb_gain == Ratio::ZERO {
            continue;
        }
        let rows = compare_schedulers(&g, params, 1000);
        assert!(!rows.is_empty());
        for r in &rows {
            let lb = bounds::misses_lower_bound(lb_gain, r.inputs, params) / 8.0;
            assert!(
                r.interior_misses as f64 >= lb,
                "seed {seed} {}: {} < LB {lb}",
                r.label,
                r.interior_misses
            );
        }
    }
}

/// Corollary 9 shape: with an α-approximate partition, the schedule's
/// misses scale by at most O(α) relative to the exact partition's
/// schedule.
#[test]
fn dag_alpha_approximation_preserved() {
    use ccs_graph::gen::LayeredCfg;
    let cfg = LayeredCfg {
        layers: 3,
        max_width: 3,
        density: 0.35,
        state: StateDist::Uniform(16, 48),
        max_q: 1,
    };
    for seed in 0..6u64 {
        let g = gen::layered(&cfg, seed);
        if g.node_count() > 14 {
            continue;
        }
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let bound = 144u64.max(g.max_state());
        let Some((p_opt, bw_opt)) = dag_exact::min_bandwidth_exact(&g, &ra, bound) else {
            continue;
        };
        let p_heur = ccs_partition::dag_greedy::greedy_topo(&g, bound);
        let bw_heur = p_heur.bandwidth(&g, &ra);
        if bw_opt == Ratio::ZERO {
            continue;
        }
        let alpha = bw_heur.to_f64() / bw_opt.to_f64();

        let params = CacheParams::new(4 * bound.next_multiple_of(16), 16);
        let m_items = params.capacity;
        let run_opt = partitioned::homogeneous(&g, &ra, &p_opt, m_items, 2).unwrap();
        let run_heur = partitioned::homogeneous(&g, &ra, &p_heur, m_items, 2).unwrap();
        let eval = |run: &SchedRun| {
            let mut ex = Executor::new(
                &g,
                &ra,
                run.capacities.clone(),
                params,
                ExecOptions::default(),
            );
            ex.run(&run.firings).unwrap();
            ex.report().interior_misses()
        };
        let m_opt = eval(&run_opt) as f64;
        let m_heur = eval(&run_heur) as f64;
        assert!(
            m_heur <= (4.0 * alpha + 4.0) * m_opt + 200.0,
            "seed {seed}: heur {m_heur} vs opt {m_opt}, alpha {alpha:.2}"
        );
    }
}

/// The granularity-T conditions (§3): T·gain(v) integral for every v and
/// T·gain(u,v) at least M on every edge — verified across random
/// rate-matched graphs.
#[test]
fn granularity_conditions_hold() {
    use ccs_graph::gen::LayeredCfg;
    for seed in 0..20u64 {
        let cfg = LayeredCfg {
            max_q: 5,
            ..LayeredCfg::default()
        };
        let g = gen::layered(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        for m in [1u64, 7, 64, 1000] {
            let t = partitioned::granularity_t(&g, &ra, m).unwrap();
            let s = ra.source.unwrap();
            for v in g.node_ids() {
                // T·gain(v) = T·q(v)/q(s) must be integral.
                assert_eq!(
                    (t as u128 * ra.q(v) as u128) % ra.q(s) as u128,
                    0,
                    "seed {seed} m {m} node {v:?}"
                );
            }
            for e in g.edge_ids() {
                // Buffer size T·gain(u,v) must be at least m.
                let buf = Ratio::integer(t as i128) * ra.edge_gain(&g, e);
                assert!(
                    buf >= Ratio::integer(m as i128),
                    "seed {seed} m {m} edge {e:?}: buffer {buf}"
                );
            }
        }
    }
}

/// Scheduling with a cache big enough for everything converges: all
/// schedulers incur (nearly) the same, minimal, miss counts.
#[test]
fn schedulers_converge_when_everything_fits() {
    let g = gen::pipeline_uniform(12, 64); // 768 words
    let params = CacheParams::new(1 << 16, 16); // 64K-word cache
                                                // Enough outputs to amortize away the differing cold-miss footprints
                                                // of each scheduler's buffers.
    let rows = compare_schedulers(&g, params, 16_384);
    let min = rows
        .iter()
        .map(|r| r.misses_per_output)
        .fold(f64::INFINITY, f64::min);
    let max_row = rows
        .iter()
        .max_by(|a, b| a.misses_per_output.total_cmp(&b.misses_per_output))
        .unwrap();
    // Compulsory misses only; buffer footprints differ, so allow 3x.
    assert!(
        max_row.misses_per_output <= 3.0 * min + 1.0,
        "{} at {} vs best {min}",
        max_row.label,
        max_row.misses_per_output
    );
}

/// Sermulins-style scaling helps the baseline but cannot overcome a
/// state-heavy working set the way partitioning does (the scaling factor
/// is capped by buffer growth).
#[test]
fn scaling_is_not_partitioning() {
    // Wide rates make scaled buffers grow fast, capping the scale factor.
    let mut b = GraphBuilder::new();
    let mut prev = b.node("src", 96);
    for i in 0..30 {
        let v = b.node(format!("n{i}"), 96);
        // High traffic: 8 items per firing each way.
        b.edge(prev, v, 8, 8);
        prev = v;
    }
    let sink = b.node("sink", 96);
    b.edge(prev, sink, 8, 8);
    let g = b.build().unwrap();
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let params = CacheParams::new(768, 16);

    let scale = baseline::choose_scale(&g, &ra, params.capacity);
    let scaled = baseline::scaled_sas(&g, &ra, scale, 64);
    let planner = Planner::new(params);
    let plan = planner
        .plan(
            &g,
            Horizon::SinkFirings(64 * scale * ra.q(ra.sink.unwrap())),
        )
        .unwrap();

    let eval = |run: &SchedRun| {
        let mut ex = Executor::new(
            &g,
            &ra,
            run.capacities.clone(),
            params,
            ExecOptions::default(),
        );
        ex.run(&run.firings).unwrap();
        let rep = ex.report();
        rep.stats.misses as f64 / rep.outputs.max(1) as f64
    };
    let scaled_mpo = eval(&scaled);
    let part_mpo = eval(&plan.run);
    assert!(
        part_mpo < scaled_mpo,
        "partitioned {part_mpo} should beat capped scaling {scaled_mpo}"
    );
}
