//! # cache-conscious-streaming
//!
//! A reproduction of *"Cache-Conscious Scheduling of Streaming
//! Applications"* (Agrawal, Fineman, Krage, Leiserson, Toledo — SPAA 2012).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — synchronous-dataflow graph model (rates, gains,
//!   repetition vectors, minimum buffers, generators).
//! * [`cachesim`] — external-memory (DAM) model cache simulator.
//! * [`partition`] — well-ordered c-bounded partitioning algorithms.
//! * [`sched`] — partitioned two-level schedulers plus literature baselines,
//!   and the symbolic executor that turns schedules into memory traces.
//! * [`runtime`] — real executors (serial + parallel) over ring buffers.
//! * [`topo`] — machine topology (NUMA nodes → LLC clusters → cores):
//!   sysfs discovery, synthetic specs, distances, core pinning.
//! * [`perf`] — hardware performance counters (`perf_event_open`):
//!   counter groups, multiplex-scaled readings, graceful fallback.
//! * [`exec`] — the cache-aware multicore dag executor with
//!   segment-affine workers, topology-aware placement, and core pinning.
//! * [`apps`] — StreamIt-style application suite.
//! * [`core`] — the high-level [`core::Planner`] API and lower-bound
//!   calculators.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use ccs_apps as apps;
pub use ccs_cachesim as cachesim;
pub use ccs_core as core;
pub use ccs_exec as exec;
pub use ccs_graph as graph;
pub use ccs_partition as partition;
pub use ccs_perf as perf;
pub use ccs_runtime as runtime;
pub use ccs_sched as sched;
pub use ccs_topo as topo;

pub use ccs_core::prelude;
