//! Beamformer: dag partitioning and the parallel dynamic schedule.
//!
//! Partitions the (homogeneous) beamformer dag with the exact and
//! heuristic partitioners, prints the contracted structure, evaluates the
//! partitioned schedule in the DAM model, and runs the paper's parallel
//! dynamic schedule on 1, 2, and 4 worker threads — verifying that every
//! configuration produces the bit-identical output stream.
//!
//! ```sh
//! cargo run --release --example beamformer_dag
//! ```

use cache_conscious_streaming::apps;
use cache_conscious_streaming::partition::{dag_greedy, dag_local};
use cache_conscious_streaming::prelude::*;
use cache_conscious_streaming::runtime;

fn main() {
    let graph = apps::beamformer(4, 4);
    let ra = RateAnalysis::analyze_single_io(&graph).unwrap();
    println!(
        "beamformer: {} modules, {} channels of state totalling {} words",
        graph.node_count(),
        graph.edge_count(),
        graph.total_state()
    );

    let params = CacheParams::new(512, 16);
    let bound = params.capacity / 2;

    // Heuristic partition: greedy + refinement.
    let p0 = dag_greedy::greedy_best(&graph, &ra, bound);
    let p = dag_local::refine(&graph, &ra, bound, &p0, 16);
    println!(
        "heuristic partition: {} components, bandwidth {} (greedy was {})",
        p.num_components(),
        p.bandwidth(&graph, &ra),
        p0.bandwidth(&graph, &ra),
    );
    for (i, comp) in p.components().iter().enumerate() {
        let names: Vec<&str> = comp.iter().map(|&v| graph.node(v).name.as_str()).collect();
        println!("  component {i}: {}", names.join(", "));
    }

    // DAM-model evaluation via the planner.
    let planner = Planner::new(params);
    let plan = planner.plan(&graph, Horizon::Rounds(4)).unwrap();
    let report = planner.evaluate(&graph, &plan).unwrap();
    println!(
        "partitioned schedule ({}): {} misses / {} outputs = {:.4} misses/output",
        plan.strategy_used,
        report.stats.misses,
        report.outputs,
        report.stats.misses as f64 / report.outputs.max(1) as f64
    );

    // Parallel dynamic execution with digest verification.
    println!("parallel dynamic schedule (real kernels):");
    let m_items = 256u64;
    let rounds = 64u64;
    let mut baseline_digest = None;
    for threads in [1usize, 2, 4] {
        let inst = runtime::Instance::synthetic(graph.clone());
        let stats = runtime::execute_parallel(inst, &p, m_items, rounds, threads);
        println!(
            "  {} thread(s): {:>8.2?} for {} sink items (digest {:016x})",
            threads,
            stats.wall,
            stats.sink_items,
            stats.digest.unwrap_or(0)
        );
        match baseline_digest {
            None => baseline_digest = Some(stats.digest),
            Some(d) => assert_eq!(d, stats.digest, "thread-count must not change output"),
        }
    }
    println!("  digests identical across thread counts");
}
