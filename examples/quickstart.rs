//! Quickstart: build a streaming pipeline, plan a cache-conscious
//! schedule, and compare it against the naive baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cache_conscious_streaming::prelude::*;

fn main() {
    // A 24-stage pipeline; every module carries 128 words of state, so
    // the total (3072 words) far exceeds our 1024-word cache.
    let mut b = GraphBuilder::new();
    let mut prev = b.node("source", 128);
    for i in 0..22 {
        let v = b.node(format!("stage-{i}"), 128);
        b.edge(prev, v, 1, 1);
        prev = v;
    }
    let sink = b.node("sink", 128);
    b.edge(prev, sink, 1, 1);
    let graph = b.build().expect("valid pipeline");

    // The cache: M = 1024 words, blocks of B = 16 words.
    let params = CacheParams::new(1024, 16);
    let planner = Planner::new(params);

    // Plan: partition the pipeline (Theorem 5 greedy segmentation) and
    // derive the two-level dynamic schedule.
    let plan = planner
        .plan(&graph, Horizon::SinkFirings(2000))
        .expect("planning succeeds");
    println!("strategy        : {}", plan.strategy_used);
    println!("components      : {}", plan.partition.num_components());
    println!("bandwidth       : {} items/input", plan.bandwidth);
    println!(
        "max comp state  : {} words (cache {})",
        plan.partition.max_component_state(&graph),
        params.capacity
    );

    // Evaluate in the external-memory model.
    let report = planner.evaluate(&graph, &plan).expect("legal schedule");
    println!(
        "partitioned     : {} misses for {} outputs ({:.4} misses/output)",
        report.stats.misses,
        report.outputs,
        report.stats.misses as f64 / report.outputs as f64
    );

    // Compare all schedulers.
    let rows = compare_schedulers(&graph, params, 2000);
    println!();
    println!("{}", format_table("scheduler comparison", &rows));

    let naive = rows
        .iter()
        .find(|r| r.label == "single-appearance")
        .expect("baseline present");
    let best_partitioned = rows
        .iter()
        .filter(|r| r.label.starts_with("partitioned"))
        .min_by(|a, b| a.misses_per_output.total_cmp(&b.misses_per_output))
        .expect("partitioned present");
    println!(
        "speedup over naive (DAM misses): {:.1}x",
        naive.misses_per_output / best_partitioned.misses_per_output
    );
}
