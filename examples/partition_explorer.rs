//! Partition explorer: compare partitioners across the application suite.
//!
//! For every app, computes the Theorem 5 greedy segmentation (pipelines),
//! the DP-optimal segmentation (pipelines), the dag heuristics, and —
//! where the graph is small enough — the exact optimum, reporting
//! bandwidth and component counts. Also emits Graphviz DOT for the first
//! app so the structure can be inspected.
//!
//! ```sh
//! cargo run --release --example partition_explorer
//! ```

use cache_conscious_streaming::graph::dot;
use cache_conscious_streaming::partition::{dag_exact, dag_greedy, dag_local, pipeline};
use cache_conscious_streaming::{apps, prelude::*};

fn main() {
    let m = 256u64;
    let bound = 2 * m;
    println!("partition explorer: M = {m} words, component bound = {bound} words");
    println!(
        "{:<12} {:>7} {:>9} {:<18} {:>11} {:>6} {:>10}",
        "app", "modules", "state", "partitioner", "bandwidth", "comps", "max state"
    );

    for app in apps::suite() {
        let g = &app.graph;
        let ra = match RateAnalysis::analyze_single_io(g) {
            Ok(ra) => ra,
            Err(e) => {
                println!("{:<12} skipped: {e}", app.name);
                continue;
            }
        };
        let mut results: Vec<(&str, Ratio, usize, u64)> = Vec::new();

        if g.is_pipeline() {
            if let Ok(pp) = pipeline::greedy_theorem5(g, &ra, m / 4) {
                results.push((
                    "greedy-2m",
                    pp.bandwidth,
                    pp.partition.num_components(),
                    pp.max_component_state,
                ));
            }
            if let Ok(pp) = pipeline::dp_min_bandwidth(g, &ra, bound) {
                results.push((
                    "dp-optimal",
                    pp.bandwidth,
                    pp.partition.num_components(),
                    pp.max_component_state,
                ));
            }
        }
        if g.max_state() <= bound {
            let p0 = dag_greedy::greedy_best(g, &ra, bound);
            let p = dag_local::refine(g, &ra, bound, &p0, 16);
            results.push((
                "greedy+refine",
                p.bandwidth(g, &ra),
                p.num_components(),
                p.max_component_state(g),
            ));
            if g.node_count() <= dag_exact::MAX_EXACT_NODES {
                if let Some((pe, bw)) = dag_exact::min_bandwidth_exact(g, &ra, bound) {
                    results.push(("exact", bw, pe.num_components(), pe.max_component_state(g)));
                }
            }
        }

        for (i, (name, bw, comps, maxs)) in results.iter().enumerate() {
            let (app_col, mod_col, state_col) = if i == 0 {
                (
                    app.name.to_string(),
                    g.node_count().to_string(),
                    g.total_state().to_string(),
                )
            } else {
                (String::new(), String::new(), String::new())
            };
            println!(
                "{:<12} {:>7} {:>9} {:<18} {:>11} {:>6} {:>10}",
                app_col,
                mod_col,
                state_col,
                name,
                bw.to_string(),
                comps,
                maxs
            );
        }
    }

    // DOT export of the FM radio graph for inspection.
    let fm = apps::fm_radio(4);
    let out = std::env::temp_dir().join("fm_radio.dot");
    std::fs::write(&out, dot::to_dot(&fm)).expect("write dot");
    println!("\nwrote {} (render with `dot -Tpng`)", out.display());
}
