//! Autotuning and fusion: the engineering conveniences on top of the
//! paper's theory.
//!
//! * `autotune` trials every applicable partitioning strategy on a short
//!   simulated horizon and keeps the best-measuring plan;
//! * `fusion` materializes a partition as a coarser streaming graph, so
//!   any downstream scheduler benefits from the partition's locality.
//!
//! ```sh
//! cargo run --release --example autotune_fusion
//! ```

use cache_conscious_streaming::partition::{dag_greedy, fusion};
use cache_conscious_streaming::prelude::*;
use cache_conscious_streaming::sched::baseline;

fn main() {
    let graph = cache_conscious_streaming::apps::fm_radio(32);
    let ra = RateAnalysis::analyze_single_io(&graph).unwrap();
    println!(
        "fm-radio(32): {} modules, {} words of state",
        graph.node_count(),
        graph.total_state()
    );

    // A cache holding about a quarter of the app: partitioning matters.
    let params = CacheParams::new(
        (graph.total_state() / 4)
            .max(8 * graph.max_state())
            .next_multiple_of(16),
        16,
    );
    let planner = Planner::new(params);

    // Autotune: trial every strategy, keep the best.
    let tuned = autotune(
        &planner,
        &graph,
        Horizon::SinkFirings(200),
        Horizon::SinkFirings(2000),
    )
    .expect("autotuning succeeds");
    println!("\nstrategy trials:");
    for t in &tuned.trials {
        println!(
            "  {:<22} {:>8.4} misses/output  ({} components, bandwidth {:.3})",
            t.strategy_used, t.misses_per_output, t.components, t.bandwidth
        );
    }
    println!(
        "winner: {} with {} components",
        tuned.plan.strategy_used,
        tuned.plan.partition.num_components()
    );
    let eval = planner.evaluate(&graph, &tuned.plan).unwrap();
    let report = Report::new(&graph, params, &tuned.plan, &eval);
    println!("\nJSON report:\n{}", report.to_json());

    // Fusion: bake the partition into the graph itself.
    let p = dag_greedy::greedy_topo(&graph, params.capacity / 2);
    let fused = fusion::fuse(&graph, &ra, &p).expect("partition is well ordered");
    println!(
        "\nfused graph: {} modules (was {}):",
        fused.graph.node_count(),
        graph.node_count()
    );
    for v in fused.graph.node_ids() {
        println!(
            "  {:<40} {:>6} words",
            fused.graph.node(v).name,
            fused.graph.state(v)
        );
    }
    // Any scheduler now sees the partitioned locality: even the plain
    // single-appearance schedule, batched by Sermulins-style scaling,
    // amortizes each fused component's state load.
    let fra = RateAnalysis::analyze_single_io(&fused.graph).unwrap();
    let scale = baseline::choose_scale(&fused.graph, &fra, params.capacity / 2);
    let run = baseline::scaled_sas(&fused.graph, &fra, scale, 8);
    let rep = planner
        .evaluate_with(&fused.graph, &run, Default::default())
        .unwrap();
    println!(
        "\nscaled SAS (x{scale}) on the fused graph: {:.4} misses/output",
        rep.stats.misses as f64 / rep.outputs.max(1) as f64
    );
    println!("(compare the trial table above: fusion hands the partition's");
    println!(" locality to a scheduler with no two-level runtime at all)");
}
