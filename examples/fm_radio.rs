//! FM radio: the classic StreamIt workload, end to end.
//!
//! Plans a cache-conscious schedule for the FM radio pipeline (decimating
//! low-pass front end, demodulator, equalizer cascade), evaluates it in
//! the DAM model, and then actually *runs* it — real FIR kernels over
//! real ring buffers — comparing wall-clock time against the
//! single-appearance baseline.
//!
//! ```sh
//! cargo run --release --example fm_radio
//! ```

use cache_conscious_streaming::apps;
use cache_conscious_streaming::prelude::*;
use cache_conscious_streaming::runtime;

fn main() {
    // A wide equalizer makes the pipeline state-heavy: 128 bands of
    // 136 words each (~70KB), well beyond a typical 32KB L1d — the cache
    // level this workload size exercises on a real machine.
    let graph = apps::fm_radio(128);
    let total_state = graph.total_state();
    println!(
        "fm-radio: {} modules, {} words of state",
        graph.node_count(),
        total_state
    );

    // A cache that holds roughly a fifth of the application (and at
    // least 8x the largest module, the Theorem 5 partition parameter).
    let m = (total_state / 5).max(8 * graph.max_state());
    let params = CacheParams::new(m.next_multiple_of(16), 16);
    println!(
        "cache: M = {} words, B = {} words",
        params.capacity, params.block
    );

    let rows = compare_schedulers(&graph, params, 4000);
    println!();
    println!("{}", format_table("fm-radio, DAM model", &rows));

    // Real execution: run the naive and partitioned schedules with real
    // FIR kernels and compare wall-clock time.
    let ra = RateAnalysis::analyze_single_io(&graph).unwrap();
    let sink = ra.sink.unwrap();
    let iterations = 20_000u64;
    let naive = ccs_sched::baseline::single_appearance(&graph, &ra, iterations);

    let planner = Planner::new(params);
    let plan = planner
        .plan(&graph, Horizon::SinkFirings(iterations * ra.q(sink)))
        .expect("plan fm radio");

    let mut inst1 = apps::fir_instance(graph.clone());
    let naive_stats = runtime::execute(&mut inst1, &naive);
    let mut inst2 = apps::fir_instance(graph.clone());
    let part_stats = runtime::execute(&mut inst2, &plan.run);

    println!("real execution (FIR kernels):");
    println!(
        "  single-appearance : {:>8.2?} for {} sink items",
        naive_stats.wall, naive_stats.sink_items
    );
    println!(
        "  partitioned       : {:>8.2?} for {} sink items",
        part_stats.wall, part_stats.sink_items
    );
    let t1 = naive_stats.wall.as_secs_f64() / naive_stats.sink_items.max(1) as f64;
    let t2 = part_stats.wall.as_secs_f64() / part_stats.sink_items.max(1) as f64;
    println!(
        "  wall-clock per item: naive {:.1}ns vs partitioned {:.1}ns ({:.2}x)",
        t1 * 1e9,
        t2 * 1e9,
        t1 / t2
    );

    // SDF determinism: identical output streams.
    assert_eq!(
        inst1.sink_digest(),
        inst2.sink_digest(),
        "schedules must be functionally equivalent"
    );
    println!("  output digests match: functional equivalence verified");
}
