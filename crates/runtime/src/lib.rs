//! # ccs-runtime — real executors for streaming graphs
//!
//! Where `ccs-sched` *simulates* schedules in the DAM model, this crate
//! *runs* them on real memory: module kernels stream through real `f32`
//! state arrays and channels are real ring buffers, so wall-clock
//! measurements reflect genuine cache behavior on the host.
//!
//! * [`kernel`] — the [`kernel::Kernel`] trait plus deterministic kernels
//!   (source generator, digesting sink, FIR filters, synthetic
//!   state-streamers). SDF determinism means every legal schedule
//!   produces a bit-identical output stream — the test suite checks
//!   digests across schedulers and thread counts.
//! * [`instance::Instance`] — a graph bound to kernels.
//! * [`serial`] — executes any firing sequence ([`ccs_sched::SchedRun`]).
//! * [`parallel`] — the paper's asynchronous/parallel dynamic schedule
//!   for homogeneous graphs: workers claim components whose input rings
//!   hold `M` items and whose output rings are empty.
//! * [`parallel_pipeline`] — the same extension for (possibly
//!   inhomogeneous) pipelines, using §3's half-full/half-empty
//!   schedulability rule; producers and consumers of a ring run
//!   concurrently.
//! * [`ring`] — serial and lock-free SPSC ring buffers.
//! * [`prefetch`] — the software prefetch hint the fused executor
//!   issues on the next firing's input spans (no-op off x86_64/aarch64).

pub mod instance;
pub mod kernel;
pub mod parallel;
pub mod parallel_pipeline;
pub mod prefetch;
pub mod ring;
pub mod serial;

pub use instance::Instance;
pub use kernel::{fire_ports, Kernel};
pub use parallel::execute_parallel;
pub use parallel_pipeline::execute_parallel_pipeline;
pub use prefetch::prefetch_read;
pub use ring::{Ring, SpscRing};
pub use serial::{execute, execute_obs, ObsConfig, RunStats, SerialObs};
