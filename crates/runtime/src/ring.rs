//! Ring buffers over real memory.
//!
//! [`Ring`] is the single-threaded channel used by the serial executor;
//! [`SpscRing`] is a lock-free single-producer single-consumer ring used
//! by the parallel executor. Both store items contiguously in a fixed
//! `Box<[f32]>`, so channel traffic has the predictable layout the
//! paper's model assumes.
//!
//! Capacities are rounded up to a power of two so every index
//! computation is a bitmask instead of a `%`. On top of the classic
//! slice API both rings expose a zero-copy batch protocol:
//!
//! - producer: [`reserve`](SpscRing::reserve)`(n)` hands back at most
//!   two contiguous writable slices covering the next `n` free slots
//!   (two when the window wraps the end of the buffer), and
//!   [`commit`](SpscRing::commit)`(n)` publishes them;
//! - consumer: [`peek`](SpscRing::peek)`(n)` hands back the oldest `n`
//!   queued items as at most two contiguous readable slices, and
//!   [`release`](SpscRing::release)`(n)` retires them.
//!
//! The old `push_slice`/`pop_slice` calls are thin wrappers over this
//! protocol (`copy_from_slice` per segment), so the batch path is the
//! only code that touches the buffer.

use crossbeam::utils::CachePadded;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Round a requested capacity up to the next power of two.
fn pow2_capacity(capacity: usize) -> usize {
    assert!(capacity > 0);
    capacity.next_power_of_two()
}

/// Split the window `[pos, pos + n)` of `buf` (mod its length) into at
/// most two contiguous index ranges.
#[inline]
fn split_ranges(
    cap: usize,
    pos: usize,
    n: usize,
) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
    let first = n.min(cap - pos);
    (pos..pos + first, 0..n - first)
}

/// A fixed-capacity single-threaded FIFO of `f32` items.
///
/// The capacity is rounded up to a power of two; [`Ring::capacity`]
/// reports the rounded value.
#[derive(Debug)]
pub struct Ring {
    buf: Box<[f32]>,
    /// Index of the oldest item.
    head: usize,
    len: usize,
}

impl Ring {
    pub fn new(capacity: usize) -> Ring {
        let capacity = pow2_capacity(capacity);
        Ring {
            buf: vec![0.0; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn space(&self) -> usize {
        self.buf.len() - self.len
    }

    /// Producer half of the batch protocol: writable slices over the
    /// next `n` free slots (second slice empty unless the window wraps).
    /// Panics if there is not enough space. Nothing is published until
    /// [`commit`](Ring::commit).
    pub fn reserve(&mut self, n: usize) -> (&mut [f32], &mut [f32]) {
        assert!(n <= self.space(), "ring overflow");
        let cap = self.buf.len();
        let pos = (self.head + self.len) & (cap - 1);
        let (a, b) = split_ranges(cap, pos, n);
        // Split borrow: the wrapped range starts at 0 and ends at or
        // before `pos`, so the two ranges never overlap.
        let (lo, hi) = self.buf.split_at_mut(pos);
        (&mut hi[..a.len()], &mut lo[b])
    }

    /// Publish `n` previously reserved items.
    pub fn commit(&mut self, n: usize) {
        assert!(n <= self.space(), "ring overflow");
        self.len += n;
    }

    /// Consumer half of the batch protocol: readable slices over the
    /// oldest `n` queued items. Panics if fewer are queued. Items stay
    /// queued until [`release`](Ring::release).
    pub fn peek(&self, n: usize) -> (&[f32], &[f32]) {
        assert!(n <= self.len, "ring underflow");
        let cap = self.buf.len();
        let (a, b) = split_ranges(cap, self.head, n);
        (&self.buf[a], &self.buf[b])
    }

    /// Retire `n` previously peeked items.
    pub fn release(&mut self, n: usize) {
        assert!(n <= self.len, "ring underflow");
        self.head = (self.head + n) & (self.buf.len() - 1);
        self.len -= n;
    }

    /// Append all of `items`; panics if there is not enough space.
    pub fn push_slice(&mut self, items: &[f32]) {
        let (a, b) = self.reserve(items.len());
        let (x, y) = items.split_at(a.len());
        a.copy_from_slice(x);
        b.copy_from_slice(y);
        self.commit(items.len());
    }

    /// Remove `out.len()` items into `out`; panics if too few available.
    pub fn pop_slice(&mut self, out: &mut [f32]) {
        let n = out.len();
        {
            let (a, b) = self.peek(n);
            out[..a.len()].copy_from_slice(a);
            out[a.len()..].copy_from_slice(b);
        }
        self.release(n);
    }
}

/// A fixed-capacity lock-free SPSC FIFO of `f32` items.
///
/// The capacity is rounded up to a power of two; [`SpscRing::capacity`]
/// reports the rounded value.
///
/// Safety contract: at any instant at most one thread performs
/// `reserve`/`commit`/`push_*` and at most one thread performs
/// `peek`/`release`/`pop_*`. The parallel executor guarantees this by
/// giving each component exclusive ownership of its incident ring
/// endpoints while the component is claimed; claim handoff happens
/// under a mutex, which provides the necessary happens-before edges
/// between successive owners.
///
/// False-sharing note: `head` and `tail` are each `CachePadded`, i.e.
/// sized and aligned to a full cache line, so the immutable `buf`
/// pointer and `mask` words can never share a line with either counter
/// (a padded field occupies its lines exclusively); producer and
/// consumer only contend on the lines they must. A unit test pins the
/// padding assumption.
pub struct SpscRing {
    buf: UnsafeCell<Box<[f32]>>,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
    /// Total items ever pushed (monotone).
    tail: CachePadded<AtomicUsize>,
    /// Total items ever popped (monotone).
    head: CachePadded<AtomicUsize>,
}

// SAFETY: coordination protocol above; indices are atomics and the data
// race on buf is prevented by the head/tail discipline (producer writes
// only unoccupied slots, consumer reads only occupied slots).
unsafe impl Sync for SpscRing {}
unsafe impl Send for SpscRing {}

impl SpscRing {
    pub fn new(capacity: usize) -> SpscRing {
        let capacity = pow2_capacity(capacity);
        SpscRing {
            buf: UnsafeCell::new(vec![0.0; capacity].into_boxed_slice()),
            mask: capacity - 1,
            tail: CachePadded::new(AtomicUsize::new(0)),
            head: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail - head
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn space(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Producer half of the batch protocol: writable slices over the
    /// next `n` free slots (second slice empty unless the window wraps
    /// the end of the buffer). Panics on overflow (the executor checks
    /// space before claiming work). Nothing is visible to the consumer
    /// until [`commit`](SpscRing::commit).
    ///
    /// This is the ring's only unsafe buffer-access surface: every
    /// write path (`push_slice`, [`first_touch`](SpscRing::first_touch))
    /// goes through it.
    #[allow(clippy::mut_from_ref)] // SPSC contract: one producer thread.
    pub fn reserve(&self, n: usize) -> (&mut [f32], &mut [f32]) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        assert!(n <= self.capacity() - (tail - head), "spsc overflow");
        let pos = tail & self.mask;
        let (a, b) = split_ranges(self.capacity(), pos, n);
        // SAFETY: slots [tail, tail+n) are unoccupied; only this
        // producer writes them, and the split borrow below hands out
        // disjoint ranges.
        let buf = unsafe { &mut *self.buf.get() };
        let (lo, hi) = buf.split_at_mut(pos);
        (&mut hi[..a.len()], &mut lo[b])
    }

    /// Publish `n` previously reserved items to the consumer.
    pub fn commit(&self, n: usize) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        assert!(n <= self.capacity() - (tail - head), "spsc overflow");
        self.tail.store(tail + n, Ordering::Release);
    }

    /// Consumer half of the batch protocol: readable slices over the
    /// oldest `n` queued items (second slice empty unless the window
    /// wraps). Panics on underflow. Items stay queued until
    /// [`release`](SpscRing::release).
    pub fn peek(&self, n: usize) -> (&[f32], &[f32]) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        assert!(n <= tail - head, "spsc underflow");
        let pos = head & self.mask;
        let (a, b) = split_ranges(self.capacity(), pos, n);
        // SAFETY: slots [head, head+n) are occupied and stable; only
        // this consumer reads them.
        let buf = unsafe { &*self.buf.get() };
        (&buf[a], &buf[b])
    }

    /// Retire `n` previously peeked items, freeing their slots.
    pub fn release(&self, n: usize) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        assert!(n <= tail - head, "spsc underflow");
        self.head.store(head + n, Ordering::Release);
    }

    /// Fault in the ring's backing pages from the *calling* thread by
    /// writing one item per page (plus the last slot), so that under
    /// first-touch NUMA policy the buffer's memory lands on the
    /// caller's node. The parallel executor calls this from each ring's
    /// **consumer** worker after pinning and before any data flows,
    /// behind a start barrier.
    ///
    /// Implemented on the reserve path: the ring must be empty (it is
    /// pre-run), so `reserve(capacity)` spans the whole buffer; the
    /// touch writes zeros over the zeros already there and never
    /// commits, so a correctly sequenced touch is invisible to the data
    /// stream. Safety contract is the producer side's: no concurrent
    /// push while this runs.
    pub fn first_touch(&self) {
        /// One 4 KiB page of `f32` items.
        const PAGE_ITEMS: usize = 4096 / std::mem::size_of::<f32>();
        assert!(self.is_empty(), "first_touch on a non-empty ring");
        let (a, b) = self.reserve(self.capacity());
        for part in [a, b] {
            let mut i = 0;
            while i < part.len() {
                // Volatile so the "write zero over zero" is not elided.
                unsafe { std::ptr::write_volatile(&mut part[i], 0.0) };
                i += PAGE_ITEMS;
            }
            if let Some(last) = part.last_mut() {
                unsafe { std::ptr::write_volatile(last, 0.0) };
            }
        }
    }

    /// Producer side: append all items; panics on overflow (the executor
    /// checks space before claiming work).
    pub fn push_slice(&self, items: &[f32]) {
        let (a, b) = self.reserve(items.len());
        let (x, y) = items.split_at(a.len());
        a.copy_from_slice(x);
        b.copy_from_slice(y);
        self.commit(items.len());
    }

    /// Consumer side: remove `out.len()` items; panics on underflow.
    pub fn pop_slice(&self, out: &mut [f32]) {
        let n = out.len();
        {
            let (a, b) = self.peek(n);
            out[..a.len()].copy_from_slice(a);
            out[a.len()..].copy_from_slice(b);
        }
        self.release(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_fifo_order_with_wraparound() {
        let mut r = Ring::new(4);
        r.push_slice(&[1.0, 2.0, 3.0]);
        let mut out = [0.0; 2];
        r.pop_slice(&mut out);
        assert_eq!(out, [1.0, 2.0]);
        r.push_slice(&[4.0, 5.0, 6.0]); // wraps
        assert_eq!(r.len(), 4);
        let mut out4 = [0.0; 4];
        r.pop_slice(&mut out4);
        assert_eq!(out4, [3.0, 4.0, 5.0, 6.0]);
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn capacities_round_up_to_powers_of_two() {
        assert_eq!(Ring::new(1).capacity(), 1);
        assert_eq!(Ring::new(3).capacity(), 4);
        assert_eq!(Ring::new(4).capacity(), 4);
        assert_eq!(Ring::new(10).capacity(), 16);
        assert_eq!(SpscRing::new(3).capacity(), 4);
        assert_eq!(SpscRing::new(16).capacity(), 16);
        assert_eq!(SpscRing::new(3000).capacity(), 4096);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn ring_overflow_panics() {
        let mut r = Ring::new(2);
        r.push_slice(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn ring_underflow_panics() {
        let mut r = Ring::new(2);
        let mut out = [0.0];
        r.pop_slice(&mut out);
    }

    #[test]
    #[should_panic(expected = "spsc overflow")]
    fn spsc_reserve_overflow_panics() {
        let r = SpscRing::new(4);
        r.push_slice(&[1.0, 2.0, 3.0]);
        let _ = r.reserve(2);
    }

    #[test]
    #[should_panic(expected = "spsc underflow")]
    fn spsc_peek_underflow_panics() {
        let r = SpscRing::new(4);
        r.push_slice(&[1.0]);
        let _ = r.peek(2);
    }

    #[test]
    fn spsc_single_thread_semantics() {
        let r = SpscRing::new(8);
        r.push_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.space(), 5);
        let mut out = [0.0; 3];
        r.pop_slice(&mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert!(r.is_empty());
    }

    #[test]
    fn spsc_first_touch_is_invisible_to_the_stream() {
        // Touch a ring larger than one page, then stream through it:
        // contents and accounting must be exactly as without the touch.
        let r = SpscRing::new(3000);
        r.first_touch();
        assert!(r.is_empty());
        let items: Vec<f32> = (0..2500).map(|i| i as f32).collect();
        r.push_slice(&items);
        let mut out = vec![0.0f32; 2500];
        r.pop_slice(&mut out);
        assert_eq!(out, items);
        // Tiny rings (shorter than a page) are touched too.
        let small = SpscRing::new(3);
        small.first_touch();
        small.push_slice(&[7.0]);
        let mut one = [0.0f32];
        small.pop_slice(&mut one);
        assert_eq!(one, [7.0]);
    }

    #[test]
    fn spsc_first_touch_covers_a_wrapped_reserve_window() {
        // Stream a few items through first so head/tail sit mid-buffer:
        // the touch's full-capacity reserve window wraps and must still
        // be invisible.
        let r = SpscRing::new(8);
        r.push_slice(&[1.0, 2.0, 3.0]);
        let mut out = [0.0f32; 3];
        r.pop_slice(&mut out);
        r.first_touch();
        assert!(r.is_empty());
        let items: Vec<f32> = (0..8).map(|i| i as f32).collect();
        r.push_slice(&items);
        let mut back = vec![0.0f32; 8];
        r.pop_slice(&mut back);
        assert_eq!(back, items);
    }

    #[test]
    fn cache_padding_isolates_the_counters() {
        // The false-sharing audit in the struct docs rests on
        // `CachePadded` filling whole cache lines; pin that here so a
        // vendored-shim regression is caught.
        assert!(std::mem::align_of::<CachePadded<AtomicUsize>>() >= 64);
        assert!(std::mem::size_of::<CachePadded<AtomicUsize>>() >= 64);
        assert_eq!(
            std::mem::size_of::<CachePadded<AtomicUsize>>()
                % std::mem::align_of::<CachePadded<AtomicUsize>>(),
            0
        );
    }

    /// Exhaustive wraparound check: for small capacities, every
    /// (offset, batch length) pair must round-trip through
    /// reserve/commit + peek/release with the correct two-slice split.
    #[test]
    fn batch_api_exhaustive_offsets_ring() {
        for cap in [1usize, 2, 4, 8] {
            for offset in 0..cap {
                for n in 0..=cap {
                    let mut r = Ring::new(cap);
                    // Advance head to `offset` with a throwaway stream.
                    let junk = vec![9.0f32; offset];
                    r.push_slice(&junk);
                    let mut sink = vec![0.0f32; offset];
                    r.pop_slice(&mut sink);
                    // Write 0..n through reserve, check split shape.
                    {
                        let (a, b) = r.reserve(n);
                        assert_eq!(a.len() + b.len(), n);
                        assert!(b.is_empty() || a.len() == cap - offset);
                        for (i, slot) in a.iter_mut().chain(b.iter_mut()).enumerate() {
                            *slot = i as f32;
                        }
                    }
                    r.commit(n);
                    assert_eq!(r.len(), n);
                    let (a, b) = r.peek(n);
                    let got: Vec<f32> = a.iter().chain(b.iter()).copied().collect();
                    let want: Vec<f32> = (0..n).map(|i| i as f32).collect();
                    assert_eq!(got, want, "cap={cap} offset={offset} n={n}");
                    r.release(n);
                    assert!(r.is_empty());
                }
            }
        }
    }

    #[test]
    fn batch_api_exhaustive_offsets_spsc() {
        for cap in [1usize, 2, 4, 8] {
            for offset in 0..cap {
                for n in 0..=cap {
                    let r = SpscRing::new(cap);
                    let junk = vec![9.0f32; offset];
                    r.push_slice(&junk);
                    let mut sink = vec![0.0f32; offset];
                    r.pop_slice(&mut sink);
                    {
                        let (a, b) = r.reserve(n);
                        assert_eq!(a.len() + b.len(), n);
                        assert!(b.is_empty() || a.len() == cap - offset);
                        for (i, slot) in a.iter_mut().chain(b.iter_mut()).enumerate() {
                            *slot = i as f32;
                        }
                    }
                    r.commit(n);
                    assert_eq!(r.len(), n);
                    let (a, b) = r.peek(n);
                    let got: Vec<f32> = a.iter().chain(b.iter()).copied().collect();
                    let want: Vec<f32> = (0..n).map(|i| i as f32).collect();
                    assert_eq!(got, want, "cap={cap} offset={offset} n={n}");
                    r.release(n);
                    assert!(r.is_empty());
                }
            }
        }
    }

    #[test]
    fn spsc_cross_thread_stream() {
        let r = SpscRing::new(16);
        let total = 10_000usize;
        crossbeam::scope(|s| {
            s.spawn(|_| {
                let mut sent = 0usize;
                while sent < total {
                    let n = (total - sent).min(r.space()).min(4);
                    if n == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    let chunk: Vec<f32> = (sent..sent + n).map(|i| i as f32).collect();
                    r.push_slice(&chunk);
                    sent += n;
                }
            });
            s.spawn(|_| {
                let mut got = 0usize;
                let mut buf = [0.0f32; 4];
                while got < total {
                    let n = (total - got).min(r.len()).min(4);
                    if n == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    r.pop_slice(&mut buf[..n]);
                    for (i, &x) in buf[..n].iter().enumerate() {
                        assert_eq!(x, (got + i) as f32);
                    }
                    got += n;
                }
            });
        })
        .unwrap();
    }

    /// The batch-protocol mirror of `spsc_cross_thread_stream`: the
    /// producer writes in place through reserve/commit, the consumer
    /// verifies in place through peek/release — no staging copies.
    #[test]
    fn spsc_cross_thread_reserve_commit_stream() {
        let r = SpscRing::new(16);
        let total = 10_000usize;
        crossbeam::scope(|s| {
            s.spawn(|_| {
                let mut sent = 0usize;
                while sent < total {
                    let n = (total - sent).min(r.space()).min(5);
                    if n == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    {
                        let (a, b) = r.reserve(n);
                        for (i, slot) in a.iter_mut().chain(b.iter_mut()).enumerate() {
                            *slot = (sent + i) as f32;
                        }
                    }
                    r.commit(n);
                    sent += n;
                }
            });
            s.spawn(|_| {
                let mut got = 0usize;
                while got < total {
                    let n = (total - got).min(r.len()).min(3);
                    if n == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    {
                        let (a, b) = r.peek(n);
                        for (i, &x) in a.iter().chain(b.iter()).enumerate() {
                            assert_eq!(x, (got + i) as f32);
                        }
                    }
                    r.release(n);
                    got += n;
                }
            });
        })
        .unwrap();
    }

    #[test]
    fn spsc_wraparound_many_times() {
        let r = SpscRing::new(3);
        let mut out = [0.0f32; 2];
        for round in 0..100 {
            r.push_slice(&[round as f32, round as f32 + 0.5]);
            r.pop_slice(&mut out);
            assert_eq!(out, [round as f32, round as f32 + 0.5]);
        }
    }
}
