//! Ring buffers over real memory.
//!
//! [`Ring`] is the single-threaded channel used by the serial executor;
//! [`SpscRing`] is a lock-free single-producer single-consumer ring used
//! by the parallel executor. Both store items contiguously in a fixed
//! `Box<[f32]>`, so channel traffic has the predictable layout the
//! paper's model assumes.

use crossbeam::utils::CachePadded;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-capacity single-threaded FIFO of `f32` items.
#[derive(Debug)]
pub struct Ring {
    buf: Box<[f32]>,
    head: usize,
    len: usize,
}

impl Ring {
    pub fn new(capacity: usize) -> Ring {
        assert!(capacity > 0);
        Ring {
            buf: vec![0.0; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn space(&self) -> usize {
        self.buf.len() - self.len
    }

    /// Append all of `items`; panics if there is not enough space.
    pub fn push_slice(&mut self, items: &[f32]) {
        assert!(items.len() <= self.space(), "ring overflow");
        let cap = self.buf.len();
        let mut pos = (self.head + self.len) % cap;
        for &x in items {
            self.buf[pos] = x;
            pos += 1;
            if pos == cap {
                pos = 0;
            }
        }
        self.len += items.len();
    }

    /// Remove `out.len()` items into `out`; panics if too few available.
    pub fn pop_slice(&mut self, out: &mut [f32]) {
        assert!(out.len() <= self.len, "ring underflow");
        let cap = self.buf.len();
        let mut pos = self.head;
        for slot in out.iter_mut() {
            *slot = self.buf[pos];
            pos += 1;
            if pos == cap {
                pos = 0;
            }
        }
        self.head = pos;
        self.len -= out.len();
    }
}

/// A fixed-capacity lock-free SPSC FIFO of `f32` items.
///
/// Safety contract: at any instant at most one thread performs `push_*`
/// and at most one thread performs `pop_*`. The parallel executor
/// guarantees this by giving each component exclusive ownership of its
/// incident ring endpoints while the component is claimed; claim handoff
/// happens under a mutex, which provides the necessary happens-before
/// edges between successive owners.
pub struct SpscRing {
    buf: UnsafeCell<Box<[f32]>>,
    /// Total items ever pushed (monotone).
    tail: CachePadded<AtomicUsize>,
    /// Total items ever popped (monotone).
    head: CachePadded<AtomicUsize>,
    capacity: usize,
}

// SAFETY: coordination protocol above; indices are atomics and the data
// race on buf is prevented by the head/tail discipline (producer writes
// only unoccupied slots, consumer reads only occupied slots).
unsafe impl Sync for SpscRing {}
unsafe impl Send for SpscRing {}

impl SpscRing {
    pub fn new(capacity: usize) -> SpscRing {
        assert!(capacity > 0);
        SpscRing {
            buf: UnsafeCell::new(vec![0.0; capacity].into_boxed_slice()),
            tail: CachePadded::new(AtomicUsize::new(0)),
            head: CachePadded::new(AtomicUsize::new(0)),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fault in the ring's backing pages from the *calling* thread by
    /// writing one item per page (plus the first and last slots), so
    /// that under first-touch NUMA policy the buffer's memory lands on
    /// the caller's node. The parallel executor calls this from each
    /// ring's **consumer** worker after pinning and before any data
    /// flows, behind a start barrier.
    ///
    /// Safety contract (same discipline as `push_slice`/`pop_slice`):
    /// the caller must guarantee no concurrent push or pop while this
    /// runs — it writes the buffer through the ring's interior
    /// mutability. All touched slots are overwritten with the zeros
    /// they already hold, so a correctly sequenced touch is invisible
    /// to the data stream.
    pub fn first_touch(&self) {
        /// One 4 KiB page of `f32` items.
        const PAGE_ITEMS: usize = 4096 / std::mem::size_of::<f32>();
        // SAFETY: exclusive pre-run access per the contract above.
        let buf = unsafe { &mut *self.buf.get() };
        let mut i = 0;
        while i < buf.len() {
            // Volatile so the "write zero over zero" is not elided.
            unsafe { std::ptr::write_volatile(&mut buf[i], 0.0) };
            i += PAGE_ITEMS;
        }
        if let Some(last) = buf.last_mut() {
            unsafe { std::ptr::write_volatile(last, 0.0) };
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail - head
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn space(&self) -> usize {
        self.capacity - self.len()
    }

    /// Producer side: append all items; panics on overflow (the executor
    /// checks space before claiming work).
    pub fn push_slice(&self, items: &[f32]) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        assert!(
            items.len() <= self.capacity - (tail - head),
            "spsc overflow"
        );
        // SAFETY: slots [tail, tail+len) are unoccupied; only this
        // producer writes them.
        let buf = unsafe { &mut *self.buf.get() };
        for (i, &x) in items.iter().enumerate() {
            buf[(tail + i) % self.capacity] = x;
        }
        self.tail.store(tail + items.len(), Ordering::Release);
    }

    /// Consumer side: remove `out.len()` items; panics on underflow.
    pub fn pop_slice(&self, out: &mut [f32]) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        assert!(out.len() <= tail - head, "spsc underflow");
        // SAFETY: slots [head, head+len) are occupied; only this consumer
        // reads them.
        let buf = unsafe { &*self.buf.get() };
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = buf[(head + i) % self.capacity];
        }
        self.head.store(head + out.len(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_fifo_order_with_wraparound() {
        let mut r = Ring::new(4);
        r.push_slice(&[1.0, 2.0, 3.0]);
        let mut out = [0.0; 2];
        r.pop_slice(&mut out);
        assert_eq!(out, [1.0, 2.0]);
        r.push_slice(&[4.0, 5.0, 6.0]); // wraps
        assert_eq!(r.len(), 4);
        let mut out4 = [0.0; 4];
        r.pop_slice(&mut out4);
        assert_eq!(out4, [3.0, 4.0, 5.0, 6.0]);
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn ring_overflow_panics() {
        let mut r = Ring::new(2);
        r.push_slice(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn ring_underflow_panics() {
        let mut r = Ring::new(2);
        let mut out = [0.0];
        r.pop_slice(&mut out);
    }

    #[test]
    fn spsc_single_thread_semantics() {
        let r = SpscRing::new(8);
        r.push_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.space(), 5);
        let mut out = [0.0; 3];
        r.pop_slice(&mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert!(r.is_empty());
    }

    #[test]
    fn spsc_first_touch_is_invisible_to_the_stream() {
        // Touch a ring larger than one page, then stream through it:
        // contents and accounting must be exactly as without the touch.
        let r = SpscRing::new(3000);
        r.first_touch();
        assert!(r.is_empty());
        let items: Vec<f32> = (0..2500).map(|i| i as f32).collect();
        r.push_slice(&items);
        let mut out = vec![0.0f32; 2500];
        r.pop_slice(&mut out);
        assert_eq!(out, items);
        // Tiny rings (shorter than a page) are touched too.
        let small = SpscRing::new(3);
        small.first_touch();
        small.push_slice(&[7.0]);
        let mut one = [0.0f32];
        small.pop_slice(&mut one);
        assert_eq!(one, [7.0]);
    }

    #[test]
    fn spsc_cross_thread_stream() {
        let r = SpscRing::new(16);
        let total = 10_000usize;
        crossbeam::scope(|s| {
            s.spawn(|_| {
                let mut sent = 0usize;
                while sent < total {
                    let n = (total - sent).min(r.space()).min(4);
                    if n == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    let chunk: Vec<f32> = (sent..sent + n).map(|i| i as f32).collect();
                    r.push_slice(&chunk);
                    sent += n;
                }
            });
            s.spawn(|_| {
                let mut got = 0usize;
                let mut buf = [0.0f32; 4];
                while got < total {
                    let n = (total - got).min(r.len()).min(4);
                    if n == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    r.pop_slice(&mut buf[..n]);
                    for (i, &x) in buf[..n].iter().enumerate() {
                        assert_eq!(x, (got + i) as f32);
                    }
                    got += n;
                }
            });
        })
        .unwrap();
    }

    #[test]
    fn spsc_wraparound_many_times() {
        let r = SpscRing::new(3);
        let mut out = [0.0f32; 2];
        for round in 0..100 {
            r.push_slice(&[round as f32, round as f32 + 0.5]);
            r.pop_slice(&mut out);
            assert_eq!(out, [round as f32, round as f32 + 0.5]);
        }
    }
}
