//! Software prefetch hints for the fused firing loop.
//!
//! The fused executor knows the *next* firing's input spans while the
//! current firing is still running — a one-firing lookahead that is
//! long enough to hide an L2 hit but short enough that the line is not
//! evicted again before use (the spans of consecutive firings are
//! adjacent in the arena, so deeper distances only re-request the same
//! lines). The hint targets the innermost cache (`T0` / `pldl1keep`);
//! on architectures without an exposed prefetch instruction it compiles
//! to nothing, and it is *always* semantically a no-op: issuing or
//! skipping it cannot change any result.

/// Hint the CPU to pull the cache line holding `*ptr` toward L1.
///
/// Safe to call with any pointer, valid or not — prefetch instructions
/// never fault; the address is only a hint.
#[inline(always)]
pub fn prefetch_read(ptr: *const f32) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch does not dereference; it cannot fault.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(ptr as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is architecturally a hint; it cannot fault.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) ptr,
            options(nostack, preserves_flags)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = ptr;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_semantic_noop() {
        // A hint must not observable-change anything: data before ==
        // data after, for in-bounds, boundary, and dangling addresses.
        let data = vec![1.0f32, 2.0, 3.0, 4.0];
        prefetch_read(data.as_ptr());
        prefetch_read(unsafe { data.as_ptr().add(data.len()) });
        prefetch_read(std::ptr::null());
        assert_eq!(data, [1.0, 2.0, 3.0, 4.0]);
    }
}
