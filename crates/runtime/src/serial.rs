//! The serial executor: runs any legal firing sequence on real memory.
//!
//! Per-node scratch buffers are allocated once up front, sized exactly to
//! the node's rates, so the firing loop is allocation-free: each firing
//! costs two ring copies plus the kernel's own work.

use crate::instance::Instance;
use crate::ring::Ring;
use ccs_graph::{NodeId, StreamGraph};
use ccs_obs::{Clock, EventKind, Timeline, Tracer, WindowSample, WindowSampler};
use ccs_perf::CounterSample;
use ccs_sched::SchedRun;
use std::time::{Duration, Instant};

/// Outcome of a real execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunStats {
    /// Wall-clock time of the firing loop only (allocation excluded).
    pub wall: Duration,
    /// Total firings executed.
    pub firings: u64,
    /// Items the sink consumed.
    pub sink_items: u64,
    /// Order-sensitive digest of the sink stream (for equivalence
    /// checks), if the sink kernel provides one.
    pub digest: Option<u64>,
}

/// Per-node pre-sized scratch: one `Vec<f32>` per port.
pub(crate) struct Scratch {
    pub inputs: Vec<Vec<Vec<f32>>>,
    pub outputs: Vec<Vec<Vec<f32>>>,
}

impl Scratch {
    pub(crate) fn for_graph(g: &StreamGraph) -> Scratch {
        let inputs = g
            .node_ids()
            .map(|v| {
                g.in_edges(v)
                    .iter()
                    .map(|&e| vec![0.0f32; g.edge(e).consume as usize])
                    .collect()
            })
            .collect();
        let outputs = g
            .node_ids()
            .map(|v| {
                g.out_edges(v)
                    .iter()
                    .map(|&e| vec![0.0f32; g.edge(e).produce as usize])
                    .collect()
            })
            .collect();
        Scratch { inputs, outputs }
    }
}

/// Execute `run`'s firing sequence over real ring buffers.
///
/// Buffer capacities come from `run.capacities`; underflow or overflow
/// panics (the symbolic executor validates the same sequence in tests, so
/// a panic here indicates an executor bug, not a scheduler bug).
pub fn execute(inst: &mut Instance, run: &SchedRun) -> RunStats {
    execute_counted(inst, run, false).0
}

/// [`execute`], optionally sampling hardware counters (the `ccs-perf`
/// cache suite) around the firing loop — the same window `wall` times,
/// with allocation excluded — so serial misses/item is directly
/// comparable with the parallel executor's per-worker counters. The
/// sample is `None` when `counters` is false or `perf_event_open` is
/// unavailable; the `RunStats` (digest included) is identical either
/// way.
pub fn execute_counted(
    inst: &mut Instance,
    run: &SchedRun,
    counters: bool,
) -> (RunStats, Option<ccs_perf::CounterSample>) {
    execute_counted_warm(inst, run, counters, 0)
}

/// [`execute_counted`] with a steady-state warmup window: the counter
/// group is zeroed (`PERF_EVENT_IOC_RESET`) after the first
/// `warmup_firings` firings, so the sample excludes cold-start misses
/// (first-touch state, page faults) and covers only the remaining
/// `firings - warmup_firings` firings — the serial analogue of
/// `RunConfig::warmup_batches` in the parallel executor. A warmup of 0,
/// or one at least as long as the schedule, degrades to whole-run
/// sampling; execution itself (digest, items, firing count) is
/// untouched in every case.
pub fn execute_counted_warm(
    inst: &mut Instance,
    run: &SchedRun,
    counters: bool,
    warmup_firings: u64,
) -> (RunStats, Option<ccs_perf::CounterSample>) {
    let (stats, obs) = execute_obs(
        inst,
        run,
        &ObsConfig {
            counters,
            warmup_firings,
            ..ObsConfig::default()
        },
    );
    (stats, obs.sample)
}

/// Observability options for [`execute_obs`] — the serial analogues of
/// the parallel executor's `RunConfig` counter/trace/window knobs.
#[derive(Clone, Debug, Default)]
pub struct ObsConfig {
    /// Sample hardware counters (the `ccs-perf` cache suite) around
    /// the firing loop.
    pub counters: bool,
    /// Zero the counter group after this many firings (the serial
    /// warmup window; ignored when it would leave no measured window).
    pub warmup_firings: u64,
    /// Close a counter window every this many firings (0 = off):
    /// cumulative group reads differenced with
    /// [`CounterSample::delta_since`], the serial analogue of the
    /// parallel executor's per-worker window cadence. Callers usually
    /// pass `W · firings_per_round` so serial windows line up with
    /// W-batch parallel ones.
    pub window_firings: u64,
    /// Record a `SerialBlock` span every this many firings (0 = off).
    /// The serial schedule is one flat firing list, so its timeline is
    /// chunked into fixed-size blocks — pass firings-per-round to get
    /// one span per granularity-`T` round.
    pub block_firings: u64,
    /// Record an event timeline into a bounded ring.
    pub trace: bool,
    /// Event ring capacity when tracing (0 selects the default).
    pub trace_capacity: usize,
}

/// What [`execute_obs`] observed, next to the (unperturbed) run stats.
#[derive(Clone, Debug, Default)]
pub struct SerialObs {
    /// The end-of-run counter sample (post-warmup window when one was
    /// configured); `None` when counters were off or unavailable.
    pub sample: Option<CounterSample>,
    /// Closed counter windows ([`ObsConfig::window_firings`]); empty
    /// when windows were off, timing-only when no group opened.
    pub windows: Vec<WindowSample>,
    /// Recorded event timeline ([`ObsConfig::trace`]); `None` when
    /// tracing was off.
    pub trace: Option<Timeline>,
}

/// [`execute_counted_warm`] plus time-resolved observability: an event
/// timeline (block spans, the warmup reset) and periodic counter
/// windows, both collected by the same `ccs-obs` machinery the
/// parallel workers use. Execution itself — digest, items, firing
/// count — is identical to [`execute`] under every configuration.
pub fn execute_obs(inst: &mut Instance, run: &SchedRun, cfg: &ObsConfig) -> (RunStats, SerialObs) {
    let g = &inst.graph;
    assert_eq!(run.capacities.len(), g.edge_count());
    let mut rings: Vec<Ring> = g
        .edge_ids()
        .map(|e| Ring::new(run.capacities[e.idx()].max(1) as usize))
        .collect();
    let mut scratch = Scratch::for_graph(g);
    let counter_set = if cfg.counters {
        ccs_perf::CounterBuilder::cache_suite().open_self_thread()
    } else {
        ccs_perf::CounterSet::unavailable("counters not requested")
    };
    // A warmup that would leave no measured window is ignored.
    let warmup = if cfg.warmup_firings < run.firings.len() as u64 {
        cfg.warmup_firings
    } else {
        0
    };
    let clock = Clock::start();
    let mut tracer = if cfg.trace {
        Tracer::on(cfg.trace_capacity)
    } else {
        Tracer::off()
    };
    let mut wins = WindowSampler::new(cfg.window_firings);

    let sink = g.single_sink();
    let mut sink_items = 0u64;
    counter_set.reset();
    counter_set.enable();
    if wins.enabled() {
        wins.start(clock.now_ns(), counter_set.sample());
    }
    let mut block_index = 0u64;
    let mut block_start_ns = clock.now_ns();
    let start = Instant::now();
    for (i, &v) in run.firings.iter().enumerate() {
        if warmup > 0 && i as u64 == warmup {
            // The reset would corrupt any open window's cumulative
            // baseline: flush, reset, re-baseline (same protocol as
            // the parallel workers).
            wins.flush(clock.now_ns(), || counter_set.sample());
            counter_set.reset();
            if wins.enabled() {
                wins.rebaseline(clock.now_ns(), counter_set.sample());
            }
            tracer.record(clock.now_ns(), 0, EventKind::WarmupReset);
        }
        fire_once(inst, &mut rings, &mut scratch, v, sink, &mut sink_items);
        if wins.enabled() {
            if let Some(index) = wins.on_batch(clock.now_ns(), || counter_set.sample()) {
                tracer.record(clock.now_ns(), 0, EventKind::Window { index });
            }
        }
        if cfg.trace && cfg.block_firings > 0 && (i as u64 + 1).is_multiple_of(cfg.block_firings) {
            let now = clock.now_ns();
            tracer.record(
                block_start_ns,
                now - block_start_ns,
                EventKind::SerialBlock { index: block_index },
            );
            record_occupancy(&mut tracer, &rings, now);
            block_index += 1;
            block_start_ns = now;
        }
    }
    let wall = start.elapsed();
    if cfg.trace
        && cfg.block_firings > 0
        && !(run.firings.len() as u64).is_multiple_of(cfg.block_firings)
    {
        let now = clock.now_ns();
        tracer.record(
            block_start_ns,
            now - block_start_ns,
            EventKind::SerialBlock { index: block_index },
        );
        record_occupancy(&mut tracer, &rings, now);
    }
    let windows = wins.finish(clock.now_ns(), || counter_set.sample());
    counter_set.disable();
    let stats = RunStats {
        wall,
        firings: run.firings.len() as u64,
        sink_items,
        digest: inst.sink_digest(),
    };
    let obs = SerialObs {
        sample: counter_set.sample(),
        windows,
        trace: tracer.finish(),
    };
    (stats, obs)
}

/// Ring occupancy of every edge at a serial-block boundary — one
/// instant per ring, all on the block's closing timestamp. The serial
/// schedule drains rings between rounds, so nonzero steady-state
/// occupancy here marks the buffers a partitioned round leaves filled.
fn record_occupancy(tracer: &mut Tracer, rings: &[Ring], now_ns: u64) {
    for (ri, r) in rings.iter().enumerate() {
        tracer.record(
            now_ns,
            0,
            EventKind::RingOccupancy {
                ring: ri,
                len: r.len() as u64,
                cap: r.capacity() as u64,
            },
        );
    }
}

#[inline]
fn fire_once(
    inst: &mut Instance,
    rings: &mut [Ring],
    scratch: &mut Scratch,
    v: NodeId,
    sink: Option<NodeId>,
    sink_items: &mut u64,
) {
    let g = &inst.graph;
    let vin = &mut scratch.inputs[v.idx()];
    for (i, &e) in g.in_edges(v).iter().enumerate() {
        rings[e.idx()].pop_slice(&mut vin[i]);
        if Some(v) == sink {
            *sink_items += vin[i].len() as u64;
        }
    }
    let vout = &mut scratch.outputs[v.idx()];
    crate::kernel::fire_ports(inst.kernels[v.idx()].as_mut(), vin, vout);
    for (i, &e) in inst.graph.out_edges(v).iter().enumerate() {
        rings[e.idx()].push_slice(&vout[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};
    use ccs_graph::RateAnalysis;
    use ccs_sched::baseline;

    #[test]
    fn sas_executes_on_real_memory() {
        let g = gen::pipeline(&PipelineCfg::default(), 3);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = baseline::single_appearance(&g, &ra, 4);
        let mut inst = Instance::synthetic(g);
        let stats = execute(&mut inst, &run);
        assert_eq!(stats.firings, run.firings.len() as u64);
        assert!(stats.sink_items > 0);
        assert!(stats.digest.is_some());
    }

    #[test]
    fn counted_execution_does_not_perturb_results() {
        let g = gen::pipeline(&PipelineCfg::default(), 5);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = baseline::single_appearance(&g, &ra, 4);
        let mut i1 = Instance::synthetic(g.clone());
        let plain = execute(&mut i1, &run);
        let mut i2 = Instance::synthetic(g);
        let (counted, sample) = execute_counted(&mut i2, &run, true);
        assert_eq!(plain.digest, counted.digest);
        assert_eq!(plain.firings, counted.firings);
        assert_eq!(plain.sink_items, counted.sink_items);
        // Environment-dependent: if a group opened, it read something.
        if let Some(s) = sample {
            assert!(!s.readings.is_empty());
        }
        // Counters off: no sample, same behavior.
        let mut i3 = Instance::synthetic(i1.graph.clone());
        let (off, none) = execute_counted(&mut i3, &run, false);
        assert_eq!(off.digest, plain.digest);
        assert!(none.is_none());
    }

    #[test]
    fn warmup_window_does_not_perturb_results() {
        let g = gen::pipeline(&PipelineCfg::default(), 5);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = baseline::single_appearance(&g, &ra, 4);
        let mut i1 = Instance::synthetic(g.clone());
        let plain = execute(&mut i1, &run);
        // Warmup inside, at, and beyond the schedule length: execution
        // is identical in every case (only the counter window moves).
        for warmup in [1, run.firings.len() as u64 / 2, u64::MAX] {
            let mut i = Instance::synthetic(g.clone());
            let (warm, _sample) = execute_counted_warm(&mut i, &run, true, warmup);
            assert_eq!(warm.digest, plain.digest, "warmup {warmup}");
            assert_eq!(warm.firings, plain.firings);
            assert_eq!(warm.sink_items, plain.sink_items);
        }
    }

    #[test]
    fn observed_execution_does_not_perturb_results() {
        let g = gen::pipeline(&PipelineCfg::default(), 7);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = baseline::single_appearance(&g, &ra, 4);
        let mut i1 = Instance::synthetic(g.clone());
        let plain = execute(&mut i1, &run);
        let cfg = ObsConfig {
            counters: true,
            warmup_firings: run.firings.len() as u64 / 3,
            window_firings: 5,
            block_firings: 8,
            trace: true,
            trace_capacity: 0,
        };
        let mut i2 = Instance::synthetic(g);
        let (observed, obs) = execute_obs(&mut i2, &run, &cfg);
        assert_eq!(observed.digest, plain.digest);
        assert_eq!(observed.firings, plain.firings);
        assert_eq!(observed.sink_items, plain.sink_items);
        // Windows close on the firing cadence whether or not a counter
        // group opened (timing-only fallback), partial final included.
        let expect = (run.firings.len() as u64).div_ceil(5) as usize;
        assert_eq!(obs.windows.len(), expect);
        assert!(obs.windows.iter().all(|w| w.batches > 0));
        // The trace holds one block span per 8 firings (last partial),
        // the warmup reset, and the window instants, all in time order.
        let tl = obs.trace.expect("tracing was on");
        assert_eq!(tl.dropped, 0);
        let blocks = tl
            .events
            .iter()
            .filter(|e| matches!(e.kind, ccs_obs::EventKind::SerialBlock { .. }))
            .count();
        assert_eq!(blocks, (run.firings.len() as u64).div_ceil(8) as usize);
        assert!(tl
            .events
            .iter()
            .any(|e| matches!(e.kind, ccs_obs::EventKind::WarmupReset)));
        assert!(tl.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn obs_defaults_match_plain_execution() {
        let g = gen::pipeline(&PipelineCfg::default(), 4);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = baseline::single_appearance(&g, &ra, 3);
        let mut i1 = Instance::synthetic(g.clone());
        let plain = execute(&mut i1, &run);
        let mut i2 = Instance::synthetic(g);
        let (stats, obs) = execute_obs(&mut i2, &run, &ObsConfig::default());
        assert_eq!(stats.digest, plain.digest);
        assert!(obs.sample.is_none());
        assert!(obs.windows.is_empty());
        assert!(obs.trace.is_none());
    }

    #[test]
    fn different_schedules_same_digest() {
        // SDF determinism: the output stream is schedule independent.
        let g = gen::pipeline(&PipelineCfg::default(), 9);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let sink = ra.sink.unwrap();

        let sas = baseline::single_appearance(&g, &ra, 6);
        let sink_firings = sas.count(sink);
        let demand = baseline::demand_driven(&g, &ra, sink_firings);

        let mut i1 = Instance::synthetic(g.clone());
        let s1 = execute(&mut i1, &sas);
        let mut i2 = Instance::synthetic(g);
        let s2 = execute(&mut i2, &demand);

        assert_eq!(s1.sink_items, s2.sink_items);
        assert_eq!(s1.digest, s2.digest, "schedules must be functionally equal");
    }

    #[test]
    fn dag_schedules_equivalent() {
        let cfg = LayeredCfg {
            layers: 3,
            max_width: 3,
            density: 0.3,
            state: StateDist::Uniform(4, 32),
            max_q: 2,
        };
        for seed in 0..5u64 {
            let g = gen::layered(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let sink = ra.sink.unwrap();
            let sas = baseline::single_appearance(&g, &ra, 3);
            let demand = baseline::demand_driven(&g, &ra, sas.count(sink));
            let mut i1 = Instance::synthetic(g.clone());
            let mut i2 = Instance::synthetic(g);
            assert_eq!(
                execute(&mut i1, &sas).digest,
                execute(&mut i2, &demand).digest,
                "seed {seed}"
            );
        }
    }
}
