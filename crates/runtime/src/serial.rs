//! The serial executor: runs any legal firing sequence on real memory.
//!
//! Per-node scratch buffers are allocated once up front, sized exactly to
//! the node's rates, so the firing loop is allocation-free: each firing
//! costs two ring copies plus the kernel's own work.

use crate::instance::Instance;
use crate::ring::Ring;
use ccs_graph::{NodeId, StreamGraph};
use ccs_sched::SchedRun;
use std::time::{Duration, Instant};

/// Outcome of a real execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunStats {
    /// Wall-clock time of the firing loop only (allocation excluded).
    pub wall: Duration,
    /// Total firings executed.
    pub firings: u64,
    /// Items the sink consumed.
    pub sink_items: u64,
    /// Order-sensitive digest of the sink stream (for equivalence
    /// checks), if the sink kernel provides one.
    pub digest: Option<u64>,
}

/// Per-node pre-sized scratch: one `Vec<f32>` per port.
pub(crate) struct Scratch {
    pub inputs: Vec<Vec<Vec<f32>>>,
    pub outputs: Vec<Vec<Vec<f32>>>,
}

impl Scratch {
    pub(crate) fn for_graph(g: &StreamGraph) -> Scratch {
        let inputs = g
            .node_ids()
            .map(|v| {
                g.in_edges(v)
                    .iter()
                    .map(|&e| vec![0.0f32; g.edge(e).consume as usize])
                    .collect()
            })
            .collect();
        let outputs = g
            .node_ids()
            .map(|v| {
                g.out_edges(v)
                    .iter()
                    .map(|&e| vec![0.0f32; g.edge(e).produce as usize])
                    .collect()
            })
            .collect();
        Scratch { inputs, outputs }
    }
}

/// Execute `run`'s firing sequence over real ring buffers.
///
/// Buffer capacities come from `run.capacities`; underflow or overflow
/// panics (the symbolic executor validates the same sequence in tests, so
/// a panic here indicates an executor bug, not a scheduler bug).
pub fn execute(inst: &mut Instance, run: &SchedRun) -> RunStats {
    execute_counted(inst, run, false).0
}

/// [`execute`], optionally sampling hardware counters (the `ccs-perf`
/// cache suite) around the firing loop — the same window `wall` times,
/// with allocation excluded — so serial misses/item is directly
/// comparable with the parallel executor's per-worker counters. The
/// sample is `None` when `counters` is false or `perf_event_open` is
/// unavailable; the `RunStats` (digest included) is identical either
/// way.
pub fn execute_counted(
    inst: &mut Instance,
    run: &SchedRun,
    counters: bool,
) -> (RunStats, Option<ccs_perf::CounterSample>) {
    execute_counted_warm(inst, run, counters, 0)
}

/// [`execute_counted`] with a steady-state warmup window: the counter
/// group is zeroed (`PERF_EVENT_IOC_RESET`) after the first
/// `warmup_firings` firings, so the sample excludes cold-start misses
/// (first-touch state, page faults) and covers only the remaining
/// `firings - warmup_firings` firings — the serial analogue of
/// `RunConfig::warmup_batches` in the parallel executor. A warmup of 0,
/// or one at least as long as the schedule, degrades to whole-run
/// sampling; execution itself (digest, items, firing count) is
/// untouched in every case.
pub fn execute_counted_warm(
    inst: &mut Instance,
    run: &SchedRun,
    counters: bool,
    warmup_firings: u64,
) -> (RunStats, Option<ccs_perf::CounterSample>) {
    let g = &inst.graph;
    assert_eq!(run.capacities.len(), g.edge_count());
    let mut rings: Vec<Ring> = g
        .edge_ids()
        .map(|e| Ring::new(run.capacities[e.idx()].max(1) as usize))
        .collect();
    let mut scratch = Scratch::for_graph(g);
    let counter_set = if counters {
        ccs_perf::CounterBuilder::cache_suite().open_self_thread()
    } else {
        ccs_perf::CounterSet::unavailable("counters not requested")
    };
    // A warmup that would leave no measured window is ignored.
    let warmup = if warmup_firings < run.firings.len() as u64 {
        warmup_firings
    } else {
        0
    };

    let sink = g.single_sink();
    let mut sink_items = 0u64;
    counter_set.reset();
    counter_set.enable();
    let start = Instant::now();
    for (i, &v) in run.firings.iter().enumerate() {
        if warmup > 0 && i as u64 == warmup {
            counter_set.reset();
        }
        fire_once(inst, &mut rings, &mut scratch, v, sink, &mut sink_items);
    }
    let wall = start.elapsed();
    counter_set.disable();
    let stats = RunStats {
        wall,
        firings: run.firings.len() as u64,
        sink_items,
        digest: inst.sink_digest(),
    };
    (stats, counter_set.sample())
}

#[inline]
fn fire_once(
    inst: &mut Instance,
    rings: &mut [Ring],
    scratch: &mut Scratch,
    v: NodeId,
    sink: Option<NodeId>,
    sink_items: &mut u64,
) {
    let g = &inst.graph;
    let vin = &mut scratch.inputs[v.idx()];
    for (i, &e) in g.in_edges(v).iter().enumerate() {
        rings[e.idx()].pop_slice(&mut vin[i]);
        if Some(v) == sink {
            *sink_items += vin[i].len() as u64;
        }
    }
    let vout = &mut scratch.outputs[v.idx()];
    inst.kernels[v.idx()].fire(vin, vout);
    for (i, &e) in inst.graph.out_edges(v).iter().enumerate() {
        rings[e.idx()].push_slice(&vout[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};
    use ccs_graph::RateAnalysis;
    use ccs_sched::baseline;

    #[test]
    fn sas_executes_on_real_memory() {
        let g = gen::pipeline(&PipelineCfg::default(), 3);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = baseline::single_appearance(&g, &ra, 4);
        let mut inst = Instance::synthetic(g);
        let stats = execute(&mut inst, &run);
        assert_eq!(stats.firings, run.firings.len() as u64);
        assert!(stats.sink_items > 0);
        assert!(stats.digest.is_some());
    }

    #[test]
    fn counted_execution_does_not_perturb_results() {
        let g = gen::pipeline(&PipelineCfg::default(), 5);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = baseline::single_appearance(&g, &ra, 4);
        let mut i1 = Instance::synthetic(g.clone());
        let plain = execute(&mut i1, &run);
        let mut i2 = Instance::synthetic(g);
        let (counted, sample) = execute_counted(&mut i2, &run, true);
        assert_eq!(plain.digest, counted.digest);
        assert_eq!(plain.firings, counted.firings);
        assert_eq!(plain.sink_items, counted.sink_items);
        // Environment-dependent: if a group opened, it read something.
        if let Some(s) = sample {
            assert!(!s.readings.is_empty());
        }
        // Counters off: no sample, same behavior.
        let mut i3 = Instance::synthetic(i1.graph.clone());
        let (off, none) = execute_counted(&mut i3, &run, false);
        assert_eq!(off.digest, plain.digest);
        assert!(none.is_none());
    }

    #[test]
    fn warmup_window_does_not_perturb_results() {
        let g = gen::pipeline(&PipelineCfg::default(), 5);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = baseline::single_appearance(&g, &ra, 4);
        let mut i1 = Instance::synthetic(g.clone());
        let plain = execute(&mut i1, &run);
        // Warmup inside, at, and beyond the schedule length: execution
        // is identical in every case (only the counter window moves).
        for warmup in [1, run.firings.len() as u64 / 2, u64::MAX] {
            let mut i = Instance::synthetic(g.clone());
            let (warm, _sample) = execute_counted_warm(&mut i, &run, true, warmup);
            assert_eq!(warm.digest, plain.digest, "warmup {warmup}");
            assert_eq!(warm.firings, plain.firings);
            assert_eq!(warm.sink_items, plain.sink_items);
        }
    }

    #[test]
    fn different_schedules_same_digest() {
        // SDF determinism: the output stream is schedule independent.
        let g = gen::pipeline(&PipelineCfg::default(), 9);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let sink = ra.sink.unwrap();

        let sas = baseline::single_appearance(&g, &ra, 6);
        let sink_firings = sas.count(sink);
        let demand = baseline::demand_driven(&g, &ra, sink_firings);

        let mut i1 = Instance::synthetic(g.clone());
        let s1 = execute(&mut i1, &sas);
        let mut i2 = Instance::synthetic(g);
        let s2 = execute(&mut i2, &demand);

        assert_eq!(s1.sink_items, s2.sink_items);
        assert_eq!(s1.digest, s2.digest, "schedules must be functionally equal");
    }

    #[test]
    fn dag_schedules_equivalent() {
        let cfg = LayeredCfg {
            layers: 3,
            max_width: 3,
            density: 0.3,
            state: StateDist::Uniform(4, 32),
            max_q: 2,
        };
        for seed in 0..5u64 {
            let g = gen::layered(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let sink = ra.sink.unwrap();
            let sas = baseline::single_appearance(&g, &ra, 3);
            let demand = baseline::demand_driven(&g, &ra, sas.count(sink));
            let mut i1 = Instance::synthetic(g.clone());
            let mut i2 = Instance::synthetic(g);
            assert_eq!(
                execute(&mut i1, &sas).digest,
                execute(&mut i2, &demand).digest,
                "seed {seed}"
            );
        }
    }
}
