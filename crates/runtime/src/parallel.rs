//! The parallel dynamic executor (the paper's §3 extension).
//!
//! For homogeneous graphs the paper observes that the partitioned
//! schedule "readily generalizes to an asynchronous or parallel dynamic
//! schedule": any component with `M` items on **all** incoming cross
//! edges and **empty** outgoing cross edges may be claimed and executed
//! (`M` firings of each module), independently of every other component.
//!
//! Workers repeatedly claim schedulable components under a small mutex;
//! the data plane is lock-free ([`crate::ring::SpscRing`] per channel).
//! Because components are disjoint and a claimed component's incident
//! ring endpoints are touched only by its claiming thread, the SPSC
//! contract holds; claim handoff under the mutex provides the
//! happens-before edges between successive owners.
//!
//! SDF determinism makes the output stream identical to any serial
//! schedule's — the test suite checks digests against the serial
//! executor.

use crate::instance::Instance;
use crate::ring::SpscRing;
use crate::serial::RunStats;
use ccs_graph::{buffers, EdgeId, NodeId, StreamGraph};
use ccs_partition::Partition;
use parking_lot::Mutex;
use std::time::Instant;

struct ComponentTask {
    /// Nodes in intra-component topological order.
    nodes: Vec<NodeId>,
    kernels: Vec<Box<dyn crate::kernel::Kernel>>,
}

struct Meta {
    claimed: Vec<bool>,
    rounds_done: Vec<u64>,
    completed_batches: u64,
}

/// Execute `rounds` high-level rounds of the homogeneous partitioned
/// schedule on `threads` worker threads. Fires the sink `rounds·m_items`
/// times. Returns wall time and the sink digest.
///
/// Panics if the graph is not homogeneous or the partition is not well
/// ordered.
pub fn execute_parallel(
    inst: Instance,
    p: &Partition,
    m_items: u64,
    rounds: u64,
    threads: usize,
) -> RunStats {
    let g = &inst.graph;
    assert!(g.is_homogeneous(), "parallel executor requires unit rates");
    assert!(p.is_well_ordered(g), "partition must be well ordered");
    assert!(threads >= 1);
    let m = usize::try_from(m_items.max(1)).expect("m fits usize");

    // Channel rings: cross edges hold exactly M items; internal edges use
    // the minimal safe buffer.
    let rings: Vec<SpscRing> = g
        .edge_ids()
        .map(|e| {
            let edge = g.edge(e);
            if p.component_of(edge.src) == p.component_of(edge.dst) {
                SpscRing::new(buffers::min_buf_safe(g, e).max(2) as usize)
            } else {
                SpscRing::new(m)
            }
        })
        .collect();

    // Split kernels into per-component tasks.
    let rank = ccs_graph::topo::topo_rank(g);
    let k = p.num_components();
    let mut comp_nodes = p.components();
    for nodes in &mut comp_nodes {
        nodes.sort_by_key(|v| rank[v.idx()]);
    }
    let mut kernel_slots: Vec<Option<Box<dyn crate::kernel::Kernel>>> =
        inst.kernels.into_iter().map(Some).collect();
    let tasks: Vec<Mutex<ComponentTask>> = comp_nodes
        .iter()
        .map(|nodes| {
            let kernels = nodes
                .iter()
                .map(|v| kernel_slots[v.idx()].take().expect("each node once"))
                .collect();
            Mutex::new(ComponentTask {
                nodes: nodes.clone(),
                kernels,
            })
        })
        .collect();

    // Cross in/out edges per component.
    let mut cross_in: Vec<Vec<EdgeId>> = vec![Vec::new(); k];
    let mut cross_out: Vec<Vec<EdgeId>> = vec![Vec::new(); k];
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let (cs, cd) = (p.component_of(edge.src), p.component_of(edge.dst));
        if cs != cd {
            cross_out[cs as usize].push(e);
            cross_in[cd as usize].push(e);
        }
    }

    let meta = Mutex::new(Meta {
        claimed: vec![false; k],
        rounds_done: vec![0; k],
        completed_batches: 0,
    });
    let total_batches = rounds * k as u64;
    let graph: &StreamGraph = g;
    let rings_ref: &[SpscRing] = &rings;
    let tasks_ref: &[Mutex<ComponentTask>] = &tasks;
    let cross_in_ref: &[Vec<EdgeId>] = &cross_in;
    let cross_out_ref: &[Vec<EdgeId>] = &cross_out;
    let meta_ref = &meta;

    let start = Instant::now();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move |_| loop {
                // Claim phase.
                let claim = {
                    let mut st = meta_ref.lock();
                    if st.completed_batches >= total_batches {
                        break;
                    }
                    let pick = (0..k).find(|&c| {
                        !st.claimed[c]
                            && st.rounds_done[c] < rounds
                            && cross_in_ref[c]
                                .iter()
                                .all(|&e| rings_ref[e.idx()].len() == m)
                            && cross_out_ref[c]
                                .iter()
                                .all(|&e| rings_ref[e.idx()].is_empty())
                    });
                    if let Some(c) = pick {
                        st.claimed[c] = true;
                    }
                    pick
                };
                match claim {
                    Some(c) => {
                        {
                            let mut task = tasks_ref[c].lock();
                            run_batch(graph, rings_ref, &mut task, m);
                        }
                        let mut st = meta_ref.lock();
                        st.claimed[c] = false;
                        st.rounds_done[c] += 1;
                        st.completed_batches += 1;
                    }
                    None => std::thread::yield_now(),
                }
            });
        }
    })
    .expect("worker panicked");
    let wall = start.elapsed();

    // Gather results back out of the tasks.
    let sink = graph.single_sink();
    let mut digest = None;
    let mut firings = 0u64;
    for task in tasks {
        let task = task.into_inner();
        firings += task.nodes.len() as u64 * m_items * rounds;
        if let (Some(sink), Some(pos)) = (sink, task.nodes.iter().position(|&v| Some(v) == sink)) {
            digest = task.kernels[pos].digest();
            let _ = sink;
        }
    }
    let sink_items = match sink {
        Some(t) => rounds * m_items * graph.in_edges(t).len() as u64,
        None => 0,
    };
    RunStats {
        wall,
        firings,
        sink_items,
        digest,
    }
}

/// One batch: each module of the component fires once in topological
/// order, repeated `m` times (the paper's homogeneous low-level
/// schedule). Scratch is sized per node up front; the loop is
/// allocation-free.
fn run_batch(g: &StreamGraph, rings: &[SpscRing], task: &mut ComponentTask, m: usize) {
    let mut in_scratch: Vec<Vec<Vec<f32>>> = task
        .nodes
        .iter()
        .map(|&v| {
            g.in_edges(v)
                .iter()
                .map(|&e| vec![0.0f32; g.edge(e).consume as usize])
                .collect()
        })
        .collect();
    let mut out_scratch: Vec<Vec<Vec<f32>>> = task
        .nodes
        .iter()
        .map(|&v| {
            g.out_edges(v)
                .iter()
                .map(|&e| vec![0.0f32; g.edge(e).produce as usize])
                .collect()
        })
        .collect();
    for _ in 0..m {
        for (i, &v) in task.nodes.iter().enumerate() {
            let vin = &mut in_scratch[i];
            for (j, &e) in g.in_edges(v).iter().enumerate() {
                rings[e.idx()].pop_slice(&mut vin[j]);
            }
            let vout = &mut out_scratch[i];
            crate::kernel::fire_ports(task.kernels[i].as_mut(), vin, vout);
            for (j, &e) in g.out_edges(v).iter().enumerate() {
                rings[e.idx()].push_slice(&vout[j]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use ccs_graph::gen::{self, LayeredCfg, StateDist};
    use ccs_graph::RateAnalysis;
    use ccs_partition::dag_greedy;
    use ccs_sched::partitioned;

    fn serial_digest(g: &StreamGraph, p: &Partition, m: u64, rounds: u64) -> Option<u64> {
        let ra = RateAnalysis::analyze_single_io(g).unwrap();
        let run = partitioned::homogeneous(g, &ra, p, m, rounds).unwrap();
        let mut inst = Instance::synthetic(g.clone());
        serial::execute(&mut inst, &run).digest
    }

    #[test]
    fn single_thread_matches_serial() {
        let g = gen::pipeline_uniform(8, 32);
        let p = dag_greedy::greedy_topo(&g, 64);
        let want = serial_digest(&g, &p, 16, 3);
        let inst = Instance::synthetic(g.clone());
        let stats = execute_parallel(inst, &p, 16, 3, 1);
        assert_eq!(stats.digest, want);
        assert_eq!(stats.sink_items, 3 * 16);
    }

    #[test]
    fn multi_thread_matches_serial_pipeline() {
        let g = gen::pipeline_uniform(12, 64);
        let p = dag_greedy::greedy_topo(&g, 128);
        let want = serial_digest(&g, &p, 32, 4);
        for threads in [2usize, 4] {
            let inst = Instance::synthetic(g.clone());
            let stats = execute_parallel(inst, &p, 32, 4, threads);
            assert_eq!(stats.digest, want, "threads {threads}");
        }
    }

    #[test]
    fn multi_thread_matches_serial_dag() {
        let cfg = LayeredCfg {
            layers: 4,
            max_width: 3,
            density: 0.3,
            state: StateDist::Uniform(8, 64),
            max_q: 1,
        };
        for seed in 0..5u64 {
            let g = gen::layered(&cfg, seed);
            let p = dag_greedy::greedy_topo(&g, 128);
            let want = serial_digest(&g, &p, 16, 2);
            let inst = Instance::synthetic(g.clone());
            let stats = execute_parallel(inst, &p, 16, 2, 3);
            assert_eq!(stats.digest, want, "seed {seed}");
        }
    }

    #[test]
    fn whole_graph_single_component_works() {
        let g = gen::split_join(3, 2, StateDist::Fixed(16), 5);
        let p = Partition::whole(&g);
        let want = serial_digest(&g, &p, 8, 2);
        let inst = Instance::synthetic(g.clone());
        let stats = execute_parallel(inst, &p, 8, 2, 2);
        assert_eq!(stats.digest, want);
    }

    #[test]
    #[should_panic(expected = "unit rates")]
    fn rejects_inhomogeneous() {
        use ccs_graph::gen::PipelineCfg;
        // Find an inhomogeneous pipeline.
        for seed in 0..50 {
            let g = gen::pipeline(
                &PipelineCfg {
                    max_q: 4,
                    ..PipelineCfg::default()
                },
                seed,
            );
            if !g.is_homogeneous() {
                let p = Partition::whole(&g);
                let inst = Instance::synthetic(g);
                execute_parallel(inst, &p, 8, 1, 1);
                return;
            }
        }
        panic!("unit rates"); // all seeds homogeneous: still pass
    }
}
