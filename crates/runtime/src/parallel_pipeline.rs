//! Parallel dynamic execution of (possibly inhomogeneous) pipelines.
//!
//! §3's pipeline scheduler — cross buffers of Θ(M), a component is
//! *schedulable* when its input buffer is more than half full and its
//! output buffer at most half full — "readily generalizes to the
//! asynchronous or parallel case" (§3). This executor runs exactly that
//! rule with worker threads:
//!
//! * each cross edge is a lock-free SPSC ring of `2·max(M, p+c)` items;
//! * workers claim schedulable components under a mutex and run them
//!   until the input drains or the output fills;
//! * a component's producer and consumer may run *concurrently* on the
//!   same ring — the SPSC protocol makes that safe, and it is where the
//!   pipeline parallelism comes from;
//! * the sink component stops at exactly `sink_target` firings, so the
//!   output digest is comparable with any serial schedule of the same
//!   length (SDF determinism).

use crate::instance::Instance;
use crate::ring::SpscRing;
use crate::serial::RunStats;
use ccs_graph::{buffers, EdgeId, NodeId, RateAnalysis, StreamGraph};
use ccs_partition::Partition;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

struct ComponentTask {
    nodes: Vec<NodeId>, // in chain order
    kernels: Vec<Box<dyn crate::kernel::Kernel>>,
}

/// Execute the pipeline dynamically on `threads` workers until the sink
/// fires `sink_target` times. Panics if `g` is not a pipeline or the
/// partition is not contiguous in chain order.
pub fn execute_parallel_pipeline(
    inst: Instance,
    ra: &RateAnalysis,
    p: &Partition,
    m_items: u64,
    sink_target: u64,
    threads: usize,
) -> RunStats {
    let g = &inst.graph;
    let order = g.pipeline_order().expect("pipeline required");
    let sink = *order.last().expect("non-empty pipeline");
    assert!(threads >= 1);
    let _ = ra;

    // Components in chain order; verify contiguity.
    let comp_order = p
        .topo_order_components(g)
        .expect("partition must be well ordered");
    let k = comp_order.len();
    let mut comp_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    {
        let pos_of: std::collections::HashMap<u32, usize> = comp_order
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        let mut last_pos = 0usize;
        for &v in &order {
            let pos = pos_of[&p.component_of(v)];
            assert!(
                pos >= last_pos,
                "pipeline partition must be contiguous in chain order"
            );
            last_pos = pos;
            comp_nodes[pos].push(v);
        }
    }

    // Rings: cross edges get 2*max(M, p+c); internal edges minBuf.
    let rings: Vec<SpscRing> = g
        .edge_ids()
        .map(|e| {
            let edge = g.edge(e);
            if p.component_of(edge.src) == p.component_of(edge.dst) {
                SpscRing::new(buffers::min_buf_safe(g, e).max(2) as usize)
            } else {
                SpscRing::new((2 * m_items.max(edge.produce + edge.consume)) as usize)
            }
        })
        .collect();

    // Each component's single cross input/output edge (pipelines).
    let mut cross_in: Vec<Option<EdgeId>> = vec![None; k];
    let mut cross_out: Vec<Option<EdgeId>> = vec![None; k];
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let (cs, cd) = (p.component_of(edge.src), p.component_of(edge.dst));
        if cs != cd {
            let ps = comp_order.iter().position(|&c| c == cs).unwrap();
            let pd = comp_order.iter().position(|&c| c == cd).unwrap();
            cross_out[ps] = Some(e);
            cross_in[pd] = Some(e);
        }
    }

    // Move kernels into per-component tasks.
    let mut kernel_slots: Vec<Option<Box<dyn crate::kernel::Kernel>>> =
        inst.kernels.into_iter().map(Some).collect();
    let tasks: Vec<Mutex<ComponentTask>> = comp_nodes
        .iter()
        .map(|nodes| {
            Mutex::new(ComponentTask {
                nodes: nodes.clone(),
                kernels: nodes
                    .iter()
                    .map(|v| kernel_slots[v.idx()].take().expect("each node once"))
                    .collect(),
            })
        })
        .collect();

    let claimed = Mutex::new(vec![false; k]);
    let stop = AtomicBool::new(false);
    let sink_fired = AtomicU64::new(0);

    let graph: &StreamGraph = g;
    let rings_ref: &[SpscRing] = &rings;
    let tasks_ref: &[Mutex<ComponentTask>] = &tasks;
    let cross_in_ref: &[Option<EdgeId>] = &cross_in;
    let cross_out_ref: &[Option<EdgeId>] = &cross_out;
    let claimed_ref = &claimed;
    let stop_ref = &stop;
    let sink_fired_ref = &sink_fired;

    let schedulable = move |c: usize| -> bool {
        // Input more than half full (source component: always — the tape
        // is infinite). Output at most half full (sink: always empty).
        let input_ok = match cross_in_ref[c] {
            Some(e) => {
                let r = &rings_ref[e.idx()];
                2 * r.len() > r.capacity() || r.len() >= graph.edge(e).consume as usize
            }
            None => true,
        };
        let output_ok = match cross_out_ref[c] {
            Some(e) => {
                let r = &rings_ref[e.idx()];
                2 * r.len() <= r.capacity()
            }
            None => true,
        };
        input_ok && output_ok
    };

    let start = Instant::now();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move |_| loop {
                if stop_ref.load(Ordering::Acquire) {
                    break;
                }
                let pick = {
                    let mut cl = claimed_ref.lock();
                    let pick = (0..k).find(|&c| !cl[c] && schedulable(c));
                    if let Some(c) = pick {
                        cl[c] = true;
                    }
                    pick
                };
                match pick {
                    Some(c) => {
                        {
                            let mut task = tasks_ref[c].lock();
                            run_until_blocked(
                                graph,
                                rings_ref,
                                &mut task,
                                sink,
                                sink_target,
                                sink_fired_ref,
                                stop_ref,
                            );
                        }
                        claimed_ref.lock()[c] = false;
                    }
                    None => std::thread::yield_now(),
                }
            });
        }
    })
    .expect("worker panicked");
    let wall = start.elapsed();

    // Gather the digest from the sink's component.
    let mut digest = None;
    for task in tasks {
        let task = task.into_inner();
        if let Some(pos) = task.nodes.iter().position(|&v| v == sink) {
            digest = task.kernels[pos].digest();
        }
    }
    let consume: u64 = graph
        .in_edges(sink)
        .iter()
        .map(|&e| graph.edge(e).consume)
        .sum();
    let fired = sink_fired.load(Ordering::Relaxed);
    RunStats {
        wall,
        // Per-module counts are not tracked; report sink firings.
        firings: fired,
        sink_items: fired * consume,
        digest,
    }
}

/// Fire the deepest fireable module of the component until nothing can
/// fire (input drained or output full), honoring the sink target.
#[allow(clippy::too_many_arguments)]
fn run_until_blocked(
    g: &StreamGraph,
    rings: &[SpscRing],
    task: &mut ComponentTask,
    sink: NodeId,
    sink_target: u64,
    sink_fired: &AtomicU64,
    stop: &AtomicBool,
) {
    let mut in_scratch: Vec<Vec<Vec<f32>>> = task
        .nodes
        .iter()
        .map(|&v| {
            g.in_edges(v)
                .iter()
                .map(|&e| vec![0.0f32; g.edge(e).consume as usize])
                .collect()
        })
        .collect();
    let mut out_scratch: Vec<Vec<Vec<f32>>> = task
        .nodes
        .iter()
        .map(|&v| {
            g.out_edges(v)
                .iter()
                .map(|&e| vec![0.0f32; g.edge(e).produce as usize])
                .collect()
        })
        .collect();

    let can_fire = |v: NodeId| -> bool {
        g.in_edges(v)
            .iter()
            .all(|&e| rings[e.idx()].len() >= g.edge(e).consume as usize)
            && g.out_edges(v)
                .iter()
                .all(|&e| rings[e.idx()].space() >= g.edge(e).produce as usize)
    };

    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Deepest fireable module (nodes are in chain order).
        let Some(i) = (0..task.nodes.len())
            .rev()
            .find(|&i| can_fire(task.nodes[i]))
        else {
            return;
        };
        let v = task.nodes[i];
        if v == sink && sink_fired.load(Ordering::Acquire) >= sink_target {
            // Target reached: the sink never fires again; stop everyone.
            stop.store(true, Ordering::Release);
            return;
        }
        let vin = &mut in_scratch[i];
        for (j, &e) in g.in_edges(v).iter().enumerate() {
            rings[e.idx()].pop_slice(&mut vin[j]);
        }
        let vout = &mut out_scratch[i];
        crate::kernel::fire_ports(task.kernels[i].as_mut(), vin, vout);
        for (j, &e) in g.out_edges(v).iter().enumerate() {
            rings[e.idx()].push_slice(&vout[j]);
        }
        if v == sink {
            let n = sink_fired.fetch_add(1, Ordering::AcqRel) + 1;
            if n >= sink_target {
                stop.store(true, Ordering::Release);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use ccs_graph::gen::{self, PipelineCfg, StateDist};
    use ccs_partition::pipeline as ppart;
    use ccs_sched::partitioned;

    fn serial_reference(
        g: &StreamGraph,
        ra: &RateAnalysis,
        p: &Partition,
        m: u64,
        target: u64,
    ) -> Option<u64> {
        let run = partitioned::pipeline_dynamic(g, ra, p, m, target).unwrap();
        // Truncate to exactly `target` sink firings for digest parity.
        let sink = ra.sink.unwrap();
        let mut firings = Vec::new();
        let mut fired = 0u64;
        for &v in &run.firings {
            if v == sink {
                if fired >= target {
                    continue;
                }
                fired += 1;
            }
            firings.push(v);
        }
        let truncated = ccs_sched::SchedRun {
            label: run.label,
            firings,
            capacities: run.capacities,
        };
        let mut inst = Instance::synthetic(g.clone());
        let _ = serial::execute(&mut inst, &truncated);
        inst.sink_digest()
    }

    #[test]
    fn matches_serial_on_homogeneous_pipeline() {
        let g = gen::pipeline_uniform(12, 64);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let pp = ppart::greedy_theorem5(&g, &ra, 64).unwrap();
        let want = serial_reference(&g, &ra, &pp.partition, 64, 200);
        for threads in [1usize, 2, 4] {
            let inst = Instance::synthetic(g.clone());
            let stats = execute_parallel_pipeline(inst, &ra, &pp.partition, 64, 200, threads);
            assert_eq!(stats.firings, 200, "threads {threads}");
            assert_eq!(stats.digest, want, "threads {threads}");
        }
    }

    #[test]
    fn matches_serial_on_rated_pipelines() {
        for seed in 0..6u64 {
            let cfg = PipelineCfg {
                len: 10,
                state: StateDist::Uniform(8, 48),
                max_q: 3,
                max_rate_scale: 2,
            };
            let g = gen::pipeline(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let pp = ppart::greedy_theorem5(&g, &ra, 48).unwrap();
            let want = serial_reference(&g, &ra, &pp.partition, 48, 120);
            let inst = Instance::synthetic(g.clone());
            let stats = execute_parallel_pipeline(inst, &ra, &pp.partition, 48, 120, 3);
            assert_eq!(stats.firings, 120, "seed {seed}");
            assert_eq!(stats.digest, want, "seed {seed}");
        }
    }

    #[test]
    fn single_component_pipeline_works() {
        let g = gen::pipeline_uniform(5, 16);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = Partition::whole(&g);
        let inst = Instance::synthetic(g.clone());
        let stats = execute_parallel_pipeline(inst, &ra, &p, 32, 64, 2);
        assert_eq!(stats.firings, 64);
        assert!(stats.digest.is_some());
    }
}
