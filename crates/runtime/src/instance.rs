//! Binding a streaming graph to real kernels.

use crate::kernel::{Kernel, SinkCollect, SourceGen, SyntheticKernel};
use ccs_graph::{NodeId, StreamGraph};

/// A runnable instantiation: one kernel per module of the graph.
pub struct Instance {
    pub graph: StreamGraph,
    pub kernels: Vec<Box<dyn Kernel>>,
}

impl Instance {
    /// Bind `graph` with a custom factory. The factory receives each node
    /// id and must return a kernel whose `state_words` matches the
    /// declared `s(v)` (checked).
    pub fn with_factory(
        graph: StreamGraph,
        mut factory: impl FnMut(&StreamGraph, NodeId) -> Box<dyn Kernel>,
    ) -> Instance {
        let kernels: Vec<Box<dyn Kernel>> = graph
            .node_ids()
            .map(|v| {
                let k = factory(&graph, v);
                assert_eq!(
                    k.state_words() as u64,
                    graph.state(v).max(1),
                    "kernel state for {v:?} must match the graph"
                );
                k
            })
            .collect();
        Instance { graph, kernels }
    }

    /// Default synthetic binding: a deterministic generator at the
    /// source, a digesting collector at the sink, and state-streaming
    /// synthetic kernels everywhere else.
    pub fn synthetic(graph: StreamGraph) -> Instance {
        let source = graph.single_source();
        let sink = graph.single_sink();
        Instance::with_factory(graph, move |g, v| {
            let words = g.state(v).max(1) as usize;
            if Some(v) == source {
                Box::new(SourceGen::new(words))
            } else if Some(v) == sink {
                Box::new(SinkCollect::new(words))
            } else {
                Box::new(SyntheticKernel::new(words, false))
            }
        })
    }

    /// The sink kernel's digest, if the sink accumulates one.
    pub fn sink_digest(&self) -> Option<u64> {
        let sink = self.graph.single_sink()?;
        self.kernels[sink.idx()].digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen;

    #[test]
    fn synthetic_binding_matches_states() {
        let g = gen::pipeline_uniform(5, 64);
        let inst = Instance::synthetic(g);
        for v in inst.graph.node_ids() {
            assert_eq!(
                inst.kernels[v.idx()].state_words() as u64,
                inst.graph.state(v)
            );
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_factory_rejected() {
        let g = gen::pipeline_uniform(3, 64);
        Instance::with_factory(g, |_, _| Box::new(SyntheticKernel::new(3, false)));
    }
}
