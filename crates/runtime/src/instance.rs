//! Binding a streaming graph to real kernels.

use crate::kernel::{ForwardDigest, Kernel, SinkCollect, SourceGen, SyntheticKernel};
use ccs_graph::{NodeId, StreamGraph};

/// A runnable instantiation: one kernel per module of the graph.
pub struct Instance {
    pub graph: StreamGraph,
    pub kernels: Vec<Box<dyn Kernel>>,
}

impl Instance {
    /// Bind `graph` with a custom factory. The factory receives each node
    /// id and must return a kernel whose `state_words` matches the
    /// declared `s(v)` (checked).
    pub fn with_factory(
        graph: StreamGraph,
        mut factory: impl FnMut(&StreamGraph, NodeId) -> Box<dyn Kernel>,
    ) -> Instance {
        let kernels: Vec<Box<dyn Kernel>> = graph
            .node_ids()
            .map(|v| {
                let k = factory(&graph, v);
                assert_eq!(
                    k.state_words() as u64,
                    graph.state(v).max(1),
                    "kernel state for {v:?} must match the graph"
                );
                k
            })
            .collect();
        Instance { graph, kernels }
    }

    /// Default synthetic binding: a deterministic generator at the
    /// source, a digesting collector at the sink, and state-streaming
    /// synthetic kernels everywhere else.
    pub fn synthetic(graph: StreamGraph) -> Instance {
        let source = graph.single_source();
        let sink = graph.single_sink();
        Instance::with_factory(graph, move |g, v| {
            let words = g.state(v).max(1) as usize;
            if Some(v) == source {
                Box::new(SourceGen::new(words))
            } else if Some(v) == sink {
                Box::new(SinkCollect::new(words))
            } else {
                Box::new(SyntheticKernel::new(words, false))
            }
        })
    }

    /// Rebuild this instance over
    /// [`ccs_graph::gen::add_super_endpoints`]: a unit-state super-source
    /// feeds every original source and a unit-state super-sink drains
    /// every original sink, turning a multi-I/O graph into the
    /// single-source/single-sink form the paper's schedulers assume.
    /// Original kernels carry over unchanged, except that each original
    /// sink is wrapped in [`ForwardDigest`] so its new output edge
    /// carries a data-dependent stream (the super-sink's digest then
    /// still witnesses the whole computation).
    ///
    /// Panics if the graph is not rate matched (the super-endpoint
    /// rates come from its repetition vector); validate with
    /// `RateAnalysis::analyze` first when the graph is untrusted.
    pub fn with_super_endpoints(self) -> Instance {
        let g2 = ccs_graph::gen::add_super_endpoints(&self.graph);
        // add_super_endpoints builds: node 0 = super-source, originals
        // shifted by one, last node = super-sink.
        let sinks: Vec<usize> = self.graph.sinks().iter().map(|v| v.idx()).collect();
        let mut kernels: Vec<Box<dyn Kernel>> = Vec::with_capacity(g2.node_count());
        kernels.push(Box::new(SourceGen::new(1)));
        for (i, k) in self.kernels.into_iter().enumerate() {
            if sinks.contains(&i) {
                kernels.push(Box::new(ForwardDigest::new(k)));
            } else {
                kernels.push(k);
            }
        }
        kernels.push(Box::new(SinkCollect::new(1)));
        Instance { graph: g2, kernels }
    }

    /// The sink kernel's digest, if the sink accumulates one.
    pub fn sink_digest(&self) -> Option<u64> {
        let sink = self.graph.single_sink()?;
        self.kernels[sink.idx()].digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen;

    #[test]
    fn synthetic_binding_matches_states() {
        let g = gen::pipeline_uniform(5, 64);
        let inst = Instance::synthetic(g);
        for v in inst.graph.node_ids() {
            assert_eq!(
                inst.kernels[v.idx()].state_words() as u64,
                inst.graph.state(v)
            );
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_factory_rejected() {
        let g = gen::pipeline_uniform(3, 64);
        Instance::with_factory(g, |_, _| Box::new(SyntheticKernel::new(3, false)));
    }

    /// Two sources fan into a mixer that fans out to two sinks.
    fn fan_in_fan_out() -> StreamGraph {
        let mut b = ccs_graph::GraphBuilder::new();
        let s1 = b.node("src1", 8);
        let s2 = b.node("src2", 8);
        let m = b.node("mix", 16);
        let t1 = b.node("sink1", 8);
        let t2 = b.node("sink2", 8);
        b.edge(s1, m, 1, 1);
        b.edge(s2, m, 1, 1);
        b.edge(m, t1, 1, 1);
        b.edge(m, t2, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn super_endpoints_make_multi_io_single_io() {
        let g = fan_in_fan_out();
        assert!(g.single_source().is_none() && g.single_sink().is_none());
        let inst = Instance::synthetic(g.clone()).with_super_endpoints();
        assert_eq!(inst.graph.node_count(), g.node_count() + 2);
        assert!(inst.graph.single_source().is_some());
        assert!(inst.graph.single_sink().is_some());
        assert_eq!(inst.kernels.len(), inst.graph.node_count());
        // Kernel states still match the graph everywhere.
        for v in inst.graph.node_ids() {
            assert_eq!(
                inst.kernels[v.idx()].state_words() as u64,
                inst.graph.state(v).max(1)
            );
        }
    }

    #[test]
    fn forward_digest_wrapper_is_data_dependent() {
        use crate::kernel::{ForwardDigest, Kernel, SinkCollect};
        let mut a = ForwardDigest::new(Box::new(SinkCollect::new(4)));
        let mut b = ForwardDigest::new(Box::new(SinkCollect::new(4)));
        let mut out_a = [0.0f32];
        let mut out_b = [0.0f32];
        a.fire(&[&[1.0, 2.0]], &mut [&mut out_a]);
        b.fire(&[&[2.0, 1.0]], &mut [&mut out_b]);
        // Different streams → different forwarded values and digests.
        assert_ne!(out_a, out_b);
        assert_ne!(a.digest(), b.digest());
        assert!(a.digest().is_some());
    }
}
