//! Module kernels: the real computations bound to graph nodes.
//!
//! Synchronous dataflow is deterministic: the k-th firing of a module
//! consumes the same items no matter how firings are interleaved, so any
//! two legal schedules produce bit-identical output streams. The kernels
//! here are all deterministic, which the test suite exploits to check
//! functional equivalence across schedulers (including the parallel one).

/// Sum a state array with eight independent accumulators, so the compiler
/// can vectorize and the loop is memory-bound rather than serialized on
/// the FP-add latency chain — state sweeps must run at cache/DRAM speed
/// for wall-clock experiments to reflect memory placement.
#[inline]
pub(crate) fn state_sweep(state: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = state.chunks_exact(8);
    let rem = chunks.remainder();
    for c in chunks {
        for i in 0..8 {
            acc[i] += c[i];
        }
    }
    let mut tail = 0.0f32;
    for &x in rem {
        tail += x;
    }
    acc.iter().sum::<f32>() + tail
}

/// Fold one stream item into an FNV-1a digest over its bit pattern —
/// the order-sensitive hash that defines the cross-executor equivalence
/// contract ([`SinkCollect`] and [`ForwardDigest`] must agree on it).
#[inline]
pub(crate) fn fnv1a_fold(hash: u64, x: f32) -> u64 {
    (hash ^ x.to_bits() as u64).wrapping_mul(0x100000001b3)
}

/// The FNV-1a offset basis both digest kernels start from.
pub(crate) const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// A module implementation. One `fire` consumes `in(e)` items from each
/// input buffer and fills `out(e)` items in each output buffer (buffer
/// lengths are exactly the rates; the executor owns the ring buffers and
/// pre-allocated scratch space, so firing is allocation-free).
///
/// Ports are plain slices so the executor is free to back them with
/// anything contiguous: per-port scratch `Vec`s on the classic path
/// (see [`fire_ports`]), or spans of a segment's flat scratch arena on
/// the fused hot path — no copy either way.
pub trait Kernel: Send {
    /// Words of state this kernel touches per firing (should match the
    /// graph's `s(v)`; one `f32` = one word).
    fn state_words(&self) -> usize;

    /// Execute one firing.
    fn fire(&mut self, inputs: &[&[f32]], outputs: &mut [&mut [f32]]);

    /// A digest of everything this kernel has observed (used by sinks for
    /// cross-scheduler equivalence checks). `None` for kernels that don't
    /// accumulate.
    fn digest(&self) -> Option<u64> {
        None
    }
}

/// Port arity covered by [`fire_ports`]'s stack-allocated fast path.
const MAX_PORTS: usize = 8;

/// Fire a kernel whose scratch lives in per-port `Vec`s — the unfused
/// executors' calling convention. The slice views are built on the
/// stack for arities up to `MAX_PORTS` = 8 (every graph in the suite),
/// so the hot loop stays allocation-free; wider nodes fall back to a
/// heap-built view table.
#[inline]
pub fn fire_ports(k: &mut dyn Kernel, inputs: &[Vec<f32>], outputs: &mut [Vec<f32>]) {
    let (n_in, n_out) = (inputs.len(), outputs.len());
    if n_in <= MAX_PORTS && n_out <= MAX_PORTS {
        let mut ins: [&[f32]; MAX_PORTS] = [&[]; MAX_PORTS];
        for (slot, v) in ins.iter_mut().zip(inputs) {
            *slot = v.as_slice();
        }
        let mut outs: [&mut [f32]; MAX_PORTS] = std::array::from_fn(|_| Default::default());
        for (slot, v) in outs.iter_mut().zip(outputs.iter_mut()) {
            *slot = v.as_mut_slice();
        }
        k.fire(&ins[..n_in], &mut outs[..n_out]);
    } else {
        let ins: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let mut outs: Vec<&mut [f32]> = outputs.iter_mut().map(|v| v.as_mut_slice()).collect();
        k.fire(&ins, &mut outs);
    }
}

/// Deterministic source: produces a linear-congruential sample stream.
/// State: the generator registers plus a configurable "coefficient table"
/// to model a source with real state.
pub struct SourceGen {
    next: u64,
    table: Box<[f32]>,
}

impl SourceGen {
    pub fn new(state_words: usize) -> SourceGen {
        SourceGen {
            next: 0x2545F4914F6CDD1D,
            table: (0..state_words.max(1))
                .map(|i| (i as f32 * 0.37).sin())
                .collect(),
        }
    }
}

impl Kernel for SourceGen {
    fn state_words(&self) -> usize {
        self.table.len()
    }

    fn fire(&mut self, _inputs: &[&[f32]], outputs: &mut [&mut [f32]]) {
        // Touch the whole table (models loading the module state).
        let acc = state_sweep(&self.table);
        for out in outputs.iter_mut() {
            for slot in out.iter_mut() {
                // xorshift* keeps the stream deterministic and cheap.
                self.next ^= self.next >> 12;
                self.next ^= self.next << 25;
                self.next ^= self.next >> 27;
                let r = (self.next.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f32;
                *slot = r * (1.0 / (1 << 24) as f32) + acc * 1e-30;
            }
        }
    }
}

/// Deterministic sink: accumulates an order-sensitive digest of the
/// stream it consumes. Two runs match iff they consumed identical item
/// sequences.
pub struct SinkCollect {
    hash: u64,
    count: u64,
    table: Box<[f32]>,
}

impl SinkCollect {
    pub fn new(state_words: usize) -> SinkCollect {
        SinkCollect {
            hash: FNV_OFFSET,
            count: 0,
            table: (0..state_words.max(1)).map(|i| i as f32 * 0.11).collect(),
        }
    }

    pub fn items(&self) -> u64 {
        self.count
    }
}

impl Kernel for SinkCollect {
    fn state_words(&self) -> usize {
        self.table.len()
    }

    fn fire(&mut self, inputs: &[&[f32]], _outputs: &mut [&mut [f32]]) {
        let _ = state_sweep(&self.table);
        for input in inputs {
            for &x in input.iter() {
                self.hash = fnv1a_fold(self.hash, x);
                self.count += 1;
            }
        }
    }

    fn digest(&self) -> Option<u64> {
        Some(self.hash ^ self.count)
    }
}

/// FIR filter with `taps.len()` coefficients over a sliding window;
/// consumes `decimate` items and produces one output per firing
/// (`decimate = 1` for a plain filter).
pub struct FirFilter {
    taps: Box<[f32]>,
    window: Box<[f32]>,
    decimate: usize,
}

impl FirFilter {
    pub fn new(n_taps: usize, decimate: usize) -> FirFilter {
        assert!(n_taps > 0 && decimate > 0);
        FirFilter {
            taps: (0..n_taps)
                .map(|i| ((i as f32 + 1.0) * 0.61).cos() / n_taps as f32)
                .collect(),
            window: vec![0.0; n_taps].into_boxed_slice(),
            decimate,
        }
    }
}

impl Kernel for FirFilter {
    fn state_words(&self) -> usize {
        self.taps.len() + self.window.len()
    }

    fn fire(&mut self, inputs: &[&[f32]], outputs: &mut [&mut [f32]]) {
        debug_assert_eq!(inputs.len(), 1);
        debug_assert_eq!(inputs[0].len(), self.decimate);
        // Shift the new samples into the window.
        let n = self.window.len();
        let d = self.decimate.min(n);
        self.window.copy_within(d.., 0);
        self.window[n - d..].copy_from_slice(&inputs[0][self.decimate - d..]);
        // Dot product over the full state, 4 accumulators wide so the
        // sweep is memory-bound, not add-latency-bound.
        let mut acc4 = [0.0f32; 4];
        let (wc, tc) = (self.window.chunks_exact(4), self.taps.chunks_exact(4));
        let tail: f32 = wc
            .remainder()
            .iter()
            .zip(tc.remainder())
            .map(|(w, t)| w * t)
            .sum();
        for (w, t) in wc.zip(tc) {
            for i in 0..4 {
                acc4[i] += w[i] * t[i];
            }
        }
        let acc = acc4.iter().sum::<f32>() + tail;
        for out in outputs.iter_mut() {
            for slot in out.iter_mut() {
                *slot = acc;
            }
        }
    }
}

/// Generic state-touching kernel for synthetic graphs: reads its whole
/// state every firing and emits a deterministic function of the inputs.
/// `mutate` adds a state write per firing (dirty-eviction modeling).
pub struct SyntheticKernel {
    state: Box<[f32]>,
    mutate: bool,
    fires: u64,
}

impl SyntheticKernel {
    pub fn new(state_words: usize, mutate: bool) -> SyntheticKernel {
        SyntheticKernel {
            state: (0..state_words.max(1))
                .map(|i| ((i * 2654435761usize) as f32) * 1e-12)
                .collect(),
            mutate,
            fires: 0,
        }
    }
}

impl Kernel for SyntheticKernel {
    fn state_words(&self) -> usize {
        self.state.len()
    }

    fn fire(&mut self, inputs: &[&[f32]], outputs: &mut [&mut [f32]]) {
        let mut acc = 0.0f32;
        for input in inputs {
            for &x in input.iter() {
                acc += x;
            }
        }
        // Stream through the whole state (the defining cost of a firing).
        let sacc = state_sweep(&self.state);
        if self.mutate {
            let idx = (self.fires % self.state.len() as u64) as usize;
            self.state[idx] += 1e-20;
        }
        self.fires += 1;
        let y = acc * 0.5 + sacc * 1e-6;
        for out in outputs.iter_mut() {
            for slot in out.iter_mut() {
                *slot = y;
            }
        }
    }
}

/// Wraps an original sink's kernel when a super-sink is appended behind
/// it (`Instance::with_super_endpoints`): the inner kernel still
/// consumes the stream and keeps its digest, while the wrapper forwards
/// a running hash of everything consumed on the node's new output edge
/// — so the super-sink's digest stays sensitive to the actual data, not
/// just the item count.
pub struct ForwardDigest {
    inner: Box<dyn Kernel>,
    hash: u64,
}

impl ForwardDigest {
    pub fn new(inner: Box<dyn Kernel>) -> ForwardDigest {
        ForwardDigest {
            inner,
            hash: FNV_OFFSET,
        }
    }
}

impl Kernel for ForwardDigest {
    fn state_words(&self) -> usize {
        self.inner.state_words()
    }

    fn fire(&mut self, inputs: &[&[f32]], outputs: &mut [&mut [f32]]) {
        for input in inputs {
            for &x in input.iter() {
                self.hash = fnv1a_fold(self.hash, x);
            }
        }
        // The inner kernel was a sink: it expects no output ports.
        self.inner.fire(inputs, &mut []);
        let y = (self.hash >> 40) as f32 * (1.0 / (1 << 24) as f32);
        for out in outputs.iter_mut() {
            for slot in out.iter_mut() {
                *slot = y;
            }
        }
    }

    fn digest(&self) -> Option<u64> {
        self.inner.digest()
    }
}

/// Splitter/mixer for multi-output nodes: forwards a deterministic mix of
/// inputs to every output (rates handled by the executor).
pub struct Mixer {
    table: Box<[f32]>,
}

impl Mixer {
    pub fn new(state_words: usize) -> Mixer {
        Mixer {
            table: (0..state_words.max(1))
                .map(|i| 1.0 / (i as f32 + 2.0))
                .collect(),
        }
    }
}

impl Kernel for Mixer {
    fn state_words(&self) -> usize {
        self.table.len()
    }

    fn fire(&mut self, inputs: &[&[f32]], outputs: &mut [&mut [f32]]) {
        let mut acc = 0.0f32;
        for input in inputs {
            for &x in input.iter() {
                acc += x;
            }
        }
        let t = state_sweep(&self.table);
        let y = acc + t * 1e-9;
        for (k, out) in outputs.iter_mut().enumerate() {
            for (j, slot) in out.iter_mut().enumerate() {
                *slot = y + k as f32 * 1e-3 + j as f32 * 1e-6;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_is_deterministic() {
        let mut a = SourceGen::new(8);
        let mut b = SourceGen::new(8);
        let mut out_a = vec![0.0f32; 16];
        let mut out_b = vec![0.0f32; 16];
        a.fire(&[], &mut [&mut out_a]);
        b.fire(&[], &mut [&mut out_b]);
        assert_eq!(out_a, out_b);
        // Next firing differs from the first (stream advances).
        let mut out_a2 = vec![0.0f32; 16];
        a.fire(&[], &mut [&mut out_a2]);
        assert_ne!(out_a, out_a2);
    }

    #[test]
    fn sink_digest_is_order_sensitive() {
        let mut s1 = SinkCollect::new(4);
        let mut s2 = SinkCollect::new(4);
        s1.fire(&[&[1.0, 2.0]], &mut []);
        s2.fire(&[&[2.0, 1.0]], &mut []);
        assert_ne!(s1.digest(), s2.digest());
        assert_eq!(s1.items(), 2);
    }

    #[test]
    fn sink_digest_matches_for_same_stream_chunked_differently() {
        let mut s1 = SinkCollect::new(4);
        let mut s2 = SinkCollect::new(4);
        s1.fire(&[&[1.0, 2.0, 3.0, 4.0]], &mut []);
        s2.fire(&[&[1.0, 2.0]], &mut []);
        s2.fire(&[&[3.0, 4.0]], &mut []);
        assert_eq!(s1.digest(), s2.digest());
    }

    #[test]
    fn fir_filter_computes_dot_product() {
        let mut f = FirFilter::new(4, 1);
        let mut out = [0.0f32];
        for _ in 0..4 {
            f.fire(&[&[1.0]], &mut [&mut out]);
        }
        // Window now all ones: output = sum of taps.
        let expected: f32 = f.taps.iter().sum();
        assert!((out[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn fir_decimation_consumes_many() {
        let mut f = FirFilter::new(8, 4);
        let mut out = [0.0f32];
        f.fire(&[&[1.0, 2.0, 3.0, 4.0]], &mut [&mut out]);
        assert_eq!(f.state_words(), 16);
    }

    #[test]
    fn synthetic_kernel_state_size() {
        let k = SyntheticKernel::new(100, true);
        assert_eq!(k.state_words(), 100);
        let k0 = SyntheticKernel::new(0, false);
        assert_eq!(k0.state_words(), 1, "state is at least one word");
    }

    #[test]
    fn synthetic_deterministic_across_instances() {
        let mut a = SyntheticKernel::new(32, true);
        let mut b = SyntheticKernel::new(32, true);
        let mut oa = [0.0f32; 3];
        let mut ob = [0.0f32; 3];
        for _ in 0..10 {
            a.fire(&[&[0.5, 0.25]], &mut [&mut oa]);
            b.fire(&[&[0.5, 0.25]], &mut [&mut ob]);
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn mixer_distinguishes_outputs() {
        let mut m = Mixer::new(4);
        let mut o0 = [0.0f32; 2];
        let mut o1 = [0.0f32; 2];
        m.fire(&[&[1.0]], &mut [&mut o0, &mut o1]);
        assert_ne!(o0, o1);
    }

    /// The `Vec`-scratch shim builds the same port views the direct
    /// slice call does — digests and outputs agree across both calling
    /// conventions.
    #[test]
    fn fire_ports_matches_direct_slice_call() {
        let mut via_vecs = SinkCollect::new(4);
        let mut direct = SinkCollect::new(4);
        let inputs = vec![vec![1.0f32, 2.0], vec![3.0f32]];
        fire_ports(&mut via_vecs, &inputs, &mut []);
        direct.fire(&[&[1.0, 2.0], &[3.0]], &mut []);
        assert_eq!(via_vecs.digest(), direct.digest());

        let mut m1 = Mixer::new(4);
        let mut m2 = Mixer::new(4);
        let ins = vec![vec![1.0f32]];
        let mut outs = vec![vec![0.0f32; 2], vec![0.0f32; 2]];
        fire_ports(&mut m1, &ins, &mut outs);
        let mut o0 = [0.0f32; 2];
        let mut o1 = [0.0f32; 2];
        m2.fire(&[&[1.0]], &mut [&mut o0, &mut o1]);
        assert_eq!(outs[0], o0);
        assert_eq!(outs[1], o1);
    }
}
