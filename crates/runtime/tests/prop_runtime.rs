//! Property-based tests for the real executors and ring buffers.

use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};
use ccs_graph::RateAnalysis;
use ccs_runtime::{execute, Instance, Ring, SpscRing};
use ccs_sched::baseline;
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The serial Ring behaves exactly like a VecDeque model under any
    /// interleaving of pushes and pops that respects capacity.
    #[test]
    fn ring_matches_vecdeque_model(cap in 1usize..32,
                                   ops in prop::collection::vec((0u8..2, 1usize..8), 1..200)) {
        let mut ring = Ring::new(cap);
        let mut model: VecDeque<f32> = VecDeque::new();
        let mut counter = 0.0f32;
        for (kind, n) in ops {
            if kind == 0 {
                // push up to n items if space allows
                let n = n.min(ring.space());
                if n == 0 { continue; }
                let items: Vec<f32> = (0..n).map(|i| {
                    counter += 1.0;
                    counter + i as f32 * 0.0
                }).collect();
                ring.push_slice(&items);
                model.extend(items.iter().copied());
            } else {
                let n = n.min(ring.len());
                if n == 0 { continue; }
                let mut out = vec![0.0f32; n];
                ring.pop_slice(&mut out);
                for x in out {
                    prop_assert_eq!(Some(x), model.pop_front());
                }
            }
            prop_assert_eq!(ring.len(), model.len());
        }
    }

    /// Mixed old-API (`push_slice`/`pop_slice`) and new-API
    /// (`reserve`/`commit`, `peek`/`release`) call sequences preserve
    /// FIFO order on both ring flavors: the zero-copy batch path and
    /// the copying slice path are one protocol over one buffer, so any
    /// interleaving must drain items in exactly insertion order.
    #[test]
    fn mixed_api_sequences_preserve_fifo(cap in 1usize..32,
                                         ops in prop::collection::vec((0u8..4, 1usize..8), 1..200)) {
        let mut ring = Ring::new(cap);
        let spsc = SpscRing::new(cap);
        let mut model: VecDeque<f32> = VecDeque::new();
        let mut counter = 0.0f32;
        for (kind, n) in ops {
            match kind {
                0 => { // old-API push
                    let n = n.min(ring.space());
                    if n == 0 { continue; }
                    let items: Vec<f32> = (0..n).map(|_| { counter += 1.0; counter }).collect();
                    ring.push_slice(&items);
                    spsc.push_slice(&items);
                    model.extend(items.iter().copied());
                }
                1 => { // new-API producer: reserve + write + commit
                    let n = n.min(ring.space());
                    if n == 0 { continue; }
                    let items: Vec<f32> = (0..n).map(|_| { counter += 1.0; counter }).collect();
                    {
                        let (a, b) = ring.reserve(n);
                        let k = a.len();
                        a.copy_from_slice(&items[..k]);
                        b.copy_from_slice(&items[k..]);
                    }
                    ring.commit(n);
                    {
                        let (a, b) = spsc.reserve(n);
                        let k = a.len();
                        a.copy_from_slice(&items[..k]);
                        b.copy_from_slice(&items[k..]);
                    }
                    spsc.commit(n);
                    model.extend(items.iter().copied());
                }
                2 => { // old-API pop
                    let n = n.min(ring.len());
                    if n == 0 { continue; }
                    let mut out = vec![0.0f32; n];
                    ring.pop_slice(&mut out);
                    let mut out2 = vec![0.0f32; n];
                    spsc.pop_slice(&mut out2);
                    prop_assert_eq!(&out, &out2);
                    for x in out {
                        prop_assert_eq!(Some(x), model.pop_front());
                    }
                }
                _ => { // new-API consumer: peek + release
                    let n = n.min(ring.len());
                    if n == 0 { continue; }
                    let got: Vec<f32> = {
                        let (a, b) = ring.peek(n);
                        a.iter().chain(b.iter()).copied().collect()
                    };
                    ring.release(n);
                    let got2: Vec<f32> = {
                        let (a, b) = spsc.peek(n);
                        a.iter().chain(b.iter()).copied().collect()
                    };
                    spsc.release(n);
                    prop_assert_eq!(&got, &got2);
                    for x in got {
                        prop_assert_eq!(Some(x), model.pop_front());
                    }
                }
            }
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(spsc.len(), model.len());
        }
    }

    /// The SPSC ring agrees with the serial ring in single-threaded use.
    #[test]
    fn spsc_matches_serial_single_thread(cap in 1usize..24,
                                         ops in prop::collection::vec((0u8..2, 1usize..6), 1..150)) {
        let spsc = SpscRing::new(cap);
        let mut serial = Ring::new(cap);
        let mut counter = 0.0f32;
        for (kind, n) in ops {
            if kind == 0 {
                let n = n.min(serial.space());
                if n == 0 { continue; }
                let items: Vec<f32> = (0..n).map(|_| { counter += 1.0; counter }).collect();
                spsc.push_slice(&items);
                serial.push_slice(&items);
            } else {
                let n = n.min(serial.len());
                if n == 0 { continue; }
                let mut a = vec![0.0f32; n];
                let mut b = vec![0.0f32; n];
                spsc.pop_slice(&mut a);
                serial.pop_slice(&mut b);
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(spsc.len(), serial.len());
        }
    }

    /// SDF determinism on real memory: random pipelines produce identical
    /// digests under single-appearance and demand-driven schedules.
    #[test]
    fn digests_schedule_independent(seed in 0u64..3_000) {
        let cfg = PipelineCfg {
            len: 8,
            state: StateDist::Uniform(4, 32),
            max_q: 3,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let sink = ra.sink.unwrap();
        let sas = baseline::single_appearance(&g, &ra, 3);
        let demand = baseline::demand_driven(&g, &ra, sas.count(sink));
        let mut i1 = Instance::synthetic(g.clone());
        let mut i2 = Instance::synthetic(g);
        let d1 = execute(&mut i1, &sas).digest;
        let d2 = execute(&mut i2, &demand).digest;
        prop_assert_eq!(d1, d2);
    }

    /// Phased schedules are digest-equivalent too, on dags.
    #[test]
    fn phased_digest_matches(seed in 0u64..3_000) {
        let cfg = LayeredCfg {
            layers: 3,
            max_width: 3,
            density: 0.3,
            state: StateDist::Uniform(4, 24),
            max_q: 2,
        };
        let g = gen::layered(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let sink = ra.sink.unwrap();
        let phased = baseline::phased(&g, &ra, 2);
        let demand = baseline::demand_driven(&g, &ra, phased.count(sink));
        let mut i1 = Instance::synthetic(g.clone());
        let mut i2 = Instance::synthetic(g);
        prop_assert_eq!(
            execute(&mut i1, &phased).digest,
            execute(&mut i2, &demand).digest
        );
    }
}
