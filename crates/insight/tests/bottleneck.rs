//! Acceptance: on a deliberately imbalanced app, the analysis names
//! the known bottleneck segment and its blocking edge — and the
//! enriched telemetry (stall blame + ring occupancy) does not disturb
//! the computation (digest equivalence against the serial reference).

use ccs_exec::{execute_dag_cfg, Placement, RunConfig};
use ccs_graph::gen;
use ccs_graph::RateAnalysis;
use ccs_insight::analyze_doc;
use ccs_obs::chrome::{document, TraceWorker};
use ccs_partition::Partition;
use ccs_runtime::instance::Instance;
use ccs_sched::partitioned;
use serde_json::json;

#[test]
fn imbalanced_pipeline_names_its_bottleneck_segment_and_edge() {
    // A 10-stage uniform pipeline split 8 nodes / 2 nodes: segment 0
    // carries 4x the per-batch work of segment 1, so segment 1 starves
    // behind the single cross edge (node 7 -> node 8, edge 7) and every
    // blamed stall must point there.
    let g = gen::pipeline_uniform(10, 64);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = Partition::from_assignment(vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1]);
    let m = 256u64;
    let rounds = 16u64;

    let serial_run = partitioned::inhomogeneous(&g, &ra, &p, m, rounds).unwrap();
    let mut serial_inst = Instance::synthetic(g.clone());
    let want = ccs_runtime::serial::execute(&mut serial_inst, &serial_run).digest;

    let cfg = RunConfig::new(2)
        .with_placement(Placement::CommGreedy)
        .with_trace(true);
    let stats = execute_dag_cfg(Instance::synthetic(g.clone()), &ra, &p, m, rounds, &cfg).unwrap();
    assert_eq!(stats.run.digest, want, "telemetry must not disturb the run");

    let workers: Vec<TraceWorker> = stats
        .workers
        .iter()
        .map(|w| {
            let tl = w.trace.as_ref().expect("traced run has timelines");
            TraceWorker {
                worker: w.worker,
                name: format!("worker {}", w.worker),
                events: &tl.events,
                dropped: tl.dropped,
                windows: &w.windows,
            }
        })
        .collect();
    let doc = document("imbalanced", json!({"engine": "parallel"}), &workers);
    let analysis = analyze_doc(&doc).unwrap();

    // The run must actually have stalled and attributed it.
    let top = &analysis["summary"]["top_bottleneck"];
    assert!(
        !top.is_null(),
        "imbalanced run produced no attributed stalls: {}",
        serde_json::to_string(&analysis["workers"]).unwrap()
    );
    // The culprit is the heavy segment, through the one cross edge.
    assert_eq!(top["seg"].as_u64(), Some(0), "culprit must be segment 0");
    assert_eq!(top["edge"].as_u64(), Some(7), "blocking edge must be 7");
    assert_eq!(top["reason"].as_str(), Some("producer-empty"));

    // The blame table agrees: the dominant row blames seg 0 for seg 1.
    let row = &analysis["stall_blame"][0];
    assert_eq!(row["culprit_seg"].as_u64(), Some(0));
    assert_eq!(row["blocked_seg"].as_u64(), Some(1));

    // Occupancy was recorded for the cross ring.
    let occ = &analysis["occupancy"][0];
    assert_eq!(occ["ring"].as_u64(), Some(7));
    assert!(occ["samples"].as_u64().unwrap() > 0);

    // And the text report names the bottleneck.
    let text = ccs_insight::render(&analysis).unwrap();
    assert!(text.contains("bottleneck: seg 0 via edge 7"), "{text}");
}
