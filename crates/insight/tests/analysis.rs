//! The analyzer against a synthetic trace document: every analysis
//! block (breakdowns, blame, occupancy, bottleneck ranking, chain,
//! drift) is checked against hand-computed expectations, through the
//! same document round-trip `ccs analyze FILE` takes.

use ccs_insight::{analyze_doc, render, top_bottleneck};
use ccs_obs::chrome::{document, TraceWorker};
use ccs_obs::{Blocked, Event, EventKind, StallReason, WindowSample};
use ccs_perf::{CounterKind, CounterSample, Reading};
use serde_json::{json, Value};

fn batch(ts: u64, dur: u64, seg: usize) -> Event {
    Event {
        ts_ns: ts,
        dur_ns: dur,
        kind: EventKind::Batch { seg },
    }
}

fn stall(ts: u64, dur: u64, blocked: Option<Blocked>) -> Event {
    Event {
        ts_ns: ts,
        dur_ns: dur,
        kind: EventKind::Stall {
            parked: false,
            blocked,
        },
    }
}

fn occ(ts: u64, ring: usize, len: u64, cap: u64) -> Event {
    Event {
        ts_ns: ts,
        dur_ns: 0,
        kind: EventKind::RingOccupancy { ring, len, cap },
    }
}

fn sample(misses: u64, instructions: u64) -> CounterSample {
    CounterSample {
        time_enabled_ns: 1000,
        time_running_ns: 1000,
        readings: vec![
            Reading {
                kind: CounterKind::Instructions,
                raw: instructions,
                scaled: instructions,
            },
            Reading {
                kind: CounterKind::LlcMisses,
                raw: misses,
                scaled: misses,
            },
        ],
    }
}

fn window(index: u64, start: u64, end: u64, mpki: u64) -> WindowSample {
    // 1000 instructions per window => mpki == misses.
    WindowSample {
        index,
        start_batch: index,
        batches: 1,
        start_ns: start,
        end_ns: end,
        sample: Some(sample(mpki, 1000)),
    }
}

fn starved(edge: usize, seg: usize, peer: usize) -> Option<Blocked> {
    Some(Blocked {
        edge,
        seg,
        peer,
        reason: StallReason::ProducerEmpty,
    })
}

#[test]
fn synthetic_document_analysis_is_exact() {
    // Worker 0 runs seg 0 flat out: 4 batches over [0, 4000).
    let w0_events: Vec<Event> = (0..4).map(|i| batch(i * 1000, 1000, 0)).collect();
    // Worker 1 runs seg 1 but starves on edge 7 behind seg 0 for most
    // of its span: 1000 ns of batches, 3000 ns of blamed stalls.
    let w1_events = vec![
        batch(0, 500, 1),
        stall(500, 2000, starved(7, 1, 0)),
        batch(2500, 500, 1),
        stall(3000, 1000, starved(7, 1, 0)),
        occ(3000, 7, 0, 128),
        occ(4000, 7, 32, 128),
    ];
    let workers = [
        TraceWorker {
            worker: 0,
            name: "worker 0".to_string(),
            events: &w0_events,
            dropped: 0,
            windows: &[],
        },
        TraceWorker {
            worker: 1,
            name: "worker 1".to_string(),
            events: &w1_events,
            dropped: 0,
            windows: &[],
        },
    ];
    let doc = document("synthetic", json!({"engine": "parallel"}), &workers);
    // Round-trip through text to mimic a file on disk.
    let doc: Value = serde_json::from_str(&serde_json::to_string(&doc).unwrap()).unwrap();
    let analysis = analyze_doc(&doc).unwrap();
    assert_eq!(analysis["schema"].as_str(), Some("ccs-analysis/v1"));
    assert_eq!(analysis["name"].as_str(), Some("synthetic"));
    assert_eq!(analysis["meta"]["engine"].as_str(), Some("parallel"));

    // Breakdowns: worker 0 is 100% batch; worker 1 is 25% batch, 75%
    // stall over its 4000 ns span.
    let w = &analysis["workers"];
    assert_eq!(w[0]["batch_share"].as_f64(), Some(1.0));
    assert_eq!(w[0]["idle_ms"].as_f64(), Some(0.0));
    assert_eq!(w[1]["batch_share"].as_f64(), Some(0.25));
    assert_eq!(w[1]["stall_share"].as_f64(), Some(0.75));
    assert_eq!(w[1]["stalls"].as_u64(), Some(2));

    // Blame: one row — edge 7, seg 0 starves seg 1, 3000 ns over 2 stalls.
    let rows = &analysis["stall_blame"];
    assert_eq!(rows[0]["edge"].as_u64(), Some(7));
    assert_eq!(rows[0]["blocked_seg"].as_u64(), Some(1));
    assert_eq!(rows[0]["culprit_seg"].as_u64(), Some(0));
    assert_eq!(rows[0]["reason"].as_str(), Some("producer-empty"));
    assert_eq!(rows[0]["stalls"].as_u64(), Some(2));
    assert_eq!(rows[0]["stall_ms"].as_f64(), Some(0.003));
    assert!(rows[1].is_null());

    // Occupancy: ring 7 sampled twice, mean 16/128.
    let occ = &analysis["occupancy"][0];
    assert_eq!(occ["ring"].as_u64(), Some(7));
    assert_eq!(occ["samples"].as_u64(), Some(2));
    assert_eq!(occ["mean_len"].as_f64(), Some(16.0));
    assert_eq!(occ["max_len"].as_u64(), Some(32));
    assert_eq!(occ["mean_fill"].as_f64(), Some(0.125));

    // Bottleneck: seg 0 via edge 7, all of the blamed time.
    let top = &analysis["summary"]["top_bottleneck"];
    assert_eq!(top["seg"].as_u64(), Some(0));
    assert_eq!(top["edge"].as_u64(), Some(7));
    assert_eq!(top["reason"].as_str(), Some("producer-empty"));
    assert_eq!(analysis["bottlenecks"][0]["share"].as_f64(), Some(1.0));
    assert_eq!(analysis["chain"][0]["seg"].as_u64(), Some(0));

    // Run-wide stall share: 3000 stall / (5000 batch + 3000 stall).
    let s = analysis["summary"]["stall_share"].as_f64().unwrap();
    assert!((s - 0.375).abs() < 1e-9, "{s}");

    // Text render names the culprit and the edge.
    let text = render(&analysis).unwrap();
    assert!(text.contains("bottleneck: seg 0 via edge 7"), "{text}");
    assert!(text.contains("seg 0 starves seg 1"), "{text}");
    assert!(text.contains("ring 7: mean 16.00/128"), "{text}");
}

#[test]
fn chain_follows_who_the_culprit_waits_on() {
    // seg 2 starves seg 1 (edge 5, heavy) while seg 2 itself is
    // backpressured by seg 3 (edge 9): the chain must walk 2 -> 3.
    let events = vec![
        stall(0, 5000, starved(5, 1, 2)),
        stall(5000, 2000, {
            Some(Blocked {
                edge: 9,
                seg: 2,
                peer: 3,
                reason: StallReason::ConsumerFull,
            })
        }),
    ];
    let workers = [TraceWorker {
        worker: 0,
        name: "worker 0".to_string(),
        events: &events,
        dropped: 0,
        windows: &[],
    }];
    let doc = document("chained", Value::Null, &workers);
    let analysis = analyze_doc(&doc).unwrap();
    let chain = &analysis["chain"];
    assert_eq!(chain[0]["seg"].as_u64(), Some(2));
    assert_eq!(chain[0]["edge"].as_u64(), Some(5));
    assert_eq!(chain[1]["seg"].as_u64(), Some(3));
    assert_eq!(chain[1]["edge"].as_u64(), Some(9));
    assert_eq!(chain[1]["reason"].as_str(), Some("consumer-full"));
    assert!(chain[2].is_null());
    let text = render(&analysis).unwrap();
    assert!(
        text.contains(
            "chain: seg 2 (via edge 5, producer-empty) <- seg 3 (via edge 9, consumer-full)"
        ),
        "{text}"
    );
}

#[test]
fn drift_flags_an_mpki_step_between_windows() {
    // 20 steady windows at mpki 2, then a persistent jump to 10.
    let windows: Vec<WindowSample> = (0..30)
        .map(|i| {
            let mpki = if i < 20 { 2 } else { 10 };
            window(i, i * 1000, (i + 1) * 1000, mpki)
        })
        .collect();
    let events = vec![batch(0, 30_000, 0)];
    let workers = [TraceWorker {
        worker: 0,
        name: "worker 0".to_string(),
        events: &events,
        dropped: 0,
        windows: &windows,
    }];
    let doc = document("drifting", Value::Null, &workers);
    let analysis = analyze_doc(&doc).unwrap();
    let w = &analysis["drift"][0];
    assert_eq!(w["worker"].as_u64(), Some(0));
    assert_eq!(w["windows"].as_u64(), Some(30));
    let cps = &w["mpki"]["change_points"];
    assert_eq!(cps[0].as_u64(), Some(20), "{cps:?}");
    // Stall share is identically zero: steady.
    let Value::Array(scps) = &w["stall_share"]["change_points"] else {
        panic!("change_points must be an array");
    };
    assert!(scps.is_empty());
    let text = render(&analysis).unwrap();
    assert!(text.contains("mpki ewma"), "{text}");
    assert!(text.contains("shift at window 20"), "{text}");
}

#[test]
fn live_top_bottleneck_matches_the_document_path() {
    let w1_events = vec![
        stall(0, 2000, starved(7, 1, 0)),
        stall(2000, 1000, starved(7, 1, 0)),
    ];
    let b = top_bottleneck(&[(0, &[]), (1, &w1_events)]).unwrap();
    assert_eq!(b.seg, 0);
    assert_eq!(b.edge, 7);
    assert_eq!(b.stalls, 2);
    assert!((b.blamed_ms - 0.003).abs() < 1e-12);
    assert!(top_bottleneck(&[(0, &[batch(0, 10, 0)])]).is_none());
}

#[test]
fn rejects_non_trace_documents() {
    assert!(analyze_doc(&json!({"schema": "ccs-sweep/v1"})).is_err());
    assert!(analyze_doc(&json!({"x": 1u64})).is_err());
    assert!(render(&json!({"schema": "ccs-trace/v1"})).is_err());
}
