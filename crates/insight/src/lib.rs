//! # ccs-insight — trace analysis: from timelines to blame
//!
//! `ccs-obs` (and the executors feeding it) records *signals*: batch
//! and stall spans, counter windows, ring-occupancy instants. This
//! crate turns a recorded `ccs-trace/v1` document into *judgements* —
//! the layer an online controller (or a human with `ccs report`) acts
//! on:
//!
//! - **Per-worker time breakdowns** ([`analyze`]): each worker's span
//!   split into batch / stall / idle shares.
//! - **Stall blame**: the enriched stall events name the edge whose
//!   half-full/half-empty gate failed and the peer segment on its other
//!   end, so stalls aggregate into a who-blocks-whom table per edge
//!   (producer-empty = starvation, consumer-full = backpressure).
//! - **Occupancy**: per-ring fill statistics from the batch-boundary
//!   [`ccs_obs::EventKind::RingOccupancy`] instants — a persistently
//!   full ring corroborates a backpressure blame, an empty one a
//!   starvation blame.
//! - **Bottleneck ranking**: blamed stall time aggregated onto the
//!   *culprit* segment, plus the chain of blocking edges leading out of
//!   the top culprit (who the bottleneck itself waits on).
//! - **Drift detection**: EWMA tracks of per-window mpki and
//!   stall-share with flagged change points — the signal a future
//!   feedback scheduler would consume.
//!
//! The analyzer consumes the *document*, not live executor state
//! ([`analyze_doc`]): the enriched trace is fully self-describing, so
//! file-based and live analysis share one code path, and a trace from
//! another machine analyzes identically. Output is a versioned
//! `ccs-analysis/v1` JSON document ([`SCHEMA`]) with a text renderer
//! ([`render`]) behind `ccs report`.

#![warn(missing_docs)]

mod analyze;
mod drift;
mod input;
mod report;

pub use analyze::{analyze, analyze_doc, top_bottleneck, Bottleneck, MPKI_EPS, STALL_SHARE_EPS};
pub use drift::{ewma_change_points, DriftTrack, OnlineEwma};
pub use input::{BlamedStall, MigrationPoint, OccPoint, TraceInput, WindowPoint, WorkerLane};
pub use report::render;

/// Schema tag of an analysis document (`ccs report` dispatches on it).
pub const SCHEMA: &str = "ccs-analysis/v1";
