//! Parsing a `ccs-trace/v1` document back into per-worker lanes.
//!
//! The chrome export is the interchange format: spans carry their
//! category (`batch` / `stall` / `window`), enriched stalls carry blame
//! args, occupancy rides on `"C"` counter points, and window spans
//! carry the full window payload in their args. Everything the
//! analyzer needs is therefore recoverable from the document alone —
//! no graph, no partition, no executor state.

use ccs_obs::chrome::WINDOW_TID_BASE;
use ccs_obs::StallReason;
use serde_json::Value;
use std::collections::BTreeMap;

/// One counter window, reduced to what the drift detector consumes.
#[derive(Clone, Debug)]
pub struct WindowPoint {
    /// Window ordinal within its worker.
    pub index: u64,
    /// Window start, nanoseconds on the run clock.
    pub start_ns: u64,
    /// Window end, nanoseconds on the run clock.
    pub end_ns: u64,
    /// Misses per kilo-instruction over the window; `None` for
    /// timing-only windows (no counter group opened).
    pub mpki: Option<f64>,
}

/// One attributed stall span: which edge blocked which segment, for
/// how long.
#[derive(Clone, Copy, Debug)]
pub struct BlamedStall {
    /// Edge (ring) whose gate failed.
    pub edge: usize,
    /// Segment that could not run.
    pub seg: usize,
    /// Peer segment on the other end of the edge — the culprit.
    pub peer: usize,
    /// Which side of the gate failed.
    pub reason: StallReason,
    /// Stall span duration in nanoseconds.
    pub dur_ns: u64,
}

/// One live segment handoff, recovered from a `"migration"` instant.
#[derive(Clone, Copy, Debug)]
pub struct MigrationPoint {
    /// Handoff instant, nanoseconds on the run clock.
    pub ts_ns: u64,
    /// Segment that moved.
    pub seg: usize,
    /// Worker that released it.
    pub from: usize,
    /// Worker that received it.
    pub to: usize,
}

/// One ring-occupancy sample.
#[derive(Clone, Copy, Debug)]
pub struct OccPoint {
    /// Ring (edge) index.
    pub ring: usize,
    /// Sample instant, nanoseconds on the run clock.
    pub ts_ns: u64,
    /// Items resident.
    pub len: u64,
    /// Ring capacity in items.
    pub cap: u64,
}

/// One worker's activity, aggregated from its trace track.
#[derive(Clone, Debug, Default)]
pub struct WorkerLane {
    /// Worker index.
    pub worker: usize,
    /// Track label from the trace metadata (e.g. `"worker 2 @cpu5"`).
    pub name: String,
    /// Batch (or serial-block) spans seen.
    pub batches: u64,
    /// Total batch time, nanoseconds.
    pub batch_ns: u64,
    /// Stall spans seen.
    pub stalls: u64,
    /// Stalls that fell through the spin tier into the condvar.
    pub parks: u64,
    /// Total stall time, nanoseconds.
    pub stall_ns: u64,
    /// Raw stall spans as `(start_ns, dur_ns)` — kept so stall time can
    /// be re-windowed onto the counter-window axis for drift.
    pub stall_spans: Vec<(u64, u64)>,
    /// Stalls carrying blame (a subset of `stalls`; untraced-blame
    /// documents leave this empty).
    pub blamed: Vec<BlamedStall>,
    /// Earliest span start, nanoseconds (`u64::MAX` when no spans).
    pub first_ns: u64,
    /// Latest span end, nanoseconds.
    pub last_ns: u64,
    /// Counter windows, in order.
    pub windows: Vec<WindowPoint>,
}

impl WorkerLane {
    fn new(worker: usize) -> WorkerLane {
        WorkerLane {
            worker,
            name: format!("worker {worker}"),
            first_ns: u64::MAX,
            ..WorkerLane::default()
        }
    }

    /// Wall-clock span this lane was active, nanoseconds.
    pub fn span_ns(&self) -> u64 {
        if self.first_ns == u64::MAX {
            0
        } else {
            self.last_ns.saturating_sub(self.first_ns)
        }
    }

    /// Idle time: the span not accounted to batches or stalls.
    pub fn idle_ns(&self) -> u64 {
        self.span_ns()
            .saturating_sub(self.batch_ns)
            .saturating_sub(self.stall_ns)
    }
}

/// Everything the analyzer consumes, parsed out of one trace document.
#[derive(Clone, Debug)]
pub struct TraceInput {
    /// Trace name (the app / invocation label).
    pub name: String,
    /// Caller metadata block, passed through verbatim.
    pub meta: Value,
    /// Per-worker lanes, ordered by worker index.
    pub lanes: Vec<WorkerLane>,
    /// All occupancy samples, document order.
    pub occupancy: Vec<OccPoint>,
    /// Live segment handoffs, document order (adaptive runs only).
    pub migrations: Vec<MigrationPoint>,
}

fn ns(us: f64) -> u64 {
    (us * 1000.0).round().max(0.0) as u64
}

impl TraceInput {
    /// Parse a `ccs-trace/v1` document. Errors name what was malformed;
    /// unknown event shapes are skipped, not fatal, so newer documents
    /// stay readable.
    pub fn from_doc(doc: &Value) -> Result<TraceInput, String> {
        if doc["schema"].as_str() != Some(ccs_obs::SCHEMA) {
            return Err(format!(
                "not a {} document (schema: {:?})",
                ccs_obs::SCHEMA,
                doc["schema"].as_str()
            ));
        }
        let Value::Array(tes) = &doc["traceEvents"] else {
            return Err("trace document has no traceEvents array".to_string());
        };
        let mut lanes: BTreeMap<usize, WorkerLane> = BTreeMap::new();
        let mut occupancy = Vec::new();
        let mut migrations = Vec::new();
        for te in tes {
            let tid = te["tid"].as_u64().unwrap_or(0) as usize;
            match te["ph"].as_str() {
                Some("M") if tid < WINDOW_TID_BASE => {
                    if let Some(name) = te["args"]["name"].as_str() {
                        lanes
                            .entry(tid)
                            .or_insert_with(|| WorkerLane::new(tid))
                            .name = name.to_string();
                    }
                }
                // Only occupancy points carry the "C" category; the
                // per-worker miss/mpki series do not.
                Some("C") if te["cat"].as_str() == Some("occupancy") => {
                    if let (Some(ring), Some(len), Some(cap)) = (
                        te["args"]["ring"].as_u64(),
                        te["args"]["len"].as_u64(),
                        te["args"]["cap"].as_u64(),
                    ) {
                        occupancy.push(OccPoint {
                            ring: ring as usize,
                            ts_ns: ns(te["ts"].as_f64().unwrap_or(0.0)),
                            len,
                            cap,
                        });
                    }
                }
                Some("i") if te["cat"].as_str() == Some("migration") => {
                    if let (Some(seg), Some(from), Some(to)) = (
                        te["args"]["seg"].as_u64(),
                        te["args"]["from"].as_u64(),
                        te["args"]["to"].as_u64(),
                    ) {
                        migrations.push(MigrationPoint {
                            ts_ns: ns(te["ts"].as_f64().unwrap_or(0.0)),
                            seg: seg as usize,
                            from: from as usize,
                            to: to as usize,
                        });
                    }
                }
                Some("X") if tid >= WINDOW_TID_BASE => {
                    if te["cat"].as_str() != Some("window") {
                        continue;
                    }
                    let lane = lanes
                        .entry(tid - WINDOW_TID_BASE)
                        .or_insert_with(|| WorkerLane::new(tid - WINDOW_TID_BASE));
                    let a = &te["args"];
                    lane.windows.push(WindowPoint {
                        index: a["index"].as_u64().unwrap_or(lane.windows.len() as u64),
                        start_ns: (a["start_ms"].as_f64().unwrap_or(0.0) * 1e6).round() as u64,
                        end_ns: (a["end_ms"].as_f64().unwrap_or(0.0) * 1e6).round() as u64,
                        mpki: a["counters"]["mpki"].as_f64(),
                    });
                }
                Some("X") => {
                    let lane = lanes.entry(tid).or_insert_with(|| WorkerLane::new(tid));
                    let start = ns(te["ts"].as_f64().unwrap_or(0.0));
                    let dur = ns(te["dur"].as_f64().unwrap_or(0.0));
                    match te["cat"].as_str() {
                        Some("batch") => {
                            lane.batches += 1;
                            lane.batch_ns += dur;
                        }
                        Some("stall") => {
                            lane.stalls += 1;
                            lane.parks += (te["name"].as_str() == Some("park")) as u64;
                            lane.stall_ns += dur;
                            lane.stall_spans.push((start, dur));
                            let a = &te["args"];
                            if let (Some(edge), Some(seg), Some(peer), Some(reason)) = (
                                a["edge"].as_u64(),
                                a["seg"].as_u64(),
                                a["peer"].as_u64(),
                                a["reason"].as_str().and_then(StallReason::parse),
                            ) {
                                lane.blamed.push(BlamedStall {
                                    edge: edge as usize,
                                    seg: seg as usize,
                                    peer: peer as usize,
                                    reason,
                                    dur_ns: dur,
                                });
                            }
                        }
                        _ => continue,
                    }
                    lane.first_ns = lane.first_ns.min(start);
                    lane.last_ns = lane.last_ns.max(start + dur);
                }
                _ => {}
            }
        }
        Ok(TraceInput {
            name: doc["name"].as_str().unwrap_or("trace").to_string(),
            meta: doc["meta"].clone(),
            lanes: lanes.into_values().collect(),
            occupancy,
            migrations,
        })
    }
}
