//! The analysis engine: lanes + occupancy in, `ccs-analysis/v1` out.

use crate::drift::ewma_change_points;
use crate::input::{BlamedStall, TraceInput, WorkerLane};
use crate::SCHEMA;
use ccs_obs::{Event, EventKind, StallReason};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Noise floor for mpki drift flagging (an mpki wiggle below this is
/// never a change point). Shared with the sweep engine, which runs the
/// same detector over per-worker counter windows.
pub const MPKI_EPS: f64 = 0.1;

/// Noise floor for stall-share drift flagging (shares are in [0, 1]).
pub const STALL_SHARE_EPS: f64 = 0.05;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn share(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// One aggregated blame row: every stall attributed to `edge` with
/// `reason`, summed.
#[derive(Clone, Copy, Debug)]
struct BlameRow {
    edge: usize,
    blocked: usize,
    culprit: usize,
    reason: StallReason,
    stalls: u64,
    stall_ns: u64,
}

fn blame_rows(lanes: &[WorkerLane]) -> Vec<BlameRow> {
    let mut rows: BTreeMap<(usize, &'static str), BlameRow> = BTreeMap::new();
    for b in lanes.iter().flat_map(|l| l.blamed.iter()) {
        let row = rows.entry((b.edge, b.reason.name())).or_insert(BlameRow {
            edge: b.edge,
            blocked: b.seg,
            culprit: b.peer,
            reason: b.reason,
            stalls: 0,
            stall_ns: 0,
        });
        row.stalls += 1;
        row.stall_ns += b.dur_ns;
    }
    let mut rows: Vec<BlameRow> = rows.into_values().collect();
    rows.sort_by(|a, b| b.stall_ns.cmp(&a.stall_ns).then(a.edge.cmp(&b.edge)));
    rows
}

/// The top entry of a bottleneck ranking: the segment most blamed for
/// others' stall time, and the dominant edge it blocks through.
#[derive(Clone, Copy, Debug)]
pub struct Bottleneck {
    /// Culprit segment.
    pub seg: usize,
    /// Edge carrying most of its blamed stall time.
    pub edge: usize,
    /// Gate side of that dominant edge.
    pub reason: StallReason,
    /// Total stall time blamed on this segment, milliseconds.
    pub blamed_ms: f64,
    /// Stalls blamed on this segment.
    pub stalls: u64,
}

/// Rank culprit segments by blamed stall time (descending). Each entry
/// carries the dominant blocking edge.
fn rank_bottlenecks(rows: &[BlameRow]) -> Vec<Bottleneck> {
    let mut per_culprit: BTreeMap<usize, (u64, u64, BlameRow)> = BTreeMap::new();
    for &row in rows {
        let e = per_culprit.entry(row.culprit).or_insert((0, 0, row));
        e.0 += row.stall_ns;
        e.1 += row.stalls;
        if row.stall_ns > e.2.stall_ns {
            e.2 = row;
        }
    }
    let mut out: Vec<Bottleneck> = per_culprit
        .into_iter()
        .map(|(seg, (ns, stalls, dom))| Bottleneck {
            seg,
            edge: dom.edge,
            reason: dom.reason,
            blamed_ms: ms(ns),
            stalls,
        })
        .collect();
    out.sort_by(|a, b| {
        b.blamed_ms
            .partial_cmp(&a.blamed_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.seg.cmp(&b.seg))
    });
    out
}

/// The blocking chain out of the top culprit: entry 0 is the top
/// bottleneck (and the dominant edge it blocks through); each further
/// entry is who the previous segment was itself most blocked by. Cycle
/// guarded — a mutual-blocking pair terminates the chain.
fn blocking_chain(rows: &[BlameRow], ranking: &[Bottleneck]) -> Vec<Value> {
    let mut chain = Vec::new();
    let Some(top) = ranking.first() else {
        return chain;
    };
    let mut visited = vec![top.seg];
    chain.push(json!({
        "seg": top.seg as u64,
        "edge": top.edge as u64,
        "reason": top.reason.name(),
        "blamed_ms": top.blamed_ms,
    }));
    let mut cur = top.seg;
    // Follow, at each step, the dominant row where the current segment
    // is the one waiting.
    while let Some(row) = rows
        .iter()
        .filter(|r| r.blocked == cur)
        .max_by_key(|r| r.stall_ns)
    {
        if visited.contains(&row.culprit) {
            break;
        }
        visited.push(row.culprit);
        chain.push(json!({
            "seg": row.culprit as u64,
            "edge": row.edge as u64,
            "reason": row.reason.name(),
            "blamed_ms": ms(row.stall_ns),
        }));
        cur = row.culprit;
    }
    chain
}

/// Stall time of `lane` overlapping `[start_ns, end_ns)`.
fn stall_overlap_ns(lane: &WorkerLane, start_ns: u64, end_ns: u64) -> u64 {
    lane.stall_spans
        .iter()
        .map(|&(s, d)| {
            let e = s + d;
            e.min(end_ns).saturating_sub(s.max(start_ns))
        })
        .sum()
}

fn drift_json(lanes: &[WorkerLane]) -> (Value, u64) {
    let mut workers = Vec::new();
    let mut points = 0u64;
    for lane in lanes {
        if lane.windows.is_empty() {
            continue;
        }
        let mpki: Vec<f64> = lane.windows.iter().filter_map(|w| w.mpki).collect();
        let stall_share: Vec<f64> = lane
            .windows
            .iter()
            .map(|w| {
                let span = w.end_ns.saturating_sub(w.start_ns);
                share(stall_overlap_ns(lane, w.start_ns, w.end_ns), span)
            })
            .collect();
        let mt = ewma_change_points(&mpki, MPKI_EPS);
        let st = ewma_change_points(&stall_share, STALL_SHARE_EPS);
        points += (mt.change_points.len() + st.change_points.len()) as u64;
        let track = |t: crate::drift::DriftTrack| {
            json!({
                "ewma": match t.ewma {
                    Some(x) => json!(x),
                    None => Value::Null,
                },
                "change_points": t.change_points.iter().map(|&i| i as u64).collect::<Vec<u64>>(),
            })
        };
        workers.push(json!({
            "worker": lane.worker as u64,
            "windows": lane.windows.len() as u64,
            "mpki": track(mt),
            "stall_share": track(st),
        }));
    }
    (Value::Array(workers), points)
}

/// Per-migration accounting: when and where each live handoff happened,
/// plus the stall time each involved lane accumulated *after* the
/// handoff instant — the releasing worker idling into its reduced load
/// and the receiving worker absorbing the moved segment both show up
/// here, so a migration that traded one stall for another is visible.
fn migrations_json(input: &TraceInput) -> Value {
    Value::Array(
        input
            .migrations
            .iter()
            .map(|m| {
                let post_ms = |w: usize| -> f64 {
                    input
                        .lanes
                        .iter()
                        .find(|l| l.worker == w)
                        .map_or(0.0, |l| ms(stall_overlap_ns(l, m.ts_ns, l.last_ns)))
                };
                json!({
                    "seg": m.seg as u64,
                    "from": m.from as u64,
                    "to": m.to as u64,
                    "t_ms": m.ts_ns as f64 / 1e6,
                    "post_stall_from_ms": post_ms(m.from),
                    "post_stall_to_ms": post_ms(m.to),
                })
            })
            .collect(),
    )
}

fn occupancy_json(input: &TraceInput) -> Value {
    let mut per_ring: BTreeMap<usize, (u64, u64, u64, u64)> = BTreeMap::new();
    for p in &input.occupancy {
        let e = per_ring.entry(p.ring).or_insert((0, 0, 0, 0));
        e.0 += 1; // samples
        e.1 += p.len; // total len
        e.2 = e.2.max(p.len); // max len
        e.3 = e.3.max(p.cap); // capacity
    }
    Value::Array(
        per_ring
            .into_iter()
            .map(|(ring, (samples, total, max, cap))| {
                let mean = total as f64 / samples as f64;
                json!({
                    "ring": ring as u64,
                    "samples": samples,
                    "cap": cap,
                    "mean_len": mean,
                    "max_len": max,
                    "mean_fill": if cap == 0 { 0.0 } else { mean / cap as f64 },
                })
            })
            .collect(),
    )
}

/// Analyze parsed trace input into a `ccs-analysis/v1` document.
pub fn analyze(input: &TraceInput) -> Value {
    let workers: Vec<Value> = input
        .lanes
        .iter()
        .map(|l| {
            let span = l.span_ns();
            json!({
                "worker": l.worker as u64,
                "name": l.name,
                "span_ms": ms(span),
                "batch_ms": ms(l.batch_ns),
                "stall_ms": ms(l.stall_ns),
                "idle_ms": ms(l.idle_ns()),
                "batch_share": share(l.batch_ns, span),
                "stall_share": share(l.stall_ns, span),
                "idle_share": share(l.idle_ns(), span),
                "batches": l.batches,
                "stalls": l.stalls,
                "parks": l.parks,
            })
        })
        .collect();
    let rows = blame_rows(&input.lanes);
    let ranking = rank_bottlenecks(&rows);
    let chain = blocking_chain(&rows, &ranking);
    let total_blamed: u64 = rows.iter().map(|r| r.stall_ns).sum();
    let blame: Vec<Value> = rows
        .iter()
        .map(|r| {
            json!({
                "edge": r.edge as u64,
                "blocked_seg": r.blocked as u64,
                "culprit_seg": r.culprit as u64,
                "reason": r.reason.name(),
                "stalls": r.stalls,
                "stall_ms": ms(r.stall_ns),
            })
        })
        .collect();
    let bottlenecks: Vec<Value> = ranking
        .iter()
        .map(|b| {
            json!({
                "seg": b.seg as u64,
                "edge": b.edge as u64,
                "reason": b.reason.name(),
                "blamed_ms": b.blamed_ms,
                "stalls": b.stalls,
                "share": if total_blamed == 0 { 0.0 } else { b.blamed_ms / ms(total_blamed) },
            })
        })
        .collect();
    let busy_ns: u64 = input.lanes.iter().map(|l| l.batch_ns).sum();
    let stall_ns: u64 = input.lanes.iter().map(|l| l.stall_ns).sum();
    let top = ranking.first().map(|b| {
        json!({
            "seg": b.seg as u64,
            "edge": b.edge as u64,
            "reason": b.reason.name(),
            "blamed_ms": b.blamed_ms,
        })
    });
    let (drift, drift_points) = drift_json(&input.lanes);
    let mut summary = json!({
        "stall_share": share(stall_ns, busy_ns + stall_ns),
        "drift_points": drift_points,
        "top_bottleneck": top.unwrap_or(Value::Null),
    });
    let mut doc = json!({
        "schema": SCHEMA,
        "name": input.name,
        "meta": input.meta.clone(),
        "workers": Value::Array(workers),
        "stall_blame": Value::Array(blame),
        "occupancy": occupancy_json(input),
        "bottlenecks": Value::Array(bottlenecks),
        "chain": Value::Array(chain),
        "drift": drift,
    });
    // The migration block only exists for adaptive runs, so pre-adapt
    // documents (and their golden fixtures) serialize unchanged.
    if !input.migrations.is_empty() {
        if let Value::Object(pairs) = &mut summary {
            pairs.push((
                "migrations".to_string(),
                json!(input.migrations.len() as u64),
            ));
        }
        if let Value::Object(pairs) = &mut doc {
            pairs.push(("migrations".to_string(), migrations_json(input)));
        }
    }
    if let Value::Object(pairs) = &mut doc {
        pairs.push(("summary".to_string(), summary));
    }
    doc
}

/// Analyze a `ccs-trace/v1` document into a `ccs-analysis/v1` one —
/// the single entry point both `ccs analyze FILE` and live analysis
/// use (live mode builds the trace document first, so the two paths
/// cannot diverge).
pub fn analyze_doc(doc: &Value) -> Result<Value, String> {
    TraceInput::from_doc(doc).map(|input| analyze(&input))
}

/// The top bottleneck computed directly from live per-worker event
/// slices — the lightweight per-cell summary `ccs sweep` embeds
/// without building a full document.
pub fn top_bottleneck(per_worker: &[(usize, &[Event])]) -> Option<Bottleneck> {
    let mut lanes = Vec::new();
    for &(worker, events) in per_worker {
        let mut lane = WorkerLane {
            worker,
            ..WorkerLane::default()
        };
        for e in events {
            if let EventKind::Stall {
                blocked: Some(b), ..
            } = e.kind
            {
                lane.blamed.push(BlamedStall {
                    edge: b.edge,
                    seg: b.seg,
                    peer: b.peer,
                    reason: b.reason,
                    dur_ns: e.dur_ns,
                });
            }
        }
        lanes.push(lane);
    }
    let rows = blame_rows(&lanes);
    rank_bottlenecks(&rows).into_iter().next()
}
