//! EWMA drift tracking with change-point flags.
//!
//! The controller-facing signal: a smoothed level per metric and the
//! window indices where the raw series jumped out of its recent band.
//! Deliberately simple — an exponentially weighted mean plus an
//! exponentially weighted mean absolute deviation, with a point
//! flagged when it lands more than `BAND` deviations from the level.
//! No allocation beyond the output, no second pass, suitable for
//! online use.

/// Smoothing factor: weight of the newest observation.
const ALPHA: f64 = 0.3;

/// Flag threshold, in units of the tracked mean absolute deviation.
const BAND: f64 = 3.0;

/// Observations to absorb before flagging anything (the EWMA needs a
/// few points to mean something).
const WARMUP_POINTS: usize = 3;

/// The result of tracking one metric series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DriftTrack {
    /// Final EWMA level (`None` for an empty series).
    pub ewma: Option<f64>,
    /// Indices (into the series) flagged as change points.
    pub change_points: Vec<usize>,
}

/// Track `xs` with an EWMA (alpha 0.3) and flag change points: index
/// `i` is flagged when `xs[i]` deviates from the running level by more
/// than 3 tracked mean-absolute-deviations (floored at `eps`, the
/// metric's noise scale). The first few points are never flagged.
pub fn ewma_change_points(xs: &[f64], eps: f64) -> DriftTrack {
    let mut track = DriftTrack::default();
    let mut mean = 0.0f64;
    let mut dev = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        if i == 0 {
            mean = x;
            track.ewma = Some(mean);
            continue;
        }
        let err = (x - mean).abs();
        if i >= WARMUP_POINTS && err > BAND * dev.max(eps) {
            track.change_points.push(i);
        }
        mean += ALPHA * (x - mean);
        dev += ALPHA * (err - dev);
        track.ewma = Some(mean);
    }
    track
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_series() {
        assert_eq!(ewma_change_points(&[], 0.1), DriftTrack::default());
        let t = ewma_change_points(&[2.0], 0.1);
        assert_eq!(t.ewma, Some(2.0));
        assert!(t.change_points.is_empty());
    }

    #[test]
    fn steady_series_flags_nothing() {
        let xs: Vec<f64> = (0..50).map(|i| 1.0 + 0.01 * ((i % 3) as f64)).collect();
        let t = ewma_change_points(&xs, 0.1);
        assert!(t.change_points.is_empty(), "{:?}", t.change_points);
        assert!((t.ewma.unwrap() - 1.0).abs() < 0.1);
    }

    #[test]
    fn step_change_is_flagged_once_then_absorbed() {
        // 20 windows at 1.0, then a jump to 5.0 that persists.
        let xs: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
        let t = ewma_change_points(&xs, 0.1);
        assert!(t.change_points.contains(&20), "{:?}", t.change_points);
        // Once the level adapts, the new plateau stops flagging.
        assert!(!t.change_points.contains(&39), "{:?}", t.change_points);
        assert!((t.ewma.unwrap() - 5.0).abs() < 0.1);
    }

    #[test]
    fn early_points_are_never_flagged() {
        let t = ewma_change_points(&[0.0, 100.0, 0.0], 0.1);
        assert!(t.change_points.is_empty(), "{:?}", t.change_points);
    }
}
