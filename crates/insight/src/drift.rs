//! EWMA drift tracking with change-point flags.
//!
//! The controller-facing signal: a smoothed level per metric and the
//! window indices where the raw series jumped out of its recent band.
//! Deliberately simple — an exponentially weighted mean plus an
//! exponentially weighted mean absolute deviation, with a point
//! flagged when it lands more than `BAND` deviations from the level.
//! No allocation beyond the output, no second pass, suitable for
//! online use.

/// Smoothing factor: weight of the newest observation.
const ALPHA: f64 = 0.3;

/// Flag threshold, in units of the tracked mean absolute deviation.
const BAND: f64 = 3.0;

/// Observations to absorb before flagging anything (the EWMA needs a
/// few points to mean something).
const WARMUP_POINTS: usize = 3;

/// The result of tracking one metric series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DriftTrack {
    /// Final EWMA level (`None` for an empty series).
    pub ewma: Option<f64>,
    /// Indices (into the series) flagged as change points.
    pub change_points: Vec<usize>,
}

/// The one-point-at-a-time form of [`ewma_change_points`]: feed it a
/// series incrementally with [`push`](OnlineEwma::push) and it flags
/// exactly the indices the offline pass would (same alpha, band, and
/// warmup). This is the detector an online controller embeds — no
/// buffering of the series, O(1) state per tracked metric.
#[derive(Clone, Debug, Default)]
pub struct OnlineEwma {
    /// Noise floor for the deviation band (the metric's `eps`).
    eps: f64,
    /// Points absorbed so far.
    n: usize,
    mean: f64,
    dev: f64,
}

impl OnlineEwma {
    /// A fresh tracker with the metric's noise scale `eps`.
    pub fn new(eps: f64) -> OnlineEwma {
        OnlineEwma {
            eps,
            ..OnlineEwma::default()
        }
    }

    /// Absorb one observation; `true` when it is a change point (lands
    /// more than `BAND` tracked mean-absolute-deviations from the
    /// level, after the warmup points).
    pub fn push(&mut self, x: f64) -> bool {
        let i = self.n;
        self.n += 1;
        if i == 0 {
            self.mean = x;
            return false;
        }
        let err = (x - self.mean).abs();
        let flagged = i >= WARMUP_POINTS && err > BAND * self.dev.max(self.eps);
        self.mean += ALPHA * (x - self.mean);
        self.dev += ALPHA * (err - self.dev);
        flagged
    }

    /// Current EWMA level (`None` before any observation).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Observations absorbed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no observation has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Track `xs` with an EWMA (alpha 0.3) and flag change points: index
/// `i` is flagged when `xs[i]` deviates from the running level by more
/// than 3 tracked mean-absolute-deviations (floored at `eps`, the
/// metric's noise scale). The first few points are never flagged.
/// The offline batch form of [`OnlineEwma`] — the two flag identical
/// indices on identical series.
pub fn ewma_change_points(xs: &[f64], eps: f64) -> DriftTrack {
    let mut track = DriftTrack::default();
    let mut online = OnlineEwma::new(eps);
    for (i, &x) in xs.iter().enumerate() {
        if online.push(x) {
            track.change_points.push(i);
        }
        track.ewma = online.mean();
    }
    track
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_series() {
        assert_eq!(ewma_change_points(&[], 0.1), DriftTrack::default());
        let t = ewma_change_points(&[2.0], 0.1);
        assert_eq!(t.ewma, Some(2.0));
        assert!(t.change_points.is_empty());
    }

    #[test]
    fn steady_series_flags_nothing() {
        let xs: Vec<f64> = (0..50).map(|i| 1.0 + 0.01 * ((i % 3) as f64)).collect();
        let t = ewma_change_points(&xs, 0.1);
        assert!(t.change_points.is_empty(), "{:?}", t.change_points);
        assert!((t.ewma.unwrap() - 1.0).abs() < 0.1);
    }

    #[test]
    fn step_change_is_flagged_once_then_absorbed() {
        // 20 windows at 1.0, then a jump to 5.0 that persists.
        let xs: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
        let t = ewma_change_points(&xs, 0.1);
        assert!(t.change_points.contains(&20), "{:?}", t.change_points);
        // Once the level adapts, the new plateau stops flagging.
        assert!(!t.change_points.contains(&39), "{:?}", t.change_points);
        assert!((t.ewma.unwrap() - 5.0).abs() < 0.1);
    }

    #[test]
    fn early_points_are_never_flagged() {
        let t = ewma_change_points(&[0.0, 100.0, 0.0], 0.1);
        assert!(t.change_points.is_empty(), "{:?}", t.change_points);
    }

    #[test]
    fn online_detector_matches_the_offline_pass_exactly() {
        // The controller's incremental detector and the analyzer's batch
        // pass must flag identical change points on identical series —
        // the property the adaptive layer's equivalence rests on.
        let serieses: Vec<Vec<f64>> = vec![
            vec![],
            vec![2.0],
            (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect(),
            (0..50).map(|i| 1.0 + 0.01 * ((i % 3) as f64)).collect(),
            vec![0.0, 100.0, 0.0],
            (0..60)
                .map(|i| {
                    // Two regimes plus deterministic jitter.
                    let base = if i < 30 { 2.0 } else { 9.0 };
                    base + 0.05 * (((i * 7919) % 13) as f64)
                })
                .collect(),
        ];
        for xs in serieses {
            for eps in [0.05, 0.1, 1.0] {
                let offline = ewma_change_points(&xs, eps);
                let mut online = OnlineEwma::new(eps);
                let mut flagged = Vec::new();
                for (i, &x) in xs.iter().enumerate() {
                    if online.push(x) {
                        flagged.push(i);
                    }
                }
                assert_eq!(flagged, offline.change_points, "eps {eps}, xs {xs:?}");
                assert_eq!(online.mean(), offline.ewma);
                assert_eq!(online.len(), xs.len());
                assert_eq!(online.is_empty(), xs.is_empty());
            }
        }
    }
}
