//! Text rendering of a `ccs-analysis/v1` document for `ccs report`.

use crate::SCHEMA;
use serde_json::Value;

fn f2(v: &Value) -> String {
    match v.as_f64() {
        Some(x) => format!("{x:.2}"),
        None => "-".to_string(),
    }
}

fn pct(v: &Value) -> String {
    match v.as_f64() {
        Some(x) => format!("{:.1}%", x * 100.0),
        None => "-".to_string(),
    }
}

fn verb(reason: Option<&str>) -> &'static str {
    match reason {
        Some("consumer-full") => "backpressures",
        _ => "starves",
    }
}

/// Render an analysis document as the `ccs report` text summary.
/// Errors (wrong schema, malformed document) come back as strings for
/// the CLI to surface.
pub fn render(doc: &Value) -> Result<String, String> {
    if doc["schema"].as_str() != Some(SCHEMA) {
        return Err(format!(
            "not a {SCHEMA} document (schema: {:?})",
            doc["schema"].as_str()
        ));
    }
    let mut out = String::new();
    out.push_str(&format!(
        "analysis: {}\n",
        doc["name"].as_str().unwrap_or("trace")
    ));
    let meta = &doc["meta"];
    for key in [
        "engine",
        "strategy",
        "placement",
        "pin_cores",
        "topology",
        "warmup_mode",
        "workers",
        "rounds",
        "warmup",
        "windows_every",
        "wall_ms",
    ] {
        let v = &meta[key];
        if !v.is_null() {
            let shown = match v {
                Value::Float(_) => f2(v),
                other => serde_json::to_string(other).unwrap_or_default(),
            };
            out.push_str(&format!("  {key}: {shown}\n"));
        }
    }
    if let Value::Array(workers) = &doc["workers"] {
        for w in workers {
            out.push_str(&format!(
                "  {}: {} ms span — {} batch, {} stall ({} parked), {} idle ({} batches, {} stalls)\n",
                w["name"].as_str().unwrap_or("?"),
                f2(&w["span_ms"]),
                pct(&w["batch_share"]),
                pct(&w["stall_share"]),
                w["parks"].as_u64().unwrap_or(0),
                pct(&w["idle_share"]),
                w["batches"].as_u64().unwrap_or(0),
                w["stalls"].as_u64().unwrap_or(0),
            ));
        }
    }
    if let Value::Array(rows) = &doc["stall_blame"] {
        if !rows.is_empty() {
            out.push_str("  stall blame (who blocks whom):\n");
            for r in rows {
                out.push_str(&format!(
                    "    edge {}: seg {} {} seg {} — {} stalls, {} ms\n",
                    r["edge"].as_u64().unwrap_or(0),
                    r["culprit_seg"].as_u64().unwrap_or(0),
                    verb(r["reason"].as_str()),
                    r["blocked_seg"].as_u64().unwrap_or(0),
                    r["stalls"].as_u64().unwrap_or(0),
                    f2(&r["stall_ms"]),
                ));
            }
        }
    }
    if let Value::Array(rings) = &doc["occupancy"] {
        if !rings.is_empty() {
            out.push_str("  ring occupancy:\n");
            for r in rings {
                out.push_str(&format!(
                    "    ring {}: mean {}/{} ({} full), max {} — {} samples\n",
                    r["ring"].as_u64().unwrap_or(0),
                    f2(&r["mean_len"]),
                    r["cap"].as_u64().unwrap_or(0),
                    pct(&r["mean_fill"]),
                    r["max_len"].as_u64().unwrap_or(0),
                    r["samples"].as_u64().unwrap_or(0),
                ));
            }
        }
    }
    let top = &doc["summary"]["top_bottleneck"];
    if top.is_null() {
        out.push_str("  bottleneck: none attributed (no blamed stalls in the trace)\n");
    } else {
        out.push_str(&format!(
            "  bottleneck: seg {} via edge {} ({}) — {} ms blamed\n",
            top["seg"].as_u64().unwrap_or(0),
            top["edge"].as_u64().unwrap_or(0),
            top["reason"].as_str().unwrap_or("?"),
            f2(&top["blamed_ms"]),
        ));
        if let Value::Array(chain) = &doc["chain"] {
            if chain.len() > 1 {
                let links: Vec<String> = chain
                    .iter()
                    .map(|c| {
                        format!(
                            "seg {} (via edge {}, {})",
                            c["seg"].as_u64().unwrap_or(0),
                            c["edge"].as_u64().unwrap_or(0),
                            c["reason"].as_str().unwrap_or("?"),
                        )
                    })
                    .collect();
                out.push_str(&format!("  chain: {}\n", links.join(" <- ")));
            }
        }
    }
    if let Value::Array(workers) = &doc["drift"] {
        for w in workers {
            let describe = |t: &Value| -> String {
                let cps = match &t["change_points"] {
                    Value::Array(cps) if !cps.is_empty() => {
                        let idx: Vec<String> = cps
                            .iter()
                            .filter_map(|c| c.as_u64())
                            .map(|c| c.to_string())
                            .collect();
                        format!("shift at window {}", idx.join(", "))
                    }
                    _ => "steady".to_string(),
                };
                format!("ewma {} ({})", f2(&t["ewma"]), cps)
            };
            out.push_str(&format!(
                "  drift w{}: mpki {}, stall-share {}\n",
                w["worker"].as_u64().unwrap_or(0),
                describe(&w["mpki"]),
                describe(&w["stall_share"]),
            ));
        }
    }
    if let Value::Array(migs) = &doc["migrations"] {
        if !migs.is_empty() {
            out.push_str("  migrations (live handoffs):\n");
            for m in migs {
                out.push_str(&format!(
                    "    seg {}: w{} -> w{} at {} ms — post-handoff stall: from {} ms, to {} ms\n",
                    m["seg"].as_u64().unwrap_or(0),
                    m["from"].as_u64().unwrap_or(0),
                    m["to"].as_u64().unwrap_or(0),
                    f2(&m["t_ms"]),
                    f2(&m["post_stall_from_ms"]),
                    f2(&m["post_stall_to_ms"]),
                ));
            }
        }
    }
    let drift_points = doc["summary"]["drift_points"].as_u64().unwrap_or(0);
    if drift_points > 0 {
        out.push_str(&format!(
            "  warning: drift: {drift_points} change point(s) flagged — counter behavior \
             shifted mid-run (see the per-worker drift lines)\n"
        ));
    }
    out.push_str(&format!(
        "  stall share (run): {}\n",
        pct(&doc["summary"]["stall_share"]),
    ));
    Ok(out)
}
