//! Chrome trace-event export and the `ccs report` text summary.
//!
//! A trace document is one JSON object: the standard `traceEvents`
//! array (what Perfetto and `chrome://tracing` load — one track per
//! worker, batch and stall spans, warmup/first-touch instants, counter
//! series from the windows) plus a `schema` tag and a precomputed
//! `summary` block. Trace viewers ignore the extra top-level keys, so
//! the same file feeds both Perfetto and `ccs report`.

use crate::event::{Event, EventKind};
use crate::window::{window_json, WindowSample};
use serde_json::{json, Value};

/// Schema tag of a trace document (`ccs report` dispatches on this).
pub const SCHEMA: &str = "ccs-trace/v1";

/// PMU residency (`time_running / time_enabled`) below which a counter
/// window's scaled counts are flagged as multiplex estimates.
pub const MULTIPLEX_WARN_RATIO: f64 = 0.5;

/// One worker's contribution to a trace document.
#[derive(Clone, Debug)]
pub struct TraceWorker<'a> {
    /// Worker index (0-based; the serial executor is worker 0).
    pub worker: usize,
    /// Track label, e.g. `"worker 2 @cpu5"` or `"serial"`.
    pub name: String,
    /// Recorded events, chronological.
    pub events: &'a [Event],
    /// Events the ring dropped.
    pub dropped: u64,
    /// Closed counter windows.
    pub windows: &'a [WindowSample],
}

/// Merge per-worker timelines onto one time axis. The sort is stable,
/// so two events of one worker never reorder (their recorded order is
/// their causal order); ties across workers resolve by input order.
pub fn merge_timelines(per_worker: &[(usize, &[Event])]) -> Vec<(usize, Event)> {
    let mut all: Vec<(usize, Event)> = per_worker
        .iter()
        .flat_map(|&(w, events)| events.iter().map(move |&e| (w, e)))
        .collect();
    all.sort_by_key(|(_, e)| e.ts_ns);
    all
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Tid offset for the per-worker counter-window track (keeps window
/// spans from visually nesting inside batch spans on the main track).
/// Public so trace consumers (`ccs-insight`) can map window tracks
/// back to their workers.
pub const WINDOW_TID_BASE: usize = 1000;

fn span(pid: u64, tid: usize, name: String, cat: &str, ts_ns: u64, dur_ns: u64) -> Value {
    obj(vec![
        ("ph", json!("X")),
        ("pid", json!(pid)),
        ("tid", json!(tid as u64)),
        ("name", Value::String(name)),
        ("cat", json!(cat)),
        ("ts", json!(us(ts_ns))),
        ("dur", json!(us(dur_ns))),
    ])
}

fn instant(pid: u64, tid: usize, name: String, cat: &str, ts_ns: u64) -> Value {
    obj(vec![
        ("ph", json!("i")),
        ("s", json!("t")),
        ("pid", json!(pid)),
        ("tid", json!(tid as u64)),
        ("name", Value::String(name)),
        ("cat", json!(cat)),
        ("ts", json!(us(ts_ns))),
    ])
}

fn event_json(w: &TraceWorker, e: &Event) -> Value {
    match e.kind {
        EventKind::Batch { seg } => span(
            0,
            w.worker,
            format!("seg {seg}"),
            "batch",
            e.ts_ns,
            e.dur_ns,
        ),
        EventKind::SerialBlock { index } => span(
            0,
            w.worker,
            format!("block {index}"),
            "batch",
            e.ts_ns,
            e.dur_ns,
        ),
        EventKind::Stall { parked, blocked } => {
            let mut s = span(
                0,
                w.worker,
                (if parked { "park" } else { "spin" }).to_string(),
                "stall",
                e.ts_ns,
                e.dur_ns,
            );
            if let (Some(b), Value::Object(pairs)) = (blocked, &mut s) {
                pairs.push((
                    "args".to_string(),
                    json!({
                        "edge": b.edge as u64,
                        "seg": b.seg as u64,
                        "peer": b.peer as u64,
                        "reason": b.reason.name(),
                    }),
                ));
            }
            s
        }
        EventKind::RingOccupancy { ring, len, cap } => obj(vec![
            ("ph", json!("C")),
            ("pid", json!(0u64)),
            ("tid", json!(w.worker as u64)),
            ("name", Value::String(format!("ring {ring} occupancy"))),
            ("cat", json!("occupancy")),
            ("ts", json!(us(e.ts_ns))),
            (
                "args",
                json!({ "ring": ring as u64, "len": len, "cap": cap }),
            ),
        ]),
        EventKind::WarmupReset => {
            instant(0, w.worker, "warmup-reset".to_string(), "warmup", e.ts_ns)
        }
        EventKind::RingFirstTouch { ring } => instant(
            0,
            w.worker,
            format!("ring {ring} first-touch"),
            "ring",
            e.ts_ns,
        ),
        EventKind::Window { index } => {
            instant(0, w.worker, format!("window {index}"), "window", e.ts_ns)
        }
        EventKind::Migration { seg, from, to } => {
            let mut i = instant(
                0,
                w.worker,
                format!("migrate seg {seg}: w{from} -> w{to}"),
                "migration",
                e.ts_ns,
            );
            if let Value::Object(pairs) = &mut i {
                pairs.push((
                    "args".to_string(),
                    json!({
                        "seg": seg as u64,
                        "from": from as u64,
                        "to": to as u64,
                    }),
                ));
            }
            i
        }
    }
}

fn window_events(w: &TraceWorker, s: &WindowSample, out: &mut Vec<Value>) {
    // A span on the worker's dedicated window track...
    let mut annotated = span(
        0,
        WINDOW_TID_BASE + w.worker,
        format!("window {}", s.index),
        "window",
        s.start_ns,
        s.end_ns.saturating_sub(s.start_ns),
    );
    if let Value::Object(pairs) = &mut annotated {
        pairs.push(("args".to_string(), window_json(s)));
    }
    out.push(annotated);
    // ...plus counter series Perfetto renders as per-worker graphs.
    if let Some(sample) = &s.sample {
        if let Some(misses) = sample.get(ccs_perf::CounterKind::LlcMisses) {
            out.push(obj(vec![
                ("ph", json!("C")),
                ("pid", json!(0u64)),
                ("name", Value::String(format!("w{} llc-misses", w.worker))),
                ("ts", json!(us(s.start_ns))),
                ("args", json!({ "misses": misses })),
            ]));
        }
        if let Some(mpki) = sample.mpki() {
            out.push(obj(vec![
                ("ph", json!("C")),
                ("pid", json!(0u64)),
                ("name", Value::String(format!("w{} mpki", w.worker))),
                ("ts", json!(us(s.start_ns))),
                ("args", json!({ "mpki": mpki })),
            ]));
        }
    }
}

fn worker_summary(w: &TraceWorker, warn_ratio: f64) -> Value {
    let mut batches = 0u64;
    let mut batch_ns = 0u64;
    let mut stalls = 0u64;
    let mut stall_ns = 0u64;
    let mut parks = 0u64;
    for e in w.events {
        match e.kind {
            EventKind::Batch { .. } | EventKind::SerialBlock { .. } => {
                batches += 1;
                batch_ns += e.dur_ns;
            }
            EventKind::Stall { parked, .. } => {
                stalls += 1;
                parks += parked as u64;
                stall_ns += e.dur_ns;
            }
            _ => {}
        }
    }
    let scaled_low = w
        .windows
        .iter()
        .filter(|s| s.scaled_below(warn_ratio))
        .count();
    let timing_only = w.windows.iter().filter(|s| s.timing_only()).count();
    json!({
        "worker": w.worker,
        "name": w.name,
        "events": w.events.len() as u64,
        "dropped": w.dropped,
        "batches": batches,
        "batch_ms": batch_ns as f64 / 1e6,
        "stalls": stalls,
        "parks": parks,
        "stall_ms": stall_ns as f64 / 1e6,
        "windows": w.windows.len() as u64,
        "windows_scaled_low": scaled_low as u64,
        "windows_timing_only": timing_only as u64,
    })
}

/// Build a `ccs-trace/v1` document: Chrome `traceEvents` for the given
/// workers plus a summary block. `meta` is caller context (engine,
/// rounds, wall clock, ...) surfaced verbatim under `"meta"` and echoed
/// by the text renderer.
pub fn document(name: &str, meta: Value, workers: &[TraceWorker]) -> Value {
    document_with(name, meta, workers, MULTIPLEX_WARN_RATIO)
}

/// [`document`] with a custom multiplex-residency warning threshold.
/// The threshold is baked into the summary (`"warn_residency"`) so a
/// saved document renders with the same warnings it was built with.
pub fn document_with(name: &str, meta: Value, workers: &[TraceWorker], warn_ratio: f64) -> Value {
    let mut trace_events = Vec::new();
    for w in workers {
        trace_events.push(obj(vec![
            ("ph", json!("M")),
            ("pid", json!(0u64)),
            ("tid", json!(w.worker as u64)),
            ("name", json!("thread_name")),
            ("args", json!({ "name": w.name })),
        ]));
        if !w.windows.is_empty() {
            trace_events.push(obj(vec![
                ("ph", json!("M")),
                ("pid", json!(0u64)),
                ("tid", json!((WINDOW_TID_BASE + w.worker) as u64)),
                ("name", json!("thread_name")),
                ("args", json!({ "name": format!("{} windows", w.name) })),
            ]));
        }
        for e in w.events {
            trace_events.push(event_json(w, e));
        }
        for s in w.windows {
            window_events(w, s, &mut trace_events);
        }
    }
    let per_worker: Vec<Value> = workers
        .iter()
        .map(|w| worker_summary(w, warn_ratio))
        .collect();
    let total = |key: &str| -> u64 { per_worker.iter().filter_map(|v| v[key].as_u64()).sum() };
    let summary = json!({
        "events": total("events"),
        "dropped": total("dropped"),
        "windows": total("windows"),
        "windows_scaled_low": total("windows_scaled_low"),
        "windows_timing_only": total("windows_timing_only"),
        "warn_residency": warn_ratio,
        "workers": Value::Array(per_worker),
    });
    json!({
        "schema": SCHEMA,
        "name": name,
        "displayTimeUnit": "ms",
        "meta": meta,
        "summary": summary,
        "traceEvents": Value::Array(trace_events),
    })
}

fn fms(v: &Value) -> String {
    match v.as_f64() {
        Some(x) => format!("{x:.2}"),
        None => "-".to_string(),
    }
}

/// Render a trace document as the `ccs report` text summary. Errors
/// (not a trace document, missing summary) come back as strings for
/// the CLI to surface.
pub fn render(doc: &Value) -> Result<String, String> {
    if doc["schema"].as_str() != Some(SCHEMA) {
        return Err(format!(
            "not a {SCHEMA} document (schema: {:?})",
            doc["schema"].as_str()
        ));
    }
    let mut out = String::new();
    let name = doc["name"].as_str().unwrap_or("trace");
    out.push_str(&format!("trace: {name}\n"));
    let meta = &doc["meta"];
    for key in [
        "engine",
        "strategy",
        "placement",
        "pin_cores",
        "topology",
        "warmup_mode",
        "workers",
        "rounds",
        "warmup",
        "windows_every",
        "wall_ms",
    ] {
        let v = &meta[key];
        if !v.is_null() {
            let shown = match v {
                Value::Float(_) => fms(v),
                other => serde_json::to_string(other).unwrap_or_default(),
            };
            out.push_str(&format!("  {key}: {shown}\n"));
        }
    }
    let s = &doc["summary"];
    if s.is_null() {
        return Err("trace document has no summary block".to_string());
    }
    out.push_str(&format!(
        "  events: {} ({} dropped)   windows: {}\n",
        s["events"].as_u64().unwrap_or(0),
        s["dropped"].as_u64().unwrap_or(0),
        s["windows"].as_u64().unwrap_or(0),
    ));
    if let Value::Array(workers) = &s["workers"] {
        for w in workers {
            out.push_str(&format!(
                "  {}: {} events, {} batches ({} ms busy), {} stalls ({} parked, {} ms), {} windows\n",
                w["name"].as_str().unwrap_or("?"),
                w["events"].as_u64().unwrap_or(0),
                w["batches"].as_u64().unwrap_or(0),
                fms(&w["batch_ms"]),
                w["stalls"].as_u64().unwrap_or(0),
                w["parks"].as_u64().unwrap_or(0),
                fms(&w["stall_ms"]),
                w["windows"].as_u64().unwrap_or(0),
            ));
        }
    }
    for w in warnings(s) {
        out.push_str(&format!("  warning: {w}\n"));
    }
    Ok(out)
}

/// Observability warnings for a trace (or any object shaped like its
/// summary block): event drops and low-residency counter windows are
/// reported, never silently averaged into the totals.
pub fn warnings(summary: &Value) -> Vec<String> {
    let mut out = Vec::new();
    let dropped = summary["dropped"].as_u64().unwrap_or(0);
    if dropped > 0 {
        out.push(format!(
            "ring overflow dropped {dropped} events — the timeline is truncated; raise the ring capacity (--trace-cap)"
        ));
    }
    let scaled = summary["windows_scaled_low"].as_u64().unwrap_or(0);
    if scaled > 0 {
        let ratio = summary["warn_residency"]
            .as_f64()
            .unwrap_or(MULTIPLEX_WARN_RATIO);
        out.push(format!(
            "{scaled} of {} counter windows ran below {:.0}% PMU residency — multiplex-scaled counts are estimates, not counts",
            summary["windows"].as_u64().unwrap_or(0),
            ratio * 100.0,
        ));
    }
    let timing_only = summary["windows_timing_only"].as_u64().unwrap_or(0);
    if timing_only > 0 {
        out.push(format!(
            "{timing_only} windows are timing-only (no counter group opened)"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_perf::{CounterKind, CounterSample, Reading};

    fn batch(ts: u64, dur: u64, seg: usize) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: dur,
            kind: EventKind::Batch { seg },
        }
    }

    fn window(index: u64, start: u64, end: u64, sample: Option<CounterSample>) -> WindowSample {
        WindowSample {
            index,
            start_batch: 0,
            batches: 2,
            start_ns: start,
            end_ns: end,
            sample,
        }
    }

    fn sample(misses: u64, enabled: u64, running: u64) -> CounterSample {
        CounterSample {
            time_enabled_ns: enabled,
            time_running_ns: running,
            readings: vec![Reading {
                kind: CounterKind::LlcMisses,
                raw: misses,
                scaled: misses,
            }],
        }
    }

    fn doc_roundtrip(doc: &Value) -> Value {
        serde_json::from_str(&serde_json::to_string(doc).unwrap()).unwrap()
    }

    #[test]
    fn document_is_valid_chrome_trace_json() {
        let events = vec![
            batch(0, 100, 1),
            Event {
                ts_ns: 100,
                dur_ns: 50,
                kind: EventKind::Stall {
                    parked: true,
                    blocked: None,
                },
            },
            Event {
                ts_ns: 150,
                dur_ns: 0,
                kind: EventKind::WarmupReset,
            },
        ];
        let windows = vec![window(0, 0, 150, Some(sample(42, 100, 100)))];
        let workers = [TraceWorker {
            worker: 0,
            name: "worker 0".to_string(),
            events: &events,
            dropped: 0,
            windows: &windows,
        }];
        let doc = doc_roundtrip(&document("t", json!({"workers": 1u64}), &workers));
        assert_eq!(doc["schema"].as_str(), Some(SCHEMA));
        let Value::Array(tes) = &doc["traceEvents"] else {
            panic!("traceEvents must be an array");
        };
        assert!(!tes.is_empty());
        for te in tes {
            let ph = te["ph"].as_str().expect("every event has a phase");
            assert!(matches!(ph, "M" | "X" | "i" | "C"), "ph {ph}");
            assert!(!te["name"].is_null());
            if ph == "X" {
                assert!(te["ts"].as_f64().is_some() && te["dur"].as_f64().is_some());
            }
        }
        // One main-track name, one window-track name, three ring
        // events, one window span, one llc counter series point (no
        // instructions => no mpki point).
        assert_eq!(tes.len(), 2 + 3 + 1 + 1);
        assert_eq!(doc["summary"]["events"].as_u64(), Some(3));
        assert_eq!(doc["summary"]["windows"].as_u64(), Some(1));
    }

    #[test]
    fn render_reports_and_warns() {
        let events = vec![batch(0, 100, 0)];
        let windows = vec![
            window(0, 0, 100, Some(sample(10, 1000, 200))), // 20% residency
            window(1, 100, 200, None),                      // timing-only
        ];
        let workers = [TraceWorker {
            worker: 3,
            name: "worker 3".to_string(),
            events: &events,
            dropped: 7,
            windows: &windows,
        }];
        let doc = document("overflowing", json!({"engine": "parallel"}), &workers);
        let text = render(&doc).unwrap();
        assert!(text.contains("trace: overflowing"));
        assert!(text.contains("worker 3"));
        assert!(text.contains("dropped 7 events"), "{text}");
        assert!(text.contains("below 50% PMU residency"), "{text}");
        assert!(text.contains("timing-only"), "{text}");
    }

    #[test]
    fn stall_blame_and_occupancy_are_self_describing() {
        use crate::event::{Blocked, StallReason};
        let events = vec![
            Event {
                ts_ns: 0,
                dur_ns: 40,
                kind: EventKind::Stall {
                    parked: false,
                    blocked: Some(Blocked {
                        edge: 7,
                        seg: 1,
                        peer: 0,
                        reason: StallReason::ProducerEmpty,
                    }),
                },
            },
            Event {
                ts_ns: 50,
                dur_ns: 0,
                kind: EventKind::RingOccupancy {
                    ring: 7,
                    len: 96,
                    cap: 128,
                },
            },
        ];
        let workers = [TraceWorker {
            worker: 2,
            name: "worker 2".to_string(),
            events: &events,
            dropped: 0,
            windows: &[],
        }];
        let doc = doc_roundtrip(&document("t", Value::Null, &workers));
        let Value::Array(tes) = &doc["traceEvents"] else {
            panic!("traceEvents must be an array");
        };
        let stall = tes
            .iter()
            .find(|te| te["cat"].as_str() == Some("stall"))
            .unwrap();
        assert_eq!(stall["args"]["edge"].as_u64(), Some(7));
        assert_eq!(stall["args"]["seg"].as_u64(), Some(1));
        assert_eq!(stall["args"]["peer"].as_u64(), Some(0));
        assert_eq!(stall["args"]["reason"].as_str(), Some("producer-empty"));
        let occ = tes
            .iter()
            .find(|te| te["cat"].as_str() == Some("occupancy"))
            .unwrap();
        assert_eq!(occ["ph"].as_str(), Some("C"));
        assert_eq!(occ["name"].as_str(), Some("ring 7 occupancy"));
        assert_eq!(occ["args"]["len"].as_u64(), Some(96));
        assert_eq!(occ["args"]["cap"].as_u64(), Some(128));
    }

    #[test]
    fn migration_instants_are_self_describing() {
        let events = vec![Event {
            ts_ns: 120,
            dur_ns: 0,
            kind: EventKind::Migration {
                seg: 3,
                from: 0,
                to: 2,
            },
        }];
        let workers = [TraceWorker {
            worker: 0,
            name: "worker 0".to_string(),
            events: &events,
            dropped: 0,
            windows: &[],
        }];
        let doc = doc_roundtrip(&document("t", Value::Null, &workers));
        let Value::Array(tes) = &doc["traceEvents"] else {
            panic!("traceEvents must be an array");
        };
        let mig = tes
            .iter()
            .find(|te| te["cat"].as_str() == Some("migration"))
            .unwrap();
        assert_eq!(mig["ph"].as_str(), Some("i"));
        assert_eq!(mig["name"].as_str(), Some("migrate seg 3: w0 -> w2"));
        assert_eq!(mig["args"]["seg"].as_u64(), Some(3));
        assert_eq!(mig["args"]["from"].as_u64(), Some(0));
        assert_eq!(mig["args"]["to"].as_u64(), Some(2));
    }

    #[test]
    fn warn_residency_threshold_is_carried_by_the_document() {
        let events = vec![batch(0, 100, 0)];
        // 20% residency: low under the default 0.5, fine under 0.1.
        let windows = vec![window(0, 0, 100, Some(sample(10, 1000, 200)))];
        let workers = [TraceWorker {
            worker: 0,
            name: "worker 0".to_string(),
            events: &events,
            dropped: 0,
            windows: &windows,
        }];
        let strict = document_with("t", Value::Null, &workers, 0.9);
        assert_eq!(strict["summary"]["warn_residency"].as_f64(), Some(0.9));
        assert_eq!(strict["summary"]["windows_scaled_low"].as_u64(), Some(1));
        let text = render(&strict).unwrap();
        assert!(text.contains("below 90% PMU residency"), "{text}");
        let lax = document_with("t", Value::Null, &workers, 0.1);
        assert_eq!(lax["summary"]["windows_scaled_low"].as_u64(), Some(0));
        assert!(!render(&lax).unwrap().contains("PMU residency"));
    }

    #[test]
    fn render_rejects_other_schemas() {
        assert!(render(&json!({"schema": "ccs-sweep/v1"})).is_err());
        assert!(render(&json!({"x": 1u64})).is_err());
    }

    #[test]
    fn clean_trace_renders_without_warnings() {
        let events = vec![batch(0, 10, 0)];
        let windows = vec![window(0, 0, 10, Some(sample(1, 100, 100)))];
        let workers = [TraceWorker {
            worker: 0,
            name: "worker 0".to_string(),
            events: &events,
            dropped: 0,
            windows: &windows,
        }];
        let doc = document("clean", Value::Null, &workers);
        let text = render(&doc).unwrap();
        assert!(!text.contains("warning:"), "{text}");
    }

    #[test]
    fn merge_is_time_ordered_and_stable() {
        let w0 = vec![batch(10, 1, 0), batch(20, 1, 0), batch(20, 1, 1)];
        let w1 = vec![batch(5, 1, 2), batch(20, 1, 2)];
        let merged = merge_timelines(&[(0, &w0), (1, &w1)]);
        let ts: Vec<u64> = merged.iter().map(|(_, e)| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        // Per-worker order is preserved among the ts=20 tie cluster.
        let w0_segs: Vec<usize> = merged
            .iter()
            .filter(|(w, _)| *w == 0)
            .map(|(_, e)| match e.kind {
                EventKind::Batch { seg } => seg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(w0_segs, vec![0, 0, 1]);
    }
}
