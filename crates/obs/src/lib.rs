//! Low-overhead runtime observability for the executors.
//!
//! Every number the rest of the workspace reports is an end-of-run
//! aggregate, but the paper's claims are about *when* cache behavior
//! happens: cold-start misses decaying through warmup, stalls hiding
//! inside the gating protocol, one slow segment serializing its
//! neighbors. This crate provides the time-resolved side:
//!
//! - [`EventRing`] / [`Tracer`]: a private, bounded, allocation-free
//!   event log per worker thread. Batches, stall spans, warmup resets,
//!   ring first-touches, and window boundaries are recorded with
//!   monotonic timestamps from a shared [`Clock`]; overflow overwrites
//!   the oldest events and is *counted*, never silently absorbed, and a
//!   disabled tracer is a single branch on the hot path.
//! - [`WindowSampler`]: periodic re-reads of the worker's hardware
//!   counter group every W batches, differenced with
//!   [`ccs_perf::CounterSample::delta_since`] into [`WindowSample`]s —
//!   the per-phase signal (misses/IPC over time) that an adaptive
//!   scheduler would close its loop on. When no counter group opened
//!   (containers, `CCS_NO_PERF`), windows degrade to timing-only.
//! - [`chrome`]: export of per-worker timelines as Chrome trace-event
//!   JSON (loadable in Perfetto / `chrome://tracing`), plus the text
//!   summary renderer behind `ccs report`.
//!
//! The crate deliberately depends only on `ccs-perf`: both executors
//! (`ccs-runtime`'s serial loop and `ccs-exec`'s workers) layer it in
//! without a dependency cycle, and observability itself never touches
//! graph or schedule state — it only watches.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod window;

pub use chrome::{merge_timelines, TraceWorker, MULTIPLEX_WARN_RATIO, SCHEMA};
pub use event::{
    Blocked, Clock, Event, EventKind, EventRing, StallReason, Timeline, Tracer,
    DEFAULT_RING_CAPACITY,
};
pub use window::{window_json, WindowSample, WindowSampler};
