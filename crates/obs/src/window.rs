//! Windowed counter sampling: the perf group re-read every W batches.
//!
//! The counter group accumulates monotonically between the executor's
//! warmup reset points, so a window is just two cumulative reads
//! differenced with [`CounterSample::delta_since`] — no extra resets,
//! no perturbation of the end-of-run totals the rest of the pipeline
//! reports. When no group opened (containers, `CCS_NO_PERF`), windows
//! still close on schedule with timing-only payloads: the wall-clock
//! span and batch count survive, the counter delta is `None`.

use ccs_perf::CounterSample;
use serde_json::{json, Value};

/// One closed counter window: `batches` consecutive batches of one
/// worker, the wall-clock span they occupied, and the counter-group
/// delta across them (when a group was open).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowSample {
    /// Window ordinal within its worker (0-based, gap-free).
    pub index: u64,
    /// Worker-local batch count when the window opened.
    pub start_batch: u64,
    /// Batches inside the window (the final flushed window may hold
    /// fewer than the configured W).
    pub batches: u64,
    /// Window start, nanoseconds since the run origin.
    pub start_ns: u64,
    /// Window end, nanoseconds since the run origin.
    pub end_ns: u64,
    /// Counter delta over the window ([`CounterSample::delta_since`] of
    /// the bracketing cumulative reads); `None` when the group never
    /// opened — the window is then timing-only.
    pub sample: Option<CounterSample>,
}

impl WindowSample {
    /// Fraction of the window the counter group was actually on the
    /// PMU (`time_running / time_enabled`); `None` for timing-only
    /// windows or an empty enabled time.
    pub fn pmu_residency(&self) -> Option<f64> {
        let s = self.sample.as_ref()?;
        if s.time_enabled_ns == 0 {
            return None;
        }
        Some(s.time_running_ns as f64 / s.time_enabled_ns as f64)
    }

    /// Whether the window's counts were multiplex-scaled below
    /// `ratio` PMU residency — an estimate, not a count.
    pub fn scaled_below(&self, ratio: f64) -> bool {
        self.pmu_residency().is_some_and(|r| r < ratio)
    }

    /// Whether the window carries no counter delta at all.
    pub fn timing_only(&self) -> bool {
        self.sample.is_none()
    }

    /// Wall-clock span of the window in milliseconds.
    pub fn span_ms(&self) -> f64 {
        self.end_ns.saturating_sub(self.start_ns) as f64 / 1e6
    }
}

/// JSON for one window, as emitted in `run-dag`/`trace` output: the
/// span, the batch range, and either the full counter reading block
/// (the same shape as [`CounterSample::to_json`]) or the string
/// `"timing-only"` when no group opened.
pub fn window_json(w: &WindowSample) -> Value {
    json!({
        "index": w.index,
        "start_batch": w.start_batch,
        "batches": w.batches,
        "start_ms": w.start_ns as f64 / 1e6,
        "end_ms": w.end_ns as f64 / 1e6,
        "counters": match &w.sample {
            Some(s) => s.to_json(None),
            None => Value::String("timing-only".into()),
        },
    })
}

/// Accumulates [`WindowSample`]s for one worker: feed it a cumulative
/// group read every batch boundary and it closes a window every
/// `every` batches. Disabled (`every == 0`) it is a no-op.
#[derive(Debug, Default)]
pub struct WindowSampler {
    every: u64,
    /// Batches inside the currently open window.
    in_window: u64,
    /// Worker-local batch ordinal at the open window's start.
    start_batch: u64,
    /// Total batches seen.
    total_batches: u64,
    start_ns: u64,
    /// Cumulative group read at the open window's start.
    baseline: Option<CounterSample>,
    windows: Vec<WindowSample>,
}

impl WindowSampler {
    /// A sampler closing a window every `every` batches (0 disables).
    pub fn new(every: u64) -> WindowSampler {
        WindowSampler {
            every,
            ..WindowSampler::default()
        }
    }

    /// Whether windows are being collected.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.every > 0
    }

    /// Open the first window: `now_ns` from the run clock, `sample` a
    /// cumulative group read (or `None` when no group opened).
    pub fn start(&mut self, now_ns: u64, sample: Option<CounterSample>) {
        if !self.enabled() {
            return;
        }
        self.start_ns = now_ns;
        self.baseline = sample;
    }

    /// Note one completed batch. When this closes a window, `read` is
    /// called for the current cumulative group read, the delta is
    /// recorded, and the closed window's index is returned (so a
    /// tracer can drop a boundary event).
    #[inline]
    pub fn on_batch<F>(&mut self, now_ns: u64, read: F) -> Option<u64>
    where
        F: FnOnce() -> Option<CounterSample>,
    {
        if !self.enabled() {
            return None;
        }
        self.in_window += 1;
        self.total_batches += 1;
        if self.in_window < self.every {
            return None;
        }
        Some(self.close(now_ns, read()))
    }

    /// Close a partial window (if any batches are in flight) without
    /// restarting the cadence — used just before a warmup counter
    /// reset, whose zeroing would otherwise corrupt the delta.
    pub fn flush<F>(&mut self, now_ns: u64, read: F)
    where
        F: FnOnce() -> Option<CounterSample>,
    {
        if self.enabled() && self.in_window > 0 {
            self.close(now_ns, read());
        }
    }

    /// Re-open the baseline after an external counter reset (the
    /// cumulative reads restart from zero there).
    pub fn rebaseline(&mut self, now_ns: u64, sample: Option<CounterSample>) {
        if !self.enabled() {
            return;
        }
        self.start_ns = now_ns;
        self.baseline = sample;
    }

    /// The most recently closed window, if any — the live feed an
    /// adaptive controller reads right after
    /// [`on_batch`](Self::on_batch) reports a close.
    pub fn last(&self) -> Option<&WindowSample> {
        self.windows.last()
    }

    /// Finish: close any partial window and return all windows.
    pub fn finish<F>(mut self, now_ns: u64, read: F) -> Vec<WindowSample>
    where
        F: FnOnce() -> Option<CounterSample>,
    {
        self.flush(now_ns, read);
        self.windows
    }

    fn close(&mut self, now_ns: u64, current: Option<CounterSample>) -> u64 {
        let index = self.windows.len() as u64;
        let sample = current.as_ref().map(|c| match &self.baseline {
            Some(b) => c.delta_since(b),
            None => c.clone(),
        });
        self.windows.push(WindowSample {
            index,
            start_batch: self.start_batch,
            batches: self.in_window,
            start_ns: self.start_ns,
            end_ns: now_ns,
            sample,
        });
        self.start_batch = self.total_batches;
        self.start_ns = now_ns;
        self.baseline = current;
        self.in_window = 0;
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_perf::{CounterKind, Reading};

    fn cumulative(raw: u64, enabled: u64, running: u64) -> CounterSample {
        CounterSample {
            time_enabled_ns: enabled,
            time_running_ns: running,
            readings: vec![Reading {
                kind: CounterKind::LlcMisses,
                raw,
                scaled: raw,
            }],
        }
    }

    #[test]
    fn closes_every_w_batches_with_deltas() {
        let mut s = WindowSampler::new(2);
        s.start(0, Some(cumulative(0, 0, 0)));
        let mut cum = 0u64;
        let mut t = 0u64;
        let mut closed = Vec::new();
        for _ in 0..6 {
            cum += 10;
            t += 100;
            if let Some(i) = s.on_batch(t, || Some(cumulative(cum, t, t))) {
                closed.push(i);
            }
        }
        assert_eq!(closed, vec![0, 1, 2]);
        let windows = s.finish(t, || Some(cumulative(cum, t, t)));
        assert_eq!(windows.len(), 3);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.index, i as u64);
            assert_eq!(w.batches, 2);
            assert_eq!(w.start_batch, 2 * i as u64);
            // Each window saw two batches of 10 misses.
            let delta = w.sample.as_ref().unwrap();
            assert_eq!(delta.get(CounterKind::LlcMisses), Some(20));
            assert_eq!(w.end_ns - w.start_ns, 200);
        }
    }

    #[test]
    fn partial_final_window_is_flushed() {
        let mut s = WindowSampler::new(4);
        s.start(0, Some(cumulative(0, 0, 0)));
        for i in 1..=6u64 {
            s.on_batch(i * 10, || Some(cumulative(i, i * 10, i * 10)));
        }
        let windows = s.finish(70, || Some(cumulative(6, 70, 70)));
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].batches, 4);
        assert_eq!(windows[1].batches, 2);
        assert_eq!(
            windows[1]
                .sample
                .as_ref()
                .unwrap()
                .get(CounterKind::LlcMisses),
            Some(2)
        );
    }

    #[test]
    fn rebaseline_survives_a_counter_reset() {
        // Warmup reset zeroes the group between windows; the flush +
        // rebaseline protocol keeps every delta non-garbage.
        let mut s = WindowSampler::new(2);
        s.start(0, Some(cumulative(0, 0, 0)));
        s.on_batch(10, || Some(cumulative(100, 10, 10)));
        // Reset point: close the 1-batch partial, re-open at zero.
        s.flush(15, || Some(cumulative(120, 15, 15)));
        s.rebaseline(15, Some(cumulative(0, 0, 0)));
        s.on_batch(20, || Some(cumulative(5, 5, 5)));
        let windows = s.finish(30, || Some(cumulative(9, 15, 15)));
        assert_eq!(windows.len(), 2);
        // Pre-reset partial: 120 cumulative misses.
        assert_eq!(
            windows[0]
                .sample
                .as_ref()
                .unwrap()
                .get(CounterKind::LlcMisses),
            Some(120)
        );
        assert_eq!(windows[0].batches, 1);
        // Post-reset window: cadence continues (1 more batch closes
        // nothing; finish flushes it) with post-reset cumulative reads.
        assert_eq!(
            windows[1]
                .sample
                .as_ref()
                .unwrap()
                .get(CounterKind::LlcMisses),
            Some(9)
        );
    }

    #[test]
    fn no_group_degrades_to_timing_only() {
        let mut s = WindowSampler::new(1);
        s.start(0, None);
        s.on_batch(10, || None);
        s.on_batch(30, || None);
        let windows = s.finish(30, || None);
        assert_eq!(windows.len(), 2);
        for w in &windows {
            assert!(w.timing_only());
            assert_eq!(w.pmu_residency(), None);
            assert!(!w.scaled_below(0.5));
        }
        assert_eq!(windows[0].span_ms(), 1e-5);
        let j = window_json(&windows[0]);
        assert_eq!(j["counters"].as_str(), Some("timing-only"));
    }

    #[test]
    fn disabled_sampler_is_inert() {
        let mut s = WindowSampler::new(0);
        assert!(!s.enabled());
        s.start(0, None);
        assert_eq!(s.on_batch(10, || panic!("must not read")), None);
        assert!(s.finish(20, || panic!("must not read")).is_empty());
    }

    #[test]
    fn residency_and_scaling_thresholds() {
        let w = WindowSample {
            index: 0,
            start_batch: 0,
            batches: 1,
            start_ns: 0,
            end_ns: 100,
            sample: Some(cumulative(10, 1000, 400)),
        };
        assert_eq!(w.pmu_residency(), Some(0.4));
        assert!(w.scaled_below(0.5));
        assert!(!w.scaled_below(0.3));
    }
}
