//! Per-worker event rings: bounded, allocation-free, drop-counting.
//!
//! Each worker owns its ring exclusively — events are recorded by the
//! thread that produced them and only read back after the run — so the
//! hot path is a bounds check and a slot write: no locks, no atomics,
//! no allocation (the buffer is sized once up front). When the ring is
//! full the oldest event is overwritten and the drop counter advances;
//! a truncated timeline always says how much it lost.

use std::time::Instant;

/// Default per-worker ring capacity (events). At ~32 bytes per event
/// this is ~2 MiB per worker — enough for tens of thousands of batches
/// before wrap-around, while still bounding a pathological run.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Which side of the half-full/half-empty gate failed for a blocked
/// segment — the *reason* a traced stall could not run it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallReason {
    /// An input ring held less than one batch: the upstream producer
    /// had not caught up (the blocked segment is being *starved*).
    ProducerEmpty,
    /// An output ring lacked space for one batch: the downstream
    /// consumer was backed up (the blocked segment is being
    /// *backpressured*).
    ConsumerFull,
}

impl StallReason {
    /// JSON/report name.
    pub fn name(&self) -> &'static str {
        match self {
            StallReason::ProducerEmpty => "producer-empty",
            StallReason::ConsumerFull => "consumer-full",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(s: &str) -> Option<StallReason> {
        match s {
            "producer-empty" => Some(StallReason::ProducerEmpty),
            "consumer-full" => Some(StallReason::ConsumerFull),
            _ => None,
        }
    }
}

/// What a traced stall was blocked on: the first gate failure found
/// scanning the worker's runnable segments. Computed only when tracing
/// is enabled — the untraced stall path never inspects rings twice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blocked {
    /// Edge (ring) whose gate check failed.
    pub edge: usize,
    /// Segment that could not run.
    pub seg: usize,
    /// The segment on the other end of `edge` — the producer that
    /// starves `seg` ([`StallReason::ProducerEmpty`]) or the consumer
    /// that backpressures it ([`StallReason::ConsumerFull`]).
    pub peer: usize,
    /// Which side of the gate failed.
    pub reason: StallReason,
}

/// What happened. Spans carry their duration in [`Event::dur_ns`];
/// instantaneous events leave it zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// One granularity-`T` batch of segment `seg` (span).
    Batch {
        /// Segment index (contracted topological order).
        seg: usize,
    },
    /// A block of consecutive firings in the serial executor (span) —
    /// the serial schedule is a flat firing list, so its timeline is
    /// chunked by round rather than by segment.
    SerialBlock {
        /// Block ordinal (0-based).
        index: u64,
    },
    /// An unproductive scheduling pass (span): no owned segment was
    /// schedulable, so the worker yielded (`parked = false`) or blocked
    /// on the progress condvar (`parked = true`).
    Stall {
        /// Whether the pass fell through the spin tier into the condvar.
        parked: bool,
        /// The first failing gate found among the worker's unfinished
        /// segments — which edge blocked whom, and why. `None` when
        /// attribution was skipped (tracing off) or no owned segment
        /// had work left (end-of-run drain).
        blocked: Option<Blocked>,
    },
    /// Occupancy of ring `ring` sampled at a batch (or serial-block)
    /// boundary (instant): `len` of `cap` items resident.
    RingOccupancy {
        /// Ring (edge) index.
        ring: usize,
        /// Items resident at the sample instant.
        len: u64,
        /// Ring capacity in items.
        cap: u64,
    },
    /// The steady-state counter reset: the warmup window closed and the
    /// group was zeroed (at the shared barrier under epoch warmup).
    WarmupReset,
    /// This worker faulted in the pages of ring `ring` before the run
    /// (first-touch NUMA placement).
    RingFirstTouch {
        /// Ring (edge) index.
        ring: usize,
    },
    /// Counter window `index` closed; the payload lives in the matching
    /// [`WindowSample`](crate::WindowSample).
    Window {
        /// Window ordinal (0-based, per worker).
        index: u64,
    },
    /// Segment `seg` was handed off live from worker `from` to worker
    /// `to` (instant, recorded by the releasing worker at the batch
    /// boundary where the segment was quiesced).
    Migration {
        /// Segment index (contracted topological order).
        seg: usize,
        /// Worker releasing the segment.
        from: usize,
        /// Worker receiving the segment.
        to: usize,
    },
}

/// One timeline entry: a monotonic timestamp (nanoseconds since the
/// run's [`Clock`] origin), a span duration (zero for instants), and
/// the kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the run origin (span start for spans).
    pub ts_ns: u64,
    /// Span duration in nanoseconds; zero for instantaneous events.
    pub dur_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Monotonic run clock: a shared origin every worker timestamps
/// against, so per-worker timelines merge on a common axis.
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    origin: Instant,
}

impl Clock {
    /// Start the clock now (call once per run, before spawning workers).
    pub fn start() -> Clock {
        Clock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the origin.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Nanoseconds from the origin to `t` (a timestamp taken with
    /// `Instant::now()` on any thread after [`Clock::start`]).
    #[inline]
    pub fn offset_ns(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.origin).as_nanos() as u64
    }
}

/// A bounded circular event buffer owned by one worker.
///
/// `push` never allocates (capacity is reserved up front) and never
/// blocks; once full, each push overwrites the oldest event and counts
/// a drop. Iteration yields surviving events in record (and therefore
/// timestamp) order.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    /// Oldest slot once the buffer has wrapped; next overwrite target.
    head: usize,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `cap` events (`cap` is clamped to >= 1).
    pub fn with_capacity(cap: usize) -> EventRing {
        let cap = cap.max(1);
        EventRing {
            buf: Vec::with_capacity(cap),
            head: 0,
            cap,
            dropped: 0,
        }
    }

    /// Record an event, overwriting the oldest (and counting a drop)
    /// when full.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently held (<= capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events held before overwriting begins.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events lost to overwriting so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Surviving events in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Consume the ring into `(chronological events, drop count)`.
    pub fn into_parts(mut self) -> (Vec<Event>, u64) {
        self.buf.rotate_left(self.head);
        (self.buf, self.dropped)
    }
}

/// One worker's recorded events plus its drop count — what an
/// [`EventRing`] leaves behind after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Timeline {
    /// Surviving events, sorted by timestamp (stable: ties keep their
    /// record order).
    pub events: Vec<Event>,
    /// Events lost to ring overflow.
    pub dropped: u64,
}

/// The per-worker recording handle: an [`EventRing`] when tracing is
/// on, nothing when it is off. A disabled tracer's [`Tracer::record`]
/// is one predictable branch — the ring, its buffer, and every
/// timestamp read are simply absent.
#[derive(Debug)]
pub struct Tracer {
    ring: Option<EventRing>,
}

impl Tracer {
    /// A disabled tracer: records nothing, costs a branch.
    pub fn off() -> Tracer {
        Tracer { ring: None }
    }

    /// An enabled tracer with the given ring capacity (0 selects
    /// [`DEFAULT_RING_CAPACITY`]).
    pub fn on(capacity: usize) -> Tracer {
        let cap = if capacity == 0 {
            DEFAULT_RING_CAPACITY
        } else {
            capacity
        };
        Tracer {
            ring: Some(EventRing::with_capacity(cap)),
        }
    }

    /// Whether events are being kept.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Record a span (or instant, with `dur_ns = 0`). No-op when
    /// disabled.
    #[inline]
    pub fn record(&mut self, ts_ns: u64, dur_ns: u64, kind: EventKind) {
        if let Some(ring) = &mut self.ring {
            ring.push(Event {
                ts_ns,
                dur_ns,
                kind,
            });
        }
    }

    /// Finish recording: the timeline when tracing was on. Spans are
    /// recorded at completion but timestamped at their *start*, so the
    /// raw ring can hold a span after an instant that fell inside it;
    /// finishing stable-sorts by timestamp (ties keep record order),
    /// making every returned timeline monotone.
    pub fn finish(self) -> Option<Timeline> {
        self.ring.map(|r| {
            let (mut events, dropped) = r.into_parts();
            events.sort_by_key(|e| e.ts_ns);
            Timeline { events, dropped }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: 0,
            kind: EventKind::Stall {
                parked: false,
                blocked: None,
            },
        }
    }

    #[test]
    fn fills_then_wraps_overwriting_oldest() {
        let mut r = EventRing::with_capacity(4);
        for t in 0..4 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        // Two more: 0 and 1 are gone, 2..=5 survive, in order.
        r.push(ev(4));
        r.push(ev(5));
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = r.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2, 3, 4, 5]);
    }

    #[test]
    fn wraps_many_times_and_accounts_every_drop() {
        let mut r = EventRing::with_capacity(3);
        for t in 0..100 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 97);
        let (events, dropped) = r.into_parts();
        assert_eq!(dropped, 97);
        assert_eq!(
            events.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![97, 98, 99]
        );
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut r = EventRing::with_capacity(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.iter().next().unwrap().ts_ns, 2);
    }

    #[test]
    fn push_does_not_allocate_past_capacity() {
        let mut r = EventRing::with_capacity(8);
        let cap_before = r.buf.capacity();
        for t in 0..1000 {
            r.push(ev(t));
        }
        assert_eq!(r.buf.capacity(), cap_before);
    }

    #[test]
    fn clock_timestamps_are_monotonic_per_worker() {
        // Events recorded in program order through one Clock carry
        // non-decreasing timestamps — the property the merge relies on.
        let clock = Clock::start();
        let mut r = EventRing::with_capacity(64);
        for _ in 0..50 {
            r.push(ev(clock.now_ns()));
        }
        let ts: Vec<u64> = r.iter().map(|e| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
        // Wrap-around preserves chronology too.
        let mut small = EventRing::with_capacity(8);
        for _ in 0..50 {
            small.push(ev(clock.now_ns()));
        }
        let ts: Vec<u64> = small.iter().map(|e| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::off();
        assert!(!t.enabled());
        t.record(1, 0, EventKind::WarmupReset);
        assert!(t.finish().is_none());
    }

    #[test]
    fn enabled_tracer_keeps_events_and_drops() {
        let mut t = Tracer::on(2);
        for i in 0..5u64 {
            t.record(i, 1, EventKind::Batch { seg: i as usize });
        }
        let tl = t.finish().unwrap();
        assert_eq!(tl.events.len(), 2);
        assert_eq!(tl.dropped, 3);
        assert_eq!(tl.events[0].ts_ns, 3);
        assert_eq!(tl.events[1].ts_ns, 4);
    }

    #[test]
    fn zero_capacity_selects_default() {
        let t = Tracer::on(0);
        assert_eq!(t.ring.as_ref().unwrap().capacity(), DEFAULT_RING_CAPACITY);
    }
}
