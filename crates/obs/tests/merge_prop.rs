//! Property tests for timeline merging: the merged view is globally
//! time-ordered and never reorders one worker's events relative to
//! each other — the invariant every downstream consumer (the Chrome
//! exporter, phase analysis) relies on.

use ccs_obs::{merge_timelines, Event, EventKind};
use proptest::prelude::*;

/// Build one worker's timeline from timestamp *gaps* (so per-worker
/// monotonicity holds by construction, ties included: gap 0 repeats a
/// timestamp). The segment payload encodes the record order.
fn timeline(gaps: &[u64]) -> Vec<Event> {
    let mut ts = 0u64;
    gaps.iter()
        .enumerate()
        .map(|(i, &gap)| {
            ts += gap;
            Event {
                ts_ns: ts,
                dur_ns: 0,
                kind: EventKind::Batch { seg: i },
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    fn merged_timelines_respect_per_worker_order(
        worker_gaps in prop::collection::vec(
            prop::collection::vec(0u64..50, 0..40),
            1..6,
        ),
    ) {
        let timelines: Vec<Vec<Event>> =
            worker_gaps.iter().map(|g| timeline(g)).collect();
        let input: Vec<(usize, &[Event])> = timelines
            .iter()
            .enumerate()
            .map(|(w, t)| (w, t.as_slice()))
            .collect();
        let merged = merge_timelines(&input);

        // Nothing lost, nothing invented.
        let total: usize = timelines.iter().map(|t| t.len()).sum();
        prop_assert_eq!(merged.len(), total);

        // Globally time-ordered.
        prop_assert!(merged.windows(2).all(|p| p[0].1.ts_ns <= p[1].1.ts_ns));

        // Each worker's events appear in exactly their recorded order
        // (the seg payload is that worker's record ordinal).
        for (w, t) in timelines.iter().enumerate() {
            let seen: Vec<usize> = merged
                .iter()
                .filter(|(mw, _)| *mw == w)
                .map(|(_, e)| match e.kind {
                    EventKind::Batch { seg } => seg,
                    _ => unreachable!(),
                })
                .collect();
            prop_assert_eq!(seen, (0..t.len()).collect::<Vec<_>>(), "worker {}", w);
        }
    }
}
