//! The serial fused executor: the fused-firing hot path on one thread.
//!
//! Runs the same two-level schedule as the classic serial executor —
//! segments in contracted topological order, one granularity-`T` batch
//! each per round — but each batch goes through the segment's
//! precompiled [`ccs_partition::FiringPlan`]: cross inputs bulk-copied
//! into a flat arena, firings running against precomputed arena spans
//! (with the same software prefetch as the parallel fused path), cross
//! outputs bulk-copied out. Internal edges never touch a ring, so the
//! per-firing ring bookkeeping of `ccs_runtime::serial` disappears from
//! the hot loop.
//!
//! Observability mirrors [`ccs_runtime::serial::execute_obs`]'s
//! [`ObsConfig`] semantics at batch granularity: the warmup reset and
//! `SerialBlock` spans land on the first batch boundary at or past the
//! configured firing counts (exact for the round-aligned windows the
//! sweep engine uses), and counter windows tick once per firing so
//! window indices line up with the classic serial run.

use crate::plan::{DagExecError, ExecPlan};
use crate::run::fire_arena_plan;
use ccs_graph::RateAnalysis;
use ccs_obs::{Clock, EventKind, Tracer, WindowSampler};
use ccs_partition::Partition;
use ccs_runtime::instance::Instance;
use ccs_runtime::ring::Ring;
use ccs_runtime::serial::{ObsConfig, RunStats, SerialObs};
use std::time::Instant;

/// Execute `rounds` granularity-`T` rounds of the partitioned schedule
/// on the calling thread through the fused hot path. Fires node `v`
/// exactly `rounds·T·gain(v)` times — the same firings, in the same
/// order, as the classic two-level serial schedule — so the sink digest
/// is bit-identical to `ccs_runtime::serial::execute` on
/// `ccs_sched::partitioned::inhomogeneous` and to
/// [`crate::run::execute_dag_cfg`] at any worker count.
pub fn execute_serial_fused(
    mut inst: Instance,
    ra: &RateAnalysis,
    p: &Partition,
    m_items: u64,
    rounds: u64,
    cfg: &ObsConfig,
) -> Result<(RunStats, SerialObs), DagExecError> {
    let plan = ExecPlan::build(&inst.graph, ra, p, m_items)?;
    let g = &inst.graph;

    // Cross rings at plan capacity; internal edges live in the arenas
    // and keep one-slot placeholders for uniform indexing.
    let mut rings: Vec<Ring> = g
        .edge_ids()
        .map(|e| {
            let edge = g.edge(e);
            let internal = plan.seg_of_node[edge.src.idx()] == plan.seg_of_node[edge.dst.idx()];
            let cap = if internal {
                1
            } else {
                usize::try_from(plan.capacities[e.idx()].max(1)).expect("ring fits")
            };
            Ring::new(cap)
        })
        .collect();
    let mut arenas: Vec<Vec<f32>> = plan
        .fused
        .iter()
        .map(|f| vec![0.0f32; f.arena_len])
        .collect();
    // Kernel index per segment-local node, so firings dispatch straight
    // into the instance's kernel table.
    let kidx: Vec<Vec<usize>> = plan
        .segments
        .iter()
        .map(|s| s.nodes.iter().map(|v| v.idx()).collect())
        .collect();

    let counter_set = if cfg.counters {
        ccs_perf::CounterBuilder::cache_suite().open_self_thread()
    } else {
        ccs_perf::CounterSet::unavailable("counters not requested")
    };
    let total_firings = rounds * plan.firings_per_round();
    // A warmup that would leave no measured window is ignored, exactly
    // as in the classic serial executor.
    let warmup = if cfg.warmup_firings < total_firings {
        cfg.warmup_firings
    } else {
        0
    };
    let clock = Clock::start();
    let mut tracer = if cfg.trace {
        Tracer::on(cfg.trace_capacity)
    } else {
        Tracer::off()
    };
    let mut wins = WindowSampler::new(cfg.window_firings);
    counter_set.reset();
    counter_set.enable();
    if wins.enabled() {
        wins.start(clock.now_ns(), counter_set.sample());
    }

    let mut fired = 0u64;
    let mut warmed = warmup == 0;
    let mut block_index = 0u64;
    let mut block_start_ns = clock.now_ns();
    let start = Instant::now();
    for _ in 0..rounds {
        for si in 0..plan.segments.len() {
            if !warmed && fired >= warmup {
                // Same flush/reset/rebaseline protocol as the classic
                // executors: never reset under an open window baseline.
                wins.flush(clock.now_ns(), || counter_set.sample());
                counter_set.reset();
                if wins.enabled() {
                    wins.rebaseline(clock.now_ns(), counter_set.sample());
                }
                tracer.record(clock.now_ns(), 0, EventKind::WarmupReset);
                warmed = true;
            }
            let fp = &plan.fused[si];
            let arena = &mut arenas[si];
            for io in &fp.loads {
                let r = &mut rings[io.edge.idx()];
                let (a, b) = r.peek(io.items);
                arena[io.offset..io.offset + a.len()].copy_from_slice(a);
                arena[io.offset + a.len()..io.offset + io.items].copy_from_slice(b);
                r.release(io.items);
            }
            fire_arena_plan(fp, arena, |local, ins, outs| {
                inst.kernels[kidx[si][local]].fire(ins, outs);
            });
            for io in &fp.stores {
                let r = &mut rings[io.edge.idx()];
                let (a, b) = r.reserve(io.items);
                let n = a.len();
                a.copy_from_slice(&arena[io.offset..io.offset + n]);
                b.copy_from_slice(&arena[io.offset + n..io.offset + io.items]);
                r.commit(io.items);
            }
            let batch_firings = fp.firings.len() as u64;
            fired += batch_firings;
            if wins.enabled() {
                // One tick per firing keeps window indices (and the
                // partial-final window) aligned with the classic run.
                for _ in 0..batch_firings {
                    if let Some(index) = wins.on_batch(clock.now_ns(), || counter_set.sample()) {
                        tracer.record(clock.now_ns(), 0, EventKind::Window { index });
                    }
                }
            }
            if cfg.trace && cfg.block_firings > 0 {
                while fired >= (block_index + 1) * cfg.block_firings {
                    let now = clock.now_ns();
                    tracer.record(
                        block_start_ns,
                        now - block_start_ns,
                        EventKind::SerialBlock { index: block_index },
                    );
                    block_index += 1;
                    block_start_ns = now;
                }
            }
        }
    }
    let wall = start.elapsed();
    if cfg.trace && cfg.block_firings > 0 && !fired.is_multiple_of(cfg.block_firings) {
        let now = clock.now_ns();
        tracer.record(
            block_start_ns,
            now - block_start_ns,
            EventKind::SerialBlock { index: block_index },
        );
    }
    let windows = wins.finish(clock.now_ns(), || counter_set.sample());
    counter_set.disable();

    let sink_items = match g.single_sink() {
        Some(s) => {
            let consume: u64 = g.in_edges(s).iter().map(|&e| g.edge(e).consume).sum();
            rounds * plan.quota[s.idx()] * consume
        }
        None => 0,
    };
    let stats = RunStats {
        wall,
        firings: fired,
        sink_items,
        digest: inst.sink_digest(),
    };
    let obs = SerialObs {
        sample: counter_set.sample(),
        windows,
        trace: tracer.finish(),
    };
    Ok((stats, obs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};
    use ccs_partition::dag_greedy;
    use ccs_sched::partitioned;

    fn classic(
        g: &ccs_graph::StreamGraph,
        ra: &RateAnalysis,
        p: &Partition,
        m: u64,
        rounds: u64,
    ) -> RunStats {
        let run = partitioned::inhomogeneous(g, ra, p, m, rounds).unwrap();
        let mut inst = Instance::synthetic(g.clone());
        ccs_runtime::serial::execute(&mut inst, &run)
    }

    #[test]
    fn fused_serial_matches_classic_serial() {
        let cfg = LayeredCfg {
            layers: 4,
            max_width: 3,
            density: 0.3,
            state: StateDist::Uniform(8, 48),
            max_q: 3,
        };
        for seed in 0..5u64 {
            let g = gen::layered(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let p = dag_greedy::greedy_topo(&g, 96);
            let want = classic(&g, &ra, &p, 48, 3);
            let inst = Instance::synthetic(g.clone());
            let (got, _) =
                execute_serial_fused(inst, &ra, &p, 48, 3, &ObsConfig::default()).unwrap();
            assert_eq!(got.digest, want.digest, "seed {seed}");
            assert_eq!(got.firings, want.firings, "seed {seed}");
            assert_eq!(got.sink_items, want.sink_items, "seed {seed}");
        }
    }

    #[test]
    fn fused_serial_matches_on_rated_pipelines() {
        for seed in 0..4u64 {
            let cfg = PipelineCfg {
                len: 10,
                state: StateDist::Uniform(8, 48),
                max_q: 3,
                max_rate_scale: 2,
            };
            let g = gen::pipeline(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let pp = ccs_partition::pipeline::greedy_theorem5(&g, &ra, 48).unwrap();
            let want = classic(&g, &ra, &pp.partition, 48, 2);
            let inst = Instance::synthetic(g.clone());
            let (got, _) =
                execute_serial_fused(inst, &ra, &pp.partition, 48, 2, &ObsConfig::default())
                    .unwrap();
            assert_eq!(got.digest, want.digest, "seed {seed}");
        }
    }

    #[test]
    fn observability_does_not_perturb_and_aligns_windows() {
        let g = gen::pipeline_uniform(8, 32);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 64);
        let rounds = 4u64;
        let want = classic(&g, &ra, &p, 16, rounds);
        let fpr = {
            let plan = ExecPlan::build(&g, &ra, &p, 16).unwrap();
            plan.firings_per_round()
        };
        let obs_cfg = ObsConfig {
            counters: true,
            warmup_firings: fpr,
            window_firings: fpr,
            block_firings: fpr,
            trace: true,
            trace_capacity: 0,
        };
        let inst = Instance::synthetic(g.clone());
        let (got, obs) = execute_serial_fused(inst, &ra, &p, 16, rounds, &obs_cfg).unwrap();
        assert_eq!(got.digest, want.digest);
        assert_eq!(got.firings, want.firings);
        assert_eq!(got.sink_items, want.sink_items);
        // One window and one block span per round, warmup reset traced.
        assert_eq!(obs.windows.len() as u64, rounds);
        let tl = obs.trace.expect("tracing was on");
        let blocks = tl
            .events
            .iter()
            .filter(|e| matches!(e.kind, ccs_obs::EventKind::SerialBlock { .. }))
            .count() as u64;
        assert_eq!(blocks, rounds);
        assert!(tl
            .events
            .iter()
            .any(|e| matches!(e.kind, ccs_obs::EventKind::WarmupReset)));
    }

    #[test]
    fn zero_rounds_is_a_noop() {
        let g = gen::pipeline_uniform(4, 8);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 16);
        let inst = Instance::synthetic(g.clone());
        let (stats, _) = execute_serial_fused(inst, &ra, &p, 8, 0, &ObsConfig::default()).unwrap();
        assert_eq!(stats.firings, 0);
        assert_eq!(stats.sink_items, 0);
    }
}
