//! # ccs-exec — cache-aware multicore DAG executor
//!
//! Where `ccs-runtime::parallel_pipeline` runs *chains* on worker threads
//! and `ccs-runtime::parallel` runs *homogeneous* graphs, this crate runs
//! an arbitrary well-ordered c-bounded [`ccs_partition::Partition`] of a
//! general streaming dag on real threads:
//!
//! * **Segment affinity.** Every segment (partition component) is
//!   pinned to exactly one worker thread for the whole run, so a
//!   segment's module state stays in the cache of whichever core runs
//!   that worker — the multicore reading of the paper's two-level
//!   schedule, where a "component load" becomes a per-worker working
//!   set. (Affinity is segment→thread; add
//!   [`run::RunConfig::pin_cores`] to also bind threads to cores, so
//!   the OS cannot migrate a worker away from its cache.)
//! * **×T batches.** Each segment executes its local steady-state
//!   schedule in batches of the §3 granularity `T`
//!   ([`ccs_sched::partitioned::granularity_t`]): one batch moves exactly
//!   `T·gain(e)` items over every incident cross edge, so segment loads
//!   amortize over `Ω(M)` items of traffic.
//! * **Half-full/half-empty continuity.** Cross-segment channels are
//!   lock-free [`ccs_runtime::SpscRing`]s of capacity `2·T·gain(e)`
//!   (double-buffered). A segment is *schedulable* when every input ring
//!   holds at least one batch and every output ring has room for one —
//!   exactly the paper's §3 rule, generalized from chains to dags. A
//!   ring's producer and consumer segments run concurrently; the SPSC
//!   protocol plus static pinning (one pushing worker, one popping
//!   worker per ring) makes that safe without locks on the data plane.
//! * **Topology awareness.** [`Placement::Llc`] scores candidate
//!   workers by cross-edge traffic discounted by hardware distance over
//!   a `ccs-topo` machine tree (same core > same LLC > same node >
//!   cross node), and [`run::RunConfig::pin_cores`] binds each worker
//!   to its planned core so the OS can't migrate the working set away.
//! * **Measured cache behavior.** With [`run::RunConfig::counters`],
//!   each worker opens a `ccs-perf` hardware counter group after
//!   pinning and samples it around its firing loop, so per-worker and
//!   run-wide LLC misses/item, MPKI, and IPC are reported per placement
//!   mode — the paper's cache claim, observed rather than inferred
//!   (graceful `counters: None` where `perf_event_open` is denied).
//!   [`run::RunConfig::warmup_batches`] discards a cold-start window so
//!   readings reflect steady state (exact under the default
//!   [`run::WarmupMode::Epoch`] barrier reset, which makes per-worker
//!   aggregates cover exactly the post-warmup batches),
//!   [`run::RunConfig::segment_counters`] attributes counting windows
//!   to individual segments ([`stats::SegmentCounters`]), and
//!   [`run::RunConfig::first_touch_rings`] faults each ring's pages in
//!   from its consumer worker for first-touch NUMA placement;
//!   methodology in `docs/MEASUREMENT.md`.
//! * **Time-resolved observability.** With [`run::RunConfig::trace`],
//!   each worker records batch and stall spans, warmup resets, and
//!   ring first-touches into a private bounded `ccs-obs` event ring
//!   (drops counted, never silent), and
//!   [`run::RunConfig::window_batches`] closes a counter window every
//!   W batches — cumulative group reads differenced by
//!   `delta_since` into [`stats::WorkerStats::windows`] — so warmup
//!   decay and phase behavior are visible, not just end-of-run
//!   aggregates. `ccs trace` exports the merged timelines as Chrome
//!   trace-event JSON; event model in `docs/OBSERVABILITY.md`.
//! * **Online adaptation.** With [`run::RunConfig::adapt`], a
//!   `ccs-adapt` controller consumes the live window stream and hands
//!   segments off between workers at batch boundaries — without
//!   stopping the stream — when counter drift or stall pressure says
//!   the static placement went stale ([`run::Migration`] scripts the
//!   same handoff deterministically for the equivalence proofs;
//!   protocol in `docs/ADAPTIVE.md`).
//! * **Fused hot path.** With [`run::RunConfig::fused`], each batch
//!   runs through a precompiled [`ccs_partition::FiringPlan`]: cross
//!   inputs bulk-loaded into a flat per-segment arena (one
//!   `peek`/`release` per ring per batch), firings executing against
//!   precomputed arena spans with a software prefetch on the next
//!   firing's inputs, cross outputs bulk-stored (one `reserve`/`commit`
//!   per ring per batch). Internal edges never touch a ring.
//!   [`serial_fused::execute_serial_fused`] is the one-thread analogue;
//!   layout and measured deltas in `docs/HOTPATH.md`.
//! * **Determinism.** Synchronous dataflow is schedule-deterministic, so
//!   the sink digest is bit-identical to the serial executor's for the
//!   same number of batches, at every worker count, placement, and
//!   pinning mode — the correctness contract the test suite enforces.
//!
//! Layers: [`plan::ExecPlan`] (batch schedules + ring capacities),
//! [`place`] (segment→worker placement, flat or topology-aware),
//! [`run::execute_dag_cfg`] (the worker loop: bounded spin → condvar
//! stall path, optional core pinning), [`stats`] (per-worker and
//! aggregate reports, including wall-clock stall time).

pub mod place;
pub mod plan;
pub mod run;
pub mod serial_fused;
pub mod stats;

#[doc(no_inline)]
pub use ccs_adapt::AdaptConfig;
#[doc(no_inline)]
pub use ccs_obs::{Timeline, WindowSample};
pub use place::{assign_on, fair_share, Placement};
pub use plan::{DagExecError, ExecPlan, SegmentPlan};
pub use run::{execute_dag, execute_dag_cfg, Migration, RunConfig, WarmupMode};
pub use serial_fused::execute_serial_fused;
pub use stats::{DagRunStats, SegmentCounters, WorkerStats};
