//! Segment → worker placement.
//!
//! Pinning decides which core's cache each segment's state lives in, and
//! which cross edges become cross-core traffic. Three policies:
//!
//! * [`Placement::RoundRobin`] — segments (in contracted topological
//!   order) dealt to workers cyclically; balances segment counts and
//!   spreads a pipeline across cores.
//! * [`Placement::CommGreedy`] — communication-volume-greedy, in the
//!   spirit of communication-affine core mapping: walk segments in
//!   contracted topological order and put each on the worker with which
//!   it already shares the most per-iteration cross-edge traffic
//!   ([`RateAnalysis::edge_traffic`]), breaking ties toward the
//!   least-loaded worker (by placed segment state).
//! * [`Placement::Llc`] — topology-aware: workers map to cores via
//!   [`ccs_topo::plan_worker_cores`] (one LLC cluster per worker while
//!   workers fit, cache-compact packing after that), and
//!   each segment scores candidate workers by cross-edge traffic to
//!   already-placed neighbors *discounted by hardware distance*
//!   ([`ccs_topo::Distance::affinity_weight`]: same core > same LLC >
//!   same node > cross node). High-gain-edge neighbors therefore
//!   cluster into one LLC domain — cross traffic becomes an LLC hit —
//!   and only spill to the next cluster when the fair-share load cap
//!   forces them to.
//!
//! `CommGreedy` and `Llc` share the same load cap: a worker is "open"
//! for a segment while admitting it keeps the worker within its fair
//! share of the total segment state, so affinity can never pile the
//! whole graph onto one core.

use crate::plan::ExecPlan;
use ccs_graph::{RateAnalysis, StreamGraph};
use ccs_topo::Topology;

/// Placement policy for pinning segments to workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Placement {
    /// Segment `i` (contracted topological order) goes to worker
    /// `i mod workers`.
    #[default]
    RoundRobin,
    /// Greedy maximization of intra-worker communication volume.
    CommGreedy,
    /// Greedy maximization of distance-weighted communication volume
    /// against a machine topology (LLC/NUMA aware).
    Llc,
}

impl Placement {
    /// Parse a CLI-style name.
    pub fn parse(name: &str) -> Option<Placement> {
        match name {
            "rr" | "round-robin" => Some(Placement::RoundRobin),
            "greedy" | "comm-greedy" => Some(Placement::CommGreedy),
            "llc" => Some(Placement::Llc),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::CommGreedy => "comm-greedy",
            Placement::Llc => "llc",
        }
    }
}

/// Fair-share load cap used by the greedy placements: admitting a
/// segment must keep the worker within the ceiling of its share of
/// total segment state.
pub fn fair_share(plan: &ExecPlan, workers: usize) -> u64 {
    assert!(workers >= 1, "at least one worker required");
    let total: u64 = plan.segments.iter().map(|s| s.state_words).sum();
    total.div_ceil(workers as u64).max(1)
}

/// Assign each segment of `plan` to a worker in `0..workers`, ignoring
/// machine topology (a flat single-LLC machine is assumed; for `llc`
/// placement this makes it coincide with distance-free greedy).
pub fn assign(
    g: &StreamGraph,
    ra: &RateAnalysis,
    plan: &ExecPlan,
    workers: usize,
    placement: Placement,
) -> Vec<usize> {
    assign_on(
        g,
        ra,
        plan,
        workers,
        placement,
        &Topology::single_cluster(workers),
        false,
    )
}

/// Assign each segment of `plan` to a worker in `0..workers`, with
/// worker `w` running on the core [`ccs_topo::plan_worker_cores`]
/// plans for it (one whole LLC cluster per worker while workers fit,
/// cache-compact packing after that) — the same mapping
/// [`ccs_topo::plan_bindings`] pins, so placement scores and pinned
/// reality agree. `pinned` says whether workers will actually be bound
/// to those cores: when they are not, two *distinct* workers wrapped
/// onto one core index (oversubscription) get same-LLC rather than
/// same-core credit, since the OS may run them anywhere — claiming
/// same-core would deliberately split hot edges across unrelated
/// threads.
pub fn assign_on(
    g: &StreamGraph,
    ra: &RateAnalysis,
    plan: &ExecPlan,
    workers: usize,
    placement: Placement,
    topo: &Topology,
    pinned: bool,
) -> Vec<usize> {
    assert!(workers >= 1, "at least one worker required");
    let k = plan.segments.len();
    match placement {
        Placement::RoundRobin => (0..k).map(|i| i % workers).collect(),
        Placement::CommGreedy => greedy_by_affinity(g, ra, plan, workers, |w, o| u64::from(w == o)),
        Placement::Llc => {
            let core_of = ccs_topo::plan_worker_cores(topo, workers);
            greedy_by_affinity(g, ra, plan, workers, |w, o| {
                let mut d = topo.distance(core_of[w], core_of[o]);
                if w != o && d == ccs_topo::Distance::SameCore && !pinned {
                    d = ccs_topo::Distance::SameLlc;
                }
                d.affinity_weight()
            })
        }
    }
}

/// The shared greedy walk: segments in contracted topological order,
/// each scored per candidate worker as Σ traffic(e)·weight(candidate,
/// owner) over cross edges to already-placed neighbors. Among workers
/// under the fair-share cap: max score, ties toward least placed state,
/// then lowest id (deterministic). If every worker is at its fair
/// share, fall back to the least loaded.
fn greedy_by_affinity(
    g: &StreamGraph,
    ra: &RateAnalysis,
    plan: &ExecPlan,
    workers: usize,
    weight: impl Fn(usize, usize) -> u64,
) -> Vec<usize> {
    let k = plan.segments.len();
    let mut owner = vec![usize::MAX; k];
    let mut load = vec![0u64; workers];
    let fair = fair_share(plan, workers);
    for si in 0..k {
        // Traffic per already-placed neighbor's worker first, spread
        // through the distance weights second — O(edges + workers²)
        // per segment instead of O(edges · workers).
        let mut owner_traffic = vec![0u64; workers];
        let seg = &plan.segments[si];
        for &(e, _) in seg.in_batch.iter().chain(&seg.out_batch) {
            let edge = g.edge(e);
            let other = if plan.seg_of_node[edge.src.idx()] == si {
                plan.seg_of_node[edge.dst.idx()]
            } else {
                plan.seg_of_node[edge.src.idx()]
            };
            if owner[other] != usize::MAX {
                owner_traffic[owner[other]] += ra.edge_traffic(g, e);
            }
        }
        let mut affinity = vec![0u64; workers];
        for (o, &t) in owner_traffic.iter().enumerate() {
            if t == 0 {
                continue;
            }
            for (w, a) in affinity.iter_mut().enumerate() {
                *a += t * weight(w, o);
            }
        }
        let w = (0..workers)
            .filter(|&w| load[w] + seg.state_words <= fair)
            .max_by(|&a, &b| {
                affinity[a]
                    .cmp(&affinity[b])
                    .then(load[b].cmp(&load[a]))
                    .then(b.cmp(&a))
            })
            .or_else(|| (0..workers).min_by_key(|&w| (load[w], w)))
            .expect("workers >= 1");
        owner[si] = w;
        load[w] += seg.state_words;
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecPlan;
    use ccs_graph::gen::{self, LayeredCfg, StateDist};
    use ccs_partition::dag_greedy;
    use ccs_topo::TopoSpec;

    fn setup() -> (ccs_graph::StreamGraph, RateAnalysis, ExecPlan) {
        let g = gen::layered(
            &LayeredCfg {
                layers: 5,
                max_width: 4,
                density: 0.4,
                state: StateDist::Uniform(8, 32),
                max_q: 2,
            },
            7,
        );
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 64);
        let plan = ExecPlan::build(&g, &ra, &p, 32).unwrap();
        (g, ra, plan)
    }

    #[test]
    fn round_robin_cycles() {
        let (g, ra, plan) = setup();
        let owner = assign(&g, &ra, &plan, 3, Placement::RoundRobin);
        for (i, &w) in owner.iter().enumerate() {
            assert_eq!(w, i % 3);
        }
    }

    #[test]
    fn greedy_uses_all_requested_workers_or_fewer_segments() {
        let (g, ra, plan) = setup();
        for workers in [1usize, 2, 4] {
            let owner = assign(&g, &ra, &plan, workers, Placement::CommGreedy);
            assert_eq!(owner.len(), plan.segments.len());
            assert!(owner.iter().all(|&w| w < workers));
        }
    }

    #[test]
    fn greedy_balances_state_across_workers() {
        // Many equal segments on two workers: affinity must not pile
        // everything onto one core once it reaches its fair share.
        let g = gen::pipeline_uniform(16, 32);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 64);
        let plan = ExecPlan::build(&g, &ra, &p, 32).unwrap();
        assert!(plan.segments.len() >= 4);
        let owner = assign(&g, &ra, &plan, 2, Placement::CommGreedy);
        assert!(owner.contains(&0) && owner.contains(&1), "{owner:?}");
        // Chain affinity keeps each worker's share contiguous.
        let switches = owner.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(switches, 1, "{owner:?}");
    }

    #[test]
    fn greedy_is_deterministic() {
        let (g, ra, plan) = setup();
        let a = assign(&g, &ra, &plan, 3, Placement::CommGreedy);
        let b = assign(&g, &ra, &plan, 3, Placement::CommGreedy);
        assert_eq!(a, b);
    }

    #[test]
    fn llc_respects_fair_share_cap() {
        let (g, ra, plan) = setup();
        let topo = Topology::synthetic(&TopoSpec::new(2, 2, 2));
        for workers in [2usize, 4, 8] {
            let owner = assign_on(&g, &ra, &plan, workers, Placement::Llc, &topo, true);
            let fair = fair_share(&plan, workers);
            let mut load = vec![0u64; workers];
            for (si, &w) in owner.iter().enumerate() {
                load[w] += plan.segments[si].state_words;
            }
            // A worker may only exceed the cap through the
            // all-workers-full fallback, which picks the least-loaded
            // worker; it can then be over by at most one segment.
            let max_seg = plan
                .segments
                .iter()
                .map(|s| s.state_words)
                .max()
                .unwrap_or(0);
            for (w, &l) in load.iter().enumerate() {
                assert!(l <= fair + max_seg, "worker {w}: {l} > {fair} + {max_seg}");
            }
        }
    }

    #[test]
    fn llc_keeps_chain_neighbors_in_one_cluster() {
        // A homogeneous pipeline of equal segments on a 2-cluster
        // machine: every edge has equal traffic, so the greedy should
        // fill one LLC cluster's workers with a contiguous run of the
        // chain before crossing to the other cluster — at most one
        // cluster boundary along the whole chain.
        let g = gen::pipeline_uniform(16, 32);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 64);
        let plan = ExecPlan::build(&g, &ra, &p, 32).unwrap();
        assert!(plan.segments.len() >= 4, "{}", plan.segments.len());
        let topo = Topology::synthetic(&TopoSpec::new(1, 2, 2));
        let owner = assign_on(&g, &ra, &plan, 4, Placement::Llc, &topo, true);
        let worker_cores = ccs_topo::plan_worker_cores(&topo, 4);
        let cluster_of = |w: usize| topo.core(worker_cores[w]).cluster;
        let crossings = owner
            .windows(2)
            .filter(|w| cluster_of(w[0]) != cluster_of(w[1]))
            .count();
        assert!(crossings <= 1, "{owner:?}");
    }

    #[test]
    fn llc_spread_gives_each_worker_its_own_cluster() {
        // workers ≤ clusters: spread mode — every worker's planned core
        // sits in a distinct LLC cluster, so no two workers' segment
        // state contends for one cache.
        let topo = Topology::synthetic(&TopoSpec::new(1, 4, 2));
        let cores = ccs_topo::plan_worker_cores(&topo, 4);
        let clusters: std::collections::HashSet<usize> =
            cores.iter().map(|&c| topo.core(c).cluster).collect();
        assert_eq!(clusters.len(), 4);
        // Placement over the spread mapping is deterministic and in range.
        let (g, ra, plan) = setup();
        let a = assign_on(&g, &ra, &plan, 4, Placement::Llc, &topo, true);
        assert_eq!(a, assign_on(&g, &ra, &plan, 4, Placement::Llc, &topo, true));
        assert!(a.iter().all(|&w| w < 4));
    }

    #[test]
    fn llc_on_flat_topology_matches_distance_free_greedy_shape() {
        let (g, ra, plan) = setup();
        let owner = assign(&g, &ra, &plan, 3, Placement::Llc);
        assert_eq!(owner.len(), plan.segments.len());
        assert!(owner.iter().all(|&w| w < 3));
        // Deterministic.
        assert_eq!(owner, assign(&g, &ra, &plan, 3, Placement::Llc));
    }

    #[test]
    fn placement_names_roundtrip() {
        for p in [Placement::RoundRobin, Placement::CommGreedy, Placement::Llc] {
            assert_eq!(Placement::parse(p.name()), Some(p));
        }
        assert_eq!(Placement::parse("rr"), Some(Placement::RoundRobin));
        assert_eq!(Placement::parse("greedy"), Some(Placement::CommGreedy));
        assert_eq!(Placement::parse("llc"), Some(Placement::Llc));
        assert_eq!(Placement::parse("nope"), None);
    }
}
