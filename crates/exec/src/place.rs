//! Segment → worker placement.
//!
//! Pinning decides which core's cache each segment's state lives in, and
//! which cross edges become cross-core traffic. Two policies:
//!
//! * [`Placement::RoundRobin`] — segments (in contracted topological
//!   order) dealt to workers cyclically; balances segment counts and
//!   spreads a pipeline across cores.
//! * [`Placement::CommGreedy`] — communication-volume-greedy, in the
//!   spirit of communication-affine core mapping: walk segments in
//!   contracted topological order and put each on the worker with which
//!   it already shares the most per-iteration cross-edge traffic
//!   ([`RateAnalysis::edge_traffic`]), breaking ties toward the
//!   least-loaded worker (by placed segment state).

use crate::plan::ExecPlan;
use ccs_graph::{RateAnalysis, StreamGraph};

/// Placement policy for pinning segments to workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Placement {
    /// Segment `i` (contracted topological order) goes to worker
    /// `i mod workers`.
    #[default]
    RoundRobin,
    /// Greedy maximization of intra-worker communication volume.
    CommGreedy,
}

impl Placement {
    /// Parse a CLI-style name.
    pub fn parse(name: &str) -> Option<Placement> {
        match name {
            "rr" | "round-robin" => Some(Placement::RoundRobin),
            "greedy" | "comm-greedy" => Some(Placement::CommGreedy),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::CommGreedy => "comm-greedy",
        }
    }
}

/// Assign each segment of `plan` to a worker in `0..workers`.
pub fn assign(
    g: &StreamGraph,
    ra: &RateAnalysis,
    plan: &ExecPlan,
    workers: usize,
    placement: Placement,
) -> Vec<usize> {
    assert!(workers >= 1, "at least one worker required");
    let k = plan.segments.len();
    match placement {
        Placement::RoundRobin => (0..k).map(|i| i % workers).collect(),
        Placement::CommGreedy => {
            let mut owner = vec![usize::MAX; k];
            let mut load = vec![0u64; workers];
            // Load cap: affinity may not pile everything on one core.
            // A worker is "open" for a segment while admitting it would
            // keep the worker within its fair share of the total state.
            let total: u64 = plan.segments.iter().map(|s| s.state_words).sum();
            let fair = total.div_ceil(workers as u64).max(1);
            for si in 0..k {
                // Traffic between segment si and each worker's placed
                // segments, per steady-state iteration.
                let mut affinity = vec![0u64; workers];
                let seg = &plan.segments[si];
                for &(e, _) in seg.in_batch.iter().chain(&seg.out_batch) {
                    let edge = g.edge(e);
                    let other = if plan.seg_of_node[edge.src.idx()] == si {
                        plan.seg_of_node[edge.dst.idx()]
                    } else {
                        plan.seg_of_node[edge.src.idx()]
                    };
                    if owner[other] != usize::MAX {
                        affinity[owner[other]] += ra.edge_traffic(g, e);
                    }
                }
                // Among open workers: max affinity, ties toward least
                // state already placed, then lowest id (deterministic).
                // If every worker is at its fair share, fall back to the
                // least loaded.
                let pick_among = |ws: &mut dyn Iterator<Item = usize>| {
                    ws.max_by(|&a, &b| {
                        affinity[a]
                            .cmp(&affinity[b])
                            .then(load[b].cmp(&load[a]))
                            .then(b.cmp(&a))
                    })
                };
                let w =
                    pick_among(&mut (0..workers).filter(|&w| load[w] + seg.state_words <= fair))
                        .or_else(|| (0..workers).min_by_key(|&w| (load[w], w)))
                        .expect("workers >= 1");
                owner[si] = w;
                load[w] += seg.state_words;
            }
            owner
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecPlan;
    use ccs_graph::gen::{self, LayeredCfg, StateDist};
    use ccs_partition::dag_greedy;

    fn setup() -> (ccs_graph::StreamGraph, RateAnalysis, ExecPlan) {
        let g = gen::layered(
            &LayeredCfg {
                layers: 5,
                max_width: 4,
                density: 0.4,
                state: StateDist::Uniform(8, 32),
                max_q: 2,
            },
            7,
        );
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 64);
        let plan = ExecPlan::build(&g, &ra, &p, 32).unwrap();
        (g, ra, plan)
    }

    #[test]
    fn round_robin_cycles() {
        let (g, ra, plan) = setup();
        let owner = assign(&g, &ra, &plan, 3, Placement::RoundRobin);
        for (i, &w) in owner.iter().enumerate() {
            assert_eq!(w, i % 3);
        }
    }

    #[test]
    fn greedy_uses_all_requested_workers_or_fewer_segments() {
        let (g, ra, plan) = setup();
        for workers in [1usize, 2, 4] {
            let owner = assign(&g, &ra, &plan, workers, Placement::CommGreedy);
            assert_eq!(owner.len(), plan.segments.len());
            assert!(owner.iter().all(|&w| w < workers));
        }
    }

    #[test]
    fn greedy_balances_state_across_workers() {
        // Many equal segments on two workers: affinity must not pile
        // everything onto one core once it reaches its fair share.
        let g = gen::pipeline_uniform(16, 32);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 64);
        let plan = ExecPlan::build(&g, &ra, &p, 32).unwrap();
        assert!(plan.segments.len() >= 4);
        let owner = assign(&g, &ra, &plan, 2, Placement::CommGreedy);
        assert!(owner.contains(&0) && owner.contains(&1), "{owner:?}");
        // Chain affinity keeps each worker's share contiguous.
        let switches = owner.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(switches, 1, "{owner:?}");
    }

    #[test]
    fn greedy_is_deterministic() {
        let (g, ra, plan) = setup();
        let a = assign(&g, &ra, &plan, 3, Placement::CommGreedy);
        let b = assign(&g, &ra, &plan, 3, Placement::CommGreedy);
        assert_eq!(a, b);
    }

    #[test]
    fn placement_names_roundtrip() {
        for p in [Placement::RoundRobin, Placement::CommGreedy] {
            assert_eq!(Placement::parse(p.name()), Some(p));
        }
        assert_eq!(Placement::parse("rr"), Some(Placement::RoundRobin));
        assert_eq!(Placement::parse("greedy"), Some(Placement::CommGreedy));
        assert_eq!(Placement::parse("nope"), None);
    }
}
