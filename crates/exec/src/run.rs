//! The segment-affine worker loop.
//!
//! Each worker owns a fixed set of segments (kernels, scratch, and — by
//! the SPSC discipline — the relevant ring endpoints). A worker cycles
//! over its segments; whenever the half-full/half-empty gate admits a
//! segment that still owes batches, the worker executes one full batch
//! of its local schedule. Segments pinned to different workers run
//! concurrently; a producer and consumer of the same ring may both be
//! mid-batch at once, which is where the dag parallelism comes from.
//!
//! A worker with nothing schedulable spins briefly (a stalled peer is
//! usually mid-batch), then parks on a progress condvar that every
//! completed batch signals — so oversubscribed runs (workers > cores)
//! don't burn the very cores their peers need. With
//! [`RunConfig::pin_cores`], workers additionally bind themselves to
//! cores of the machine [`Topology`] in cache-compact order, closing
//! the gap the OS scheduler leaves: segment state stays in the cache of
//! the core it was placed for.
//!
//! Termination is deterministic: every segment executes exactly `rounds`
//! batches, so node `v` fires `rounds·T·gain(v)` times and the sink
//! digest is comparable with a serial schedule of the same length.

use crate::place::{assign_on, Placement};
use crate::plan::{DagExecError, ExecPlan};
use crate::stats::{DagRunStats, SegmentCounters, WorkerStats};
use ccs_graph::RateAnalysis;
use ccs_obs::{Blocked, Clock, EventKind, StallReason, Tracer, WindowSampler};
use ccs_partition::Partition;
use ccs_runtime::instance::Instance;
use ccs_runtime::kernel::Kernel;
use ccs_runtime::ring::SpscRing;
use ccs_runtime::serial::RunStats;
use ccs_topo::{pin_current_thread, plan_bindings, CoreBinding, Topology};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// When, relative to whom, workers reset their counter groups at the
/// end of the warmup window ([`RunConfig::warmup_batches`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WarmupMode {
    /// Epoch reset: every worker caps its segments at `warmup_batches`
    /// batches, all workers meet at a shared barrier once **every**
    /// segment in the run has reached the cap, and each resets its
    /// group there. The measured window then covers exactly batches
    /// `warmup..rounds` of every segment, so per-worker aggregates are
    /// exact — no segment can run ahead into the excluded region.
    #[default]
    Epoch,
    /// Legacy per-worker reset: each worker resets alone once its *own*
    /// segments pass the window. Conservative — a segment that runs
    /// ahead of its worker's slowest co-tenant gets extra batches
    /// excluded from that worker's total (per-segment windows are
    /// unaffected either way).
    PerWorker,
}

impl WarmupMode {
    /// CLI/JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            WarmupMode::Epoch => "epoch",
            WarmupMode::PerWorker => "per-worker",
        }
    }
}

/// One scripted segment handoff: once `seg` has completed
/// `after_batches` batches, move it to `to_worker` at that batch
/// boundary — without stopping the stream. The executor validates the
/// target against the run (see
/// [`DagExecError::MigrationTarget`])
/// and rejects boundaries inside the warmup window. A hop whose target
/// is the segment's current worker is a no-op (not recorded, not
/// counted). Primarily a test-harness hook: it drives the
/// migration-equivalence property tests with arbitrary schedules; the
/// production path is [`RunConfig::adapt`], where the controller
/// decides the hops online.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    /// Segment to move (contracted topological order).
    pub seg: usize,
    /// Worker that should run it next.
    pub to_worker: usize,
    /// Batch boundary the handoff happens at: the segment quiesces
    /// after completing this many batches.
    pub after_batches: u64,
}

/// How to run a partitioned dag: worker count, placement policy, and
/// the machine model the policy (and optional core pinning) uses.
#[derive(Clone, Debug, Default)]
pub struct RunConfig {
    /// Worker threads (>= 1).
    pub workers: usize,
    /// Segment → worker placement policy.
    pub placement: Placement,
    /// Machine topology for [`Placement::Llc`] and pinning. `None`
    /// discovers the host topology (sysfs, with a flat fallback).
    pub topology: Option<Topology>,
    /// Bind each worker to its planned core via `sched_setaffinity`.
    /// Pin failures (non-Linux, cpu outside the cpuset, synthetic cpu
    /// ids) are recorded per worker and the run proceeds unpinned.
    pub pin_cores: bool,
    /// Open hardware performance counters (`ccs-perf` cache suite) on
    /// each worker thread and sample them around the firing loop.
    /// Unavailability (containers, `perf_event_paranoid`, non-Linux)
    /// degrades per worker to `counters: None`; the run itself — and
    /// its digest — is unaffected either way.
    pub counters: bool,
    /// Steady-state warmup window: per-segment batches whose counter
    /// activity is discarded. Each worker zeroes its group
    /// (`PERF_EVENT_IOC_RESET`) once every segment it owns has executed
    /// this many batches, so readings exclude cold-start misses
    /// (compulsory misses on first-touch state, page faults, branch
    /// training). Clamped below `rounds` so a measurement window always
    /// remains; 0 (the default) reproduces whole-run sampling.
    pub warmup_batches: u64,
    /// Attribute counters to individual *segments*, not just workers:
    /// two extra group reads around each sampled batch, differenced
    /// into that segment's [`SegmentCounters`].
    /// Only post-warmup batches are sampled. Off by default (the reads
    /// are cheap — two `read(2)` calls per batch — but not free).
    pub segment_counters: bool,
    /// Sampling stride for per-segment attribution: count every n-th
    /// post-warmup batch (1 = every batch). Bounds the per-batch read
    /// overhead for very small `T`; readings stay unbiased because
    /// normalization divides by batches actually counted. 0 is treated
    /// as 1.
    pub counter_stride: u64,
    /// Warmup reset discipline: the exact epoch barrier (default) or
    /// the legacy per-worker reset. Only consulted when counters are
    /// requested and `warmup_batches > 0`.
    pub warmup_mode: WarmupMode,
    /// Fault in each SPSC ring's pages from its **consumer** worker's
    /// thread (behind a start barrier, after pinning) before any data
    /// flows, so first-touch NUMA policy places ring memory on the
    /// consumer's node instead of wherever the planning thread ran.
    /// Touched ring counts land in [`WorkerStats::rings_touched`].
    pub first_touch_rings: bool,
    /// Record a per-worker event timeline (batch and stall spans,
    /// warmup resets, ring first-touches, window boundaries) into a
    /// private bounded [`ccs_obs::EventRing`]. Off (the default), the
    /// tracer reduces to a single never-taken branch on the hot path;
    /// on, each event is one timestamp read and one slot write, and
    /// ring overflow overwrites the oldest events while counting the
    /// drops ([`ccs_obs::Timeline::dropped`]).
    pub trace: bool,
    /// Close a counter window every this many batches (per worker):
    /// the group is re-read and differenced with
    /// [`ccs_perf::CounterSample::delta_since`] into
    /// [`WorkerStats::windows`], giving the time-resolved miss/IPC
    /// signal end-of-run totals cannot show. 0 (the default) disables
    /// windows; without an open counter group they degrade to
    /// timing-only samples.
    pub window_batches: u64,
    /// Per-worker event ring capacity when tracing; 0 selects
    /// [`ccs_obs::DEFAULT_RING_CAPACITY`].
    pub trace_capacity: usize,
    /// Online adaptive control: run a [`ccs_adapt::Controller`] over the
    /// live window stream and migrate segments between workers — at
    /// batch boundaries, without stopping the stream — when it flags
    /// drift. Requires [`RunConfig::window_batches`]` > 0` (the window
    /// stream is the controller's only input); the run fails with
    /// [`DagExecError::AdaptNeedsWindows`]
    /// otherwise. Migration changes *where* a segment runs, never
    /// *what* it computes: the sink digest stays bit-identical to the
    /// static (and serial) schedule.
    pub adapt: Option<ccs_adapt::AdaptConfig>,
    /// Scripted handoffs executed at fixed batch boundaries, validated
    /// up front — the deterministic test harness behind the
    /// migration-equivalence proofs. Runs fine alongside
    /// [`RunConfig::adapt`] (the forced hops just happen on schedule).
    pub forced_migrations: Vec<Migration>,
    /// Fused-firing hot path: execute each batch through the segment's
    /// precompiled [`ccs_partition::FiringPlan`] — cross inputs
    /// bulk-loaded into a flat per-segment arena, firings running
    /// against precomputed arena spans (with a software prefetch on the
    /// next firing's inputs), cross outputs bulk-stored — so internal
    /// edges never touch a ring and boundary rings see one
    /// reserve/commit (peek/release) per batch instead of one per
    /// firing. Same firings in the same order as the classic path: the
    /// sink digest is bit-identical. The arena rides inside the
    /// segment's task, so migration and adaptation work unchanged.
    pub fused: bool,
}

impl RunConfig {
    pub fn new(workers: usize) -> RunConfig {
        RunConfig {
            workers,
            ..RunConfig::default()
        }
    }

    pub fn with_placement(mut self, placement: Placement) -> RunConfig {
        self.placement = placement;
        self
    }

    pub fn with_topology(mut self, topo: Topology) -> RunConfig {
        self.topology = Some(topo);
        self
    }

    pub fn with_pinning(mut self, pin: bool) -> RunConfig {
        self.pin_cores = pin;
        self
    }

    pub fn with_counters(mut self, counters: bool) -> RunConfig {
        self.counters = counters;
        self
    }

    pub fn with_warmup(mut self, warmup_batches: u64) -> RunConfig {
        self.warmup_batches = warmup_batches;
        self
    }

    pub fn with_segment_counters(mut self, on: bool) -> RunConfig {
        self.segment_counters = on;
        self
    }

    pub fn with_counter_stride(mut self, stride: u64) -> RunConfig {
        self.counter_stride = stride;
        self
    }

    pub fn with_warmup_mode(mut self, mode: WarmupMode) -> RunConfig {
        self.warmup_mode = mode;
        self
    }

    pub fn with_first_touch(mut self, on: bool) -> RunConfig {
        self.first_touch_rings = on;
        self
    }

    pub fn with_trace(mut self, on: bool) -> RunConfig {
        self.trace = on;
        self
    }

    pub fn with_windows(mut self, window_batches: u64) -> RunConfig {
        self.window_batches = window_batches;
        self
    }

    pub fn with_trace_capacity(mut self, capacity: usize) -> RunConfig {
        self.trace_capacity = capacity;
        self
    }

    pub fn with_adapt(mut self, adapt: ccs_adapt::AdaptConfig) -> RunConfig {
        self.adapt = Some(adapt);
        self
    }

    pub fn with_forced_migrations(mut self, migrations: Vec<Migration>) -> RunConfig {
        self.forced_migrations = migrations;
        self
    }

    pub fn with_fused(mut self, fused: bool) -> RunConfig {
        self.fused = fused;
        self
    }
}

/// The per-run observability policy handed to each worker: whether to
/// trace, the window cadence, and the shared run clock all timestamps
/// are taken against.
#[derive(Clone, Copy)]
struct ObsPlan {
    /// Record an event timeline into a bounded per-worker ring.
    trace: bool,
    /// Event ring capacity (0 selects the default).
    capacity: usize,
    /// Close a counter window every this many batches (0 = off).
    window: u64,
    /// Shared monotonic origin, so per-worker timelines merge.
    clock: Clock,
}

/// The per-run counter policy handed to each worker: the counter
/// request plus the effective (clamped) warmup and stride.
#[derive(Clone, Copy)]
struct CounterPlan {
    /// Open a group on each worker thread at all.
    requested: bool,
    /// Effective per-segment warmup batches (already clamped below
    /// `rounds`).
    warmup: u64,
    /// Attribute per-batch windows to segments.
    per_segment: bool,
    /// Sample every n-th post-warmup batch (>= 1).
    stride: u64,
    /// Epoch warmup: cap at `warmup` batches and reset together at the
    /// shared barrier (false = legacy per-worker reset).
    epoch: bool,
}

/// Reusable all-worker rendezvous (generation-counted so it can be
/// passed more than once): used for the epoch warmup reset and, with
/// first-touch ring placement, the pre-run start line.
struct Rendezvous {
    state: parking_lot::Mutex<(usize, u64)>,
    cv: parking_lot::Condvar,
    total: usize,
}

impl Rendezvous {
    fn new(total: usize) -> Rendezvous {
        Rendezvous {
            state: parking_lot::Mutex::new((0, 0)),
            cv: parking_lot::Condvar::new(),
            total,
        }
    }

    /// Block until all `total` workers have arrived.
    fn wait(&self) {
        let mut g = self.state.lock();
        g.0 += 1;
        if g.0 == self.total {
            g.0 = 0;
            g.1 += 1;
            self.cv.notify_all();
        } else {
            let generation = g.1;
            while g.1 == generation {
                self.cv.wait(&mut g);
            }
        }
    }
}

/// One segment's runtime state: kernels and pre-sized scratch, owned
/// exclusively by exactly one worker thread at any instant. Statically
/// that worker is fixed for the whole run; under migration the task —
/// kernels, scratch, counter attribution, and (by the SPSC discipline)
/// the segment's ring endpoints — moves whole between workers through a
/// mutex-protected inbox, so the releasing worker's last batch
/// happens-before the receiving worker's first.
struct SegTask {
    seg: usize,
    /// Batches completed so far.
    done: u64,
    /// Kernels, parallel to `plan.segments[seg].nodes`.
    kernels: Vec<Box<dyn Kernel>>,
    /// Firing sequence as local node indices into `kernels`.
    firings_local: Vec<usize>,
    /// Scratch per local node per port, sized to the rates.
    in_scratch: Vec<Vec<Vec<f32>>>,
    out_scratch: Vec<Vec<Vec<f32>>>,
    /// Fused-path scratch arena ([`ccs_partition::FiringPlan`] layout);
    /// empty on the classic path. Owned by the task, so it migrates
    /// with the segment like any other per-segment state — and since a
    /// full batch drains every internal stream, it carries no data
    /// across batch (and so migration) boundaries.
    arena: Vec<f32>,
    /// Scripted hops still owed, sorted by boundary; the head is due
    /// once `done` reaches its `after_batches`.
    pending: Vec<Migration>,
    /// Per-segment counter attribution: rides with the segment across
    /// handoffs so a migrated segment's counts stay whole.
    acc: SegmentCounters,
    /// Batch time accumulated in the owning worker's currently open
    /// counter window (adaptive runs only; zeroed at each close).
    win_ns: u64,
    /// Batches in the owning worker's currently open window.
    win_batches: u64,
}

/// Shared state of an adaptive (or forced-migration) run: the handoff
/// mailboxes, the run-wide termination count, and the controller.
struct AdaptRt {
    /// Per-worker migration inboxes: tasks in flight between workers.
    /// The mutex is the handoff's happens-before edge.
    inboxes: Vec<parking_lot::Mutex<Vec<SegTask>>>,
    /// Fast-path flags (set inside the inbox lock): a worker only takes
    /// its inbox lock after seeing its flag nonzero.
    inbox_flags: Vec<AtomicUsize>,
    /// Per-worker queues of controller commands decided on another
    /// worker's window but owed by this one.
    cmd_queues: Vec<parking_lot::Mutex<Vec<ccs_adapt::MigrationCmd>>>,
    /// Fast-path flags for `cmd_queues`.
    cmd_flags: Vec<AtomicUsize>,
    /// Segments that have not yet completed all rounds, run-wide: with
    /// tasks mobile, a worker may only exit once this reaches zero (its
    /// own list being done no longer proves no more work will arrive).
    remaining: AtomicUsize,
    /// The online decision engine; `None` when only forced migrations
    /// are in play.
    controller: Option<parking_lot::Mutex<ccs_adapt::Controller>>,
}

/// Cross-worker progress signal: every completed batch bumps the epoch
/// and wakes sleepers, so a worker whose gate is closed can park
/// instead of spinning indefinitely.
struct ProgressGate {
    epoch: AtomicU64,
    sleepers: AtomicUsize,
    lock: parking_lot::Mutex<()>,
    cv: parking_lot::Condvar,
}

/// Unproductive passes a worker spends yielding before it parks on the
/// condvar. Short stalls (a peer is mid-batch) stay in the spin tier;
/// only genuinely starved workers pay the syscall.
const SPIN_PASSES: u32 = 64;

/// Park timeout: a failsafe re-check so no missed-wakeup scenario (or a
/// peer that exits without a final bump) can wedge a worker.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

impl ProgressGate {
    fn new() -> ProgressGate {
        ProgressGate {
            epoch: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            lock: parking_lot::Mutex::new(()),
            cv: parking_lot::Condvar::new(),
        }
    }

    /// Publish progress: bump the epoch and wake parked workers. The
    /// sleeper check keeps the contended-lock cost off the hot path
    /// when nobody is parked (the common case).
    fn bump(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(self.lock.lock());
            self.cv.notify_all();
        }
    }

    /// Park until the epoch moves past `seen` (or the failsafe timeout).
    /// The sleeper count is raised before the epoch re-check, pairing
    /// with [`bump`](Self::bump)'s increment-then-check so one side
    /// always sees the other.
    fn park_if_stale(&self, seen: u64) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.lock.lock();
        if self.epoch.load(Ordering::SeqCst) == seen {
            self.cv.wait_for(&mut guard, PARK_TIMEOUT);
        }
        drop(guard);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Execute `rounds` granularity-`T` batches of every segment of `p` on
/// `workers` threads with the default placement and no pinning —
/// shorthand for [`execute_dag_cfg`] with a plain [`RunConfig`].
pub fn execute_dag(
    inst: Instance,
    ra: &RateAnalysis,
    p: &Partition,
    m_items: u64,
    rounds: u64,
    workers: usize,
    placement: Placement,
) -> Result<DagRunStats, DagExecError> {
    execute_dag_cfg(
        inst,
        ra,
        p,
        m_items,
        rounds,
        &RunConfig::new(workers).with_placement(placement),
    )
}

/// Execute `rounds` granularity-`T` batches of every segment of `p`
/// under `cfg`: segments stay on their assigned worker for the whole
/// run, and workers optionally bind to cores of the configured
/// topology. Fires node `v` exactly `rounds·T·gain(v)` times; returns
/// aggregate and per-worker stats, with the sink digest for
/// equivalence checking.
pub fn execute_dag_cfg(
    inst: Instance,
    ra: &RateAnalysis,
    p: &Partition,
    m_items: u64,
    rounds: u64,
    cfg: &RunConfig,
) -> Result<DagRunStats, DagExecError> {
    let workers = cfg.workers.max(1);
    let g = &inst.graph;
    let plan = ExecPlan::build(g, ra, p, m_items)?;
    let warmup = if rounds == 0 {
        0
    } else {
        cfg.warmup_batches.min(rounds - 1)
    };
    // Adaptive control is driven entirely by the window stream; without
    // windows it would sit blind for the whole run — a config error,
    // not a silent no-op.
    if cfg.adapt.is_some() && cfg.window_batches == 0 {
        return Err(DagExecError::AdaptNeedsWindows);
    }
    for m in &cfg.forced_migrations {
        if m.seg >= plan.segments.len() || m.to_worker >= workers {
            return Err(DagExecError::MigrationTarget {
                seg: m.seg,
                to_worker: m.to_worker,
                workers,
            });
        }
        if warmup > 0 && m.after_batches < warmup {
            return Err(DagExecError::MigrationDuringWarmup {
                seg: m.seg,
                after_batches: m.after_batches,
                warmup,
            });
        }
    }
    // Only pay for host discovery (sysfs walks) when something will
    // actually consume the topology; the flat machine is equivalent for
    // distance-free placements without pinning.
    let topo = match &cfg.topology {
        Some(t) => t.clone(),
        None if cfg.placement == Placement::Llc || cfg.pin_cores => Topology::discover(),
        None => Topology::single_cluster(workers),
    };
    let owner = assign_on(g, ra, &plan, workers, cfg.placement, &topo, cfg.pin_cores);
    let bindings: Vec<Option<CoreBinding>> = if cfg.pin_cores {
        plan_bindings(&topo, workers)
            .into_iter()
            .map(Some)
            .collect()
    } else {
        vec![None; workers]
    };

    // Rings sized by the plan: cross edges double-buffered, internal
    // edges at their dry-run highwater. On the fused path internal
    // streams live in the segment arenas and their rings are never
    // touched, so they shrink to one-slot placeholders (keeping edge
    // indexing uniform without the memory).
    let rings: Vec<SpscRing> = g
        .edge_ids()
        .map(|e| {
            let edge = g.edge(e);
            let internal = plan.seg_of_node[edge.src.idx()] == plan.seg_of_node[edge.dst.idx()];
            let cap = if cfg.fused && internal {
                1
            } else {
                usize::try_from(plan.capacities[e.idx()].max(1)).expect("ring fits")
            };
            SpscRing::new(cap)
        })
        .collect();

    // Local index of each node within its segment.
    let mut local_of = vec![usize::MAX; g.node_count()];
    for seg in &plan.segments {
        for (i, &v) in seg.nodes.iter().enumerate() {
            local_of[v.idx()] = i;
        }
    }

    // Move kernels out of the instance into per-segment tasks.
    let mut kernel_slots: Vec<Option<Box<dyn Kernel>>> =
        inst.kernels.into_iter().map(Some).collect();
    let mut tasks: Vec<Option<SegTask>> = plan
        .segments
        .iter()
        .enumerate()
        .map(|(si, seg)| {
            let kernels: Vec<Box<dyn Kernel>> = seg
                .nodes
                .iter()
                .map(|&v| kernel_slots[v.idx()].take().expect("each node once"))
                .collect();
            // Exactly one batch workspace per path: per-port scratch on
            // the classic path, the flat arena on the fused one.
            let in_scratch: Vec<Vec<Vec<f32>>> = if cfg.fused {
                Vec::new()
            } else {
                seg.nodes
                    .iter()
                    .map(|&v| {
                        g.in_edges(v)
                            .iter()
                            .map(|&e| vec![0.0f32; g.edge(e).consume as usize])
                            .collect()
                    })
                    .collect()
            };
            let out_scratch: Vec<Vec<Vec<f32>>> = if cfg.fused {
                Vec::new()
            } else {
                seg.nodes
                    .iter()
                    .map(|&v| {
                        g.out_edges(v)
                            .iter()
                            .map(|&e| vec![0.0f32; g.edge(e).produce as usize])
                            .collect()
                    })
                    .collect()
            };
            let arena = if cfg.fused {
                vec![0.0f32; plan.fused[si].arena_len]
            } else {
                Vec::new()
            };
            let mut pending: Vec<Migration> = cfg
                .forced_migrations
                .iter()
                .filter(|m| m.seg == si)
                .copied()
                .collect();
            pending.sort_by_key(|m| m.after_batches);
            Some(SegTask {
                seg: si,
                done: 0,
                kernels,
                firings_local: seg.firings.iter().map(|&v| local_of[v.idx()]).collect(),
                in_scratch,
                out_scratch,
                arena,
                pending,
                acc: SegmentCounters {
                    seg: si,
                    ..SegmentCounters::default()
                },
                win_ns: 0,
                win_batches: 0,
            })
        })
        .collect();

    // Deal tasks to their pinned workers.
    let mut per_worker: Vec<Vec<SegTask>> = (0..workers).map(|_| Vec::new()).collect();
    for (si, &w) in owner.iter().enumerate() {
        per_worker[w].push(tasks[si].take().expect("each segment once"));
    }

    // The adaptive runtime only exists when something can actually move
    // (a controller or a scripted schedule, and at least one batch);
    // static runs keep an untouched `None` and the exact pre-adaptive
    // hot path.
    let adapt_rt = if (cfg.adapt.is_some() || !cfg.forced_migrations.is_empty()) && rounds > 0 {
        Some(AdaptRt {
            inboxes: (0..workers)
                .map(|_| parking_lot::Mutex::new(Vec::new()))
                .collect(),
            inbox_flags: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            cmd_queues: (0..workers)
                .map(|_| parking_lot::Mutex::new(Vec::new()))
                .collect(),
            cmd_flags: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            remaining: AtomicUsize::new(plan.segments.len()),
            controller: cfg.adapt.clone().map(|a| {
                parking_lot::Mutex::new(ccs_adapt::Controller::new(a, workers, owner.clone()))
            }),
        })
    } else {
        None
    };
    let adapt_ref = adapt_rt.as_ref();

    let graph = g;
    let plan_ref = &plan;
    let rings_ref: &[SpscRing] = &rings;
    let gate = ProgressGate::new();
    let gate_ref = &gate;
    let cplan = CounterPlan {
        requested: cfg.counters,
        warmup,
        per_segment: cfg.counters && cfg.segment_counters,
        stride: cfg.counter_stride.max(1),
        epoch: cfg.counters && warmup > 0 && cfg.warmup_mode == WarmupMode::Epoch,
    };
    // The epoch reset and the post-first-touch start line are both
    // all-worker rendezvous; each is only awaited when its feature is on.
    let barrier = Rendezvous::new(workers);
    let barrier_ref = &barrier;

    // First-touch ring placement: each ring is faulted in by the worker
    // that owns its consuming segment (every edge has exactly one
    // consumer segment, internal edges included, so each ring gets
    // touched exactly once).
    let touch_lists: Vec<Vec<usize>> = if cfg.first_touch_rings {
        let mut lists: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
        for e in g.edge_ids() {
            let consumer = owner[plan.seg_of_node[g.edge(e).dst.idx()]];
            lists[consumer].push(e.idx());
        }
        lists
    } else {
        (0..workers).map(|_| Vec::new()).collect()
    };
    let first_touch = cfg.first_touch_rings;
    let fused = cfg.fused;
    let obs = ObsPlan {
        trace: cfg.trace,
        capacity: cfg.trace_capacity,
        window: cfg.window_batches,
        clock: Clock::start(),
    };

    let start = Instant::now();
    let mut results: Vec<(Vec<SegTask>, WorkerStats)> = Vec::with_capacity(workers);
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for ((w, my_tasks), touch) in per_worker.into_iter().enumerate().zip(touch_lists) {
            let binding = bindings[w];
            handles.push(scope.spawn(move |_| {
                worker_loop(WorkerCtx {
                    g: graph,
                    plan: plan_ref,
                    rings: rings_ref,
                    gate: gate_ref,
                    barrier: barrier_ref,
                    worker: w,
                    binding,
                    cplan,
                    obs,
                    touch: if first_touch { Some(touch) } else { None },
                    adapt: adapt_ref,
                    tasks: my_tasks,
                    rounds,
                    fused,
                })
            }));
        }
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope failed");
    let wall = start.elapsed();

    // Gather the sink digest and aggregate counts.
    let sink = graph.single_sink();
    let mut digest = None;
    let mut worker_stats = Vec::with_capacity(workers);
    for (tasks, ws) in results {
        if let Some(s) = sink {
            for task in &tasks {
                let seg = &plan.segments[task.seg];
                if let Some(i) = seg.nodes.iter().position(|&v| v == s) {
                    digest = task.kernels[i].digest();
                }
            }
        }
        worker_stats.push(ws);
    }
    worker_stats.sort_by_key(|w| w.worker);

    let firings: u64 = rounds * plan.firings_per_round();
    let sink_items = match sink {
        Some(s) => {
            let consume: u64 = graph
                .in_edges(s)
                .iter()
                .map(|&e| graph.edge(e).consume)
                .sum();
            rounds * plan.quota[s.idx()] * consume
        }
        None => 0,
    };
    let segments = plan.segments.len();
    Ok(DagRunStats {
        run: RunStats {
            wall,
            firings,
            sink_items,
            digest,
        },
        workers: worker_stats,
        t: plan.t,
        rounds,
        segments,
        counters_requested: cfg.counters,
        warmup: cplan.warmup,
        warmup_mode: cfg.warmup_mode,
        first_touch_rings: cfg.first_touch_rings,
        trace_enabled: cfg.trace,
        window_batches: cfg.window_batches,
    })
}

/// The §3 gate, generalized to dags: every input ring holds at least one
/// batch, every output ring has room for one.
#[inline]
fn schedulable(plan: &ExecPlan, rings: &[SpscRing], seg: usize) -> bool {
    let s = &plan.segments[seg];
    s.in_batch
        .iter()
        .all(|&(e, n)| rings[e.idx()].len() as u64 >= n)
        && s.out_batch
            .iter()
            .all(|&(e, n)| rings[e.idx()].space() as u64 >= n)
}

/// Stall attribution: the first failing gate among this worker's
/// unfinished, limit-eligible segments. Mirrors the [`schedulable`]
/// scan but names the edge — which ring starves or backpressures which
/// segment, and which peer segment is on its other end. Only called on
/// the stall path, and only when tracing is enabled, so the gate itself
/// never pays for it.
fn blocking_edge(
    g: &ccs_graph::StreamGraph,
    plan: &ExecPlan,
    rings: &[SpscRing],
    tasks: &[SegTask],
    limit: u64,
) -> Option<Blocked> {
    for task in tasks {
        if task.done >= limit {
            continue;
        }
        let s = &plan.segments[task.seg];
        for &(e, n) in &s.in_batch {
            if (rings[e.idx()].len() as u64) < n {
                return Some(Blocked {
                    edge: e.idx(),
                    seg: task.seg,
                    peer: plan.seg_of_node[g.edge(e).src.idx()],
                    reason: StallReason::ProducerEmpty,
                });
            }
        }
        for &(e, n) in &s.out_batch {
            if (rings[e.idx()].space() as u64) < n {
                return Some(Blocked {
                    edge: e.idx(),
                    seg: task.seg,
                    peer: plan.seg_of_node[g.edge(e).dst.idx()],
                    reason: StallReason::ConsumerFull,
                });
            }
        }
    }
    None
}

/// Everything one worker thread needs, bundled so the spawn site stays
/// readable.
struct WorkerCtx<'a> {
    g: &'a ccs_graph::StreamGraph,
    plan: &'a ExecPlan,
    rings: &'a [SpscRing],
    gate: &'a ProgressGate,
    barrier: &'a Rendezvous,
    worker: usize,
    binding: Option<CoreBinding>,
    cplan: CounterPlan,
    obs: ObsPlan,
    /// Ring indices this worker consumes from, to fault in before the
    /// start line; `None` when first-touch placement is off.
    touch: Option<Vec<usize>>,
    /// Shared migration runtime; `None` for static runs (the entire
    /// adaptive machinery then costs one never-taken branch per pass).
    adapt: Option<&'a AdaptRt>,
    tasks: Vec<SegTask>,
    rounds: u64,
    /// Run batches through [`run_fused_batch`] instead of [`run_batch`].
    fused: bool,
}

fn worker_loop(ctx: WorkerCtx<'_>) -> (Vec<SegTask>, WorkerStats) {
    let WorkerCtx {
        g,
        plan,
        rings,
        gate,
        barrier,
        worker,
        binding,
        cplan,
        obs,
        touch,
        adapt,
        mut tasks,
        rounds,
        fused,
    } = ctx;
    // Pin first, then open counters: the self-monitoring group then
    // counts this thread on the core the placement chose for it.
    let pinned_cpu = binding.and_then(|b| pin_current_thread(b.cpu).pinned().then_some(b.cpu));
    let mut tracer = if obs.trace {
        Tracer::on(obs.capacity)
    } else {
        Tracer::off()
    };
    // First-touch before anything flows: fault in the rings this worker
    // consumes from, then wait at the start line so no producer can push
    // into a ring a (slower) consumer has not touched yet.
    let rings_touched = match &touch {
        Some(list) => {
            for &r in list {
                rings[r].first_touch();
                tracer.record(obs.clock.now_ns(), 0, EventKind::RingFirstTouch { ring: r });
            }
            barrier.wait();
            list.len() as u64
        }
        None => 0,
    };
    let counter_set = if cplan.requested {
        ccs_perf::CounterBuilder::cache_suite().open_self_thread()
    } else {
        ccs_perf::CounterSet::unavailable("counters not requested")
    };
    let mut stats = WorkerStats {
        worker,
        segments: tasks.iter().map(|t| t.seg).collect(),
        firings: 0,
        batches: 0,
        stalls: 0,
        stall_time: Duration::ZERO,
        busy: Duration::ZERO,
        pinned_cpu,
        counters: None,
        warmup_excluded: 0,
        segment_counters: Vec::new(),
        rings_touched,
        migrations: 0,
        windows: Vec::new(),
        trace: None,
    };
    let mut unproductive = 0u32;
    // Controller commands owed by this worker (decided at one of its own
    // window closes, or routed over from a peer's), plus the stall time
    // of the currently open window — the one controller input the
    // WindowSampler itself does not carry.
    let mut outbox: Vec<ccs_adapt::MigrationCmd> = Vec::new();
    let mut win_stall_ns = 0u64;
    let ctrl_on = adapt.is_some_and(|rt| rt.controller.is_some());
    // Steady-state gate: flips once every owned segment has executed
    // its warmup batches, at which point the group is zeroed so the
    // worker's final sample covers only post-warmup work. Checked at
    // the top of a scheduling pass — never between a counting window's
    // two reads — so per-segment windows always lie inside the
    // post-reset region and their raw sums stay <= the worker total.
    // Under [`WarmupMode::Epoch`] the scan below additionally caps
    // every segment at the warmup window until the all-worker
    // rendezvous, so the reset happens with *every* segment in the run
    // at exactly `warmup` batches and the worker aggregate is exact.
    let mut warmed = cplan.warmup == 0;
    // Counter windows ride on *cumulative* group reads differenced by
    // `delta_since`, so they never reset the group and cannot disturb
    // the end-of-run totals. The only reset in play is the warmup one,
    // which flushes the open window and re-baselines below.
    let mut wins = WindowSampler::new(obs.window);
    counter_set.reset();
    counter_set.enable();
    if wins.enabled() {
        wins.start(obs.clock.now_ns(), counter_set.sample());
    }
    loop {
        // Epoch snapshot *before* scanning: progress a peer makes during
        // the scan moves the epoch past this value, so a post-scan park
        // re-checks immediately instead of sleeping through the wakeup.
        let epoch = gate.epoch.load(Ordering::SeqCst);
        // Adaptive mailboxes first: segments handed to this worker join
        // its set before the scan, and handoffs this worker owes are
        // carried out now — at the same batch boundary the decision
        // quiesced them at (the segment has not run since).
        if let Some(rt) = adapt {
            if rt.inbox_flags[worker].swap(0, Ordering::SeqCst) != 0 {
                let incoming = std::mem::take(&mut *rt.inboxes[worker].lock());
                for t in incoming {
                    if !stats.segments.contains(&t.seg) {
                        stats.segments.push(t.seg);
                    }
                    tasks.push(t);
                }
            }
            if rt.cmd_flags[worker].swap(0, Ordering::SeqCst) != 0 {
                outbox.append(&mut rt.cmd_queues[worker].lock());
            }
            for cmd in std::mem::take(&mut outbox) {
                if cmd.to == worker {
                    continue;
                }
                // A command for a segment that already finished (or
                // moved on) is stale: dropping it is safe, the
                // controller's map self-corrects on the next window.
                if let Some(ti) = tasks.iter().position(|t| t.seg == cmd.seg) {
                    if tasks[ti].done < rounds {
                        hand_off(
                            rt,
                            &mut tasks,
                            ti,
                            cmd.to,
                            worker,
                            &mut stats,
                            &mut tracer,
                            &obs,
                            gate,
                        );
                    }
                }
            }
        }
        if !warmed && tasks.iter().all(|t| t.done >= cplan.warmup) {
            if cplan.epoch {
                // Capped at the window, every worker lands here with all
                // of its segments at exactly `warmup` batches; the
                // rendezvous makes the reset a run-wide instant.
                barrier.wait();
            }
            // The reset zeroes the cumulative reads any open counter
            // window is baselined on: flush the partial window first,
            // then re-baseline on the post-reset (zeroed) group.
            wins.flush(obs.clock.now_ns(), || counter_set.sample());
            counter_set.reset();
            if wins.enabled() {
                wins.rebaseline(obs.clock.now_ns(), counter_set.sample());
            }
            tracer.record(obs.clock.now_ns(), 0, EventKind::WarmupReset);
            stats.warmup_excluded = stats.batches;
            warmed = true;
        }
        // Pre-rendezvous, epoch mode confines segments to the warmup
        // window (a `rounds = warmup` prefix run, so it terminates by
        // the same argument as the run itself).
        let limit = if cplan.epoch && !warmed {
            cplan.warmup
        } else {
            rounds
        };
        let mut progressed = false;
        let mut all_done = true;
        let mut depart = None;
        let mut ti = 0;
        while ti < tasks.len() {
            // A scripted hop that is due quiesces the segment *before*
            // its next batch, so it departs at exactly the configured
            // boundary (including hops that arrived due with the task).
            if adapt.is_some() {
                while let Some(&m) = tasks[ti].pending.first() {
                    if tasks[ti].done < m.after_batches || tasks[ti].done >= rounds {
                        break;
                    }
                    tasks[ti].pending.remove(0);
                    // A hop to the current worker is a no-op, not a
                    // migration; keep scanning for the next due hop.
                    if m.to_worker != worker {
                        depart = Some((ti, m.to_worker));
                        break;
                    }
                }
                if depart.is_some() {
                    all_done = false;
                    break;
                }
            }
            let task = &mut tasks[ti];
            if task.done >= rounds {
                ti += 1;
                continue;
            }
            all_done = false;
            if task.done >= limit || !schedulable(plan, rings, task.seg) {
                ti += 1;
                continue;
            }
            // Per-segment counting window: post-warmup (both this
            // segment's and the worker-level reset), on-stride batches.
            // `sample()` is None when no group opened, so the window
            // quietly disappears on the Unavailable path.
            let window = cplan.per_segment
                && warmed
                && task.done >= cplan.warmup
                && (task.done - cplan.warmup).is_multiple_of(cplan.stride);
            let before = if window { counter_set.sample() } else { None };
            let t0 = Instant::now();
            if fused {
                run_fused_batch(plan, rings, task, &mut stats.firings);
            } else {
                run_batch(g, plan, rings, task, &mut stats.firings);
            }
            let dur = t0.elapsed();
            stats.busy += dur;
            tracer.record(
                obs.clock.offset_ns(t0),
                dur.as_nanos() as u64,
                EventKind::Batch { seg: task.seg },
            );
            if tracer.enabled() {
                // Ring occupancy at the batch boundary: one instant per
                // ring this segment touches, all on one timestamp.
                let now = obs.clock.now_ns();
                let s = &plan.segments[task.seg];
                for &(e, _) in s.in_batch.iter().chain(s.out_batch.iter()) {
                    let r = &rings[e.idx()];
                    tracer.record(
                        now,
                        0,
                        EventKind::RingOccupancy {
                            ring: e.idx(),
                            len: r.len() as u64,
                            cap: r.capacity() as u64,
                        },
                    );
                }
            }
            if let Some(before) = before {
                if let Some(after) = counter_set.sample() {
                    task.acc.sample.merge(&after.delta_since(&before));
                    task.acc.batches_counted += 1;
                }
            }
            if cplan.per_segment {
                task.acc.batches += 1;
            }
            task.done += 1;
            stats.batches += 1;
            if ctrl_on {
                task.win_ns += dur.as_nanos() as u64;
                task.win_batches += 1;
            }
            let finished = task.done >= rounds;
            if let Some(rt) = adapt {
                if finished {
                    rt.remaining.fetch_sub(1, Ordering::SeqCst);
                }
            }
            if wins.enabled() {
                if let Some(index) = wins.on_batch(obs.clock.now_ns(), || counter_set.sample()) {
                    tracer.record(obs.clock.now_ns(), 0, EventKind::Window { index });
                    // Feed the controller on the closed window; its
                    // decisions land in `outbox` (own segments, carried
                    // out at the top of the next pass — no further
                    // batch of theirs runs in between) or a peer's
                    // command queue.
                    if ctrl_on && warmed {
                        if let Some(rt) = adapt {
                            feed_controller(
                                rt,
                                &wins,
                                &mut tasks,
                                worker,
                                win_stall_ns,
                                &mut outbox,
                                gate,
                            );
                            win_stall_ns = 0;
                        }
                    }
                }
            }
            progressed = true;
            gate.bump();
            ti += 1;
        }
        if let (Some(rt), Some((ti, to))) = (adapt, depart) {
            hand_off(
                rt,
                &mut tasks,
                ti,
                to,
                worker,
                &mut stats,
                &mut tracer,
                &obs,
                gate,
            );
            unproductive = 0;
            continue;
        }
        if all_done {
            // With tasks mobile, an empty local plate is not the end of
            // the run: another worker may still hand a segment over.
            // Only the run-wide count proves completion.
            let run_done = match adapt {
                None => true,
                Some(rt) => rt.remaining.load(Ordering::SeqCst) == 0,
            };
            if run_done {
                break;
            }
        }
        if progressed {
            unproductive = 0;
            continue;
        }
        stats.stalls += 1;
        unproductive += 1;
        // Attribute the stall while the blocking ring state is current
        // (before yielding lets a peer drain or fill it).
        let blocked = if tracer.enabled() {
            blocking_edge(g, plan, rings, &tasks, limit)
        } else {
            None
        };
        let t0 = Instant::now();
        let parked = unproductive > SPIN_PASSES;
        if !parked {
            std::thread::yield_now();
        } else {
            gate.park_if_stale(epoch);
        }
        let dur = t0.elapsed();
        stats.stall_time += dur;
        if ctrl_on {
            win_stall_ns += dur.as_nanos() as u64;
        }
        tracer.record(
            obs.clock.offset_ns(t0),
            dur.as_nanos() as u64,
            EventKind::Stall { parked, blocked },
        );
    }
    stats.windows = wins.finish(obs.clock.now_ns(), || counter_set.sample());
    counter_set.disable();
    stats.counters = counter_set.sample();
    stats.segment_counters = if cplan.per_segment {
        tasks.iter().map(|t| t.acc.clone()).collect()
    } else {
        Vec::new()
    };
    stats.trace = tracer.finish();
    (tasks, stats)
}

/// Release `tasks[ti]` to worker `to`: record the migration (an instant
/// on the releasing worker's timeline, at the batch boundary where the
/// segment was quiesced), count it, and push the task — kernels,
/// scratch, counter attribution and all — through the target's mutex
/// inbox. The lock is the happens-before edge that makes the segment's
/// SPSC ring endpoints safe to drive from the receiving thread; the
/// receiving worker is already pinned to its own planned core, so under
/// `pin_cores` the segment lands cache-resident on the target core with
/// no re-pinning step.
#[allow(clippy::too_many_arguments)]
fn hand_off(
    rt: &AdaptRt,
    tasks: &mut Vec<SegTask>,
    ti: usize,
    to: usize,
    worker: usize,
    stats: &mut WorkerStats,
    tracer: &mut Tracer,
    obs: &ObsPlan,
    gate: &ProgressGate,
) {
    let task = tasks.remove(ti);
    tracer.record(
        obs.clock.now_ns(),
        0,
        EventKind::Migration {
            seg: task.seg,
            from: worker,
            to,
        },
    );
    stats.migrations += 1;
    {
        let mut inbox = rt.inboxes[to].lock();
        inbox.push(task);
        rt.inbox_flags[to].store(1, Ordering::SeqCst);
    }
    gate.bump();
}

/// Reduce the window that just closed to a [`ccs_adapt::WindowReport`],
/// let the controller absorb it, and route any decided handoffs: this
/// worker's own segments into `outbox`, segments owed by a peer into
/// that peer's command queue (with a wakeup bump so a parked peer acts
/// within the park timeout).
fn feed_controller(
    rt: &AdaptRt,
    wins: &WindowSampler,
    tasks: &mut [SegTask],
    worker: usize,
    stall_ns: u64,
    outbox: &mut Vec<ccs_adapt::MigrationCmd>,
    gate: &ProgressGate,
) {
    let (Some(ctrl), Some(w)) = (&rt.controller, wins.last()) else {
        return;
    };
    let segments: Vec<ccs_adapt::SegCost> = tasks
        .iter()
        .filter(|t| t.win_batches > 0)
        .map(|t| ccs_adapt::SegCost {
            seg: t.seg,
            batches: t.win_batches,
            ns: t.win_ns,
        })
        .collect();
    let report = ccs_adapt::WindowReport {
        worker,
        window_index: w.index,
        mpki: w.sample.as_ref().and_then(|s| s.mpki()),
        span_ns: w.end_ns.saturating_sub(w.start_ns),
        batches: w.batches,
        stall_ns,
        segments,
    };
    for t in tasks.iter_mut() {
        t.win_ns = 0;
        t.win_batches = 0;
    }
    let cmds = ctrl.lock().observe(&report);
    for cmd in cmds {
        if cmd.from == worker {
            outbox.push(cmd);
        } else {
            rt.cmd_queues[cmd.from].lock().push(cmd);
            rt.cmd_flags[cmd.from].store(1, Ordering::SeqCst);
            gate.bump();
        }
    }
}

/// Port arity covered by the fused loop's stack-allocated view arrays.
const FUSED_MAX_PORTS: usize = 8;

/// The fused inner loop: run a compiled firing sequence against its
/// arena, issuing a software prefetch on the next firing's input spans,
/// and dispatch each firing through `fire(local, inputs, outputs)`.
/// Shared by the parallel ([`run_fused_batch`]) and serial
/// (`serial_fused`) hot paths.
pub(crate) fn fire_arena_plan<F>(fp: &ccs_partition::FiringPlan, arena: &mut [f32], mut fire: F)
where
    F: FnMut(usize, &[&[f32]], &mut [&mut [f32]]),
{
    // SAFETY (covers every `unsafe` below): all port views are
    // raw-pointer slices into the arena. `compile_firing_plan` lays
    // regions out pairwise disjoint and a firing's input and output
    // edges are distinct (the graph is a dag, so no self-loops), hence
    // one firing's views never alias; views do not outlive the firing,
    // and nothing else touches the arena while they are live.
    let base = arena.as_mut_ptr();
    for (fi, f) in fp.firings.iter().enumerate() {
        if let Some(next) = fp.firings.get(fi + 1) {
            for s in &next.inputs {
                ccs_runtime::prefetch_read(unsafe { base.add(s.offset) });
            }
        }
        let (n_in, n_out) = (f.inputs.len(), f.outputs.len());
        if n_in <= FUSED_MAX_PORTS && n_out <= FUSED_MAX_PORTS {
            let mut ins: [&[f32]; FUSED_MAX_PORTS] = [&[]; FUSED_MAX_PORTS];
            for (slot, s) in ins.iter_mut().zip(&f.inputs) {
                *slot = unsafe { std::slice::from_raw_parts(base.add(s.offset), s.len) };
            }
            let mut outs: [&mut [f32]; FUSED_MAX_PORTS] =
                std::array::from_fn(|_| Default::default());
            for (slot, s) in outs.iter_mut().zip(&f.outputs) {
                *slot = unsafe { std::slice::from_raw_parts_mut(base.add(s.offset), s.len) };
            }
            fire(f.local, &ins[..n_in], &mut outs[..n_out]);
        } else {
            let ins: Vec<&[f32]> = f
                .inputs
                .iter()
                .map(|s| unsafe { std::slice::from_raw_parts(base.add(s.offset), s.len) })
                .collect();
            let mut outs: Vec<&mut [f32]> = f
                .outputs
                .iter()
                .map(|s| unsafe { std::slice::from_raw_parts_mut(base.add(s.offset), s.len) })
                .collect();
            fire(f.local, &ins, &mut outs);
        }
    }
}

/// Execute one batch through the fused hot path: bulk-load every cross
/// input ring into the segment arena (one `peek`/`release` per edge),
/// run the precompiled firing sequence against arena spans with a
/// software prefetch on the next firing's inputs, then bulk-store the
/// cross outputs (one `reserve`/`commit` per edge). Internal edges
/// never touch a ring. The firings — and their order — are exactly
/// [`run_batch`]'s, so the sink digest is bit-identical by SDF
/// determinism.
fn run_fused_batch(plan: &ExecPlan, rings: &[SpscRing], task: &mut SegTask, firings: &mut u64) {
    let fp = &plan.fused[task.seg];
    let SegTask { arena, kernels, .. } = task;
    for io in &fp.loads {
        let r = &rings[io.edge.idx()];
        let (a, b) = r.peek(io.items);
        arena[io.offset..io.offset + a.len()].copy_from_slice(a);
        arena[io.offset + a.len()..io.offset + io.items].copy_from_slice(b);
        r.release(io.items);
    }
    fire_arena_plan(fp, arena, |local, ins, outs| {
        kernels[local].fire(ins, outs);
    });
    for io in &fp.stores {
        let r = &rings[io.edge.idx()];
        let (a, b) = r.reserve(io.items);
        let n = a.len();
        a.copy_from_slice(&arena[io.offset..io.offset + n]);
        b.copy_from_slice(&arena[io.offset + n..io.offset + io.items]);
        r.commit(io.items);
    }
    *firings += fp.firings.len() as u64;
}

/// Execute one batch: the segment's local schedule, once.
fn run_batch(
    g: &ccs_graph::StreamGraph,
    plan: &ExecPlan,
    rings: &[SpscRing],
    task: &mut SegTask,
    firings: &mut u64,
) {
    let seg = &plan.segments[task.seg];
    for (&i, &v) in task.firings_local.iter().zip(&seg.firings) {
        let vin = &mut task.in_scratch[i];
        for (j, &e) in g.in_edges(v).iter().enumerate() {
            rings[e.idx()].pop_slice(&mut vin[j]);
        }
        let vout = &mut task.out_scratch[i];
        ccs_runtime::kernel::fire_ports(task.kernels[i].as_mut(), vin, vout);
        for (j, &e) in g.out_edges(v).iter().enumerate() {
            rings[e.idx()].push_slice(&vout[j]);
        }
    }
    *firings += seg.firings.len() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};
    use ccs_partition::dag_greedy;
    use ccs_sched::partitioned;
    use ccs_topo::TopoSpec;

    /// Serial reference: same number of granularity-T rounds through the
    /// serial executor.
    fn serial_digest(
        g: &ccs_graph::StreamGraph,
        ra: &RateAnalysis,
        p: &Partition,
        m: u64,
        rounds: u64,
    ) -> Option<u64> {
        let run = partitioned::inhomogeneous(g, ra, p, m, rounds).unwrap();
        let mut inst = Instance::synthetic(g.clone());
        ccs_runtime::serial::execute(&mut inst, &run).digest
    }

    #[test]
    fn matches_serial_on_layered_dags() {
        let cfg = LayeredCfg {
            layers: 4,
            max_width: 3,
            density: 0.3,
            state: StateDist::Uniform(8, 48),
            max_q: 3,
        };
        for seed in 0..5u64 {
            let g = gen::layered(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let p = dag_greedy::greedy_topo(&g, 96);
            let want = serial_digest(&g, &ra, &p, 48, 3);
            for workers in [1usize, 2, 4] {
                let inst = Instance::synthetic(g.clone());
                let stats =
                    execute_dag(inst, &ra, &p, 48, 3, workers, Placement::RoundRobin).unwrap();
                assert_eq!(stats.run.digest, want, "seed {seed} workers {workers}");
                assert_eq!(
                    stats.workers.iter().map(|w| w.batches).sum::<u64>(),
                    3 * stats.segments as u64
                );
            }
        }
    }

    #[test]
    fn matches_serial_on_rated_pipelines() {
        for seed in 0..4u64 {
            let cfg = PipelineCfg {
                len: 10,
                state: StateDist::Uniform(8, 48),
                max_q: 3,
                max_rate_scale: 2,
            };
            let g = gen::pipeline(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let pp = ccs_partition::pipeline::greedy_theorem5(&g, &ra, 48).unwrap();
            let want = serial_digest(&g, &ra, &pp.partition, 48, 2);
            for placement in [Placement::RoundRobin, Placement::CommGreedy, Placement::Llc] {
                let inst = Instance::synthetic(g.clone());
                let stats = execute_dag(inst, &ra, &pp.partition, 48, 2, 3, placement).unwrap();
                assert_eq!(
                    stats.run.digest, want,
                    "seed {seed} placement {placement:?}"
                );
            }
        }
    }

    #[test]
    fn firings_and_sink_items_are_exact() {
        let g = gen::pipeline_uniform(8, 32);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 64);
        let inst = Instance::synthetic(g.clone());
        let stats = execute_dag(inst, &ra, &p, 16, 4, 2, Placement::RoundRobin).unwrap();
        // Homogeneous: T = m, every node fires T times per round.
        assert_eq!(stats.t, 16);
        assert_eq!(stats.run.firings, 4 * 16 * g.node_count() as u64);
        assert_eq!(stats.run.sink_items, 4 * 16);
        let total: u64 = stats.workers.iter().map(|w| w.firings).sum();
        assert_eq!(total, stats.run.firings);
    }

    #[test]
    fn single_segment_runs_serially() {
        let g = gen::pipeline_uniform(5, 16);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = Partition::whole(&g);
        let want = serial_digest(&g, &ra, &p, 32, 2);
        let inst = Instance::synthetic(g.clone());
        let stats = execute_dag(inst, &ra, &p, 32, 2, 4, Placement::CommGreedy).unwrap();
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.run.digest, want);
    }

    #[test]
    fn zero_rounds_is_a_noop() {
        let g = gen::pipeline_uniform(4, 8);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 16);
        let inst = Instance::synthetic(g.clone());
        let stats = execute_dag(inst, &ra, &p, 8, 0, 2, Placement::RoundRobin).unwrap();
        assert_eq!(stats.run.firings, 0);
        assert_eq!(stats.run.sink_items, 0);
    }

    #[test]
    fn oversubscribed_run_parks_instead_of_spinning() {
        // Far more workers than segments can occupy: the idle workers
        // must fall through the spin tier into the condvar and still
        // terminate with the right digest.
        let g = gen::pipeline_uniform(12, 32);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 64);
        let want = serial_digest(&g, &ra, &p, 32, 8);
        let inst = Instance::synthetic(g.clone());
        let stats = execute_dag(inst, &ra, &p, 32, 8, 8, Placement::RoundRobin).unwrap();
        assert_eq!(stats.run.digest, want);
        // Stall wall-clock is measured (some worker must have waited).
        assert!(stats.total_stalls() > 0);
        assert!(stats.total_stall_time() > Duration::ZERO);
    }

    #[test]
    fn pinned_run_matches_unpinned_digest() {
        let g = gen::pipeline_uniform(10, 32);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 64);
        let topo = Topology::synthetic(&TopoSpec::new(1, 2, 2));
        let mut digests = Vec::new();
        for pin in [false, true] {
            let cfg = RunConfig::new(3)
                .with_placement(Placement::Llc)
                .with_topology(topo.clone())
                .with_pinning(pin);
            let inst = Instance::synthetic(g.clone());
            let stats = execute_dag_cfg(inst, &ra, &p, 32, 4, &cfg).unwrap();
            digests.push(stats.run.digest);
            if !pin {
                assert!(stats.workers.iter().all(|w| w.pinned_cpu.is_none()));
            }
        }
        assert_eq!(digests[0], digests[1]);
    }

    #[test]
    fn run_config_builder() {
        let topo = Topology::single_cluster(2);
        let cfg = RunConfig::new(4)
            .with_placement(Placement::Llc)
            .with_topology(topo)
            .with_pinning(true);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.placement, Placement::Llc);
        assert!(cfg.pin_cores);
        assert!(cfg.topology.is_some());
    }
}
