//! Compile a partition into an executable batch plan.
//!
//! One *batch* of a segment is one granularity-`T` round restricted to
//! that segment: node `v` fires `T·gain(v)` times, consuming and
//! producing exactly `T·gain(e)` items on every incident cross edge. The
//! local firing order is fixed at plan time by the same
//! deepest-fireable-first dry run the serial `inhomogeneous` scheduler
//! uses, which also yields exact internal-buffer highwater marks.

use ccs_graph::{EdgeId, NodeId, RateAnalysis, StreamGraph};
use ccs_partition::{compile_firing_plan, ComponentId, FiringPlan, Partition};
use ccs_sched::partitioned::{granularity_t, PartSchedError};
use std::fmt;

/// Errors from plan construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagExecError {
    /// The partition is not well ordered (no contracted topological
    /// order exists), so segments cannot be batch-scheduled.
    NotWellOrdered,
    /// The graph has no unique source or the rate analysis does not
    /// match the graph.
    BadRates,
    /// Granularity or capacity arithmetic overflowed.
    Overflow,
    /// The per-segment dry run wedged (internal-buffer sizing bug).
    Deadlock { segment: usize },
    /// Adaptive control was requested without counter windows: the
    /// controller's only input is the per-worker window stream, so
    /// `RunConfig::adapt` requires `RunConfig::window_batches > 0`.
    AdaptNeedsWindows,
    /// A forced migration names a segment or worker outside the run.
    MigrationTarget {
        /// Segment the migration names.
        seg: usize,
        /// Destination worker the migration names.
        to_worker: usize,
        /// Workers actually in the run.
        workers: usize,
    },
    /// A forced migration fires inside the warmup window, where the
    /// epoch reset protocol assumes a static segment→worker map.
    MigrationDuringWarmup {
        /// Segment the migration names.
        seg: usize,
        /// Batch boundary the migration was scheduled at.
        after_batches: u64,
        /// The effective warmup window it falls inside.
        warmup: u64,
    },
}

impl fmt::Display for DagExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagExecError::NotWellOrdered => {
                write!(f, "partition is not well ordered")
            }
            DagExecError::BadRates => {
                write!(f, "rate analysis does not fit the graph")
            }
            DagExecError::Overflow => write!(f, "capacity arithmetic overflow"),
            DagExecError::Deadlock { segment } => {
                write!(f, "dry-run deadlock in segment {segment}")
            }
            DagExecError::AdaptNeedsWindows => {
                write!(
                    f,
                    "adaptive control requires counter windows (set window_batches > 0)"
                )
            }
            DagExecError::MigrationTarget {
                seg,
                to_worker,
                workers,
            } => {
                write!(
                    f,
                    "migration of segment {seg} targets worker {to_worker}, \
                     but the run has {workers} workers"
                )
            }
            DagExecError::MigrationDuringWarmup {
                seg,
                after_batches,
                warmup,
            } => {
                write!(
                    f,
                    "migration of segment {seg} at batch {after_batches} falls \
                     inside the warmup window ({warmup} batches)"
                )
            }
        }
    }
}

impl std::error::Error for DagExecError {}

impl From<PartSchedError> for DagExecError {
    fn from(e: PartSchedError) -> Self {
        match e {
            PartSchedError::InvalidPartition => DagExecError::NotWellOrdered,
            PartSchedError::Overflow => DagExecError::Overflow,
            PartSchedError::Deadlock { component } => DagExecError::Deadlock {
                segment: component as usize,
            },
            PartSchedError::NotHomogeneous | PartSchedError::NotAPipeline => DagExecError::BadRates,
        }
    }
}

/// One segment's executable plan.
#[derive(Clone, Debug)]
pub struct SegmentPlan {
    /// The original component id this segment was built from.
    pub component: ComponentId,
    /// Segment nodes in intra-segment topological order.
    pub nodes: Vec<NodeId>,
    /// One batch's firing sequence (local steady-state schedule).
    pub firings: Vec<NodeId>,
    /// Cross edges feeding this segment, with items consumed per batch.
    pub in_batch: Vec<(EdgeId, u64)>,
    /// Cross edges leaving this segment, with items produced per batch.
    pub out_batch: Vec<(EdgeId, u64)>,
    /// Total module state of the segment, in words.
    pub state_words: u64,
}

/// A complete executable plan for a partitioned dag.
#[derive(Clone, Debug)]
pub struct ExecPlan {
    /// The §3 granularity `T` (source firings per batch).
    pub t: u64,
    /// Firings of each node per batch: `quota[v] = T·gain(v)`.
    pub quota: Vec<u64>,
    /// Segments in contracted topological order.
    pub segments: Vec<SegmentPlan>,
    /// Ring capacity per edge: `2·T·gain(e)` for cross edges
    /// (double-buffered), the dry-run highwater for internal edges.
    pub capacities: Vec<u64>,
    /// Segment index (position in `segments`) of each node.
    pub seg_of_node: Vec<usize>,
    /// Per-segment fused firing plans (same order as `segments`): the
    /// batch firing sequence compiled against a flat scratch arena, for
    /// the `RunConfig::fused` hot path. Always built — compilation is
    /// cheap and the dry run guarantees the schedule is legal.
    pub fused: Vec<FiringPlan>,
}

impl ExecPlan {
    /// Total firings across all nodes in one batch of every segment.
    pub fn firings_per_round(&self) -> u64 {
        self.quota.iter().sum()
    }

    /// Build a plan: granularity, per-segment batch schedules, and ring
    /// capacities. `m_items` is the cache size `M` in items; the
    /// granularity guarantees every cross-edge batch holds at least
    /// `m_items` items.
    pub fn build(
        g: &StreamGraph,
        ra: &RateAnalysis,
        p: &Partition,
        m_items: u64,
    ) -> Result<ExecPlan, DagExecError> {
        if ra.repetitions.len() != g.node_count() || p.assignment().len() != g.node_count() {
            return Err(DagExecError::BadRates);
        }
        let source = ra.source.ok_or(DagExecError::BadRates)?;
        let comp_order = p
            .topo_order_components(g)
            .ok_or(DagExecError::NotWellOrdered)?;

        let t = granularity_t(g, ra, m_items)?;

        // quota[v] = T·gain(v) = T·q(v)/q(source): integral by the
        // construction of T.
        let qs = ra.q(source) as u128;
        let mut quota = Vec::with_capacity(g.node_count());
        for &qv in &ra.repetitions {
            let num = t as u128 * qv as u128;
            if !num.is_multiple_of(qs) {
                return Err(DagExecError::Overflow);
            }
            quota.push(u64::try_from(num / qs).map_err(|_| DagExecError::Overflow)?);
        }

        // Nodes of each segment in topological order, segments in
        // contracted topological order.
        let rank = ccs_graph::topo::topo_rank(g);
        let mut by_comp = p.components();
        for c in &mut by_comp {
            c.sort_by_key(|v| rank[v.idx()]);
        }
        let mut seg_of_comp = vec![usize::MAX; p.num_components()];
        for (i, &c) in comp_order.iter().enumerate() {
            seg_of_comp[c as usize] = i;
        }
        let mut seg_of_node = vec![usize::MAX; g.node_count()];
        for v in g.node_ids() {
            seg_of_node[v.idx()] = seg_of_comp[p.component_of(v) as usize];
        }

        // Dry-run one global round, segment by segment in contracted
        // topological order, with unbounded buffers — the same
        // deepest-fireable-first rule as the serial `inhomogeneous`
        // scheduler, via its shared helper. Records each segment's
        // local firing sequence and the exact internal occupancy
        // highwater. Cross inputs are full (upstream segments ran
        // earlier in the round), so the recorded sequence is legal at
        // runtime whenever the gating rule admits the batch.
        let mut occupancy = vec![0u64; g.edge_count()];
        let mut highwater = vec![0u64; g.edge_count()];
        let mut segments = Vec::with_capacity(comp_order.len());
        for (si, &c) in comp_order.iter().enumerate() {
            let nodes = std::mem::take(&mut by_comp[c as usize]);
            let firings = ccs_sched::partitioned::component_round_schedule(
                g,
                &rank,
                &quota,
                &nodes,
                None,
                &mut occupancy,
                &mut highwater,
            )
            .ok_or(DagExecError::Deadlock { segment: si })?;

            let mut in_batch = Vec::new();
            let mut out_batch = Vec::new();
            for &v in &nodes {
                for &e in g.in_edges(v) {
                    if seg_of_node[g.edge(e).src.idx()] != si {
                        let n = quota[v.idx()]
                            .checked_mul(g.edge(e).consume)
                            .ok_or(DagExecError::Overflow)?;
                        in_batch.push((e, n));
                    }
                }
                for &e in g.out_edges(v) {
                    if seg_of_node[g.edge(e).dst.idx()] != si {
                        let n = quota[v.idx()]
                            .checked_mul(g.edge(e).produce)
                            .ok_or(DagExecError::Overflow)?;
                        out_batch.push((e, n));
                    }
                }
            }
            let state_words = g.state_of(&nodes);
            segments.push(SegmentPlan {
                component: c,
                nodes,
                firings,
                in_batch,
                out_batch,
                state_words,
            });
        }
        debug_assert!(
            occupancy.iter().all(|&o| o == 0),
            "a full round must return every channel to empty"
        );

        // Compile each segment's batch for the fused hot path. The dry
        // run above already proved every firing sequence legal, so a
        // compile failure here can only be arena-arithmetic overflow.
        let mut fused = Vec::with_capacity(segments.len());
        for seg in &segments {
            fused.push(
                compile_firing_plan(g, &quota, &seg.nodes, &seg.firings)
                    .ok_or(DagExecError::Overflow)?,
            );
        }

        // Ring capacities: cross edges are double-buffered (two batches),
        // internal edges take their dry-run highwater.
        let mut capacities = Vec::with_capacity(g.edge_count());
        for e in g.edge_ids() {
            let edge = g.edge(e);
            if seg_of_node[edge.src.idx()] == seg_of_node[edge.dst.idx()] {
                capacities.push(highwater[e.idx()].max(edge.produce).max(edge.consume));
            } else {
                let batch = quota[edge.src.idx()]
                    .checked_mul(edge.produce)
                    .ok_or(DagExecError::Overflow)?;
                capacities.push(batch.checked_mul(2).ok_or(DagExecError::Overflow)?);
            }
        }

        Ok(ExecPlan {
            t,
            quota,
            segments,
            capacities,
            seg_of_node,
            fused,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen::{self, LayeredCfg, StateDist};
    use ccs_partition::dag_greedy;

    fn layered(seed: u64) -> ccs_graph::StreamGraph {
        gen::layered(
            &LayeredCfg {
                layers: 4,
                max_width: 3,
                density: 0.3,
                state: StateDist::Uniform(8, 48),
                max_q: 3,
            },
            seed,
        )
    }

    #[test]
    fn batch_is_one_granularity_round() {
        for seed in 0..6u64 {
            let g = layered(seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let p = dag_greedy::greedy_topo(&g, 96);
            let plan = ExecPlan::build(&g, &ra, &p, 48).unwrap();
            // Per batch, node v fires T·gain(v) times.
            for seg in &plan.segments {
                for &v in &seg.nodes {
                    let fired = seg.firings.iter().filter(|&&w| w == v).count() as u64;
                    assert_eq!(fired, plan.quota[v.idx()], "seed {seed}");
                }
            }
            // Cross batches carry T·gain(e) >= m items and capacities
            // double-buffer them.
            for seg in &plan.segments {
                for &(e, n) in seg.in_batch.iter().chain(&seg.out_batch) {
                    assert!(n >= 48, "seed {seed}: batch {n} < m");
                    assert_eq!(plan.capacities[e.idx()], 2 * n);
                }
            }
        }
    }

    #[test]
    fn in_and_out_batches_are_consistent() {
        let g = layered(3);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 96);
        let plan = ExecPlan::build(&g, &ra, &p, 48).unwrap();
        // Every cross edge appears exactly once as an output batch and
        // once as an input batch, with equal item counts.
        let mut outs = std::collections::HashMap::new();
        for seg in &plan.segments {
            for &(e, n) in &seg.out_batch {
                assert!(outs.insert(e, n).is_none());
            }
        }
        let mut seen = 0;
        for seg in &plan.segments {
            for &(e, n) in &seg.in_batch {
                assert_eq!(outs.get(&e), Some(&n));
                seen += 1;
            }
        }
        assert_eq!(seen, outs.len());
    }

    #[test]
    fn rejects_non_well_ordered() {
        let mut b = ccs_graph::GraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.node(format!("v{i}"), 4)).collect();
        for w in v.windows(2) {
            b.edge(w[0], w[1], 1, 1);
        }
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = Partition::from_assignment(vec![0, 1, 0, 1]);
        assert_eq!(
            ExecPlan::build(&g, &ra, &p, 8).unwrap_err(),
            DagExecError::NotWellOrdered
        );
    }

    #[test]
    fn whole_partition_is_one_segment() {
        let g = layered(0);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = Partition::whole(&g);
        let plan = ExecPlan::build(&g, &ra, &p, 32).unwrap();
        assert_eq!(plan.segments.len(), 1);
        assert!(plan.segments[0].in_batch.is_empty());
        assert!(plan.segments[0].out_batch.is_empty());
        assert_eq!(
            plan.firings_per_round(),
            plan.segments[0].firings.len() as u64
        );
    }
}
