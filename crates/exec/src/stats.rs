//! Per-worker and aggregate execution statistics.

use ccs_obs::{Timeline, WindowSample, MULTIPLEX_WARN_RATIO};
use ccs_perf::{CounterKind, CounterSample};
use ccs_runtime::serial::RunStats;
use std::time::Duration;

/// Hardware counters attributed to one segment: the sum of per-batch
/// counting windows (two group reads around each sampled batch,
/// differenced by [`CounterSample::delta_since`]) for the batches of
/// this segment that fell inside the steady-state measurement window.
///
/// `sample / (batches_counted · items_per_round)` is the segment's
/// misses per *sink item* — every segment's batch advances the stream
/// by the same one-round amount, so per-segment numbers normalized this
/// way are directly comparable and sum to (at most) the run total.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SegmentCounters {
    /// Segment index (contracted topological order).
    pub seg: usize,
    /// Batches of this segment executed in total.
    pub batches: u64,
    /// Batches actually counted: past the warmup window, on the
    /// sampling stride, with an open counter group.
    pub batches_counted: u64,
    /// Summed counting-window deltas over the counted batches (empty
    /// when the group never opened).
    pub sample: CounterSample,
}

impl SegmentCounters {
    /// This segment's contribution to the run's misses per sink item:
    /// counted events divided by the sink items the counted batches
    /// correspond to (`batches_counted · items_per_round`). `None`
    /// without the event, without counted batches, or with a zero
    /// items-per-round denominator.
    pub fn per_item(&self, kind: CounterKind, items_per_round: u64) -> Option<f64> {
        self.sample
            .per_item(kind, self.batches_counted * items_per_round)
    }
}

/// What one pinned worker did during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Segment indices (contracted topological order) this worker ran.
    /// Statically this is the placement's assignment; under migration
    /// ([`RunConfig::adapt`](crate::RunConfig::adapt) or forced
    /// schedules) a handed-off segment appears on every worker that
    /// held it.
    pub segments: Vec<usize>,
    /// Module firings executed by this worker.
    pub firings: u64,
    /// Batches (granularity-`T` rounds of one segment) executed.
    pub batches: u64,
    /// Scheduling passes in which no pinned segment was schedulable
    /// (the worker spun or slept) — the executor's stall count.
    pub stalls: u64,
    /// Wall-clock (monotonic) time spent in those unproductive passes:
    /// yielding in the bounded spin plus blocking on the progress
    /// condvar. `stall_time / (stall_time + busy)` is the worker's
    /// stall overhead.
    pub stall_time: Duration,
    /// Time spent actually firing kernels (excludes stalls).
    pub busy: Duration,
    /// OS cpu id this worker was successfully pinned to, if core
    /// pinning was requested and `sched_setaffinity` accepted it.
    pub pinned_cpu: Option<usize>,
    /// Hardware counters sampled around this worker's firing loop
    /// ([`RunConfig::counters`](crate::RunConfig::counters)). `None`
    /// when counters were off or unavailable on this thread. With a
    /// warmup window the sample covers only post-reset work (see
    /// [`WorkerStats::warmup_excluded`]).
    pub counters: Option<CounterSample>,
    /// Batches this worker executed *before* its steady-state counter
    /// reset point (`PERF_EVENT_IOC_RESET` once the warmup window
    /// passed) — work excluded from [`WorkerStats::counters`]. Zero
    /// when warmup was off. Under the default
    /// [`WarmupMode::Epoch`](crate::run::WarmupMode::Epoch) this is
    /// *exactly* `owned segments × warmup_batches` (the scheduler caps
    /// at the window until the shared reset barrier); under the legacy
    /// per-worker reset it can exceed that when a segment runs ahead.
    pub warmup_excluded: u64,
    /// Per-segment counter attribution
    /// ([`RunConfig::segment_counters`](crate::RunConfig::segment_counters)),
    /// one entry per owned segment; empty when attribution was off.
    pub segment_counters: Vec<SegmentCounters>,
    /// SPSC rings whose pages this worker faulted in before the run
    /// ([`RunConfig::first_touch_rings`](crate::RunConfig::first_touch_rings));
    /// zero when first-touch placement was off.
    pub rings_touched: u64,
    /// Live segment handoffs this worker *released* (each migration is
    /// counted once, by the worker the segment left). Zero for static
    /// runs.
    pub migrations: u64,
    /// Closed counter windows
    /// ([`RunConfig::window_batches`](crate::RunConfig::window_batches)):
    /// the group re-read every W batches and differenced into
    /// per-window deltas. Empty when windows were off; timing-only
    /// samples (no counter group) still appear so the cadence is
    /// visible.
    pub windows: Vec<WindowSample>,
    /// Recorded event timeline
    /// ([`RunConfig::trace`](crate::RunConfig::trace)); `None` when
    /// tracing was off.
    pub trace: Option<Timeline>,
}

/// Outcome of a parallel dag execution.
#[derive(Clone, Debug)]
pub struct DagRunStats {
    /// Aggregate outcome, shaped like the serial executor's
    /// [`RunStats`] so existing reporting code can consume it.
    pub run: RunStats,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerStats>,
    /// The §3 granularity `T` used for batching.
    pub t: u64,
    /// Batches executed per segment.
    pub rounds: u64,
    /// Number of segments.
    pub segments: usize,
    /// Whether hardware counters were requested for this run (they may
    /// still be per-worker unavailable; see [`WorkerStats::counters`]).
    pub counters_requested: bool,
    /// The effective warmup window: per-segment batches excluded from
    /// counter readings (the configured
    /// [`RunConfig::warmup_batches`](crate::RunConfig::warmup_batches),
    /// clamped below `rounds` so a measurement window always remains).
    pub warmup: u64,
    /// The warmup reset discipline the run was configured with (only
    /// consequential when counters were requested and `warmup > 0`).
    pub warmup_mode: crate::run::WarmupMode,
    /// Whether SPSC ring pages were faulted in from their consumer
    /// workers before the run ([`RunConfig::first_touch_rings`](crate::RunConfig::first_touch_rings)).
    pub first_touch_rings: bool,
    /// Whether event tracing was on
    /// ([`RunConfig::trace`](crate::RunConfig::trace)).
    pub trace_enabled: bool,
    /// The configured counter-window cadence in batches
    /// ([`RunConfig::window_batches`](crate::RunConfig::window_batches));
    /// 0 when windows were off.
    pub window_batches: u64,
}

impl DagRunStats {
    /// Sink throughput in items per second.
    pub fn items_per_sec(&self) -> f64 {
        let secs = self.run.wall.as_secs_f64();
        if secs > 0.0 {
            self.run.sink_items as f64 / secs
        } else {
            0.0
        }
    }

    /// Total stall passes across workers.
    pub fn total_stalls(&self) -> u64 {
        self.workers.iter().map(|w| w.stalls).sum()
    }

    /// Total wall-clock stall time across workers.
    pub fn total_stall_time(&self) -> Duration {
        self.workers.iter().map(|w| w.stall_time).sum()
    }

    /// Total live segment handoffs across workers (each counted once,
    /// by its releasing worker). Zero for static runs.
    pub fn total_migrations(&self) -> u64 {
        self.workers.iter().map(|w| w.migrations).sum()
    }

    /// Workers that were actually pinned to a core.
    pub fn pinned_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.pinned_cpu.is_some())
            .count()
    }

    /// Rings faulted in from their consumer workers (first-touch
    /// placement); zero when the feature was off.
    pub fn rings_first_touched(&self) -> u64 {
        self.workers.iter().map(|w| w.rings_touched).sum()
    }

    /// Run-wide counter totals: per-worker samples summed. `None` when
    /// counters were off or no worker managed to open any.
    pub fn counter_totals(&self) -> Option<CounterSample> {
        CounterSample::sum(self.workers.iter().filter_map(|w| w.counters.as_ref()))
    }

    /// Workers whose counter group opened.
    pub fn counted_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.counters.is_some()).count()
    }

    /// Sink items one granularity-`T` round moves (`sink_items /
    /// rounds`; the division is exact by construction of the plan).
    pub fn items_per_round(&self) -> u64 {
        self.run.sink_items.checked_div(self.rounds).unwrap_or(0)
    }

    /// Rounds inside the steady-state measurement window
    /// (`rounds - warmup`).
    pub fn measured_rounds(&self) -> u64 {
        self.rounds.saturating_sub(self.warmup)
    }

    /// Sink items the counter readings correspond to: the whole run
    /// without warmup, the post-warmup window otherwise. This is the
    /// denominator for [`DagRunStats::llc_misses_per_item`], so
    /// `warmup = 0` reproduces the whole-run normalization exactly.
    pub fn measured_sink_items(&self) -> u64 {
        self.items_per_round() * self.measured_rounds()
    }

    /// The paper's headline metric, measured: LLC misses per sink item
    /// over the steady-state window. `None` without counters, without
    /// the LLC event, or for a run that produced no sink items.
    pub fn llc_misses_per_item(&self) -> Option<f64> {
        self.counter_totals()?
            .per_item(CounterKind::LlcMisses, self.measured_sink_items())
    }

    /// Instructions retired per sink item over the steady-state window
    /// — the fused hot path's primary target (ring bookkeeping and
    /// per-firing copies retire instructions whether or not they miss).
    /// `None` without counters, without the instructions event, or for
    /// a run that produced no sink items.
    pub fn instructions_per_item(&self) -> Option<f64> {
        self.counter_totals()?
            .per_item(CounterKind::Instructions, self.measured_sink_items())
    }

    /// Per-segment counter attribution collected from all workers,
    /// sorted by segment index. Empty when
    /// [`RunConfig::segment_counters`](crate::RunConfig::segment_counters)
    /// was off. Each segment is owned by exactly one worker, so this is
    /// a re-indexing, not a merge.
    pub fn segment_counters(&self) -> Vec<&SegmentCounters> {
        let mut all: Vec<&SegmentCounters> = self
            .workers
            .iter()
            .flat_map(|w| w.segment_counters.iter())
            .collect();
        all.sort_by_key(|s| s.seg);
        all
    }

    /// All closed counter windows across workers as `(worker, window)`
    /// pairs, sorted by window start time — the run's merged
    /// time-resolved counter signal. Empty when
    /// [`RunConfig::window_batches`](crate::RunConfig::window_batches)
    /// was 0.
    pub fn windows(&self) -> Vec<(usize, &WindowSample)> {
        let mut all: Vec<(usize, &WindowSample)> = self
            .workers
            .iter()
            .flat_map(|w| w.windows.iter().map(move |s| (w.worker, s)))
            .collect();
        all.sort_by_key(|(w, s)| (s.start_ns, *w));
        all
    }

    /// Total closed counter windows across workers.
    pub fn window_count(&self) -> usize {
        self.workers.iter().map(|w| w.windows.len()).sum()
    }

    /// Windows whose counts were multiplex-scaled below the reporting
    /// threshold ([`MULTIPLEX_WARN_RATIO`]) — estimates, not counts.
    pub fn windows_scaled_low(&self) -> usize {
        self.windows_scaled_below(MULTIPLEX_WARN_RATIO)
    }

    /// [`windows_scaled_low`](Self::windows_scaled_low) at a caller-
    /// chosen residency threshold (`--warn-residency`).
    pub fn windows_scaled_below(&self, ratio: f64) -> usize {
        self.workers
            .iter()
            .flat_map(|w| w.windows.iter())
            .filter(|s| s.scaled_below(ratio))
            .count()
    }

    /// Windows carrying no counter delta at all (the group never
    /// opened — containers, `CCS_NO_PERF`): the timing-only fallback.
    pub fn windows_timing_only(&self) -> usize {
        self.workers
            .iter()
            .flat_map(|w| w.windows.iter())
            .filter(|s| s.timing_only())
            .count()
    }

    /// Events surviving in all per-worker trace rings (0 when tracing
    /// was off).
    pub fn trace_events(&self) -> u64 {
        self.workers
            .iter()
            .filter_map(|w| w.trace.as_ref())
            .map(|t| t.events.len() as u64)
            .sum()
    }

    /// Events lost to trace-ring overflow across workers.
    pub fn trace_dropped(&self) -> u64 {
        self.workers
            .iter()
            .filter_map(|w| w.trace.as_ref())
            .map(|t| t.dropped)
            .sum()
    }

    /// Per-segment LLC misses per sink item over the steady-state
    /// window: `(segment, misses/item)`, sorted by segment. An entry is
    /// `None` where the segment counted no batches or the LLC event
    /// never opened. Each value is normalized by the batches actually
    /// counted, so it is an unbiased per-batch estimate even under a
    /// sampling stride; with stride 1 and a timely warmup reset the
    /// values sum to at most the run-wide
    /// [`DagRunStats::llc_misses_per_item`] (stall-loop and scheduling
    /// overhead is attributed to workers, never to segments), but with
    /// `counter_stride > 1` the aggregate and the estimates have
    /// different denominators and no ordering is guaranteed. The
    /// always-true invariant is on raw counts: per-segment raw sums
    /// never exceed per-worker totals.
    pub fn segment_llc_misses_per_item(&self) -> Vec<(usize, Option<f64>)> {
        let per_round = self.items_per_round();
        self.segment_counters()
            .iter()
            .map(|s| (s.seg, s.per_item(CounterKind::LlcMisses, per_round)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_perf::Reading;

    fn worker(i: usize, counters: Option<CounterSample>) -> WorkerStats {
        WorkerStats {
            worker: i,
            segments: vec![i],
            firings: 10,
            batches: 2,
            stalls: 0,
            stall_time: Duration::ZERO,
            busy: Duration::from_millis(1),
            pinned_cpu: None,
            counters,
            warmup_excluded: 0,
            segment_counters: Vec::new(),
            rings_touched: 0,
            migrations: 0,
            windows: Vec::new(),
            trace: None,
        }
    }

    fn misses(n: u64) -> CounterSample {
        CounterSample {
            time_enabled_ns: 100,
            time_running_ns: 100,
            readings: vec![Reading {
                kind: CounterKind::LlcMisses,
                raw: n,
                scaled: n,
            }],
        }
    }

    fn stats(workers: Vec<WorkerStats>, sink_items: u64) -> DagRunStats {
        DagRunStats {
            run: RunStats {
                wall: Duration::from_millis(5),
                firings: 20,
                sink_items,
                digest: None,
            },
            workers,
            t: 4,
            rounds: 2,
            segments: 2,
            counters_requested: true,
            warmup: 0,
            warmup_mode: crate::run::WarmupMode::Epoch,
            first_touch_rings: false,
            trace_enabled: false,
            window_batches: 0,
        }
    }

    fn seg_counters(seg: usize, batches_counted: u64, misses_raw: u64) -> SegmentCounters {
        SegmentCounters {
            seg,
            batches: 2,
            batches_counted,
            sample: misses(misses_raw),
        }
    }

    #[test]
    fn totals_aggregate_across_workers() {
        let s = stats(
            vec![worker(0, Some(misses(30))), worker(1, Some(misses(70)))],
            50,
        );
        assert_eq!(s.counted_workers(), 2);
        let totals = s.counter_totals().unwrap();
        assert_eq!(totals.get(CounterKind::LlcMisses), Some(100));
        assert_eq!(s.llc_misses_per_item(), Some(2.0));
    }

    #[test]
    fn partial_availability_still_aggregates() {
        // One worker in a restricted context: its None simply drops out.
        let s = stats(vec![worker(0, Some(misses(8))), worker(1, None)], 4);
        assert_eq!(s.counted_workers(), 1);
        assert_eq!(s.llc_misses_per_item(), Some(2.0));
    }

    #[test]
    fn no_counters_is_none_everywhere() {
        let s = stats(vec![worker(0, None), worker(1, None)], 100);
        assert_eq!(s.counter_totals(), None);
        assert_eq!(s.llc_misses_per_item(), None);
        assert_eq!(s.counted_workers(), 0);
    }

    #[test]
    fn zero_sink_items_cannot_divide() {
        let s = stats(vec![worker(0, Some(misses(8)))], 0);
        assert_eq!(s.llc_misses_per_item(), None);
    }

    #[test]
    fn warmup_shrinks_the_item_denominator() {
        // 2 rounds, 50 sink items => 25 items/round.
        let mut s = stats(vec![worker(0, Some(misses(100)))], 50);
        assert_eq!(s.items_per_round(), 25);
        assert_eq!(s.measured_sink_items(), 50);
        assert_eq!(s.llc_misses_per_item(), Some(2.0));
        // warmup = 1 round: the same counts normalize over one round.
        s.warmup = 1;
        assert_eq!(s.measured_rounds(), 1);
        assert_eq!(s.measured_sink_items(), 25);
        assert_eq!(s.llc_misses_per_item(), Some(4.0));
        // Degenerate warmup >= rounds (the executor clamps before this
        // can happen, but the math must not divide by zero).
        s.warmup = 7;
        assert_eq!(s.measured_sink_items(), 0);
        assert_eq!(s.llc_misses_per_item(), None);
    }

    #[test]
    fn segment_attribution_aggregates_sorted_and_normalized() {
        let mut w0 = worker(0, Some(misses(100)));
        w0.segment_counters = vec![seg_counters(2, 2, 30)];
        let mut w1 = worker(1, Some(misses(50)));
        w1.segment_counters = vec![seg_counters(1, 1, 40), seg_counters(0, 2, 0)];
        let s = stats(vec![w0, w1], 50); // 25 items/round
        let segs = s.segment_counters();
        assert_eq!(
            segs.iter().map(|c| c.seg).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let mpi = s.segment_llc_misses_per_item();
        // seg 0: 0 misses over 2 counted batches x 25 items.
        assert_eq!(mpi[0], (0, Some(0.0)));
        // seg 1: 40 / (1 * 25).
        assert_eq!(mpi[1], (1, Some(1.6)));
        // seg 2: 30 / (2 * 25).
        assert_eq!(mpi[2], (2, Some(0.6)));
        // Per-segment raw sums stay within the per-worker totals.
        let seg_sum: u64 = segs
            .iter()
            .filter_map(|c| c.sample.get(CounterKind::LlcMisses))
            .sum();
        let worker_sum = s
            .counter_totals()
            .unwrap()
            .get(CounterKind::LlcMisses)
            .unwrap();
        assert!(seg_sum <= worker_sum);
    }

    #[test]
    fn windows_merge_sorted_and_classified() {
        use ccs_obs::{Event, EventKind, Timeline};
        let win = |start: u64, sample: Option<CounterSample>| WindowSample {
            index: 0,
            start_batch: 0,
            batches: 1,
            start_ns: start,
            end_ns: start + 10,
            sample,
        };
        let mut w0 = worker(0, None);
        w0.windows = vec![win(50, Some(misses(5))), win(200, None)];
        w0.trace = Some(Timeline {
            events: vec![Event {
                ts_ns: 0,
                dur_ns: 1,
                kind: EventKind::Batch { seg: 0 },
            }],
            dropped: 3,
        });
        let mut w1 = worker(1, None);
        let mut scaled = misses(9);
        scaled.time_enabled_ns = 1000;
        scaled.time_running_ns = 100; // 10% residency: below threshold
        w1.windows = vec![win(100, Some(scaled))];
        let s = stats(vec![w0, w1], 50);
        let merged = s.windows();
        assert_eq!(
            merged
                .iter()
                .map(|(w, s)| (*w, s.start_ns))
                .collect::<Vec<_>>(),
            vec![(0, 50), (1, 100), (0, 200)]
        );
        assert_eq!(s.window_count(), 3);
        assert_eq!(s.windows_scaled_low(), 1);
        assert_eq!(s.windows_timing_only(), 1);
        assert_eq!(s.trace_events(), 1);
        assert_eq!(s.trace_dropped(), 3);
    }

    #[test]
    fn no_obs_means_empty_aggregates() {
        let s = stats(vec![worker(0, None)], 10);
        assert!(s.windows().is_empty());
        assert_eq!(s.window_count(), 0);
        assert_eq!(s.trace_events(), 0);
        assert_eq!(s.trace_dropped(), 0);
    }

    #[test]
    fn uncounted_segments_yield_none_not_zero() {
        let mut w = worker(0, Some(misses(10)));
        w.segment_counters = vec![seg_counters(0, 0, 0)];
        let s = stats(vec![w], 50);
        assert_eq!(s.segment_llc_misses_per_item()[0], (0, None));
        // Off entirely: no entries at all.
        let s = stats(vec![worker(0, None)], 50);
        assert!(s.segment_counters().is_empty());
        assert!(s.segment_llc_misses_per_item().is_empty());
    }
}
