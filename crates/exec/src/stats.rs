//! Per-worker and aggregate execution statistics.

use ccs_runtime::serial::RunStats;
use std::time::Duration;

/// What one pinned worker did during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Segment indices (contracted topological order) pinned here.
    pub segments: Vec<usize>,
    /// Module firings executed by this worker.
    pub firings: u64,
    /// Batches (granularity-`T` rounds of one segment) executed.
    pub batches: u64,
    /// Scheduling passes in which no pinned segment was schedulable
    /// (the worker spun or slept) — the executor's stall count.
    pub stalls: u64,
    /// Wall-clock (monotonic) time spent in those unproductive passes:
    /// yielding in the bounded spin plus blocking on the progress
    /// condvar. `stall_time / (stall_time + busy)` is the worker's
    /// stall overhead.
    pub stall_time: Duration,
    /// Time spent actually firing kernels (excludes stalls).
    pub busy: Duration,
    /// OS cpu id this worker was successfully pinned to, if core
    /// pinning was requested and `sched_setaffinity` accepted it.
    pub pinned_cpu: Option<usize>,
}

/// Outcome of a parallel dag execution.
#[derive(Clone, Debug)]
pub struct DagRunStats {
    /// Aggregate outcome, shaped like the serial executor's
    /// [`RunStats`] so existing reporting code can consume it.
    pub run: RunStats,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerStats>,
    /// The §3 granularity `T` used for batching.
    pub t: u64,
    /// Batches executed per segment.
    pub rounds: u64,
    /// Number of segments.
    pub segments: usize,
}

impl DagRunStats {
    /// Sink throughput in items per second.
    pub fn items_per_sec(&self) -> f64 {
        let secs = self.run.wall.as_secs_f64();
        if secs > 0.0 {
            self.run.sink_items as f64 / secs
        } else {
            0.0
        }
    }

    /// Total stall passes across workers.
    pub fn total_stalls(&self) -> u64 {
        self.workers.iter().map(|w| w.stalls).sum()
    }

    /// Total wall-clock stall time across workers.
    pub fn total_stall_time(&self) -> Duration {
        self.workers.iter().map(|w| w.stall_time).sum()
    }

    /// Workers that were actually pinned to a core.
    pub fn pinned_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.pinned_cpu.is_some())
            .count()
    }
}
