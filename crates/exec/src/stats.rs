//! Per-worker and aggregate execution statistics.

use ccs_perf::{CounterKind, CounterSample};
use ccs_runtime::serial::RunStats;
use std::time::Duration;

/// What one pinned worker did during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Segment indices (contracted topological order) pinned here.
    pub segments: Vec<usize>,
    /// Module firings executed by this worker.
    pub firings: u64,
    /// Batches (granularity-`T` rounds of one segment) executed.
    pub batches: u64,
    /// Scheduling passes in which no pinned segment was schedulable
    /// (the worker spun or slept) — the executor's stall count.
    pub stalls: u64,
    /// Wall-clock (monotonic) time spent in those unproductive passes:
    /// yielding in the bounded spin plus blocking on the progress
    /// condvar. `stall_time / (stall_time + busy)` is the worker's
    /// stall overhead.
    pub stall_time: Duration,
    /// Time spent actually firing kernels (excludes stalls).
    pub busy: Duration,
    /// OS cpu id this worker was successfully pinned to, if core
    /// pinning was requested and `sched_setaffinity` accepted it.
    pub pinned_cpu: Option<usize>,
    /// Hardware counters sampled around this worker's firing loop
    /// ([`RunConfig::counters`](crate::RunConfig::counters)). `None`
    /// when counters were off or unavailable on this thread.
    pub counters: Option<CounterSample>,
}

/// Outcome of a parallel dag execution.
#[derive(Clone, Debug)]
pub struct DagRunStats {
    /// Aggregate outcome, shaped like the serial executor's
    /// [`RunStats`] so existing reporting code can consume it.
    pub run: RunStats,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerStats>,
    /// The §3 granularity `T` used for batching.
    pub t: u64,
    /// Batches executed per segment.
    pub rounds: u64,
    /// Number of segments.
    pub segments: usize,
    /// Whether hardware counters were requested for this run (they may
    /// still be per-worker unavailable; see [`WorkerStats::counters`]).
    pub counters_requested: bool,
}

impl DagRunStats {
    /// Sink throughput in items per second.
    pub fn items_per_sec(&self) -> f64 {
        let secs = self.run.wall.as_secs_f64();
        if secs > 0.0 {
            self.run.sink_items as f64 / secs
        } else {
            0.0
        }
    }

    /// Total stall passes across workers.
    pub fn total_stalls(&self) -> u64 {
        self.workers.iter().map(|w| w.stalls).sum()
    }

    /// Total wall-clock stall time across workers.
    pub fn total_stall_time(&self) -> Duration {
        self.workers.iter().map(|w| w.stall_time).sum()
    }

    /// Workers that were actually pinned to a core.
    pub fn pinned_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.pinned_cpu.is_some())
            .count()
    }

    /// Run-wide counter totals: per-worker samples summed. `None` when
    /// counters were off or no worker managed to open any.
    pub fn counter_totals(&self) -> Option<CounterSample> {
        CounterSample::sum(self.workers.iter().filter_map(|w| w.counters.as_ref()))
    }

    /// Workers whose counter group opened.
    pub fn counted_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.counters.is_some()).count()
    }

    /// The paper's headline metric, measured: LLC misses per sink item
    /// across the whole run. `None` without counters, without the LLC
    /// event, or for a run that produced no sink items.
    pub fn llc_misses_per_item(&self) -> Option<f64> {
        self.counter_totals()?
            .per_item(CounterKind::LlcMisses, self.run.sink_items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_perf::Reading;

    fn worker(i: usize, counters: Option<CounterSample>) -> WorkerStats {
        WorkerStats {
            worker: i,
            segments: vec![i],
            firings: 10,
            batches: 2,
            stalls: 0,
            stall_time: Duration::ZERO,
            busy: Duration::from_millis(1),
            pinned_cpu: None,
            counters,
        }
    }

    fn misses(n: u64) -> CounterSample {
        CounterSample {
            time_enabled_ns: 100,
            time_running_ns: 100,
            readings: vec![Reading {
                kind: CounterKind::LlcMisses,
                raw: n,
                scaled: n,
            }],
        }
    }

    fn stats(workers: Vec<WorkerStats>, sink_items: u64) -> DagRunStats {
        DagRunStats {
            run: RunStats {
                wall: Duration::from_millis(5),
                firings: 20,
                sink_items,
                digest: None,
            },
            workers,
            t: 4,
            rounds: 2,
            segments: 2,
            counters_requested: true,
        }
    }

    #[test]
    fn totals_aggregate_across_workers() {
        let s = stats(
            vec![worker(0, Some(misses(30))), worker(1, Some(misses(70)))],
            50,
        );
        assert_eq!(s.counted_workers(), 2);
        let totals = s.counter_totals().unwrap();
        assert_eq!(totals.get(CounterKind::LlcMisses), Some(100));
        assert_eq!(s.llc_misses_per_item(), Some(2.0));
    }

    #[test]
    fn partial_availability_still_aggregates() {
        // One worker in a restricted context: its None simply drops out.
        let s = stats(vec![worker(0, Some(misses(8))), worker(1, None)], 4);
        assert_eq!(s.counted_workers(), 1);
        assert_eq!(s.llc_misses_per_item(), Some(2.0));
    }

    #[test]
    fn no_counters_is_none_everywhere() {
        let s = stats(vec![worker(0, None), worker(1, None)], 100);
        assert_eq!(s.counter_totals(), None);
        assert_eq!(s.llc_misses_per_item(), None);
        assert_eq!(s.counted_workers(), 0);
    }

    #[test]
    fn zero_sink_items_cannot_divide() {
        let s = stats(vec![worker(0, Some(misses(8)))], 0);
        assert_eq!(s.llc_misses_per_item(), None);
    }
}
