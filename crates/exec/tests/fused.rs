//! Fused hot-path digest equivalence: fusion changes how a batch
//! executes — bulk ring ops, a flat per-segment arena, software
//! prefetch — never what it computes. For every app, partitioner,
//! worker count, and warmup mode, the fused digest must be
//! bit-identical to the classic serial executor's; the serial fused
//! executor must agree too. This is the same contract equivalence.rs
//! enforces for the classic parallel path, extended to the fused one.

use ccs_exec::{execute_dag_cfg, execute_serial_fused, RunConfig, WarmupMode};
use ccs_graph::{RateAnalysis, StreamGraph};
use ccs_partition::{dag_greedy, multilevel, Partition};
use ccs_runtime::serial::ObsConfig;
use ccs_runtime::Instance;
use ccs_sched::partitioned;

/// Serial reference digest for `rounds` granularity-T rounds.
fn serial_digest(
    g: &StreamGraph,
    ra: &RateAnalysis,
    p: &Partition,
    m: u64,
    rounds: u64,
) -> Option<u64> {
    let run = partitioned::inhomogeneous(g, ra, p, m, rounds).expect("serial reference schedule");
    let mut inst = Instance::synthetic(g.clone());
    let stats = ccs_runtime::serial::execute(&mut inst, &run);
    assert!(stats.digest.is_some(), "sink must accumulate a digest");
    stats.digest
}

/// Two partitioners per graph, as in equivalence.rs — fusion has to
/// hold on whatever segment shapes the partitioners produce, not just
/// friendly ones.
fn partitions(g: &StreamGraph, ra: &RateAnalysis, bound: u64) -> Vec<(&'static str, Partition)> {
    vec![
        ("dag-greedy", dag_greedy::greedy_best(g, ra, bound)),
        (
            "multilevel",
            multilevel::multilevel(g, ra, bound, &multilevel::MultilevelCfg::default()),
        ),
    ]
}

fn check_app(name: &str, g: StreamGraph, m: u64, rounds: u64) {
    let ra = RateAnalysis::analyze_single_io(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
    let bound = m.max(g.max_state());
    for (pname, p) in partitions(&g, &ra, bound) {
        let want = serial_digest(&g, &ra, &p, m, rounds);

        // Serial fused leg: same firings, same order, one thread.
        let inst = Instance::synthetic(g.clone());
        let (stats, _) = execute_serial_fused(inst, &ra, &p, m, rounds, &ObsConfig::default())
            .unwrap_or_else(|e| panic!("{name}/{pname}: serial fused: {e}"));
        assert_eq!(stats.digest, want, "{name}/{pname}: serial fused diverged");

        // Parallel fused legs across worker counts and warmup modes,
        // each checked against its classic (unfused) twin and the
        // serial reference.
        for mode in [WarmupMode::Epoch, WarmupMode::PerWorker] {
            for workers in [1usize, 2, 4] {
                let base = RunConfig::new(workers)
                    .with_warmup(1)
                    .with_warmup_mode(mode);
                let classic = execute_dag_cfg(
                    Instance::synthetic(g.clone()),
                    &ra,
                    &p,
                    m,
                    rounds,
                    &base.clone().with_fused(false),
                )
                .unwrap_or_else(|e| panic!("{name}/{pname}: classic {mode:?} x{workers}: {e}"));
                let fused = execute_dag_cfg(
                    Instance::synthetic(g.clone()),
                    &ra,
                    &p,
                    m,
                    rounds,
                    &base.with_fused(true),
                )
                .unwrap_or_else(|e| panic!("{name}/{pname}: fused {mode:?} x{workers}: {e}"));
                assert_eq!(
                    fused.run.digest, want,
                    "{name}/{pname}: fused diverged from serial at {mode:?} x{workers}"
                );
                assert_eq!(
                    fused.run.digest, classic.run.digest,
                    "{name}/{pname}: fused != classic at {mode:?} x{workers}"
                );
                assert_eq!(
                    fused.run.sink_items, classic.run.sink_items,
                    "{name}/{pname}: sink accounting moved at {mode:?} x{workers}"
                );
            }
        }
    }
}

#[test]
fn fm_radio_fused_matches_serial() {
    check_app("fm-radio", ccs_apps::fm_radio(8), 512, 2);
}

#[test]
fn beamformer_fused_matches_serial() {
    check_app("beamformer", ccs_apps::beamformer(4, 4), 256, 2);
}

#[test]
fn filterbank_fused_matches_serial() {
    check_app("filterbank", ccs_apps::filterbank(8), 512, 2);
}

#[test]
fn fft_fused_matches_serial() {
    check_app("fft", ccs_apps::fft(4), 256, 2);
}

#[test]
fn fir_bound_kernels_fused_match_serial() {
    // Real FIR kernels instead of the synthetic binding: the arena
    // spans feed the same kernel `fire` interface, so real state and
    // real peek windows must digest identically too.
    let g = ccs_apps::fm_radio(4);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let bound = 512u64.max(g.max_state());
    let p = dag_greedy::greedy_best(&g, &ra, bound);
    let run = partitioned::inhomogeneous(&g, &ra, &p, 512, 2).unwrap();
    let mut serial_inst = ccs_apps::fir_instance(g.clone());
    let want = ccs_runtime::serial::execute(&mut serial_inst, &run).digest;
    let (stats, _) = execute_serial_fused(
        ccs_apps::fir_instance(g.clone()),
        &ra,
        &p,
        512,
        2,
        &ObsConfig::default(),
    )
    .unwrap();
    assert_eq!(stats.digest, want, "serial fused");
    for workers in [1usize, 2, 4] {
        let cfg = RunConfig::new(workers).with_fused(true);
        let stats =
            execute_dag_cfg(ccs_apps::fir_instance(g.clone()), &ra, &p, 512, 2, &cfg).unwrap();
        assert_eq!(stats.run.digest, want, "workers {workers}");
    }
}
