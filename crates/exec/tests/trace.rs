//! Observability must be an observer, not a participant: enabling
//! `RunConfig::trace` and `RunConfig::window_batches` may not change
//! digests, firing counts, or sink items — for real apps, at every
//! worker count, under both warmup modes, and on the serial path — and
//! the timelines/windows they yield must be internally consistent with
//! the run they describe. Mirrors `tests/counters.rs` for the counter
//! layer.

use ccs_exec::{execute_dag_cfg, Placement, RunConfig, WarmupMode};
use ccs_graph::gen::{self, LayeredCfg, StateDist};
use ccs_graph::{RateAnalysis, StreamGraph};
use ccs_obs::EventKind;
use ccs_partition::{dag_greedy, Partition};
use ccs_runtime::instance::Instance;
use ccs_runtime::{execute_obs, ObsConfig};
use ccs_sched::partitioned;

/// Serial reference digest for `rounds` granularity-T rounds.
fn serial_digest(
    g: &StreamGraph,
    ra: &RateAnalysis,
    p: &Partition,
    m: u64,
    rounds: u64,
) -> Option<u64> {
    let run = partitioned::inhomogeneous(g, ra, p, m, rounds).unwrap();
    let mut inst = Instance::synthetic(g.clone());
    ccs_runtime::serial::execute(&mut inst, &run).digest
}

#[test]
fn trace_and_windows_do_not_perturb_app_digests() {
    // The acceptance bar for the observability layer, on real apps:
    // turning on tracing and counter windows changes *nothing* about
    // execution — digest, firings, sink items — at any worker count,
    // under either warmup reset discipline, and on the serial executor.
    let apps: Vec<(&str, StreamGraph, u64)> = vec![
        ("fm-radio", ccs_apps::fm_radio(8), 512),
        ("filterbank", ccs_apps::filterbank(8), 512),
        ("fft", ccs_apps::fft(4), 256),
    ];
    let rounds = 4u64;
    for (name, g, m) in apps {
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let bound = m.max(g.max_state());
        let p = dag_greedy::greedy_best(&g, &ra, bound);
        let want = serial_digest(&g, &ra, &p, m, rounds);

        // Serial path: the observed executor must match the plain one.
        let run = partitioned::inhomogeneous(&g, &ra, &p, m, rounds).unwrap();
        let mut inst = Instance::synthetic(g.clone());
        let (obs_stats, obs) = execute_obs(
            &mut inst,
            &run,
            &ObsConfig {
                counters: true,
                warmup_firings: run.firings.len() as u64 / 4,
                window_firings: 64,
                block_firings: 256,
                trace: true,
                ..ObsConfig::default()
            },
        );
        assert_eq!(obs_stats.digest, want, "{name} serial");
        assert!(obs.trace.is_some(), "{name} serial trace missing");
        assert!(!obs.windows.is_empty(), "{name} serial windows missing");

        // Parallel path: serial / 1 / 2 / 4 workers, both warmup modes.
        for workers in [1usize, 2, 4] {
            for mode in [WarmupMode::Epoch, WarmupMode::PerWorker] {
                let base = RunConfig::new(workers).with_placement(Placement::CommGreedy);
                let plain =
                    execute_dag_cfg(Instance::synthetic(g.clone()), &ra, &p, m, rounds, &base)
                        .unwrap();
                let traced = execute_dag_cfg(
                    Instance::synthetic(g.clone()),
                    &ra,
                    &p,
                    m,
                    rounds,
                    &base
                        .clone()
                        .with_counters(true)
                        .with_warmup(1)
                        .with_warmup_mode(mode)
                        .with_trace(true)
                        .with_windows(1),
                )
                .unwrap();
                let tag = format!("{name} workers {workers} mode {mode:?}");
                assert_eq!(plain.run.digest, want, "{tag} (plain vs serial)");
                assert_eq!(plain.run.digest, traced.run.digest, "{tag}");
                assert_eq!(plain.run.firings, traced.run.firings, "{tag}");
                assert_eq!(plain.run.sink_items, traced.run.sink_items, "{tag}");
                // Bookkeeping of the request itself.
                assert!(!plain.trace_enabled, "{tag}");
                assert_eq!(plain.window_batches, 0, "{tag}");
                assert!(plain.workers.iter().all(|w| w.trace.is_none()), "{tag}");
                assert!(plain.workers.iter().all(|w| w.windows.is_empty()), "{tag}");
                assert!(traced.trace_enabled, "{tag}");
                assert_eq!(traced.window_batches, 1, "{tag}");
            }
        }
    }
}

#[test]
fn timelines_and_windows_are_consistent_with_the_run() {
    let cfg_g = LayeredCfg {
        layers: 5,
        max_width: 4,
        density: 0.35,
        state: StateDist::Uniform(16, 64),
        max_q: 2,
    };
    let rounds = 6u64;
    let every = 2u64;
    for seed in 0..3u64 {
        let g = gen::layered(&cfg_g, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 96);
        let cfg = RunConfig::new(3)
            .with_counters(true)
            .with_warmup(2)
            .with_trace(true)
            .with_windows(every);
        let stats = execute_dag_cfg(Instance::synthetic(g), &ra, &p, 48, rounds, &cfg).unwrap();
        let tag = format!("seed {seed}");

        // Every worker has a timeline; none lost events at the default
        // ring capacity for a run this small.
        assert_eq!(stats.trace_dropped(), 0, "{tag}");
        assert!(stats.trace_events() > 0, "{tag}");
        for w in &stats.workers {
            let tl = w
                .trace
                .as_ref()
                .unwrap_or_else(|| panic!("{tag}: no timeline"));
            // Timestamps are monotone within a worker.
            assert!(
                tl.events.windows(2).all(|e| e[0].ts_ns <= e[1].ts_ns),
                "{tag} worker {}",
                w.worker
            );
            // One batch span per batch the worker executed, and exactly
            // one warmup reset instant (warmup > 0, counters on).
            let batch_spans = tl
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Batch { .. }))
                .count() as u64;
            assert_eq!(batch_spans, w.batches, "{tag} worker {}", w.worker);
            let resets = tl
                .events
                .iter()
                .filter(|e| e.kind == EventKind::WarmupReset)
                .count();
            assert_eq!(resets, 1, "{tag} worker {}", w.worker);
            // Instantaneous kinds never carry a span duration.
            assert!(
                tl.events
                    .iter()
                    .filter(|e| matches!(
                        e.kind,
                        EventKind::WarmupReset
                            | EventKind::Window { .. }
                            | EventKind::RingFirstTouch { .. }
                    ))
                    .all(|e| e.dur_ns == 0),
                "{tag}"
            );

            // Window accounting: gap-free per-worker indices, batches
            // summing to the worker's batch total, spans ordered.
            let wins = &w.windows;
            if w.batches > 0 {
                assert!(!wins.is_empty(), "{tag} worker {}", w.worker);
            }
            assert_eq!(
                wins.iter().map(|s| s.batches).sum::<u64>(),
                w.batches,
                "{tag} worker {}",
                w.worker
            );
            for (i, s) in wins.iter().enumerate() {
                assert_eq!(s.index, i as u64, "{tag} worker {}", w.worker);
                assert!(s.batches <= every, "{tag} worker {}", w.worker);
                assert!(s.start_ns <= s.end_ns, "{tag} worker {}", w.worker);
            }
            assert!(
                wins.windows(2).all(|p| p[0].end_ns <= p[1].start_ns),
                "{tag} worker {}",
                w.worker
            );
        }
        // The run-level merge is sorted by start time and counts match.
        let merged = stats.windows();
        assert_eq!(merged.len(), stats.window_count(), "{tag}");
        assert!(
            merged
                .windows(2)
                .all(|p| p[0].1.start_ns <= p[1].1.start_ns),
            "{tag}"
        );
        // Whether counters opened is environment policy; either way the
        // classification is total.
        assert!(stats.windows_timing_only() <= stats.window_count(), "{tag}");
    }
}

#[test]
fn tiny_ring_capacity_drops_are_accounted_not_silent() {
    let g = gen::pipeline_uniform(10, 48);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = dag_greedy::greedy_topo(&g, 96);
    let plain = execute_dag_cfg(
        Instance::synthetic(g.clone()),
        &ra,
        &p,
        48,
        8,
        &RunConfig::new(2),
    )
    .unwrap();
    let cfg = RunConfig::new(2).with_trace(true).with_trace_capacity(2);
    let stats = execute_dag_cfg(Instance::synthetic(g), &ra, &p, 48, 8, &cfg).unwrap();
    // Squeezing the ring changes nothing about the run…
    assert_eq!(stats.run.digest, plain.run.digest);
    // …but the truncation is visible: each surviving timeline holds at
    // most 2 events and the drop counter owns the rest.
    for w in &stats.workers {
        let tl = w.trace.as_ref().unwrap();
        assert!(tl.events.len() <= 2, "worker {}", w.worker);
        let recorded = tl.events.len() as u64 + tl.dropped;
        // At least one event per batch was recorded (stalls add more).
        assert!(recorded >= w.batches, "worker {}", w.worker);
    }
    assert!(stats.trace_dropped() > 0);
}

#[test]
fn ccs_no_perf_degrades_windows_to_timing_only() {
    // With the perf kill switch set, counter windows must still appear —
    // carrying wall-clock spans and batch accounting — but flagged
    // timing-only, and the run itself is untouched. (The var is set only
    // within this test; sibling tests tolerate either availability
    // outcome, so the brief overlap cannot fail them.)
    let g = gen::pipeline_uniform(6, 32);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = dag_greedy::greedy_topo(&g, 64);
    let want = execute_dag_cfg(
        Instance::synthetic(g.clone()),
        &ra,
        &p,
        32,
        4,
        &RunConfig::new(2),
    )
    .unwrap()
    .run
    .digest;
    std::env::set_var("CCS_NO_PERF", "1");
    let cfg = RunConfig::new(2)
        .with_counters(true)
        .with_warmup(1)
        .with_trace(true)
        .with_windows(1);
    let stats = execute_dag_cfg(Instance::synthetic(g), &ra, &p, 32, 4, &cfg).unwrap();
    std::env::remove_var("CCS_NO_PERF");
    assert_eq!(stats.run.digest, want);
    assert_eq!(stats.counted_workers(), 0);
    assert!(stats.window_count() > 0);
    assert_eq!(stats.windows_timing_only(), stats.window_count());
    assert_eq!(stats.windows_scaled_low(), 0);
    for (_, w) in stats.windows() {
        assert!(w.timing_only());
        assert_eq!(w.pmu_residency(), None);
    }
    // Timelines are independent of the PMU: still present and monotone.
    for w in &stats.workers {
        let tl = w.trace.as_ref().unwrap();
        assert!(tl.events.iter().any(|e| e.kind == EventKind::WarmupReset));
    }
}
