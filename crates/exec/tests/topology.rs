//! Topology-aware execution: the `llc` placement and core pinning must
//! change *where* segments run, never *what* they compute — the sink
//! digest stays bit-identical to the serial executor's across every
//! topology, placement, pinning mode, and worker count. Plus the two
//! placement-quality contracts: the fair-share load cap always holds,
//! and a maximal-gain edge's endpoints land in one LLC cluster whenever
//! the cap allows it.

use ccs_exec::{assign_on, execute_dag_cfg, fair_share, ExecPlan, Placement, RunConfig};
use ccs_graph::gen::{self, LayeredCfg, StateDist};
use ccs_graph::{RateAnalysis, StreamGraph};
use ccs_partition::{dag_greedy, Partition};
use ccs_runtime::Instance;
use ccs_sched::partitioned;
use ccs_topo::{TopoSpec, Topology};
use proptest::prelude::*;

/// Serial reference digest for `rounds` granularity-T rounds.
fn serial_digest(
    g: &StreamGraph,
    ra: &RateAnalysis,
    p: &Partition,
    m: u64,
    rounds: u64,
) -> Option<u64> {
    let run = partitioned::inhomogeneous(g, ra, p, m, rounds).expect("serial reference schedule");
    let mut inst = Instance::synthetic(g.clone());
    ccs_runtime::serial::execute(&mut inst, &run).digest
}

/// The acceptance contract: on a synthetic multi-LLC machine, `llc`
/// placement × {pinned, unpinned} × {1, 2, 4} workers all reproduce the
/// serial digest exactly.
#[test]
fn llc_placement_and_pinning_match_serial() {
    let apps: Vec<(&str, StreamGraph, u64)> = vec![
        ("fm-radio", ccs_apps::fm_radio(8), 512),
        ("beamformer", ccs_apps::beamformer(4, 4), 256),
        (
            "layered",
            gen::layered(
                &LayeredCfg {
                    layers: 4,
                    max_width: 3,
                    density: 0.3,
                    state: StateDist::Uniform(8, 48),
                    max_q: 3,
                },
                1,
            ),
            96,
        ),
    ];
    // Two clusters of two cores on one node: small enough that every
    // worker count exercises both the intra- and inter-cluster paths.
    let topo = Topology::synthetic(&TopoSpec::new(1, 2, 2));
    for (name, g, m) in apps {
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_best(&g, &ra, m.max(g.max_state()));
        let want = serial_digest(&g, &ra, &p, m, 2);
        assert!(want.is_some(), "{name}: no serial digest");
        for pin in [false, true] {
            for workers in [1usize, 2, 4] {
                let cfg = RunConfig::new(workers)
                    .with_placement(Placement::Llc)
                    .with_topology(topo.clone())
                    .with_pinning(pin);
                let inst = Instance::synthetic(g.clone());
                let stats = execute_dag_cfg(inst, &ra, &p, m, 2, &cfg)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(
                    stats.run.digest, want,
                    "{name}: digest diverged at {workers} workers, pin={pin}"
                );
            }
        }
    }
}

/// A pipeline of eight one-node segments (16 words each) whose edge
/// s1→s2 carries 8× the traffic of every other edge.
fn hot_edge_pipeline() -> (StreamGraph, RateAnalysis, Partition) {
    let mut b = ccs_graph::GraphBuilder::new();
    let v: Vec<_> = (0..8).map(|i| b.node(format!("s{i}"), 16)).collect();
    for i in 0..7 {
        if i == 1 {
            b.edge(v[i], v[i + 1], 8, 8);
        } else {
            b.edge(v[i], v[i + 1], 1, 1);
        }
    }
    let g = b.build().unwrap();
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = Partition::from_assignment((0..8).collect());
    (g, ra, p)
}

/// The acceptance contract for placement quality: the maximal-gain
/// edge's endpoints go to the same LLC cluster whenever the load cap
/// allows. Here the cap (2 segments per worker) closes s1's own worker
/// before s2 is placed, and two open workers tie on load — one in s1's
/// cluster, one in the other — so only the LLC distance weight can
/// break the tie correctly.
#[test]
fn max_gain_edge_endpoints_share_an_llc_cluster() {
    let (g, ra, p) = hot_edge_pipeline();
    let plan = ExecPlan::build(&g, &ra, &p, 8).unwrap();
    let topo = Topology::synthetic(&TopoSpec::new(1, 2, 2));
    let owner = assign_on(&g, &ra, &plan, 4, Placement::Llc, &topo, true);
    // The deterministic walk: each worker fills to its fair share (two
    // segments) before the chain spills into the next core — and the
    // hot edge s1→s2 crosses workers inside cluster 0.
    assert_eq!(owner, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    let cluster_of = |w: usize| topo.core(w % topo.core_count()).cluster;
    assert_eq!(cluster_of(owner[1]), cluster_of(owner[2]), "{owner:?}");
    // Sanity: the same machine under round-robin splits the hot edge
    // across clusters — the llc win is real, not structural.
    let rr = assign_on(&g, &ra, &plan, 4, Placement::RoundRobin, &topo, true);
    assert_ne!(cluster_of(rr[1]), cluster_of(rr[2]), "{rr:?}");
}

/// Digest equivalence on the hot-edge graph too, now through the
/// planner-facing config (llc + pinning on the synthetic machine).
#[test]
fn hot_edge_pipeline_matches_serial_under_llc() {
    let (g, ra, p) = hot_edge_pipeline();
    let want = serial_digest(&g, &ra, &p, 8, 4);
    let topo = Topology::synthetic(&TopoSpec::new(1, 2, 2));
    for pin in [false, true] {
        let cfg = RunConfig::new(4)
            .with_placement(Placement::Llc)
            .with_topology(topo.clone())
            .with_pinning(pin);
        let inst = Instance::synthetic(g.clone());
        let stats = execute_dag_cfg(inst, &ra, &p, 8, 4, &cfg).unwrap();
        assert_eq!(stats.run.digest, want, "pin={pin}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fair-share load cap: under `llc` placement no worker's
    /// placed segment state exceeds `ceil(total/workers)` except via
    /// the all-workers-full fallback, which adds at most one segment to
    /// the least-loaded worker — so `fair + max_segment_state` bounds
    /// every worker, on every machine shape.
    #[test]
    fn llc_placement_respects_fair_share(seed in 0u64..5_000,
                                         layers in 2usize..6,
                                         width in 1usize..5,
                                         workers in 1usize..6,
                                         nodes in 1usize..3,
                                         clusters in 1usize..3,
                                         cores in 1usize..3) {
        let g = gen::layered(
            &LayeredCfg {
                layers,
                max_width: width,
                density: 0.4,
                state: StateDist::Uniform(8, 64),
                max_q: 2,
            },
            seed,
        );
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 128.max(g.max_state()));
        let plan = ExecPlan::build(&g, &ra, &p, 64).unwrap();
        let topo = Topology::synthetic(&TopoSpec::new(nodes, clusters, cores));
        let owner = assign_on(&g, &ra, &plan, workers, Placement::Llc, &topo, true);
        prop_assert!(owner.iter().all(|&w| w < workers));
        let fair = fair_share(&plan, workers);
        let max_seg = plan.segments.iter().map(|s| s.state_words).max().unwrap_or(0);
        let mut load = vec![0u64; workers];
        for (si, &w) in owner.iter().enumerate() {
            load[w] += plan.segments[si].state_words;
        }
        for (w, &l) in load.iter().enumerate() {
            prop_assert!(l <= fair + max_seg,
                         "worker {} load {} > fair {} + max_seg {}", w, l, fair, max_seg);
        }
    }
}

/// Multi-source/multi-sink graphs run end-to-end once augmented with
/// super endpoints, and the result is digest-identical to the serial
/// executor over the same augmented instance.
#[test]
fn fan_in_fan_out_runs_after_super_endpoint_augmentation() {
    let mut b = ccs_graph::GraphBuilder::new();
    let s1 = b.node("src1", 16);
    let s2 = b.node("src2", 16);
    let m1 = b.node("mix1", 32);
    let m2 = b.node("mix2", 32);
    let t1 = b.node("sink1", 16);
    let t2 = b.node("sink2", 16);
    b.edge(s1, m1, 1, 1);
    b.edge(s2, m1, 1, 1);
    b.edge(m1, m2, 2, 2);
    b.edge(m2, t1, 1, 1);
    b.edge(m2, t2, 1, 1);
    let g = b.build().unwrap();
    assert!(g.single_source().is_none() && g.single_sink().is_none());

    let aug = Instance::synthetic(g.clone()).with_super_endpoints();
    let g2 = aug.graph.clone();
    let ra = RateAnalysis::analyze_single_io(&g2).unwrap();
    let p = dag_greedy::greedy_topo(&g2, 64.max(g2.max_state()));

    // Serial reference over an identically augmented instance.
    let run = partitioned::inhomogeneous(&g2, &ra, &p, 16, 3).unwrap();
    let mut serial_inst = Instance::synthetic(g.clone()).with_super_endpoints();
    let want = ccs_runtime::serial::execute(&mut serial_inst, &run).digest;
    assert!(want.is_some());

    let topo = Topology::synthetic(&TopoSpec::new(1, 2, 2));
    for workers in [1usize, 2, 4] {
        let cfg = RunConfig::new(workers)
            .with_placement(Placement::Llc)
            .with_topology(topo.clone());
        let inst = Instance::synthetic(g.clone()).with_super_endpoints();
        let stats = execute_dag_cfg(inst, &ra, &p, 16, 3, &cfg).unwrap();
        assert_eq!(stats.run.digest, want, "workers {workers}");
    }
}
