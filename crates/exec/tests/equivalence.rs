//! Cross-executor equivalence: the multicore dag executor must produce a
//! sink digest bit-identical to the serial executor's, for every app,
//! partitioner, worker count, and placement — SDF determinism is the
//! correctness contract that makes a concurrent executor testable.

use ccs_exec::{execute_dag, Placement};
use ccs_graph::{RateAnalysis, StreamGraph};
use ccs_partition::{dag_greedy, multilevel, Partition};
use ccs_runtime::Instance;
use ccs_sched::partitioned;

/// Serial reference digest for `rounds` granularity-T rounds.
fn serial_digest(
    g: &StreamGraph,
    ra: &RateAnalysis,
    p: &Partition,
    m: u64,
    rounds: u64,
) -> Option<u64> {
    let run = partitioned::inhomogeneous(g, ra, p, m, rounds).expect("serial reference schedule");
    let mut inst = Instance::synthetic(g.clone());
    let stats = ccs_runtime::serial::execute(&mut inst, &run);
    assert!(stats.digest.is_some(), "sink must accumulate a digest");
    stats.digest
}

/// Two partitioners per graph: greedy (topo/affinity best-of) and
/// multilevel coarsen/partition/refine.
fn partitions(g: &StreamGraph, ra: &RateAnalysis, bound: u64) -> Vec<(&'static str, Partition)> {
    vec![
        ("dag-greedy", dag_greedy::greedy_best(g, ra, bound)),
        (
            "multilevel",
            multilevel::multilevel(g, ra, bound, &multilevel::MultilevelCfg::default()),
        ),
    ]
}

fn check_app(name: &str, g: StreamGraph, m: u64, rounds: u64) {
    let ra = RateAnalysis::analyze_single_io(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
    let bound = m.max(g.max_state());
    for (pname, p) in partitions(&g, &ra, bound) {
        assert!(
            p.validate(&g, bound).is_ok(),
            "{name}/{pname}: invalid partition"
        );
        let want = serial_digest(&g, &ra, &p, m, rounds);
        for workers in [1usize, 2, 4] {
            for placement in [Placement::RoundRobin, Placement::CommGreedy] {
                let inst = Instance::synthetic(g.clone());
                let stats = execute_dag(inst, &ra, &p, m, rounds, workers, placement)
                    .unwrap_or_else(|e| panic!("{name}/{pname}: {e}"));
                assert_eq!(
                    stats.run.digest,
                    want,
                    "{name}/{pname}: digest diverged at {workers} workers, {}",
                    placement.name()
                );
            }
        }
    }
}

#[test]
fn fm_radio_matches_serial() {
    check_app("fm-radio", ccs_apps::fm_radio(8), 512, 2);
}

#[test]
fn beamformer_matches_serial() {
    check_app("beamformer", ccs_apps::beamformer(4, 4), 256, 2);
}

#[test]
fn filterbank_matches_serial() {
    check_app("filterbank", ccs_apps::filterbank(8), 512, 2);
}

#[test]
fn fft_matches_serial() {
    check_app("fft", ccs_apps::fft(4), 256, 2);
}

#[test]
fn fir_bound_kernels_match_serial() {
    // Same contract with the real FIR kernel binding instead of the
    // synthetic one: digests must agree between serial and parallel.
    let g = ccs_apps::fm_radio(4);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let bound = 512u64.max(g.max_state());
    let p = dag_greedy::greedy_best(&g, &ra, bound);
    let run = partitioned::inhomogeneous(&g, &ra, &p, 512, 2).unwrap();
    let mut serial_inst = ccs_apps::fir_instance(g.clone());
    let want = ccs_runtime::serial::execute(&mut serial_inst, &run).digest;
    for workers in [1usize, 2, 4] {
        let inst = ccs_apps::fir_instance(g.clone());
        let stats = execute_dag(inst, &ra, &p, 512, 2, workers, Placement::CommGreedy).unwrap();
        assert_eq!(stats.run.digest, want, "workers {workers}");
    }
}
