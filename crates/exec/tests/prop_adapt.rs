//! Migration-equivalence property: for *any* legal scripted hop
//! schedule — any segments, any targets, any batch boundaries, chained
//! or colliding, on any worker count, with or without a warmup window
//! and counter windows — the run completes, the sink digest is
//! bit-identical to the serial executor's, and every segment still
//! executes exactly `rounds` batches. Synchronous dataflow makes the
//! stream's content schedule-independent; this test pins down that the
//! handoff protocol preserves that guarantee under arbitrary placement
//! churn, not just the polite schedules a controller would emit.

use ccs_exec::{execute_dag_cfg, Migration, RunConfig};
use ccs_graph::{GraphBuilder, RateAnalysis, StreamGraph};
use ccs_partition::Partition;
use ccs_runtime::Instance;
use ccs_sched::partitioned;
use proptest::prelude::*;

/// Source → `branches` parallel chains of `depth` nodes → sink: a
/// single-io dag family with real fan-out/fan-in, so hops land on
/// segments whose ring peers are mid-flight on other workers.
fn diamond(branches: usize, depth: usize) -> StreamGraph {
    let mut b = GraphBuilder::new();
    let src = b.node("src", 16);
    let sink = b.node("sink", 16);
    for br in 0..branches {
        let mut prev = src;
        for d in 0..depth {
            let v = b.node(format!("b{br}-{d}"), 24);
            b.edge(prev, v, 1, 1);
            prev = v;
        }
        b.edge(prev, sink, 1, 1);
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_legal_hop_schedule_is_digest_invariant(
        branches in 1usize..4,
        depth in 1usize..4,
        workers in 1usize..5,
        warmup in 0u64..3,
        windows in 0u64..3,
        raw in proptest::collection::vec(
            (0usize..64, 0usize..8, 0u64..16), 0..16),
    ) {
        let g = diamond(branches, depth);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let segs = g.node_count();
        let p = Partition::from_assignment((0..segs as u32).collect());
        let m = 8;
        let rounds = 5u64;
        // Fold the raw triples into legal hops: in-range segment and
        // worker, boundary at or after the warmup window (boundaries at
        // `rounds` are legal and never fire).
        let hops: Vec<Migration> = raw
            .iter()
            .map(|&(s, w, a)| Migration {
                seg: s % segs,
                to_worker: w % workers,
                after_batches: warmup + a % (rounds + 1 - warmup),
            })
            .collect();
        let run = partitioned::inhomogeneous(&g, &ra, &p, m, rounds).unwrap();
        let mut serial_inst = Instance::synthetic(g.clone());
        let serial = ccs_runtime::serial::execute(&mut serial_inst, &run);
        prop_assert!(serial.digest.is_some());

        let cfg = RunConfig::new(workers)
            .with_warmup(warmup)
            .with_windows(windows)
            .with_forced_migrations(hops.clone());
        let inst = Instance::synthetic(g.clone());
        let stats = execute_dag_cfg(inst, &ra, &p, m, rounds, &cfg).unwrap();
        prop_assert_eq!(
            stats.run.digest, serial.digest,
            "digest diverged: workers={}, warmup={}, hops={:?}",
            workers, warmup, hops
        );
        // Ring/batch accounting: the hops moved work, never created or
        // destroyed it.
        prop_assert_eq!(stats.run.firings, serial.firings);
        let batches: u64 = stats.workers.iter().map(|w| w.batches).sum();
        prop_assert_eq!(batches, segs as u64 * rounds);
        // At most one recorded migration per scripted hop (self-hops
        // and past-the-end boundaries fire zero times).
        prop_assert!(stats.total_migrations() <= hops.len() as u64);
    }
}
