//! The adaptive executor's correctness bar: migrations — whether the
//! controller decides them live or a script forces them — change
//! *where* segments run, never *what* they compute. The seeded
//! `phase-shift` app steps its hot kernels' work a known multiple at a
//! known firing count; the controller must notice and issue at least
//! one live handoff, and every adaptive digest must stay bit-identical
//! to the serial executor's — across worker counts, warmup modes, and
//! PMU-less (timing-only) windows. Scripted hops additionally pin down
//! the exact boundary semantics: self-hops and past-the-end hops are
//! no-ops, chained hops land in order, and batch accounting survives
//! every move.

use ccs_exec::{execute_dag_cfg, AdaptConfig, Migration, RunConfig, WarmupMode};
use ccs_graph::{RateAnalysis, StreamGraph};
use ccs_obs::EventKind;
use ccs_partition::Partition;
use ccs_runtime::Instance;
use ccs_sched::partitioned;

/// One segment per node: keeps the perturbed kernels in pure segments,
/// so their cost step is not diluted by co-resident modules.
fn singleton_partition(g: &StreamGraph) -> Partition {
    Partition::from_assignment((0..g.node_count() as u32).collect())
}

/// Serial reference digest over `rounds` granularity-T rounds of the
/// *same bound instance* the parallel runs use — the binding must
/// match, or the comparison proves nothing.
fn serial_digest(
    g: &StreamGraph,
    ra: &RateAnalysis,
    p: &Partition,
    m: u64,
    rounds: u64,
    mut inst: Instance,
) -> Option<u64> {
    let run = partitioned::inhomogeneous(g, ra, p, m, rounds).expect("serial reference schedule");
    ccs_runtime::serial::execute(&mut inst, &run).digest
}

/// The deterministic perturbation harness (the acceptance contract):
/// the phase-shift kernels step 32x a third of the way into the run.
/// For every warmup mode and worker count the adaptive digest equals
/// the serial one, and with >= 2 workers the controller performs at
/// least one live migration. Counters stay off, so the windows are
/// timing-only — the same degraded stream a `CCS_NO_PERF=1` run sees.
#[test]
fn phase_shift_adaptive_matches_serial_and_migrates() {
    let g = ccs_apps::phase_shift();
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = singleton_partition(&g);
    let m = 8;
    let rounds = 48;
    let t = partitioned::granularity_t(&g, &ra, m).unwrap();
    // Step at batch 16 of each hot segment: past the warmup window and
    // the controller's min_windows gate, with most of the run still
    // ahead for the handoff to land in.
    let step_at = t * 16;
    let mult = 32;
    let want = serial_digest(
        &g,
        &ra,
        &p,
        m,
        rounds,
        ccs_apps::phase_shift_instance(g.clone(), step_at, mult),
    );
    assert!(want.is_some(), "no serial digest for phase-shift");
    for mode in [WarmupMode::Epoch, WarmupMode::PerWorker] {
        for workers in [1usize, 2, 4] {
            let cfg = RunConfig::new(workers)
                .with_windows(2)
                .with_warmup(4)
                .with_warmup_mode(mode)
                .with_adapt(AdaptConfig::default());
            let inst = ccs_apps::phase_shift_instance(g.clone(), step_at, mult);
            let stats = execute_dag_cfg(inst, &ra, &p, m, rounds, &cfg)
                .unwrap_or_else(|e| panic!("{mode:?} x{workers}: {e}"));
            assert_eq!(
                stats.run.digest, want,
                "digest diverged under adaptation: {mode:?} x{workers}"
            );
            if workers >= 2 {
                assert!(
                    stats.total_migrations() >= 1,
                    "perturbation went unanswered: {mode:?} x{workers}"
                );
            } else {
                // A single worker has nowhere to migrate to.
                assert_eq!(stats.total_migrations(), 0, "{mode:?} x1");
            }
        }
    }
}

/// The same perturbation harness through the fused hot path: the
/// arena-and-bulk-ring batches must survive live migrations exactly
/// like classic batches do — the arena rides inside the segment task,
/// so a handoff moves it wholesale and the digest cannot move.
#[test]
fn phase_shift_adaptive_fused_matches_serial_and_migrates() {
    let g = ccs_apps::phase_shift();
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = singleton_partition(&g);
    let m = 8;
    let rounds = 48;
    let t = partitioned::granularity_t(&g, &ra, m).unwrap();
    let step_at = t * 16;
    let mult = 32;
    let want = serial_digest(
        &g,
        &ra,
        &p,
        m,
        rounds,
        ccs_apps::phase_shift_instance(g.clone(), step_at, mult),
    );
    for mode in [WarmupMode::Epoch, WarmupMode::PerWorker] {
        for workers in [1usize, 2, 4] {
            let cfg = RunConfig::new(workers)
                .with_windows(2)
                .with_warmup(4)
                .with_warmup_mode(mode)
                .with_adapt(AdaptConfig::default())
                .with_fused(true);
            let inst = ccs_apps::phase_shift_instance(g.clone(), step_at, mult);
            let stats = execute_dag_cfg(inst, &ra, &p, m, rounds, &cfg)
                .unwrap_or_else(|e| panic!("fused {mode:?} x{workers}: {e}"));
            assert_eq!(
                stats.run.digest, want,
                "fused digest diverged under adaptation: {mode:?} x{workers}"
            );
            if workers >= 2 {
                assert!(
                    stats.total_migrations() >= 1,
                    "fused run: perturbation went unanswered: {mode:?} x{workers}"
                );
            }
        }
    }
}

/// Adaptation enabled on a drift-free app is harmless: fm-radio has no
/// perturbation, so whatever the controller does (usually nothing, on
/// a noisy machine possibly something) the digest must not move.
#[test]
fn steady_app_with_adaptation_matches_serial() {
    let g = ccs_apps::fm_radio(8);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = ccs_partition::dag_greedy::greedy_best(&g, &ra, 512.max(g.max_state()));
    let want = serial_digest(&g, &ra, &p, 512, 6, Instance::synthetic(g.clone()));
    assert!(want.is_some(), "no serial digest for fm-radio");
    for workers in [1usize, 2, 4] {
        let cfg = RunConfig::new(workers)
            .with_windows(2)
            .with_adapt(AdaptConfig::default());
        let inst = Instance::synthetic(g.clone());
        let stats = execute_dag_cfg(inst, &ra, &p, 512, 6, &cfg).unwrap();
        assert_eq!(stats.run.digest, want, "workers {workers}");
    }
}

/// An eight-stage uniform pipeline, one node per segment — round-robin
/// over two workers puts segment `i` on worker `i % 2`, which the
/// scripted-hop assertions below rely on.
fn pipeline8() -> (StreamGraph, RateAnalysis, Partition) {
    let mut b = ccs_graph::GraphBuilder::new();
    let v: Vec<_> = (0..8).map(|i| b.node(format!("s{i}"), 16)).collect();
    for i in 0..7 {
        b.edge(v[i], v[i + 1], 1, 1);
    }
    let g = b.build().unwrap();
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = Partition::from_assignment((0..8).collect());
    (g, ra, p)
}

/// Scripted hops are exact: a chained there-and-back hop lands twice, a
/// hop to the current owner and a hop at the end-of-run boundary land
/// zero times, the trace carries one Migration instant per real hop,
/// and every segment still executes exactly `rounds` batches.
#[test]
fn scripted_hops_are_exact_and_digest_preserving() {
    let (g, ra, p) = pipeline8();
    let rounds = 8;
    let want = serial_digest(&g, &ra, &p, 8, rounds, Instance::synthetic(g.clone()));
    assert!(want.is_some());
    // Round-robin owners over 2 workers: seg i starts on worker i % 2.
    let hops = vec![
        // Chained: away at batch 2, back at batch 5 — two migrations.
        Migration {
            seg: 0,
            to_worker: 1,
            after_batches: 2,
        },
        Migration {
            seg: 0,
            to_worker: 0,
            after_batches: 5,
        },
        // A third real hop on the other worker's segment.
        Migration {
            seg: 3,
            to_worker: 0,
            after_batches: 1,
        },
        // Self-hop: seg 1 already lives on worker 1 — silent no-op.
        Migration {
            seg: 1,
            to_worker: 1,
            after_batches: 3,
        },
        // Past the end: the segment finishes before this boundary.
        Migration {
            seg: 2,
            to_worker: 1,
            after_batches: rounds,
        },
    ];
    let cfg = RunConfig::new(2)
        .with_trace(true)
        .with_forced_migrations(hops);
    let inst = Instance::synthetic(g.clone());
    let stats = execute_dag_cfg(inst, &ra, &p, 8, rounds, &cfg).unwrap();
    assert_eq!(stats.run.digest, want, "scripted hops changed the digest");
    assert_eq!(stats.total_migrations(), 3, "{:?}", stats.workers);
    let traced: Vec<_> = stats
        .workers
        .iter()
        .flat_map(|w| w.trace.as_ref().expect("trace on").events.iter())
        .filter_map(|e| match e.kind {
            EventKind::Migration { seg, from, to } => Some((seg, from, to)),
            _ => None,
        })
        .collect();
    assert_eq!(traced.len(), 3, "{traced:?}");
    assert!(traced.contains(&(0, 0, 1)), "{traced:?}");
    assert!(traced.contains(&(0, 1, 0)), "{traced:?}");
    assert!(traced.contains(&(3, 1, 0)), "{traced:?}");
    // Accounting survives the moves: every segment ran exactly
    // `rounds` batches somewhere, and the hopped segments appear on
    // both workers' rosters.
    let batches: u64 = stats.workers.iter().map(|w| w.batches).sum();
    assert_eq!(batches, rounds * g.node_count() as u64);
    for w in &stats.workers {
        assert!(
            w.segments.contains(&0),
            "worker {} roster: {:?}",
            w.worker,
            w.segments
        );
        assert!(
            w.segments.contains(&3),
            "worker {} roster: {:?}",
            w.worker,
            w.segments
        );
    }
}

/// Scripted hops through the fused hot path: the exact same script as
/// above must land the exact same three migrations with the digest and
/// batch accounting intact — the fused batch loop hits the same
/// migration boundaries as the classic one.
#[test]
fn scripted_hops_through_the_fused_path_are_exact() {
    let (g, ra, p) = pipeline8();
    let rounds = 8;
    let want = serial_digest(&g, &ra, &p, 8, rounds, Instance::synthetic(g.clone()));
    let hops = vec![
        Migration {
            seg: 0,
            to_worker: 1,
            after_batches: 2,
        },
        Migration {
            seg: 0,
            to_worker: 0,
            after_batches: 5,
        },
        Migration {
            seg: 3,
            to_worker: 0,
            after_batches: 1,
        },
        // Self-hop and past-the-end hop: still silent no-ops when fused.
        Migration {
            seg: 1,
            to_worker: 1,
            after_batches: 3,
        },
        Migration {
            seg: 2,
            to_worker: 1,
            after_batches: rounds,
        },
    ];
    let cfg = RunConfig::new(2)
        .with_forced_migrations(hops)
        .with_fused(true);
    let inst = Instance::synthetic(g.clone());
    let stats = execute_dag_cfg(inst, &ra, &p, 8, rounds, &cfg).unwrap();
    assert_eq!(
        stats.run.digest, want,
        "scripted fused hops changed the digest"
    );
    assert_eq!(stats.total_migrations(), 3, "{:?}", stats.workers);
    let batches: u64 = stats.workers.iter().map(|w| w.batches).sum();
    assert_eq!(batches, rounds * g.node_count() as u64);
}

/// The warmup equality corner: a hop *at* the warmup boundary is legal
/// (the segment quiesces with exactly `warmup` batches done) and keeps
/// the digest, under both warmup modes.
#[test]
fn hop_at_the_warmup_boundary_is_legal_and_exact() {
    let (g, ra, p) = pipeline8();
    let rounds = 8;
    let warmup = 3;
    let want = serial_digest(&g, &ra, &p, 8, rounds, Instance::synthetic(g.clone()));
    for mode in [WarmupMode::Epoch, WarmupMode::PerWorker] {
        let cfg = RunConfig::new(2)
            .with_warmup(warmup)
            .with_warmup_mode(mode)
            .with_forced_migrations(vec![Migration {
                seg: 4,
                to_worker: 1,
                after_batches: warmup,
            }]);
        let inst = Instance::synthetic(g.clone());
        let stats = execute_dag_cfg(inst, &ra, &p, 8, rounds, &cfg).unwrap();
        assert_eq!(stats.run.digest, want, "{mode:?}");
        assert_eq!(stats.total_migrations(), 1, "{mode:?}");
    }
}

/// Segment-counter attribution travels with the segment: after a
/// scripted hop, per-segment batch counts still sum to `rounds` for
/// every segment — the accumulator moved, nothing was double-counted
/// or lost. (Counters themselves may be unavailable in CI; the batch
/// tallies are counted unconditionally.)
#[test]
fn segment_attribution_travels_with_the_hop() {
    let (g, ra, p) = pipeline8();
    let rounds = 6;
    let cfg = RunConfig::new(2)
        .with_counters(true)
        .with_segment_counters(true)
        .with_forced_migrations(vec![
            Migration {
                seg: 2,
                to_worker: 1,
                after_batches: 2,
            },
            Migration {
                seg: 5,
                to_worker: 0,
                after_batches: 4,
            },
        ]);
    let inst = Instance::synthetic(g.clone());
    let stats = execute_dag_cfg(inst, &ra, &p, 8, rounds, &cfg).unwrap();
    let mut per_seg = vec![0u64; g.node_count()];
    for w in &stats.workers {
        for sc in &w.segment_counters {
            per_seg[sc.seg] += sc.batches;
        }
    }
    assert_eq!(per_seg, vec![rounds; g.node_count()], "{per_seg:?}");
}
