//! Counter instrumentation must be an observer, not a participant:
//! enabling `RunConfig::counters` may not change digests, firing
//! counts, or sink items, in any placement × pinning mode — and the
//! readings it yields (when the environment allows counters at all)
//! must be internally consistent with the run they describe.

use ccs_exec::{execute_dag_cfg, Placement, RunConfig};
use ccs_graph::gen::{self, LayeredCfg, StateDist};
use ccs_graph::RateAnalysis;
use ccs_partition::dag_greedy;
use ccs_perf::CounterKind;
use ccs_runtime::instance::Instance;
use ccs_topo::{TopoSpec, Topology};

#[test]
fn counters_do_not_perturb_digests() {
    let cfg_g = LayeredCfg {
        layers: 5,
        max_width: 4,
        density: 0.35,
        state: StateDist::Uniform(16, 64),
        max_q: 2,
    };
    let topo = Topology::synthetic(&TopoSpec::new(1, 2, 2));
    for seed in 0..3u64 {
        let g = gen::layered(&cfg_g, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 96);
        for placement in [Placement::RoundRobin, Placement::Llc] {
            for pin in [false, true] {
                let base = RunConfig::new(3)
                    .with_placement(placement)
                    .with_topology(topo.clone())
                    .with_pinning(pin);
                let plain =
                    execute_dag_cfg(Instance::synthetic(g.clone()), &ra, &p, 48, 4, &base).unwrap();
                let counted = execute_dag_cfg(
                    Instance::synthetic(g.clone()),
                    &ra,
                    &p,
                    48,
                    4,
                    &base.clone().with_counters(true),
                )
                .unwrap();
                let tag = format!("seed {seed} placement {placement:?} pin {pin}");
                assert_eq!(plain.run.digest, counted.run.digest, "{tag}");
                assert_eq!(plain.run.firings, counted.run.firings, "{tag}");
                assert_eq!(plain.run.sink_items, counted.run.sink_items, "{tag}");
                // Bookkeeping of the request itself.
                assert!(!plain.counters_requested);
                assert!(counted.counters_requested);
                assert!(plain.workers.iter().all(|w| w.counters.is_none()), "{tag}");
            }
        }
    }
}

#[test]
fn counter_readings_are_consistent_with_the_run() {
    let g = gen::pipeline_uniform(10, 48);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = dag_greedy::greedy_topo(&g, 96);
    let cfg = RunConfig::new(2).with_counters(true);
    let stats = execute_dag_cfg(Instance::synthetic(g), &ra, &p, 48, 4, &cfg).unwrap();

    // Whether counters opened is environment policy; both outcomes are
    // legal, but an open group must describe real work.
    match stats.counter_totals() {
        None => {
            assert_eq!(stats.counted_workers(), 0);
            assert_eq!(stats.llc_misses_per_item(), None);
        }
        Some(totals) => {
            assert!(stats.counted_workers() > 0);
            assert!(totals.time_enabled_ns > 0);
            // Each scaled reading is an extrapolation of a raw count:
            // zero raw must stay zero scaled.
            for r in &totals.readings {
                if r.raw == 0 {
                    assert_eq!(r.scaled, 0, "{:?}", r.kind);
                }
                assert!(r.scaled >= r.raw || totals.multiplexed(), "{:?}", r.kind);
            }
            // The firing loops executed thousands of kernel firings; if
            // the instruction counter opened it cannot have seen fewer
            // instructions than firings.
            if let Some(ins) = totals.get(CounterKind::Instructions) {
                assert!(ins > stats.run.firings, "{ins} instructions");
            }
            // Derived metrics exist exactly when their events opened.
            if totals.get(CounterKind::LlcMisses).is_some() && stats.run.sink_items > 0 {
                assert!(stats.llc_misses_per_item().is_some());
            }
        }
    }
}

#[test]
fn ccs_no_perf_forces_clean_fallback() {
    // The kill switch must produce exactly the unavailable shape that a
    // denied syscall would — the path CI asserts. (The var is set only
    // within this test; the sibling tests tolerate either availability
    // outcome, so the brief overlap cannot fail them.)
    let g = gen::pipeline_uniform(6, 32);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = dag_greedy::greedy_topo(&g, 64);
    let want = {
        let cfg = RunConfig::new(2);
        execute_dag_cfg(Instance::synthetic(g.clone()), &ra, &p, 32, 2, &cfg)
            .unwrap()
            .run
            .digest
    };
    std::env::set_var("CCS_NO_PERF", "1");
    let cfg = RunConfig::new(2).with_counters(true);
    let stats = execute_dag_cfg(Instance::synthetic(g), &ra, &p, 32, 2, &cfg).unwrap();
    std::env::remove_var("CCS_NO_PERF");
    assert!(stats.counters_requested);
    assert_eq!(stats.counted_workers(), 0);
    assert_eq!(stats.counter_totals(), None);
    assert_eq!(stats.run.digest, want);
}
