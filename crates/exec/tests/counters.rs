//! Counter instrumentation must be an observer, not a participant:
//! enabling `RunConfig::counters` may not change digests, firing
//! counts, or sink items, in any placement × pinning mode — and the
//! readings it yields (when the environment allows counters at all)
//! must be internally consistent with the run they describe.

use ccs_exec::{execute_dag_cfg, Placement, RunConfig, WarmupMode};
use ccs_graph::gen::{self, LayeredCfg, StateDist};
use ccs_graph::RateAnalysis;
use ccs_partition::dag_greedy;
use ccs_perf::CounterKind;
use ccs_runtime::instance::Instance;
use ccs_topo::{TopoSpec, Topology};

#[test]
fn counters_do_not_perturb_digests() {
    let cfg_g = LayeredCfg {
        layers: 5,
        max_width: 4,
        density: 0.35,
        state: StateDist::Uniform(16, 64),
        max_q: 2,
    };
    let topo = Topology::synthetic(&TopoSpec::new(1, 2, 2));
    for seed in 0..3u64 {
        let g = gen::layered(&cfg_g, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 96);
        for placement in [Placement::RoundRobin, Placement::Llc] {
            for pin in [false, true] {
                let base = RunConfig::new(3)
                    .with_placement(placement)
                    .with_topology(topo.clone())
                    .with_pinning(pin);
                let plain =
                    execute_dag_cfg(Instance::synthetic(g.clone()), &ra, &p, 48, 4, &base).unwrap();
                let counted = execute_dag_cfg(
                    Instance::synthetic(g.clone()),
                    &ra,
                    &p,
                    48,
                    4,
                    &base.clone().with_counters(true),
                )
                .unwrap();
                let tag = format!("seed {seed} placement {placement:?} pin {pin}");
                assert_eq!(plain.run.digest, counted.run.digest, "{tag}");
                assert_eq!(plain.run.firings, counted.run.firings, "{tag}");
                assert_eq!(plain.run.sink_items, counted.run.sink_items, "{tag}");
                // Bookkeeping of the request itself.
                assert!(!plain.counters_requested);
                assert!(counted.counters_requested);
                assert!(plain.workers.iter().all(|w| w.counters.is_none()), "{tag}");
            }
        }
    }
}

#[test]
fn counter_readings_are_consistent_with_the_run() {
    let g = gen::pipeline_uniform(10, 48);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = dag_greedy::greedy_topo(&g, 96);
    let cfg = RunConfig::new(2).with_counters(true);
    let stats = execute_dag_cfg(Instance::synthetic(g), &ra, &p, 48, 4, &cfg).unwrap();

    // Whether counters opened is environment policy; both outcomes are
    // legal, but an open group must describe real work.
    match stats.counter_totals() {
        None => {
            assert_eq!(stats.counted_workers(), 0);
            assert_eq!(stats.llc_misses_per_item(), None);
        }
        Some(totals) => {
            assert!(stats.counted_workers() > 0);
            assert!(totals.time_enabled_ns > 0);
            // Each scaled reading is an extrapolation of a raw count:
            // zero raw must stay zero scaled.
            for r in &totals.readings {
                if r.raw == 0 {
                    assert_eq!(r.scaled, 0, "{:?}", r.kind);
                }
                assert!(r.scaled >= r.raw || totals.multiplexed(), "{:?}", r.kind);
            }
            // The firing loops executed thousands of kernel firings; if
            // the instruction counter opened it cannot have seen fewer
            // instructions than firings.
            if let Some(ins) = totals.get(CounterKind::Instructions) {
                assert!(ins > stats.run.firings, "{ins} instructions");
            }
            // Derived metrics exist exactly when their events opened.
            if totals.get(CounterKind::LlcMisses).is_some() && stats.run.sink_items > 0 {
                assert!(stats.llc_misses_per_item().is_some());
            }
        }
    }
}

#[test]
fn warmup_and_segment_sampling_do_not_perturb_results() {
    // The acceptance bar for the measurement layer: turning on the
    // warmup reset and the per-batch counting windows changes *nothing*
    // about execution — digest, firing count, sink items — at any
    // placement, and a clamped (oversized) warmup behaves identically.
    let cfg_g = LayeredCfg {
        layers: 5,
        max_width: 4,
        density: 0.35,
        state: StateDist::Uniform(16, 64),
        max_q: 2,
    };
    let topo = Topology::synthetic(&TopoSpec::new(1, 2, 2));
    for seed in 0..3u64 {
        let g = gen::layered(&cfg_g, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 96);
        for placement in [Placement::RoundRobin, Placement::Llc] {
            let base = RunConfig::new(3)
                .with_placement(placement)
                .with_topology(topo.clone());
            let plain =
                execute_dag_cfg(Instance::synthetic(g.clone()), &ra, &p, 48, 6, &base).unwrap();
            for (warmup, stride) in [(2, 1), (2, 3), (999, 1)] {
                let cfg = base
                    .clone()
                    .with_counters(true)
                    .with_warmup(warmup)
                    .with_segment_counters(true)
                    .with_counter_stride(stride);
                let warm =
                    execute_dag_cfg(Instance::synthetic(g.clone()), &ra, &p, 48, 6, &cfg).unwrap();
                let tag = format!("seed {seed} placement {placement:?} warmup {warmup}");
                assert_eq!(plain.run.digest, warm.run.digest, "{tag}");
                assert_eq!(plain.run.firings, warm.run.firings, "{tag}");
                assert_eq!(plain.run.sink_items, warm.run.sink_items, "{tag}");
                // The oversized warmup is clamped so a window remains.
                assert_eq!(warm.warmup, warmup.min(5), "{tag}");
                assert!(warm.measured_sink_items() > 0, "{tag}");
            }
        }
    }
}

#[test]
fn segment_attribution_accounts_for_every_batch() {
    let g = gen::pipeline_uniform(10, 48);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = dag_greedy::greedy_topo(&g, 96);
    let rounds = 6;
    let warmup = 2;
    let cfg = RunConfig::new(2)
        .with_counters(true)
        .with_warmup(warmup)
        .with_segment_counters(true);
    let stats = execute_dag_cfg(Instance::synthetic(g), &ra, &p, 48, rounds, &cfg).unwrap();

    // One attribution record per segment, regardless of availability.
    let segs = stats.segment_counters();
    assert_eq!(segs.len(), stats.segments);
    for sc in &segs {
        // Every batch executed is accounted; at most the post-warmup
        // ones are counted.
        assert_eq!(sc.batches, rounds);
        assert!(
            sc.batches_counted <= rounds - warmup,
            "segment {}: counted {} of {} with warmup {}",
            sc.seg,
            sc.batches_counted,
            rounds,
            warmup
        );
    }
    match stats.counted_workers() {
        0 => {
            // No group opened: windows silently disappear.
            assert!(segs.iter().all(|sc| sc.batches_counted == 0));
            assert!(segs.iter().all(|sc| sc.sample.readings.is_empty()));
        }
        _ => {
            // Groups opened: per-segment raw sums must stay within the
            // per-worker cumulative totals (disjoint sub-windows of the
            // same post-reset counting interval) for every event kind.
            let totals = stats.counter_totals().unwrap();
            for r in &totals.readings {
                let seg_sum: u64 = segs
                    .iter()
                    .filter_map(|sc| {
                        sc.sample
                            .readings
                            .iter()
                            .find(|s| s.kind == r.kind)
                            .map(|s| s.raw)
                    })
                    .sum();
                assert!(
                    seg_sum <= r.raw,
                    "{:?}: segment sum {} > worker total {}",
                    r.kind,
                    seg_sum,
                    r.raw
                );
            }
            // Workers that counted report how much warmup they shed.
            assert!(stats
                .workers
                .iter()
                .all(|w| w.counters.is_none() || w.warmup_excluded <= w.batches));
        }
    }
    // Per-segment misses/item entries line up with the segments.
    let mpi = stats.segment_llc_misses_per_item();
    assert_eq!(mpi.len(), stats.segments);
    assert!(mpi.iter().enumerate().all(|(i, (seg, _))| *seg == i));
}

#[test]
fn counter_stride_bounds_the_sampled_batches() {
    let g = gen::pipeline_uniform(6, 32);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = dag_greedy::greedy_topo(&g, 64);
    let rounds = 8;
    let cfg = RunConfig::new(2)
        .with_counters(true)
        .with_segment_counters(true)
        .with_counter_stride(3);
    let stats = execute_dag_cfg(Instance::synthetic(g), &ra, &p, 32, rounds, &cfg).unwrap();
    for sc in stats.segment_counters() {
        // Stride 3 over 8 post-warmup batches: at most batches 0,3,6.
        assert!(
            sc.batches_counted <= rounds.div_ceil(3),
            "segment {}: {} counted",
            sc.seg,
            sc.batches_counted
        );
    }
}

#[test]
fn ccs_no_perf_forces_clean_fallback() {
    // The kill switch must produce exactly the unavailable shape that a
    // denied syscall would — the path CI asserts. (The var is set only
    // within this test; the sibling tests tolerate either availability
    // outcome, so the brief overlap cannot fail them.)
    let g = gen::pipeline_uniform(6, 32);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let p = dag_greedy::greedy_topo(&g, 64);
    let want = {
        let cfg = RunConfig::new(2);
        execute_dag_cfg(Instance::synthetic(g.clone()), &ra, &p, 32, 2, &cfg)
            .unwrap()
            .run
            .digest
    };
    std::env::set_var("CCS_NO_PERF", "1");
    let cfg = RunConfig::new(2)
        .with_counters(true)
        .with_warmup(1)
        .with_segment_counters(true);
    let stats = execute_dag_cfg(Instance::synthetic(g), &ra, &p, 32, 2, &cfg).unwrap();
    std::env::remove_var("CCS_NO_PERF");
    assert!(stats.counters_requested);
    assert_eq!(stats.counted_workers(), 0);
    assert_eq!(stats.counter_totals(), None);
    assert_eq!(stats.run.digest, want);
    // The per-segment layer degrades to the same clean shape: records
    // exist (with batch accounting) but nothing was counted, and the
    // warmup bookkeeping still reflects the (no-op) reset point — under
    // the default epoch mode, exactly one window per owned segment.
    let segs = stats.segment_counters();
    assert_eq!(segs.len(), stats.segments);
    assert!(segs.iter().all(|sc| sc.batches == 2));
    assert!(segs.iter().all(|sc| sc.batches_counted == 0));
    assert!(stats
        .segment_llc_misses_per_item()
        .iter()
        .all(|(_, v)| v.is_none()));
    assert!(stats
        .workers
        .iter()
        .all(|w| w.warmup_excluded == w.segments.len() as u64));
}

#[test]
fn epoch_warmup_is_exact_and_digest_invariant() {
    // The epoch reset caps every segment at the warmup window and
    // resets all groups at one rendezvous, so each worker's excluded
    // work is *exactly* `owned segments x warmup` — deterministically,
    // with or without a PMU. The legacy per-worker reset stays
    // available behind the flag and can only exclude more.
    let cfg_g = LayeredCfg {
        layers: 5,
        max_width: 4,
        density: 0.35,
        state: StateDist::Uniform(16, 64),
        max_q: 2,
    };
    for seed in 0..3u64 {
        let g = gen::layered(&cfg_g, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 96);
        let rounds = 6;
        let warmup = 2;
        let plain = execute_dag_cfg(
            Instance::synthetic(g.clone()),
            &ra,
            &p,
            48,
            rounds,
            &RunConfig::new(3),
        )
        .unwrap();
        let mut excluded = Vec::new();
        for mode in [WarmupMode::Epoch, WarmupMode::PerWorker] {
            let cfg = RunConfig::new(3)
                .with_counters(true)
                .with_warmup(warmup)
                .with_warmup_mode(mode);
            let stats =
                execute_dag_cfg(Instance::synthetic(g.clone()), &ra, &p, 48, rounds, &cfg).unwrap();
            let tag = format!("seed {seed} mode {mode:?}");
            assert_eq!(stats.run.digest, plain.run.digest, "{tag}");
            assert_eq!(stats.run.firings, plain.run.firings, "{tag}");
            assert_eq!(stats.warmup_mode, mode, "{tag}");
            for w in &stats.workers {
                let exact = w.segments.len() as u64 * warmup;
                match mode {
                    WarmupMode::Epoch => {
                        assert_eq!(w.warmup_excluded, exact, "{tag} worker {}", w.worker)
                    }
                    WarmupMode::PerWorker => {
                        assert!(w.warmup_excluded >= exact, "{tag} worker {}", w.worker)
                    }
                }
                assert_eq!(w.batches, stats.rounds * w.segments.len() as u64, "{tag}");
            }
            excluded.push(stats.workers.iter().map(|w| w.warmup_excluded).sum::<u64>());
        }
        // Epoch never excludes more than the legacy reset.
        assert!(excluded[0] <= excluded[1], "seed {seed}: {excluded:?}");
    }
}

#[test]
fn first_touch_rings_is_invisible_and_recorded() {
    // Faulting ring pages from consumer threads may not change any
    // observable output, and every ring must be touched exactly once.
    let cfg_g = LayeredCfg {
        layers: 5,
        max_width: 4,
        density: 0.35,
        state: StateDist::Uniform(16, 64),
        max_q: 2,
    };
    for seed in 0..3u64 {
        let g = gen::layered(&cfg_g, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = dag_greedy::greedy_topo(&g, 96);
        let plain = execute_dag_cfg(
            Instance::synthetic(g.clone()),
            &ra,
            &p,
            48,
            4,
            &RunConfig::new(3),
        )
        .unwrap();
        assert!(!plain.first_touch_rings);
        assert_eq!(plain.rings_first_touched(), 0);
        for pin in [false, true] {
            let cfg = RunConfig::new(3)
                .with_placement(Placement::Llc)
                .with_topology(Topology::synthetic(&TopoSpec::new(1, 2, 2)))
                .with_pinning(pin)
                .with_first_touch(true);
            let touched =
                execute_dag_cfg(Instance::synthetic(g.clone()), &ra, &p, 48, 4, &cfg).unwrap();
            let tag = format!("seed {seed} pin {pin}");
            assert_eq!(touched.run.digest, plain.run.digest, "{tag}");
            assert_eq!(touched.run.sink_items, plain.run.sink_items, "{tag}");
            assert!(touched.first_touch_rings, "{tag}");
            // One touch per edge: internal and cross rings alike.
            assert_eq!(
                touched.rings_first_touched(),
                g.edge_count() as u64,
                "{tag}"
            );
        }
    }
}
