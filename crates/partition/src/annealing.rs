//! Simulated-annealing partitioner.
//!
//! The paper points to heuristic graph partitioners for the NP-complete
//! dag case (§7). Annealing complements the deterministic local search in
//! [`crate::dag_local`]: it accepts occasional uphill moves, escaping the
//! local minima where single-node relocation gets stuck, while every
//! accepted state remains a *valid* well-ordered bounded partition.

use crate::types::Partition;
use ccs_graph::{NodeId, RateAnalysis, StreamGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Annealing parameters.
#[derive(Clone, Copy, Debug)]
pub struct AnnealCfg {
    /// Proposals evaluated in total.
    pub steps: u32,
    /// Initial temperature, in units of edge weight (items/iteration).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    pub seed: u64,
}

impl Default for AnnealCfg {
    fn default() -> Self {
        AnnealCfg {
            steps: 4000,
            t_start: 8.0,
            t_end: 0.05,
            seed: 0xA11EA1,
        }
    }
}

fn edge_weight(g: &StreamGraph, ra: &RateAnalysis, e: ccs_graph::EdgeId) -> i128 {
    ra.edge_traffic(g, e) as i128
}

/// Total weight of edges crossing the assignment.
fn cross_weight(g: &StreamGraph, ra: &RateAnalysis, asg: &[u32]) -> i128 {
    g.edge_ids()
        .filter(|&e| {
            let edge = g.edge(e);
            asg[edge.src.idx()] != asg[edge.dst.idx()]
        })
        .map(|e| edge_weight(g, ra, e))
        .sum()
}

/// Weight delta if `v` moves to component `to`.
fn move_delta(g: &StreamGraph, ra: &RateAnalysis, asg: &[u32], v: NodeId, to: u32) -> i128 {
    let from = asg[v.idx()];
    let mut delta = 0i128;
    for &e in g.in_edges(v).iter().chain(g.out_edges(v)) {
        let edge = g.edge(e);
        let other = if edge.src == v { edge.dst } else { edge.src };
        let oc = asg[other.idx()];
        let w = edge_weight(g, ra, e);
        match (oc != from, oc != to) {
            (true, false) => delta -= w,
            (false, true) => delta += w,
            _ => {}
        }
    }
    delta
}

/// Anneal from `start`, returning the best valid partition observed.
/// The result never has larger bandwidth than `start`.
pub fn anneal(
    g: &StreamGraph,
    ra: &RateAnalysis,
    bound: u64,
    start: &Partition,
    cfg: &AnnealCfg,
) -> Partition {
    let n = g.node_count();
    if n <= 1 {
        return start.clone();
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut asg = start.assignment().to_vec();
    let mut comp_state = start.component_states(g);
    let mut cur_weight = cross_weight(g, ra, &asg);
    let mut best_asg = asg.clone();
    let mut best_weight = cur_weight;

    let cooling = (cfg.t_end / cfg.t_start).powf(1.0 / cfg.steps.max(1) as f64);
    let mut temp = cfg.t_start;

    for _ in 0..cfg.steps {
        temp *= cooling;
        // Propose: move a random node to the component of a random
        // neighbor (bandwidth only improves via adjacency).
        let v = NodeId(rng.gen_range(0..n) as u32);
        let neighbors: Vec<u32> = g
            .in_edges(v)
            .iter()
            .map(|&e| asg[g.edge(e).src.idx()])
            .chain(g.out_edges(v).iter().map(|&e| asg[g.edge(e).dst.idx()]))
            .filter(|&c| c != asg[v.idx()])
            .collect();
        if neighbors.is_empty() {
            continue;
        }
        let to = neighbors[rng.gen_range(0..neighbors.len())];
        if comp_state[to as usize] + g.state(v) > bound {
            continue;
        }
        let delta = move_delta(g, ra, &asg, v, to);
        let accept = delta <= 0 || rng.gen_bool((-(delta as f64) / temp.max(1e-9)).exp().min(1.0));
        if !accept {
            continue;
        }
        // Validity: the move must keep the contraction acyclic.
        let from = asg[v.idx()];
        asg[v.idx()] = to;
        if !Partition::from_assignment(asg.clone()).is_well_ordered(g) {
            asg[v.idx()] = from;
            continue;
        }
        comp_state[from as usize] -= g.state(v);
        comp_state[to as usize] += g.state(v);
        cur_weight += delta;
        if cur_weight < best_weight {
            best_weight = cur_weight;
            best_asg = asg.clone();
        }
    }

    let best = Partition::from_assignment(best_asg);
    debug_assert!(best.validate(g, bound).is_ok());
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag_greedy;
    use ccs_graph::gen::{self, LayeredCfg, StateDist};

    fn analyzed(g: &StreamGraph) -> RateAnalysis {
        RateAnalysis::analyze_single_io(g).unwrap()
    }

    #[test]
    fn anneal_never_worsens_and_stays_valid() {
        let cfg = LayeredCfg {
            layers: 5,
            max_width: 4,
            density: 0.35,
            state: StateDist::Uniform(8, 48),
            max_q: 2,
        };
        for seed in 0..10u64 {
            let g = gen::layered(&cfg, seed);
            let ra = analyzed(&g);
            let bound = g.max_state().max(120);
            let p0 = dag_greedy::greedy_topo(&g, bound);
            let before = p0.bandwidth(&g, &ra);
            let p1 = anneal(
                &g,
                &ra,
                bound,
                &p0,
                &AnnealCfg {
                    steps: 1500,
                    seed,
                    ..AnnealCfg::default()
                },
            );
            assert!(p1.validate(&g, bound).is_ok(), "seed {seed}");
            assert!(p1.bandwidth(&g, &ra) <= before, "seed {seed}");
        }
    }

    #[test]
    fn anneal_often_beats_pure_greedy() {
        // Across seeds, annealing should find strictly better partitions
        // at least sometimes (it subsumes greedy's local moves).
        let cfg = LayeredCfg {
            layers: 6,
            max_width: 5,
            density: 0.4,
            state: StateDist::Uniform(8, 40),
            max_q: 2,
        };
        let mut improved = 0;
        for seed in 0..12u64 {
            let g = gen::layered(&cfg, seed);
            let ra = analyzed(&g);
            let bound = g.max_state().max(100);
            let p0 = dag_greedy::greedy_topo(&g, bound);
            let p1 = anneal(&g, &ra, bound, &p0, &AnnealCfg::default());
            if p1.bandwidth(&g, &ra) < p0.bandwidth(&g, &ra) {
                improved += 1;
            }
        }
        assert!(improved >= 3, "annealing improved only {improved}/12 runs");
    }

    #[test]
    fn single_node_graph_is_noop() {
        let mut b = ccs_graph::GraphBuilder::new();
        b.node("only", 4);
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = Partition::whole(&g);
        let out = anneal(&g, &ra, 10, &p, &AnnealCfg::default());
        assert_eq!(out.num_components(), 1);
    }
}
