//! Pipeline partitioners (§4 of the paper).
//!
//! For a pipeline (single directed chain), well-ordered partitions are
//! exactly the contiguous segmentations, compactly represented by the set
//! of *cut* edges. Two algorithms are provided:
//!
//! * [`greedy_theorem5`] — the paper's constructive partition: scan the
//!   chain into maximal segments `W_i` of state just over `2M`, then cut at
//!   each segment's gain-minimizing edge. This achieves the optimal cache
//!   cost to within constant factors (Theorem 5) in linear time.
//! * [`dp_min_bandwidth`] — the minimum-bandwidth `c`-bounded segmentation
//!   via dynamic programming (the paper notes such a partition is
//!   computable in polynomial time; we use a monotone-queue DP that runs
//!   in O(n) after the prefix sums).

use crate::types::Partition;
use ccs_graph::{NodeId, RateAnalysis, Ratio, StreamGraph};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from the pipeline partitioners.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// The graph is not a single directed chain.
    NotAPipeline,
    /// A single module exceeds the state bound, so no bounded partition
    /// exists (the paper assumes `s(v) <= M`).
    ModuleTooLarge {
        node: NodeId,
        state: u64,
        bound: u64,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::NotAPipeline => write!(f, "graph is not a pipeline"),
            PipelineError::ModuleTooLarge { node, state, bound } => write!(
                f,
                "module {node:?} has state {state} > bound {bound}; no bounded partition exists"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A segmentation of a pipeline: `cuts[i]` is an index into the chain's
/// edge list (edge `j` connects chain positions `j` and `j+1`); cutting an
/// edge makes it a cross edge. Cuts are strictly increasing.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segmentation {
    pub cuts: Vec<usize>,
}

impl Segmentation {
    /// Convert to a [`Partition`] over `g` given the chain order.
    pub fn to_partition(&self, g: &StreamGraph, order: &[NodeId]) -> Partition {
        debug_assert_eq!(order.len(), g.node_count());
        let mut assignment = vec![0u32; g.node_count()];
        let mut seg = 0u32;
        let mut cut_iter = self.cuts.iter().peekable();
        for (pos, &v) in order.iter().enumerate() {
            assignment[v.idx()] = seg;
            if cut_iter.peek() == Some(&&pos) {
                cut_iter.next();
                seg += 1;
            }
        }
        Partition::from_assignment(assignment)
    }

    /// Bandwidth of this segmentation: sum of the cut edges' gains.
    pub fn bandwidth(&self, g: &StreamGraph, ra: &RateAnalysis, order: &[NodeId]) -> Ratio {
        self.cuts
            .iter()
            .map(|&i| chain_edge_gain(g, ra, order, i))
            .sum()
    }
}

/// Gain of the chain edge at position `i` (connecting `order[i]` to
/// `order[i+1]`).
fn chain_edge_gain(g: &StreamGraph, ra: &RateAnalysis, order: &[NodeId], i: usize) -> Ratio {
    let e = g.out_edges(order[i])[0];
    debug_assert_eq!(g.edge(e).dst, order[i + 1]);
    ra.edge_gain(g, e)
}

/// The result of a pipeline partitioner: the segmentation, the induced
/// [`Partition`], and its exact bandwidth.
#[derive(Clone, Debug)]
pub struct PipelinePartition {
    pub segmentation: Segmentation,
    pub partition: Partition,
    pub bandwidth: Ratio,
    /// Largest component state in words (for bound reporting).
    pub max_component_state: u64,
}

fn chain_order(g: &StreamGraph) -> Result<Vec<NodeId>, PipelineError> {
    g.pipeline_order().ok_or(PipelineError::NotAPipeline)
}

fn check_module_bound(g: &StreamGraph, order: &[NodeId], bound: u64) -> Result<(), PipelineError> {
    for &v in order {
        if g.state(v) > bound {
            return Err(PipelineError::ModuleTooLarge {
                node: v,
                state: g.state(v),
                bound,
            });
        }
    }
    Ok(())
}

/// The paper's Theorem 5 construction.
///
/// Scan modules in chain order, accumulating segments `W_i` whose state
/// just exceeds `2M` (the final segment absorbs a remainder of less than
/// `2M`). Cut each `W_i` at its gain-minimizing internal edge. The
/// resulting components have state at most `8M`, and the schedule induced
/// by this partition is within a constant factor of optimal (given
/// constant-factor cache augmentation).
pub fn greedy_theorem5(
    g: &StreamGraph,
    ra: &RateAnalysis,
    m: u64,
) -> Result<PipelinePartition, PipelineError> {
    assert!(m > 0);
    let order = chain_order(g)?;
    check_module_bound(g, &order, m)?;
    let segments = w_segments(g, &order, m);
    let mut cuts: Vec<usize> = segments
        .iter()
        .filter_map(|&seg| gain_min_edge(g, ra, &order, m, seg))
        .map(|(pos, _)| pos)
        .collect();
    cuts.sort_unstable();
    let segmentation = Segmentation { cuts };
    let partition = segmentation.to_partition(g, &order);
    let bandwidth = segmentation.bandwidth(g, ra, &order);
    let max_component_state = partition.max_component_state(g);
    Ok(PipelinePartition {
        segmentation,
        partition,
        bandwidth,
        max_component_state,
    })
}

/// Minimum-bandwidth segmentation with every segment's state at most
/// `bound` (use `bound = c·M` for a c-bounded partition).
///
/// Dynamic program over chain prefixes with a monotone queue:
/// `dp[i] = min over feasible j of dp[j] + cost(cut before j)`, O(n) time.
pub fn dp_min_bandwidth(
    g: &StreamGraph,
    ra: &RateAnalysis,
    bound: u64,
) -> Result<PipelinePartition, PipelineError> {
    assert!(bound > 0);
    let order = chain_order(g)?;
    check_module_bound(g, &order, bound)?;
    let n = order.len();

    // prefix[i] = total state of order[0..i].
    let mut prefix = vec![0u64; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + g.state(order[i]);
    }

    // f(j) = dp[j] + cut cost before position j.
    // dp[i] = min f(j) over j with prefix[i] - prefix[j] <= bound.
    let mut dp: Vec<Ratio> = vec![Ratio::ZERO; n + 1];
    let mut parent: Vec<usize> = vec![0; n + 1];
    // Monotone deque of (j, f(j)) with f increasing.
    let mut deque: std::collections::VecDeque<(usize, Ratio)> = std::collections::VecDeque::new();
    let f0 = Ratio::ZERO; // j = 0: no cut cost
    deque.push_back((0, f0));
    let mut lo = 0usize;
    for i in 1..=n {
        // Shrink window: smallest j with prefix[i] - prefix[j] <= bound.
        while prefix[i] - prefix[lo] > bound {
            lo += 1;
        }
        while let Some(&(j, _)) = deque.front() {
            if j < lo {
                deque.pop_front();
            } else {
                break;
            }
        }
        let &(j, fj) = deque
            .front()
            .expect("window is non-empty: single modules fit the bound");
        dp[i] = fj;
        parent[i] = j;
        if i < n {
            // Candidate segment start j = i: cut before position i costs
            // the gain of chain edge i-1.
            let fi = dp[i] + chain_edge_gain(g, ra, &order, i - 1);
            while let Some(&(_, fb)) = deque.back() {
                if fb >= fi {
                    deque.pop_back();
                } else {
                    break;
                }
            }
            deque.push_back((i, fi));
        }
    }

    // Reconstruct cuts.
    let mut cuts = Vec::new();
    let mut i = n;
    while i > 0 {
        let j = parent[i];
        if j > 0 {
            cuts.push(j - 1);
        }
        i = j;
    }
    cuts.reverse();
    let segmentation = Segmentation { cuts };
    let partition = segmentation.to_partition(g, &order);
    let bandwidth = segmentation.bandwidth(g, ra, &order);
    debug_assert_eq!(bandwidth, dp[n]);
    let max_component_state = partition.max_component_state(g);
    Ok(PipelinePartition {
        segmentation,
        partition,
        bandwidth,
        max_component_state,
    })
}

/// Exhaustive minimum-bandwidth segmentation for testing (O(2^(n-1))).
pub fn brute_force_min_bandwidth(
    g: &StreamGraph,
    ra: &RateAnalysis,
    bound: u64,
) -> Result<PipelinePartition, PipelineError> {
    let order = chain_order(g)?;
    check_module_bound(g, &order, bound)?;
    let n = order.len();
    assert!(n <= 20, "brute force limited to 20 modules");
    let edges = n - 1;
    let mut best: Option<(Ratio, Vec<usize>)> = None;
    for mask in 0u32..(1u32 << edges) {
        let cuts: Vec<usize> = (0..edges).filter(|&i| mask >> i & 1 == 1).collect();
        // Check the bound.
        let mut ok = true;
        let mut seg_state = 0u64;
        let mut cut_iter = cuts.iter().peekable();
        for (pos, &v) in order.iter().enumerate().take(n) {
            seg_state += g.state(v);
            let at_cut = cut_iter.peek() == Some(&&pos);
            if at_cut {
                cut_iter.next();
            }
            if seg_state > bound {
                ok = false;
                break;
            }
            if at_cut {
                seg_state = 0;
            }
        }
        if !ok {
            continue;
        }
        let bw: Ratio = cuts
            .iter()
            .map(|&i| chain_edge_gain(g, ra, &order, i))
            .sum();
        if best.as_ref().is_none_or(|(b, _)| bw < *b) {
            best = Some((bw, cuts));
        }
    }
    let (bandwidth, cuts) = best.expect("singleton segmentation is feasible");
    let segmentation = Segmentation { cuts };
    let partition = segmentation.to_partition(g, &order);
    let max_component_state = partition.max_component_state(g);
    Ok(PipelinePartition {
        segmentation,
        partition,
        bandwidth,
        max_component_state,
    })
}

/// The paper's `W` segments (Theorem 5 construction): scan the chain in
/// order, closing a segment as soon as its state exceeds `2M`, except
/// that a remainder of at most `2M` is absorbed into the last segment.
/// Returned as `(start, end)` position ranges, end exclusive.
fn w_segments(g: &StreamGraph, order: &[NodeId], m: u64) -> Vec<(usize, usize)> {
    let n = order.len();
    let total: u64 = g.total_state();
    let mut segments: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut consumed = 0u64;
    for (pos, &v) in order.iter().enumerate().take(n) {
        acc += g.state(v);
        consumed += g.state(v);
        if acc > 2 * m {
            let remaining = total - consumed;
            if remaining > 2 * m {
                segments.push((start, pos + 1));
                start = pos + 1;
                acc = 0;
            } else {
                // Absorb the remainder into this segment and finish.
                segments.push((start, n));
                start = n;
                break;
            }
        }
    }
    if start < n {
        // The scan never exceeded 2M: the remainder stays one segment
        // with state <= 2M (it will produce no cut).
        segments.push((start, n));
    }
    segments
}

/// The gain-minimizing internal edge of segment `(a, b)`, or `None` for
/// segments that do not qualify for a cut (state at most `2M`, or fewer
/// than two modules).
fn gain_min_edge(
    g: &StreamGraph,
    ra: &RateAnalysis,
    order: &[NodeId],
    m: u64,
    (a, b): (usize, usize),
) -> Option<(usize, Ratio)> {
    let seg_state: u64 = order[a..b].iter().map(|&v| g.state(v)).sum();
    if seg_state <= 2 * m || b - a < 2 {
        return None;
    }
    let mut best = a;
    let mut best_gain = chain_edge_gain(g, ra, order, a);
    for i in a + 1..b - 1 {
        let gain = chain_edge_gain(g, ra, order, i);
        if gain < best_gain {
            best_gain = gain;
            best = i;
        }
    }
    Some((best, best_gain))
}

/// The paper's Theorem 3 lower-bound quantity for pipelines: the sum of
/// the gains of the gain-minimizing edges of the `W` segments (state
/// greater than `2M` each). Any schedule — partitioned or not — firing
/// the sink `T·gain(t)` times incurs `Ω((T/B)·Σ)` cache misses.
///
/// By construction this equals the bandwidth of
/// [`greedy_theorem5`]'s partition: that is exactly how Theorem 5
/// concludes the partitioned schedule is within a constant factor of
/// optimal.
pub fn theorem3_lower_bound_gain(
    g: &StreamGraph,
    ra: &RateAnalysis,
    m: u64,
) -> Result<Ratio, PipelineError> {
    let order = chain_order(g)?;
    let total = w_segments(g, &order, m)
        .into_iter()
        .filter_map(|seg| gain_min_edge(g, ra, &order, m, seg))
        .map(|(_, gain)| gain)
        .sum();
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen::{self, PipelineCfg, StateDist};
    use ccs_graph::GraphBuilder;

    fn analyzed(g: &StreamGraph) -> RateAnalysis {
        RateAnalysis::analyze_single_io(g).unwrap()
    }

    fn chain_with_states(states: &[u64]) -> StreamGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = states
            .iter()
            .enumerate()
            .map(|(i, &s)| b.node(format!("v{i}"), s))
            .collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1], 1, 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn segmentation_to_partition_roundtrip() {
        let g = chain_with_states(&[1, 1, 1, 1, 1]);
        let order = g.pipeline_order().unwrap();
        let seg = Segmentation { cuts: vec![1, 3] };
        let p = seg.to_partition(&g, &order);
        assert_eq!(p.num_components(), 3);
        assert_eq!(p.assignment(), &[0, 0, 1, 1, 2]);
        assert!(p.is_well_ordered(&g));
    }

    #[test]
    fn greedy_whole_graph_fits() {
        let g = chain_with_states(&[10, 10, 10]);
        let ra = analyzed(&g);
        // 2M = 200 > total: one component, no cuts.
        let pp = greedy_theorem5(&g, &ra, 100).unwrap();
        assert_eq!(pp.partition.num_components(), 1);
        assert_eq!(pp.bandwidth, Ratio::ZERO);
    }

    #[test]
    fn greedy_splits_when_state_exceeds_2m() {
        // Six modules of 10 words, M = 10: segments of >20 words form.
        let g = chain_with_states(&[10; 6]);
        let ra = analyzed(&g);
        let pp = greedy_theorem5(&g, &ra, 10).unwrap();
        assert!(pp.partition.num_components() >= 2);
        assert!(pp.partition.is_well_ordered(&g));
        // Theorem 5: components bounded by 8M.
        assert!(pp.max_component_state <= 8 * 10);
        // Homogeneous chain: bandwidth = number of cuts.
        assert_eq!(
            pp.bandwidth,
            Ratio::integer(pp.segmentation.cuts.len() as i128)
        );
    }

    #[test]
    fn greedy_rejects_oversized_module() {
        let g = chain_with_states(&[10, 50, 10]);
        let ra = analyzed(&g);
        assert!(matches!(
            greedy_theorem5(&g, &ra, 20),
            Err(PipelineError::ModuleTooLarge { state: 50, .. })
        ));
    }

    #[test]
    fn greedy_rejects_non_pipeline() {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let a = b.node("a", 1);
        let c = b.node("c", 1);
        b.edge(s, a, 1, 1);
        b.edge(s, c, 1, 1);
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze(&g).unwrap();
        assert_eq!(
            greedy_theorem5(&g, &ra, 10).unwrap_err(),
            PipelineError::NotAPipeline
        );
    }

    #[test]
    fn greedy_cuts_at_min_gain_edge() {
        // Chain where the middle edge has far smaller gain: rates shrink
        // the stream at v2 (4 items in, 1 out), so the cut lands there.
        let mut b = GraphBuilder::new();
        let v0 = b.node("v0", 15);
        let v1 = b.node("v1", 15);
        let v2 = b.node("v2", 15);
        let v3 = b.node("v3", 15);
        b.edge(v0, v1, 1, 1);
        b.edge(v1, v2, 1, 4); // v2 fires 1/4 as often
        b.edge(v2, v3, 1, 1);
        let g = b.build().unwrap();
        let ra = analyzed(&g);
        // M = 20 -> 2M = 40; state exceeds 40 at v2 and the remainder (15)
        // is <= 40, so a single W covers the whole chain. Edge gains are
        // e0 = e1 = 1 (one item per source firing) and e2 = 1/4 (v2 fires
        // a quarter as often), so the gain-minimizing cut is edge 2.
        let pp = greedy_theorem5(&g, &ra, 20).unwrap();
        assert_eq!(pp.segmentation.cuts, vec![2]);
        assert_eq!(pp.bandwidth, Ratio::new(1, 4));
        assert!(pp.partition.is_well_ordered(&g));
        let order = g.pipeline_order().unwrap();
        assert_eq!(pp.segmentation.bandwidth(&g, &ra, &order), pp.bandwidth);
    }

    #[test]
    fn dp_matches_brute_force_on_random_pipelines() {
        for seed in 0..30u64 {
            let cfg = PipelineCfg {
                len: 10,
                state: StateDist::Uniform(1, 40),
                max_q: 4,
                max_rate_scale: 3,
            };
            let g = gen::pipeline(&cfg, seed);
            let ra = analyzed(&g);
            let bound = g.max_state().max(60);
            let dp = dp_min_bandwidth(&g, &ra, bound).unwrap();
            let bf = brute_force_min_bandwidth(&g, &ra, bound).unwrap();
            assert_eq!(dp.bandwidth, bf.bandwidth, "seed {seed}");
            assert!(dp.partition.is_bounded_by(&g, bound));
            assert!(dp.partition.is_well_ordered(&g));
        }
    }

    #[test]
    fn dp_beats_or_matches_greedy() {
        for seed in 0..20u64 {
            let cfg = PipelineCfg {
                len: 24,
                state: StateDist::Uniform(8, 64),
                max_q: 3,
                max_rate_scale: 2,
            };
            let g = gen::pipeline(&cfg, seed);
            let ra = analyzed(&g);
            let m = 64;
            let greedy = greedy_theorem5(&g, &ra, m).unwrap();
            // Compare at the same component bound the greedy achieved.
            let bound = greedy.max_component_state.max(m);
            let dp = dp_min_bandwidth(&g, &ra, bound).unwrap();
            assert!(
                dp.bandwidth <= greedy.bandwidth,
                "seed {seed}: dp {} > greedy {}",
                dp.bandwidth,
                greedy.bandwidth
            );
        }
    }

    #[test]
    fn dp_single_module() {
        let g = chain_with_states(&[7]);
        // Single-node pipelines have no edges; analysis still works.
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let dp = dp_min_bandwidth(&g, &ra, 10).unwrap();
        assert_eq!(dp.partition.num_components(), 1);
        assert_eq!(dp.bandwidth, Ratio::ZERO);
    }

    #[test]
    fn dp_tight_bound_forces_singletons() {
        let g = chain_with_states(&[5, 5, 5]);
        let ra = analyzed(&g);
        let dp = dp_min_bandwidth(&g, &ra, 5).unwrap();
        assert_eq!(dp.partition.num_components(), 3);
        assert_eq!(dp.bandwidth, Ratio::integer(2));
    }

    #[test]
    fn theorem3_bound_zero_when_graph_fits() {
        let g = chain_with_states(&[10, 10]);
        let ra = analyzed(&g);
        assert_eq!(
            theorem3_lower_bound_gain(&g, &ra, 100).unwrap(),
            Ratio::ZERO
        );
    }

    #[test]
    fn theorem3_bound_positive_when_state_large() {
        let g = chain_with_states(&[10; 12]);
        let ra = analyzed(&g);
        let lb = theorem3_lower_bound_gain(&g, &ra, 10).unwrap();
        assert!(lb > Ratio::ZERO);
        // Homogeneous chain of 12 modules x 10 words, 2M = 20: W segments
        // close at 30 words (3 modules), the last absorbing the remainder
        // -> 4 segments, each contributing its unit gain.
        assert_eq!(lb, Ratio::integer(4));
    }

    #[test]
    fn lower_bound_equals_theorem5_bandwidth() {
        // The paper proves Theorem 5 by applying Theorem 3 to the same W
        // segments whose gain-minimizing edges become the partition's cross
        // edges — so the two quantities coincide exactly.
        for seed in 0..20u64 {
            let cfg = PipelineCfg {
                len: 30,
                state: StateDist::Uniform(8, 64),
                max_q: 4,
                max_rate_scale: 2,
            };
            let g = gen::pipeline(&cfg, seed);
            let ra = analyzed(&g);
            let m = 64;
            let lb = theorem3_lower_bound_gain(&g, &ra, m).unwrap();
            let ub = greedy_theorem5(&g, &ra, m).unwrap().bandwidth;
            assert_eq!(lb, ub, "seed {seed}");
        }
    }
}
