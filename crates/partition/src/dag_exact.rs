//! Exact minimum-bandwidth well-ordered partitioning for small dags.
//!
//! The paper notes that since partitioning happens at compile time and
//! streaming applications are long-running, an exponential-time exact
//! partitioner is a reasonable tool (§7 cites an exact integer-programming
//! partitioner used in practice). This module implements an exact solver
//! as a dynamic program over *order ideals* (downward-closed node sets) of
//! the dag:
//!
//! Every well-ordered partition orders its components topologically, so
//! the union of the first `i` components is an ideal. Conversely, any
//! chain of ideals `∅ = S₀ ⊂ S₁ ⊂ … ⊂ Sₖ = V` with each difference
//! `Sᵢ₊₁ ∖ Sᵢ` state-bounded yields a well-ordered bounded partition. The
//! DP walks ideals as bitmasks, charging each cross edge exactly once —
//! when the component containing its head is placed.

use crate::types::Partition;
use ccs_graph::{RateAnalysis, Ratio, StreamGraph};

/// Hard cap on node count: the DP is O(3ⁿ·n) time and O(2ⁿ) space.
pub const MAX_EXACT_NODES: usize = 20;

/// Exact minimum-bandwidth well-ordered partition with every component's
/// state at most `bound`.
///
/// Returns the optimal partition and its bandwidth, or `None` when some
/// single module exceeds `bound` (no bounded partition exists).
///
/// Panics if the graph has more than [`MAX_EXACT_NODES`] nodes.
pub fn min_bandwidth_exact(
    g: &StreamGraph,
    ra: &RateAnalysis,
    bound: u64,
) -> Option<(Partition, Ratio)> {
    let n = g.node_count();
    assert!(
        n <= MAX_EXACT_NODES,
        "exact partitioner limited to {MAX_EXACT_NODES} nodes (got {n})"
    );
    if g.node_ids().any(|v| g.state(v) > bound) {
        return None;
    }
    let full: u32 = (1u32 << n) - 1;

    // Integer edge weights: traffic per steady-state iteration. The
    // bandwidth of a partition is (Σ weights of cross edges) / q(source).
    let source = ra.source.expect("exact partitioner needs a unique source");
    let q_source = ra.q(source);

    // Per-node predecessor masks and weighted in-edges.
    let mut pred_mask = vec![0u32; n];
    let mut in_list: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let (u, v) = (edge.src.idx(), edge.dst.idx());
        pred_mask[v] |= 1 << u;
        in_list[v].push((u, ra.edge_traffic(g, e)));
    }

    // state_sum[mask] and predU[mask] via lowest-bit recurrences.
    let size = (full as usize) + 1;
    let mut state_sum = vec![0u64; size];
    let mut pred_union = vec![0u32; size];
    for m in 1..size {
        let low = m.trailing_zeros() as usize;
        let rest = m & (m - 1);
        state_sum[m] = state_sum[rest] + g.state(ccs_graph::NodeId(low as u32));
        pred_union[m] = pred_union[rest] | pred_mask[low];
    }

    const INF: u128 = u128::MAX;
    let mut dp = vec![INF; size];
    let mut choice = vec![0u32; size]; // the component added to reach this ideal
    dp[0] = 0;

    for s in 0..size {
        if dp[s] == INF {
            continue;
        }
        // `s` is reachable, hence an ideal. Enumerate candidate next
        // components A: non-empty submasks of the complement.
        let comp = full & !(s as u32);
        if comp == 0 {
            continue;
        }
        let mut a = comp;
        loop {
            let union = s as u32 | a;
            // Ideal extension: every predecessor of a node in A must lie
            // in S ∪ A.
            if pred_union[a as usize] & !union == 0 && state_sum[a as usize] <= bound {
                // Cost: weighted in-edges of A with tail in S \ A = S.
                let mut cost: u128 = 0;
                let mut bits = a;
                while bits != 0 {
                    let v = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    for &(u, w) in &in_list[v] {
                        if s as u32 >> u & 1 == 1 {
                            cost += w as u128;
                        }
                    }
                }
                let cand = dp[s] + cost;
                if cand < dp[union as usize] {
                    dp[union as usize] = cand;
                    choice[union as usize] = a;
                }
            }
            if a == 0 {
                break;
            }
            a = (a - 1) & comp;
        }
    }

    debug_assert_ne!(dp[full as usize], INF, "singletons are always feasible");

    // Reconstruct: walk back from the full set.
    let mut assignment = vec![0u32; n];
    let mut mask = full;
    let mut comps: Vec<u32> = Vec::new();
    while mask != 0 {
        let a = choice[mask as usize];
        comps.push(a);
        mask &= !a;
    }
    comps.reverse(); // now in contracted topological order
    for (ci, a) in comps.iter().enumerate() {
        let mut bits = *a;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            assignment[v] = ci as u32;
        }
    }
    let partition = Partition::from_assignment(assignment);
    let bandwidth = Ratio::new(
        i128::try_from(dp[full as usize]).expect("bandwidth fits i128"),
        q_source as i128,
    );
    debug_assert_eq!(partition.bandwidth(g, ra), bandwidth);
    Some((partition, bandwidth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dag_greedy, dag_local, pipeline};
    use ccs_graph::gen::{self, LayeredCfg, StateDist};
    use ccs_graph::GraphBuilder;

    fn analyzed(g: &StreamGraph) -> RateAnalysis {
        RateAnalysis::analyze_single_io(g).unwrap()
    }

    #[test]
    fn whole_graph_when_it_fits() {
        let g = gen::split_join(2, 1, StateDist::Fixed(5), 0);
        let ra = analyzed(&g);
        let (p, bw) = min_bandwidth_exact(&g, &ra, 10_000).unwrap();
        assert_eq!(p.num_components(), 1);
        assert_eq!(bw, Ratio::ZERO);
    }

    #[test]
    fn oversized_module_is_infeasible() {
        let g = gen::split_join(2, 1, StateDist::Fixed(100), 0);
        let ra = analyzed(&g);
        assert!(min_bandwidth_exact(&g, &ra, 50).is_none());
    }

    #[test]
    fn matches_pipeline_dp_on_chains() {
        use ccs_graph::gen::PipelineCfg;
        for seed in 0..20u64 {
            let cfg = PipelineCfg {
                len: 9,
                state: StateDist::Uniform(2, 30),
                max_q: 3,
                max_rate_scale: 2,
            };
            let g = gen::pipeline(&cfg, seed);
            let ra = analyzed(&g);
            let bound = g.max_state().max(45);
            let (pe, bw_exact) = min_bandwidth_exact(&g, &ra, bound).unwrap();
            let dp = pipeline::dp_min_bandwidth(&g, &ra, bound).unwrap();
            assert_eq!(
                bw_exact, dp.bandwidth,
                "seed {seed}: exact {bw_exact} vs pipeline DP {}",
                dp.bandwidth
            );
            assert!(pe.validate(&g, bound).is_ok());
        }
    }

    #[test]
    fn exact_lower_bounds_heuristics() {
        let cfg = LayeredCfg {
            layers: 3,
            max_width: 3,
            density: 0.3,
            state: StateDist::Uniform(4, 30),
            max_q: 2,
        };
        for seed in 0..15u64 {
            let g = gen::layered(&cfg, seed);
            if g.node_count() > 14 {
                continue;
            }
            let ra = analyzed(&g);
            let bound = g.max_state().max(60);
            let (pe, bw_exact) = min_bandwidth_exact(&g, &ra, bound).unwrap();
            assert!(pe.validate(&g, bound).is_ok());
            let pg = dag_greedy::greedy_best(&g, &ra, bound);
            let pr = dag_local::refine(&g, &ra, bound, &pg, 10);
            let bw_heur = pr.bandwidth(&g, &ra);
            assert!(
                bw_exact <= bw_heur,
                "seed {seed}: exact {bw_exact} > heuristic {bw_heur}"
            );
        }
    }

    #[test]
    fn exact_picks_cheap_cut_on_diamond() {
        // Diamond where one branch is much heavier; with a bound that
        // forces >= 2 components, the optimum cuts the light branch twice
        // rather than the heavy one.
        let mut b = GraphBuilder::new();
        let s = b.node("s", 8);
        let heavy = b.node("heavy", 8);
        let light = b.node("light", 8);
        let t = b.node("t", 8);
        b.edge(s, heavy, 4, 1); // heavy fires 4x: weight 4 each side
        b.edge(heavy, t, 1, 4);
        b.edge(s, light, 1, 1); // weight 1 each side
        b.edge(light, t, 1, 1);
        let g = b.build().unwrap();
        let ra = analyzed(&g);
        // Bound of 24 words: at most 3 nodes per component. Note that
        // {s, heavy, t} | {light} would cut only the light branch
        // (bandwidth 2) but is NOT well ordered: contracting it yields a
        // 2-cycle via s->light and light->t. The best well-ordered options
        // internalize exactly one heavy edge (bandwidth 5), e.g.
        // {s, heavy} | {light, t}.
        let (p, bw) = min_bandwidth_exact(&g, &ra, 24).unwrap();
        assert!(p.validate(&g, 24).is_ok());
        assert_eq!(bw, Ratio::integer(5));
        // One of the two heavy edges must be internal.
        let heavy_internal = p.component_of(ccs_graph::NodeId(0))
            == p.component_of(ccs_graph::NodeId(1))
            || p.component_of(ccs_graph::NodeId(1)) == p.component_of(ccs_graph::NodeId(3));
        assert!(heavy_internal, "assignment {:?}", p.assignment());
    }

    #[test]
    fn exhaustive_cross_check_tiny() {
        // Brute-force all assignments for a 6-node dag and confirm the DP
        // finds the true optimum among valid well-ordered partitions.
        let cfg = LayeredCfg {
            layers: 2,
            max_width: 2,
            density: 0.5,
            state: StateDist::Uniform(2, 10),
            max_q: 2,
        };
        for seed in 0..10u64 {
            let g = gen::layered(&cfg, seed);
            let n = g.node_count();
            if n > 7 {
                continue;
            }
            let ra = analyzed(&g);
            let bound = g.max_state().max(16);
            let (_, bw_exact) = min_bandwidth_exact(&g, &ra, bound).unwrap();
            // Enumerate all assignments with component ids < n.
            let mut best: Option<Ratio> = None;
            let total = (n as u64).pow(n as u32);
            for code in 0..total {
                let mut c = code;
                let mut asg = Vec::with_capacity(n);
                for _ in 0..n {
                    asg.push((c % n as u64) as u32);
                    c /= n as u64;
                }
                let p = Partition::from_assignment(asg);
                if p.validate(&g, bound).is_ok() {
                    let bw = p.bandwidth(&g, &ra);
                    if best.as_ref().is_none_or(|b| bw < *b) {
                        best = Some(bw);
                    }
                }
            }
            assert_eq!(best.unwrap(), bw_exact, "seed {seed}");
        }
    }
}
