//! # ccs-partition — well-ordered c-bounded partitioning
//!
//! The paper's central reduction: cache-efficient scheduling of a
//! streaming dag is equivalent (to within constant factors, with
//! constant-factor cache augmentation) to finding a *well-ordered*
//! partition of the modules into components of bounded total state that
//! minimizes *bandwidth* — the items crossing component boundaries per
//! input.
//!
//! * [`Partition`] — the partition type with validation (Definition 2's
//!   well-orderedness, c-boundedness, Lemma 8's degree limit) and exact
//!   [`Partition::bandwidth`] (Definition 3).
//! * [`pipeline`] — pipeline partitioners: the paper's Theorem 5 greedy
//!   `2M`-segmentation, the polynomial minimum-bandwidth DP, and the
//!   Theorem 3 lower-bound quantity.
//! * [`dag_greedy`] — linear-time topological segmentation heuristics for
//!   general dags.
//! * [`dag_local`] — Kernighan–Lin-style refinement preserving
//!   well-orderedness.
//! * [`dag_exact`] — exact exponential DP over order ideals (the paper's
//!   "exact partitioner at compile time" suggestion) for dags of up to 20
//!   nodes.
//! * [`annealing`] — simulated annealing over validity-preserving moves.
//! * [`multilevel`] — Hendrickson–Leland-style coarsen/partition/refine,
//!   adapted to preserve well-orderedness (both heuristic families the
//!   paper's §7 points to).
//! * [`fusion`] — materialize a partition as a coarser streaming graph
//!   (the §6 remark that module fusion is a special case of
//!   partitioning, made executable), plus [`FiringPlan`]: a segment
//!   batch compiled into a flat-arena firing sequence for the fused
//!   executor hot path.

pub mod annealing;
pub mod dag_exact;
pub mod dag_greedy;
pub mod dag_local;
pub mod fusion;
pub mod multilevel;
pub mod pipeline;
pub mod types;

pub use fusion::{compile_firing_plan, ArenaSpan, BoundaryIo, FiringPlan, FusedFiring};
pub use pipeline::{PipelineError, PipelinePartition, Segmentation};
pub use types::{ComponentId, Partition, PartitionError};
