//! Module fusion: materialize a partition as a coarser streaming graph.
//!
//! The paper observes (§6) that the module-fusion heuristic of Sermulins
//! et al. "can be viewed as a special case of our partitioning method".
//! This module makes the connection executable: given a well-ordered
//! partition, [`fuse`] contracts every component into a single module
//! using SDF clustering — the fused module fires `gcd{q(v)}` times per
//! steady state with endpoint rates scaled by `q(v)/gcd`, preserving
//! rate-matching and per-iteration traffic exactly.
//!
//! Downstream, a fused graph can be scheduled by *any* scheduler: fusing
//! and then running the plain single-appearance schedule approximates the
//! partitioned scheduler's state locality without a two-level runtime.
//!
//! [`compile_firing_plan`] goes one step further and makes fusion an
//! *executor* concern: it compiles one segment's batch — a topologically
//! legal firing sequence with per-node quotas — into a [`FiringPlan`]
//! whose firings read and write precomputed spans of a single flat
//! scratch arena. Intra-segment edges become plain offset arithmetic
//! (no ring, no copy); only segment-boundary edges surface as bulk
//! [`BoundaryIo`] transfers, once per batch.

use crate::types::Partition;
use ccs_graph::ratio::gcd_u64;
use ccs_graph::{EdgeId, GraphBuilder, NodeId, RateAnalysis, StreamGraph};

/// The fused graph and its bookkeeping.
#[derive(Clone, Debug)]
pub struct FusedGraph {
    pub graph: StreamGraph,
    /// fine node -> fused node.
    pub node_map: Vec<u32>,
    /// fused node -> firing multiplier of each fine member per fused
    /// firing is `q(v)/q_component`; this records `q_component` itself.
    pub component_q: Vec<u64>,
}

/// Fuse each component of `p` into one module. Requires `p` well ordered
/// (otherwise the contracted graph has cycles and this returns `None`).
pub fn fuse(g: &StreamGraph, ra: &RateAnalysis, p: &Partition) -> Option<FusedGraph> {
    if !p.is_well_ordered(g) {
        return None;
    }
    let comps = p.components();
    let mut component_q = Vec::with_capacity(comps.len());
    let mut b = GraphBuilder::new();
    for comp in &comps {
        let q_c = comp.iter().map(|&v| ra.q(v)).fold(0u64, gcd_u64).max(1);
        component_q.push(q_c);
        let name = comp
            .iter()
            .map(|&v| g.node(v).name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        b.node(name, g.state_of(comp));
    }
    let node_map: Vec<u32> = g.node_ids().map(|v| p.component_of(v)).collect();
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let (cu, cv) = (p.component_of(edge.src), p.component_of(edge.dst));
        if cu == cv {
            continue; // fused away
        }
        // One fused firing of C(u) performs q(u)/q_C(u) firings of u.
        let fu = ra.q(edge.src) / component_q[cu as usize];
        let fv = ra.q(edge.dst) / component_q[cv as usize];
        b.edge(NodeId(cu), NodeId(cv), edge.produce * fu, edge.consume * fv);
    }
    let graph = b.build().ok()?;
    Some(FusedGraph {
        graph,
        node_map,
        component_q,
    })
}

/// One contiguous span of a segment's scratch arena (offsets and
/// lengths in `f32` items).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaSpan {
    pub offset: usize,
    pub len: usize,
}

/// One firing of the fused batch loop: which local kernel fires, and
/// where each of its ports lives in the arena. Port order matches the
/// graph's `in_edges`/`out_edges` order, i.e. the classic executors'
/// scratch layout.
#[derive(Clone, Debug)]
pub struct FusedFiring {
    /// Index of the firing node within the segment's node list.
    pub local: usize,
    /// Input span per input port.
    pub inputs: Vec<ArenaSpan>,
    /// Output span per output port.
    pub outputs: Vec<ArenaSpan>,
}

/// A batch-boundary ring transfer: which cross edge, where its stream
/// region starts in the arena, and how many items one batch moves.
#[derive(Clone, Copy, Debug)]
pub struct BoundaryIo {
    pub edge: EdgeId,
    pub offset: usize,
    pub items: usize,
}

/// One segment's batch, compiled for fused execution.
///
/// Arena layout: every edge incident to the segment owns one contiguous
/// *stream region* holding all items that edge carries in one batch.
/// The k-th firing of producer `u` writes items `[k·produce(e),
/// (k+1)·produce(e))` of `e`'s region; the j-th firing of consumer `v`
/// reads `[j·consume(e), (j+1)·consume(e))`. Because the firing
/// sequence is a legal SDF schedule (validated at compile time by
/// replaying it against the occupancy invariant), every read lands on
/// items already written — the region is a FIFO laid out flat. Regions
/// are pairwise disjoint by construction and a node never has the same
/// edge on both sides (the graph is a dag), so one firing's port spans
/// never alias.
///
/// The arena carries no state across batches: a full batch returns
/// every internal stream to empty, so the arena (and the whole
/// `FiringPlan`) migrates between workers with its segment, with no
/// handoff protocol beyond moving the buffer.
#[derive(Clone, Debug)]
pub struct FiringPlan {
    /// Arena length in `f32` items.
    pub arena_len: usize,
    /// The batch's firings, in schedule order.
    pub firings: Vec<FusedFiring>,
    /// Cross inputs: bulk ring→arena copies to run before the firings.
    pub loads: Vec<BoundaryIo>,
    /// Cross outputs: bulk arena→ring copies to run after the firings.
    pub stores: Vec<BoundaryIo>,
}

/// Compile one segment's batch into a [`FiringPlan`].
///
/// `nodes` are the segment's members, `quota[v]` is how often node `v`
/// fires per batch, and `firings` is the batch's firing sequence (every
/// member exactly `quota` times, in an order that is legal with all
/// cross inputs pre-loaded). Returns `None` if the sequence fires a
/// non-member, misses a quota, overflows arena arithmetic, or is not a
/// legal schedule — i.e. some firing would read items not yet written.
pub fn compile_firing_plan(
    g: &StreamGraph,
    quota: &[u64],
    nodes: &[NodeId],
    firings: &[NodeId],
) -> Option<FiringPlan> {
    let mut member = vec![false; g.node_count()];
    let mut local_of = vec![usize::MAX; g.node_count()];
    for (i, &v) in nodes.iter().enumerate() {
        member[v.idx()] = true;
        local_of[v.idx()] = i;
    }

    // One stream region per incident edge, in deterministic order:
    // node order, in-edges first (covers internal edges exactly once,
    // at their consumer), then boundary out-edges.
    fn place(
        region: &mut [usize],
        arena_len: &mut usize,
        e: EdgeId,
        items: u64,
    ) -> Option<BoundaryIo> {
        let items = usize::try_from(items).ok()?;
        let offset = *arena_len;
        region[e.idx()] = offset;
        *arena_len = arena_len.checked_add(items)?;
        Some(BoundaryIo {
            edge: e,
            offset,
            items,
        })
    }
    let mut region = vec![usize::MAX; g.edge_count()];
    let mut arena_len = 0usize;
    let mut loads = Vec::new();
    let mut stores = Vec::new();
    for &v in nodes {
        for &e in g.in_edges(v) {
            let edge = g.edge(e);
            let items = quota[v.idx()].checked_mul(edge.consume)?;
            if member[edge.src.idx()] {
                // Internal: one batch is rate-matched end to end.
                let produced = quota[edge.src.idx()].checked_mul(edge.produce)?;
                if produced != items {
                    return None;
                }
                place(&mut region, &mut arena_len, e, items)?;
            } else {
                loads.push(place(&mut region, &mut arena_len, e, items)?);
            }
        }
        for &e in g.out_edges(v) {
            let edge = g.edge(e);
            if !member[edge.dst.idx()] {
                let items = quota[v.idx()].checked_mul(edge.produce)?;
                stores.push(place(&mut region, &mut arena_len, e, items)?);
            }
        }
    }

    // Replay the schedule: compute each firing's spans from per-node
    // firing counters, and validate legality with the same occupancy
    // bookkeeping a real FIFO would do (cross inputs start full).
    let mut occupancy = vec![0u64; g.edge_count()];
    for io in &loads {
        occupancy[io.edge.idx()] = io.items as u64;
    }
    let mut fired = vec![0u64; g.node_count()];
    let mut compiled = Vec::with_capacity(firings.len());
    for &v in firings {
        if !member[v.idx()] || fired[v.idx()] >= quota[v.idx()] {
            return None;
        }
        let k = fired[v.idx()];
        fired[v.idx()] += 1;
        let mut inputs = Vec::with_capacity(g.in_edges(v).len());
        for &e in g.in_edges(v) {
            let consume = g.edge(e).consume;
            if occupancy[e.idx()] < consume {
                return None; // read would overtake the writes
            }
            occupancy[e.idx()] -= consume;
            inputs.push(ArenaSpan {
                offset: region[e.idx()] + usize::try_from(k.checked_mul(consume)?).ok()?,
                len: consume as usize,
            });
        }
        let mut outputs = Vec::with_capacity(g.out_edges(v).len());
        for &e in g.out_edges(v) {
            let produce = g.edge(e).produce;
            if member[g.edge(e).dst.idx()] {
                occupancy[e.idx()] += produce;
            }
            outputs.push(ArenaSpan {
                offset: region[e.idx()] + usize::try_from(k.checked_mul(produce)?).ok()?,
                len: produce as usize,
            });
        }
        compiled.push(FusedFiring {
            local: local_of[v.idx()],
            inputs,
            outputs,
        });
    }
    // Quotas met and every stream drained: the arena is stateless
    // across batches.
    for &v in nodes {
        if fired[v.idx()] != quota[v.idx()] {
            return None;
        }
        if g.in_edges(v).iter().any(|&e| occupancy[e.idx()] != 0) {
            return None;
        }
    }
    Some(FiringPlan {
        arena_len,
        firings: compiled,
        loads,
        stores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag_greedy;
    use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};

    fn analyzed(g: &StreamGraph) -> RateAnalysis {
        RateAnalysis::analyze_single_io(g).unwrap()
    }

    #[test]
    fn fused_graph_is_rate_matched_with_preserved_traffic() {
        let cfg = LayeredCfg {
            layers: 4,
            max_width: 4,
            density: 0.3,
            state: StateDist::Uniform(8, 48),
            max_q: 3,
        };
        for seed in 0..10u64 {
            let g = gen::layered(&cfg, seed);
            let ra = analyzed(&g);
            let p = dag_greedy::greedy_topo(&g, 120.max(g.max_state()));
            let fused = fuse(&g, &ra, &p).unwrap();
            let fra = RateAnalysis::analyze(&fused.graph).unwrap();
            assert!(fra.check_balance(&fused.graph), "seed {seed}");
            // Per-iteration traffic on surviving edges matches the fine
            // cross traffic in total.
            let fine: u64 = p
                .cross_edges(&g)
                .into_iter()
                .map(|e| ra.edge_traffic(&g, e))
                .sum();
            let coarse: u64 = fused
                .graph
                .edge_ids()
                .map(|e| fra.edge_traffic(&fused.graph, e))
                .sum();
            assert_eq!(fine, coarse, "seed {seed}");
        }
    }

    #[test]
    fn fused_state_is_component_state() {
        let g = gen::pipeline_uniform(9, 10);
        let ra = analyzed(&g);
        let p = dag_greedy::greedy_topo(&g, 30);
        let fused = fuse(&g, &ra, &p).unwrap();
        assert_eq!(fused.graph.total_state(), g.total_state());
        for c in fused.graph.node_ids() {
            assert_eq!(fused.graph.state(c), 30);
        }
        assert_eq!(fused.graph.node_count(), 3);
    }

    #[test]
    fn fusing_whole_graph_gives_single_node() {
        let g = gen::split_join(2, 2, StateDist::Fixed(4), 1);
        let ra = analyzed(&g);
        let fused = fuse(&g, &ra, &Partition::whole(&g)).unwrap();
        assert_eq!(fused.graph.node_count(), 1);
        assert_eq!(fused.graph.edge_count(), 0);
    }

    #[test]
    fn fusing_singletons_is_identity_shaped() {
        let g = gen::pipeline(&PipelineCfg::default(), 4);
        let ra = analyzed(&g);
        let fused = fuse(&g, &ra, &Partition::singletons(&g)).unwrap();
        assert_eq!(fused.graph.node_count(), g.node_count());
        assert_eq!(fused.graph.edge_count(), g.edge_count());
        for e in g.edge_ids() {
            let fe = fused.graph.edge(e);
            let oe = g.edge(e);
            // q(v)/q_singleton(v) = 1: rates unchanged.
            assert_eq!(fe.produce, oe.produce);
            assert_eq!(fe.consume, oe.consume);
        }
    }

    #[test]
    fn non_well_ordered_rejected() {
        let g = gen::pipeline_uniform(4, 4);
        let ra = analyzed(&g);
        let bad = Partition::from_assignment(vec![0, 1, 0, 1]);
        assert!(fuse(&g, &ra, &bad).is_none());
    }

    #[test]
    fn fusion_then_sas_approximates_partitioned_locality() {
        // Scheduling the fused graph with plain SAS yields far fewer
        // misses than SAS on the original when state thrashes: fusion IS
        // partitioning, as §6 remarks.
        use ccs_cachesim::CacheParams;
        use ccs_sched::{baseline, ExecOptions, Executor};
        let g = gen::pipeline_uniform(32, 256); // 8192 words
        let ra = analyzed(&g);
        let params = CacheParams::new(2048, 16);
        let iters = 256u64;

        let naive = baseline::single_appearance(&g, &ra, iters);
        let mut ex = Executor::new(
            &g,
            &ra,
            naive.capacities.clone(),
            params,
            ExecOptions::default(),
        );
        ex.run(&naive.firings).unwrap();
        let misses_fine = ex.report().stats.misses;

        let p = dag_greedy::greedy_topo(&g, params.capacity / 2);
        let fused = fuse(&g, &ra, &p).unwrap();
        let fra = RateAnalysis::analyze_single_io(&fused.graph).unwrap();
        // Scale the fused schedule so it moves the same number of items:
        // fused source fires q(src)/q_C per fused iteration.
        let scaled = baseline::scaled_sas(&fused.graph, &fra, params.capacity / 2, 1);
        let mut ex2 = Executor::new(
            &fused.graph,
            &fra,
            scaled.capacities.clone(),
            params,
            ExecOptions::default(),
        );
        ex2.run(&scaled.firings).unwrap();
        let rep = ex2.report();
        let mpo_fused = rep.stats.misses as f64 / rep.outputs.max(1) as f64;
        let mpo_fine = misses_fine as f64 / iters as f64;
        assert!(
            mpo_fused * 4.0 < mpo_fine,
            "fused {mpo_fused} vs fine {mpo_fine}"
        );
    }

    /// a --2/1--> b --1/2--> c with quotas (1, 2, 1): classic SDF.
    fn rate_pipeline() -> (StreamGraph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let va = b.node("a", 4);
        let vb = b.node("b", 4);
        let vc = b.node("c", 4);
        b.edge(va, vb, 2, 1);
        b.edge(vb, vc, 1, 2);
        (b.build().unwrap(), vec![va, vb, vc])
    }

    #[test]
    fn firing_plan_whole_segment_layout() {
        let (g, v) = rate_pipeline();
        let quota = vec![1, 2, 1];
        let firings = vec![v[0], v[1], v[1], v[2]];
        let plan = compile_firing_plan(&g, &quota, &v, &firings).unwrap();
        // Two internal edges, 2 items each, no boundary traffic.
        assert_eq!(plan.arena_len, 4);
        assert!(plan.loads.is_empty() && plan.stores.is_empty());
        assert_eq!(plan.firings.len(), 4);
        // Region for a→b is placed first (b's in-edge), b→c second.
        let f = &plan.firings;
        assert_eq!(f[0].local, 0);
        assert_eq!(f[0].outputs, vec![ArenaSpan { offset: 0, len: 2 }]);
        assert_eq!(f[1].inputs, vec![ArenaSpan { offset: 0, len: 1 }]);
        assert_eq!(f[1].outputs, vec![ArenaSpan { offset: 2, len: 1 }]);
        assert_eq!(f[2].inputs, vec![ArenaSpan { offset: 1, len: 1 }]);
        assert_eq!(f[2].outputs, vec![ArenaSpan { offset: 3, len: 1 }]);
        assert_eq!(f[3].local, 2);
        assert_eq!(f[3].inputs, vec![ArenaSpan { offset: 2, len: 2 }]);
        assert!(f[3].outputs.is_empty());
    }

    #[test]
    fn firing_plan_rejects_illegal_order() {
        let (g, v) = rate_pipeline();
        let quota = vec![1, 2, 1];
        // c before b: reads items b has not written yet.
        let bad = vec![v[0], v[2], v[1], v[1]];
        assert!(compile_firing_plan(&g, &quota, &v, &bad).is_none());
        // Quota miss: b fires once, leaving a→b half full.
        let short = vec![v[0], v[1], v[2]];
        assert!(compile_firing_plan(&g, &quota, &short, &short).is_none());
    }

    #[test]
    fn firing_plan_singleton_segment_has_boundary_io() {
        let (g, v) = rate_pipeline();
        let quota = vec![1, 2, 1];
        let seg = vec![v[1]];
        let firings = vec![v[1], v[1]];
        let plan = compile_firing_plan(&g, &quota, &seg, &firings).unwrap();
        assert_eq!(plan.arena_len, 4);
        assert_eq!(plan.loads.len(), 1);
        assert_eq!((plan.loads[0].offset, plan.loads[0].items), (0, 2));
        assert_eq!(plan.stores.len(), 1);
        assert_eq!((plan.stores[0].offset, plan.stores[0].items), (2, 2));
        assert_eq!(
            plan.firings[1].inputs,
            vec![ArenaSpan { offset: 1, len: 1 }]
        );
        assert_eq!(
            plan.firings[1].outputs,
            vec![ArenaSpan { offset: 3, len: 1 }]
        );
    }

    #[test]
    fn firing_plan_rejects_rate_mismatched_quota() {
        let (g, v) = rate_pipeline();
        // quota (1, 1, 1) leaves a→b unbalanced: 2 produced, 1 consumed.
        let quota = vec![1, 1, 1];
        let firings = vec![v[0], v[1], v[2]];
        assert!(compile_firing_plan(&g, &quota, &v, &firings).is_none());
    }
}
