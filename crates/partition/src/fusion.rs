//! Module fusion: materialize a partition as a coarser streaming graph.
//!
//! The paper observes (§6) that the module-fusion heuristic of Sermulins
//! et al. "can be viewed as a special case of our partitioning method".
//! This module makes the connection executable: given a well-ordered
//! partition, [`fuse`] contracts every component into a single module
//! using SDF clustering — the fused module fires `gcd{q(v)}` times per
//! steady state with endpoint rates scaled by `q(v)/gcd`, preserving
//! rate-matching and per-iteration traffic exactly.
//!
//! Downstream, a fused graph can be scheduled by *any* scheduler: fusing
//! and then running the plain single-appearance schedule approximates the
//! partitioned scheduler's state locality without a two-level runtime.

use crate::types::Partition;
use ccs_graph::ratio::gcd_u64;
use ccs_graph::{GraphBuilder, NodeId, RateAnalysis, StreamGraph};

/// The fused graph and its bookkeeping.
#[derive(Clone, Debug)]
pub struct FusedGraph {
    pub graph: StreamGraph,
    /// fine node -> fused node.
    pub node_map: Vec<u32>,
    /// fused node -> firing multiplier of each fine member per fused
    /// firing is `q(v)/q_component`; this records `q_component` itself.
    pub component_q: Vec<u64>,
}

/// Fuse each component of `p` into one module. Requires `p` well ordered
/// (otherwise the contracted graph has cycles and this returns `None`).
pub fn fuse(g: &StreamGraph, ra: &RateAnalysis, p: &Partition) -> Option<FusedGraph> {
    if !p.is_well_ordered(g) {
        return None;
    }
    let comps = p.components();
    let mut component_q = Vec::with_capacity(comps.len());
    let mut b = GraphBuilder::new();
    for comp in &comps {
        let q_c = comp.iter().map(|&v| ra.q(v)).fold(0u64, gcd_u64).max(1);
        component_q.push(q_c);
        let name = comp
            .iter()
            .map(|&v| g.node(v).name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        b.node(name, g.state_of(comp));
    }
    let node_map: Vec<u32> = g.node_ids().map(|v| p.component_of(v)).collect();
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let (cu, cv) = (p.component_of(edge.src), p.component_of(edge.dst));
        if cu == cv {
            continue; // fused away
        }
        // One fused firing of C(u) performs q(u)/q_C(u) firings of u.
        let fu = ra.q(edge.src) / component_q[cu as usize];
        let fv = ra.q(edge.dst) / component_q[cv as usize];
        b.edge(NodeId(cu), NodeId(cv), edge.produce * fu, edge.consume * fv);
    }
    let graph = b.build().ok()?;
    Some(FusedGraph {
        graph,
        node_map,
        component_q,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag_greedy;
    use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};

    fn analyzed(g: &StreamGraph) -> RateAnalysis {
        RateAnalysis::analyze_single_io(g).unwrap()
    }

    #[test]
    fn fused_graph_is_rate_matched_with_preserved_traffic() {
        let cfg = LayeredCfg {
            layers: 4,
            max_width: 4,
            density: 0.3,
            state: StateDist::Uniform(8, 48),
            max_q: 3,
        };
        for seed in 0..10u64 {
            let g = gen::layered(&cfg, seed);
            let ra = analyzed(&g);
            let p = dag_greedy::greedy_topo(&g, 120.max(g.max_state()));
            let fused = fuse(&g, &ra, &p).unwrap();
            let fra = RateAnalysis::analyze(&fused.graph).unwrap();
            assert!(fra.check_balance(&fused.graph), "seed {seed}");
            // Per-iteration traffic on surviving edges matches the fine
            // cross traffic in total.
            let fine: u64 = p
                .cross_edges(&g)
                .into_iter()
                .map(|e| ra.edge_traffic(&g, e))
                .sum();
            let coarse: u64 = fused
                .graph
                .edge_ids()
                .map(|e| fra.edge_traffic(&fused.graph, e))
                .sum();
            assert_eq!(fine, coarse, "seed {seed}");
        }
    }

    #[test]
    fn fused_state_is_component_state() {
        let g = gen::pipeline_uniform(9, 10);
        let ra = analyzed(&g);
        let p = dag_greedy::greedy_topo(&g, 30);
        let fused = fuse(&g, &ra, &p).unwrap();
        assert_eq!(fused.graph.total_state(), g.total_state());
        for c in fused.graph.node_ids() {
            assert_eq!(fused.graph.state(c), 30);
        }
        assert_eq!(fused.graph.node_count(), 3);
    }

    #[test]
    fn fusing_whole_graph_gives_single_node() {
        let g = gen::split_join(2, 2, StateDist::Fixed(4), 1);
        let ra = analyzed(&g);
        let fused = fuse(&g, &ra, &Partition::whole(&g)).unwrap();
        assert_eq!(fused.graph.node_count(), 1);
        assert_eq!(fused.graph.edge_count(), 0);
    }

    #[test]
    fn fusing_singletons_is_identity_shaped() {
        let g = gen::pipeline(&PipelineCfg::default(), 4);
        let ra = analyzed(&g);
        let fused = fuse(&g, &ra, &Partition::singletons(&g)).unwrap();
        assert_eq!(fused.graph.node_count(), g.node_count());
        assert_eq!(fused.graph.edge_count(), g.edge_count());
        for e in g.edge_ids() {
            let fe = fused.graph.edge(e);
            let oe = g.edge(e);
            // q(v)/q_singleton(v) = 1: rates unchanged.
            assert_eq!(fe.produce, oe.produce);
            assert_eq!(fe.consume, oe.consume);
        }
    }

    #[test]
    fn non_well_ordered_rejected() {
        let g = gen::pipeline_uniform(4, 4);
        let ra = analyzed(&g);
        let bad = Partition::from_assignment(vec![0, 1, 0, 1]);
        assert!(fuse(&g, &ra, &bad).is_none());
    }

    #[test]
    fn fusion_then_sas_approximates_partitioned_locality() {
        // Scheduling the fused graph with plain SAS yields far fewer
        // misses than SAS on the original when state thrashes: fusion IS
        // partitioning, as §6 remarks.
        use ccs_cachesim::CacheParams;
        use ccs_sched::{baseline, ExecOptions, Executor};
        let g = gen::pipeline_uniform(32, 256); // 8192 words
        let ra = analyzed(&g);
        let params = CacheParams::new(2048, 16);
        let iters = 256u64;

        let naive = baseline::single_appearance(&g, &ra, iters);
        let mut ex = Executor::new(
            &g,
            &ra,
            naive.capacities.clone(),
            params,
            ExecOptions::default(),
        );
        ex.run(&naive.firings).unwrap();
        let misses_fine = ex.report().stats.misses;

        let p = dag_greedy::greedy_topo(&g, params.capacity / 2);
        let fused = fuse(&g, &ra, &p).unwrap();
        let fra = RateAnalysis::analyze_single_io(&fused.graph).unwrap();
        // Scale the fused schedule so it moves the same number of items:
        // fused source fires q(src)/q_C per fused iteration.
        let scaled = baseline::scaled_sas(&fused.graph, &fra, params.capacity / 2, 1);
        let mut ex2 = Executor::new(
            &fused.graph,
            &fra,
            scaled.capacities.clone(),
            params,
            ExecOptions::default(),
        );
        ex2.run(&scaled.firings).unwrap();
        let rep = ex2.report();
        let mpo_fused = rep.stats.misses as f64 / rep.outputs.max(1) as f64;
        let mpo_fine = misses_fine as f64 / iters as f64;
        assert!(
            mpo_fused * 4.0 < mpo_fine,
            "fused {mpo_fused} vs fine {mpo_fine}"
        );
    }
}
