//! Partitions of streaming dags and their quality measures.
//!
//! Definitions follow §3 of the paper: a *partition* divides the modules
//! into disjoint components; it is *well ordered* (Definition 2) when
//! contracting each component leaves a dag; it is *c-bounded* when every
//! component's total state is at most `c·M`; its *bandwidth*
//! (Definition 3) is the sum of gains of cross edges — the number of items
//! crossing component boundaries per source firing.

use ccs_graph::{EdgeId, NodeId, RateAnalysis, Ratio, StreamGraph};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a component within a [`Partition`].
pub type ComponentId = u32;

/// Errors from [`Partition::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// Assignment length differs from the node count.
    WrongLength { got: usize, want: usize },
    /// The contracted component graph has a cycle.
    NotWellOrdered,
    /// A component exceeds the state bound.
    ComponentTooLarge {
        component: ComponentId,
        state: u64,
        bound: u64,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::WrongLength { got, want } => {
                write!(f, "assignment has {got} entries for {want} nodes")
            }
            PartitionError::NotWellOrdered => {
                write!(f, "contracted component graph is cyclic")
            }
            PartitionError::ComponentTooLarge {
                component,
                state,
                bound,
            } => write!(
                f,
                "component {component} holds {state} words of state (bound {bound})"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A partition of the graph's modules into components.
///
/// Stored as a dense assignment `node -> component`. Component ids are
/// normalized on construction to `0..k` in order of first appearance.
///
/// ```
/// use ccs_graph::{gen, RateAnalysis, Ratio};
/// use ccs_partition::Partition;
///
/// let g = gen::pipeline_uniform(4, 10); // 4 modules, unit rates
/// let ra = RateAnalysis::analyze_single_io(&g).unwrap();
/// let p = Partition::from_assignment(vec![0, 0, 1, 1]);
/// assert!(p.is_well_ordered(&g));
/// assert!(p.is_bounded_by(&g, 20));
/// // One homogeneous edge crosses the boundary.
/// assert_eq!(p.bandwidth(&g, &ra), Ratio::ONE);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    assignment: Vec<ComponentId>,
    num_components: usize,
}

impl Partition {
    /// Build from a raw assignment, renumbering components densely in
    /// order of first appearance.
    pub fn from_assignment(raw: Vec<ComponentId>) -> Partition {
        let mut remap: std::collections::HashMap<ComponentId, ComponentId> =
            std::collections::HashMap::new();
        let mut assignment = Vec::with_capacity(raw.len());
        for c in raw {
            let next = remap.len() as ComponentId;
            let id = *remap.entry(c).or_insert(next);
            assignment.push(id);
        }
        Partition {
            assignment,
            num_components: remap.len(),
        }
    }

    /// Every node in its own component.
    pub fn singletons(g: &StreamGraph) -> Partition {
        Partition {
            assignment: (0..g.node_count() as u32).collect(),
            num_components: g.node_count(),
        }
    }

    /// All nodes in one component.
    pub fn whole(g: &StreamGraph) -> Partition {
        Partition {
            assignment: vec![0; g.node_count()],
            num_components: 1,
        }
    }

    #[inline]
    pub fn component_of(&self, v: NodeId) -> ComponentId {
        self.assignment[v.idx()]
    }

    pub fn num_components(&self) -> usize {
        self.num_components
    }

    pub fn assignment(&self) -> &[ComponentId] {
        &self.assignment
    }

    /// Nodes of each component, by component id.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let mut comps = vec![Vec::new(); self.num_components];
        for (i, &c) in self.assignment.iter().enumerate() {
            comps[c as usize].push(NodeId(i as u32));
        }
        comps
    }

    /// Edges whose endpoints lie in different components.
    pub fn cross_edges(&self, g: &StreamGraph) -> Vec<EdgeId> {
        g.edge_ids()
            .filter(|&e| {
                let edge = g.edge(e);
                self.component_of(edge.src) != self.component_of(edge.dst)
            })
            .collect()
    }

    /// Edges internal to a single component.
    pub fn internal_edges(&self, g: &StreamGraph) -> Vec<EdgeId> {
        g.edge_ids()
            .filter(|&e| {
                let edge = g.edge(e);
                self.component_of(edge.src) == self.component_of(edge.dst)
            })
            .collect()
    }

    /// Definition 3: `bandwidth(P) = Σ gain(e)` over cross edges — items
    /// crossing component boundaries per firing of the source.
    pub fn bandwidth(&self, g: &StreamGraph, ra: &RateAnalysis) -> Ratio {
        self.cross_edges(g)
            .into_iter()
            .map(|e| ra.edge_gain(g, e))
            .sum()
    }

    /// Total state (words) per component.
    pub fn component_states(&self, g: &StreamGraph) -> Vec<u64> {
        let mut st = vec![0u64; self.num_components];
        for v in g.node_ids() {
            st[self.component_of(v) as usize] += g.state(v);
        }
        st
    }

    /// Largest component state.
    pub fn max_component_state(&self, g: &StreamGraph) -> u64 {
        self.component_states(g).into_iter().max().unwrap_or(0)
    }

    /// Number of cross edges incident on each component (the partition
    /// *degree* used by Lemma 8's degree-limited condition).
    pub fn component_degrees(&self, g: &StreamGraph) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_components];
        for e in self.cross_edges(g) {
            let edge = g.edge(e);
            deg[self.component_of(edge.src) as usize] += 1;
            deg[self.component_of(edge.dst) as usize] += 1;
        }
        deg
    }

    pub fn max_component_degree(&self, g: &StreamGraph) -> usize {
        self.component_degrees(g).into_iter().max().unwrap_or(0)
    }

    /// Edges of the contracted multigraph as `(src_comp, dst_comp)` pairs
    /// (cross edges only).
    pub fn contracted_edges(&self, g: &StreamGraph) -> Vec<(ComponentId, ComponentId)> {
        self.cross_edges(g)
            .into_iter()
            .map(|e| {
                let edge = g.edge(e);
                (self.component_of(edge.src), self.component_of(edge.dst))
            })
            .collect()
    }

    /// Definition 2: is the contracted multigraph a dag?
    pub fn is_well_ordered(&self, g: &StreamGraph) -> bool {
        self.topo_order_components(g).is_some()
    }

    /// A topological order of components in the contracted graph, or
    /// `None` if it is cyclic.
    pub fn topo_order_components(&self, g: &StreamGraph) -> Option<Vec<ComponentId>> {
        let k = self.num_components;
        let mut indeg = vec![0usize; k];
        let mut adj: Vec<Vec<ComponentId>> = vec![Vec::new(); k];
        for (a, b) in self.contracted_edges(g) {
            adj[a as usize].push(b);
            indeg[b as usize] += 1;
        }
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<ComponentId>> = (0..k
            as ComponentId)
            .filter(|&c| indeg[c as usize] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(k);
        while let Some(std::cmp::Reverse(c)) = heap.pop() {
            order.push(c);
            for &d in &adj[c as usize] {
                indeg[d as usize] -= 1;
                if indeg[d as usize] == 0 {
                    heap.push(std::cmp::Reverse(d));
                }
            }
        }
        if order.len() == k {
            Some(order)
        } else {
            None
        }
    }

    /// Is every component's state at most `bound` words? (`bound = c·M`
    /// for a c-bounded partition.)
    pub fn is_bounded_by(&self, g: &StreamGraph, bound: u64) -> bool {
        self.max_component_state(g) <= bound
    }

    /// Full §3 validity check: assignment shape, well-orderedness, and the
    /// state bound.
    pub fn validate(&self, g: &StreamGraph, bound: u64) -> Result<(), PartitionError> {
        if self.assignment.len() != g.node_count() {
            return Err(PartitionError::WrongLength {
                got: self.assignment.len(),
                want: g.node_count(),
            });
        }
        for (c, state) in self.component_states(g).into_iter().enumerate() {
            if state > bound {
                return Err(PartitionError::ComponentTooLarge {
                    component: c as ComponentId,
                    state,
                    bound,
                });
            }
        }
        if !self.is_well_ordered(g) {
            return Err(PartitionError::NotWellOrdered);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::GraphBuilder;

    fn chain4() -> StreamGraph {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.node(format!("v{i}"), 10)).collect();
        for w in v.windows(2) {
            b.edge(w[0], w[1], 1, 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn normalizes_component_ids() {
        let p = Partition::from_assignment(vec![7, 7, 3, 3]);
        assert_eq!(p.assignment(), &[0, 0, 1, 1]);
        assert_eq!(p.num_components(), 2);
    }

    #[test]
    fn cross_and_internal_edges() {
        let g = chain4();
        let p = Partition::from_assignment(vec![0, 0, 1, 1]);
        assert_eq!(p.cross_edges(&g), vec![EdgeId(1)]);
        assert_eq!(p.internal_edges(&g), vec![EdgeId(0), EdgeId(2)]);
    }

    #[test]
    fn bandwidth_counts_cross_gains() {
        let g = chain4();
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = Partition::from_assignment(vec![0, 0, 1, 1]);
        assert_eq!(p.bandwidth(&g, &ra), Ratio::ONE);
        let q = Partition::singletons(&g);
        assert_eq!(q.bandwidth(&g, &ra), Ratio::integer(3));
        let w = Partition::whole(&g);
        assert_eq!(w.bandwidth(&g, &ra), Ratio::ZERO);
    }

    #[test]
    fn well_ordered_detection() {
        let g = chain4();
        // Contiguous split: well ordered.
        let p = Partition::from_assignment(vec![0, 0, 1, 1]);
        assert!(p.is_well_ordered(&g));
        // Interleaved: v0,v2 in comp0; v1,v3 in comp1 -> contracted cycle.
        let q = Partition::from_assignment(vec![0, 1, 0, 1]);
        assert!(!q.is_well_ordered(&g));
        assert_eq!(q.topo_order_components(&g), None);
    }

    #[test]
    fn component_topo_order_respects_contraction() {
        let g = chain4();
        let p = Partition::from_assignment(vec![1, 1, 0, 0]); // ids renumber to 0,0,1,1
        let order = p.topo_order_components(&g).unwrap();
        assert_eq!(order.len(), 2);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn bounds_and_validation() {
        let g = chain4();
        let p = Partition::from_assignment(vec![0, 0, 1, 1]);
        assert_eq!(p.component_states(&g), vec![20, 20]);
        assert!(p.is_bounded_by(&g, 20));
        assert!(!p.is_bounded_by(&g, 19));
        assert!(p.validate(&g, 20).is_ok());
        assert!(matches!(
            p.validate(&g, 19),
            Err(PartitionError::ComponentTooLarge { .. })
        ));
        let q = Partition::from_assignment(vec![0, 1, 0, 1]);
        assert_eq!(q.validate(&g, 100), Err(PartitionError::NotWellOrdered));
        let r = Partition::from_assignment(vec![0, 0]);
        assert!(matches!(
            r.validate(&g, 100),
            Err(PartitionError::WrongLength { got: 2, want: 4 })
        ));
    }

    #[test]
    fn degrees_count_incident_cross_edges() {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let a = b.node("a", 1);
        let c = b.node("c", 1);
        let t = b.node("t", 1);
        b.edge(s, a, 1, 1);
        b.edge(s, c, 1, 1);
        b.edge(a, t, 1, 1);
        b.edge(c, t, 1, 1);
        let g = b.build().unwrap();
        // {s}, {a, c, t}: two cross edges from comp0 to comp1.
        let p = Partition::from_assignment(vec![0, 1, 1, 1]);
        assert_eq!(p.component_degrees(&g), vec![2, 2]);
        assert_eq!(p.max_component_degree(&g), 2);
        let singles = Partition::singletons(&g);
        assert_eq!(singles.max_component_degree(&g), 2);
    }

    #[test]
    fn diamond_parallel_components_well_ordered() {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let a = b.node("a", 1);
        let c = b.node("c", 1);
        let t = b.node("t", 1);
        b.edge(s, a, 1, 1);
        b.edge(s, c, 1, 1);
        b.edge(a, t, 1, 1);
        b.edge(c, t, 1, 1);
        let g = b.build().unwrap();
        // a and c in separate middle components: still a dag when contracted.
        let p = Partition::from_assignment(vec![0, 1, 2, 3]);
        assert!(p.is_well_ordered(&g));
    }
}
