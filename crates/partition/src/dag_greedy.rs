//! Greedy dag partitioners.
//!
//! Finding a minimum-bandwidth well-ordered partition of a general dag is
//! NP-complete (Acyclic Partition, GJ ND15), so the paper suggests
//! heuristics or exact solvers at compile time. The greedy partitioners
//! here exploit a structural fact: **every** well-ordered partition lists
//! its components contiguously in *some* topological order of the nodes
//! (order the components topologically in the contracted dag, then
//! concatenate). Conversely, any contiguous segmentation of any
//! topological order is well ordered. Greedy partitioning therefore
//! reduces to (1) choosing a good topological order and (2) segmenting it
//! under the state bound.

use crate::types::Partition;
use ccs_graph::{NodeId, RateAnalysis, Ratio, StreamGraph};

/// Segment an explicit topological order greedily: open a new component
/// whenever adding the next node would exceed `bound` words of state.
/// The result is always well ordered (components are contiguous in a
/// topological order) and `bound`-bounded provided every single module
/// fits.
///
/// Panics if a single module exceeds `bound`.
pub fn segment_topo_order(g: &StreamGraph, order: &[NodeId], bound: u64) -> Partition {
    assert_eq!(order.len(), g.node_count());
    let mut assignment = vec![0u32; g.node_count()];
    let mut comp = 0u32;
    let mut acc = 0u64;
    for &v in order {
        let s = g.state(v);
        assert!(s <= bound, "module {v:?} has state {s} > bound {bound}");
        if acc + s > bound && acc > 0 {
            comp += 1;
            acc = 0;
        }
        acc += s;
        assignment[v.idx()] = comp;
    }
    Partition::from_assignment(assignment)
}

/// Greedy partition using the default deterministic topological order.
pub fn greedy_topo(g: &StreamGraph, bound: u64) -> Partition {
    let order = ccs_graph::topo::topo_order(g);
    segment_topo_order(g, &order, bound)
}

/// Greedy partition using an *affinity-driven* topological order: among
/// ready nodes, repeatedly pick the one with the largest total edge gain
/// to already-placed nodes (ties: smaller state first, then node id).
///
/// Heavy edges are thereby pulled inside components, which directly
/// targets the bandwidth objective (cross-edge gain), unlike an arbitrary
/// topological order.
pub fn greedy_affinity(g: &StreamGraph, ra: &RateAnalysis, bound: u64) -> Partition {
    let n = g.node_count();
    let mut indeg: Vec<usize> = g.node_ids().map(|v| g.in_edges(v).len()).collect();
    // Affinity of each ready node to the current component.
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut ready: Vec<NodeId> = g.node_ids().filter(|v| indeg[v.idx()] == 0).collect();
    // Nodes currently assigned to the open component.
    let mut open: Vec<bool> = vec![false; n];
    let mut acc = 0u64;

    while let Some((idx, _)) = ready
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            // Affinity: total gain on edges between v and the open component.
            let mut aff = Ratio::ZERO;
            for &e in g.in_edges(v) {
                if open[g.edge(e).src.idx()] {
                    aff = aff + ra.edge_gain(g, e);
                }
            }
            // Prefer fitting nodes, then higher affinity, then smaller
            // state, then lower id for determinism.
            let fits = g.state(v) + acc <= bound;
            (
                i,
                (
                    fits,
                    aff,
                    std::cmp::Reverse(g.state(v)),
                    std::cmp::Reverse(v.0),
                ),
            )
        })
        .max_by(|a, b| a.1.cmp(&b.1))
    {
        let v = ready.swap_remove(idx);
        let s = g.state(v);
        assert!(s <= bound, "module {v:?} has state {s} > bound {bound}");
        if acc + s > bound && acc > 0 {
            // Close the open component.
            open.iter_mut().for_each(|b| *b = false);
            acc = 0;
        }
        acc += s;
        open[v.idx()] = true;
        order.push(v);
        for &e in g.out_edges(v) {
            let w = g.edge(e).dst;
            indeg[w.idx()] -= 1;
            if indeg[w.idx()] == 0 {
                ready.push(w);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    segment_topo_order(g, &order, bound)
}

/// Run both greedy strategies and return the one with smaller bandwidth.
pub fn greedy_best(g: &StreamGraph, ra: &RateAnalysis, bound: u64) -> Partition {
    let a = greedy_topo(g, bound);
    let b = greedy_affinity(g, ra, bound);
    if a.bandwidth(g, ra) <= b.bandwidth(g, ra) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen::{self, LayeredCfg, StateDist};
    use ccs_graph::GraphBuilder;

    fn analyzed(g: &StreamGraph) -> RateAnalysis {
        RateAnalysis::analyze_single_io(g).unwrap()
    }

    #[test]
    fn greedy_topo_respects_bound_and_order() {
        let cfg = LayeredCfg {
            layers: 5,
            max_width: 4,
            density: 0.3,
            state: StateDist::Uniform(10, 50),
            max_q: 1,
        };
        for seed in 0..20u64 {
            let g = gen::layered(&cfg, seed);
            let p = greedy_topo(&g, 100);
            assert!(p.validate(&g, 100).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn greedy_affinity_valid_and_never_much_worse() {
        let cfg = LayeredCfg {
            layers: 5,
            max_width: 4,
            density: 0.3,
            state: StateDist::Uniform(10, 50),
            max_q: 2,
        };
        for seed in 0..20u64 {
            let g = gen::layered(&cfg, seed);
            let ra = analyzed(&g);
            let p = greedy_affinity(&g, &ra, 120);
            assert!(p.validate(&g, 120).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn affinity_pulls_heavy_edge_inside() {
        // s -> a (gain 10), s -> b (gain 1), a -> t, b -> t.
        // With room for 3 nodes of 4 in the first component, affinity
        // should group {s, a} (heavy edge) rather than {s, b}.
        let mut b = GraphBuilder::new();
        let s = b.node("s", 10);
        let a = b.node("a", 10);
        let c = b.node("c", 10);
        let t = b.node("t", 10);
        b.edge(s, a, 10, 1); // a fires 10x; heavy traffic
        b.edge(s, c, 1, 1);
        b.edge(a, t, 1, 10);
        b.edge(c, t, 1, 1);
        let g = b.build().unwrap();
        let ra = analyzed(&g);
        let p = greedy_affinity(&g, &ra, 20);
        assert!(p.validate(&g, 20).is_ok());
        assert_eq!(
            p.component_of(NodeId(0)),
            p.component_of(NodeId(1)),
            "heavy edge s->a should be internal: {:?}",
            p.assignment()
        );
    }

    #[test]
    fn whole_graph_fits_gives_one_component() {
        let g = gen::split_join(3, 2, StateDist::Fixed(5), 1);
        let ra = analyzed(&g);
        let p = greedy_best(&g, &ra, 10_000);
        assert_eq!(p.num_components(), 1);
        assert_eq!(p.bandwidth(&g, &ra), Ratio::ZERO);
    }

    #[test]
    fn segment_topo_order_contiguity_is_well_ordered() {
        // Any topo order segmented contiguously must be well ordered.
        let cfg = LayeredCfg::default();
        for seed in 0..10u64 {
            let g = gen::layered(&cfg, seed);
            let order = ccs_graph::topo::topo_order(&g);
            for bound in [64u64, 128, 512, 100_000] {
                if g.max_state() > bound {
                    continue;
                }
                let p = segment_topo_order(&g, &order, bound);
                assert!(p.is_well_ordered(&g), "seed {seed} bound {bound}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn oversized_module_panics() {
        let g = gen::split_join(2, 1, StateDist::Fixed(100), 0);
        greedy_topo(&g, 50);
    }
}
