//! Local-search refinement of dag partitions.
//!
//! Kernighan–Lin-style improvement restricted to moves that preserve
//! well-orderedness and the state bound: single-node relocations to
//! neighboring components, and whole-component merges. Bandwidth strictly
//! decreases with every accepted move, so the search terminates; a pass
//! cap guards against pathological instance sizes.

use crate::types::Partition;
use ccs_graph::{NodeId, RateAnalysis, StreamGraph};

/// Integer edge weight proportional to gain: items crossing `e` per
/// steady-state iteration (`q(src)·produce`). Minimizing the sum of these
/// minimizes bandwidth (same quantity scaled by `q(source)`).
fn edge_weight(g: &StreamGraph, ra: &RateAnalysis, e: ccs_graph::EdgeId) -> u64 {
    ra.edge_traffic(g, e)
}

struct State<'a> {
    g: &'a StreamGraph,
    assignment: Vec<u32>,
    comp_state: Vec<u64>,
}

impl State<'_> {
    /// Weight change if `v` moves to component `to` (negative = better).
    fn move_delta(&self, ra: &RateAnalysis, v: NodeId, to: u32) -> i128 {
        let from = self.assignment[v.idx()];
        let mut delta = 0i128;
        for &e in self.g.in_edges(v).iter().chain(self.g.out_edges(v)) {
            let edge = self.g.edge(e);
            let other = if edge.src == v { edge.dst } else { edge.src };
            let oc = self.assignment[other.idx()];
            let w = edge_weight(self.g, ra, e) as i128;
            let was_cross = oc != from;
            let now_cross = oc != to;
            match (was_cross, now_cross) {
                (true, false) => delta -= w,
                (false, true) => delta += w,
                _ => {}
            }
        }
        delta
    }

    /// Is the contracted graph acyclic under the current assignment?
    fn well_ordered(&self) -> bool {
        Partition::from_assignment(self.assignment.clone()).is_well_ordered(self.g)
    }
}

/// Refine `p` by single-node moves and component merges until a local
/// minimum (or `max_passes` sweeps). The result is always valid for
/// `bound` and has bandwidth no worse than `p`'s.
pub fn refine(
    g: &StreamGraph,
    ra: &RateAnalysis,
    bound: u64,
    p: &Partition,
    max_passes: usize,
) -> Partition {
    let mut st = State {
        g,
        assignment: p.assignment().to_vec(),
        comp_state: p.component_states(g),
    };

    for _pass in 0..max_passes {
        let mut improved = false;

        // Single-node relocations to neighboring components.
        for v in g.node_ids() {
            let from = st.assignment[v.idx()];
            // Candidate targets: components of direct neighbors.
            let mut cands: Vec<u32> = g
                .in_edges(v)
                .iter()
                .map(|&e| st.assignment[g.edge(e).src.idx()])
                .chain(
                    g.out_edges(v)
                        .iter()
                        .map(|&e| st.assignment[g.edge(e).dst.idx()]),
                )
                .filter(|&c| c != from)
                .collect();
            cands.sort_unstable();
            cands.dedup();
            // Try the best-improving candidate first.
            cands.sort_by_key(|&c| st.move_delta(ra, v, c));
            for to in cands {
                if st.move_delta(ra, v, to) >= 0 {
                    break; // sorted: no further candidate improves
                }
                if st.comp_state[to as usize] + g.state(v) > bound {
                    continue;
                }
                // Tentative move + well-orderedness check.
                st.assignment[v.idx()] = to;
                if st.well_ordered() {
                    st.comp_state[from as usize] -= g.state(v);
                    st.comp_state[to as usize] += g.state(v);
                    improved = true;
                    break;
                }
                st.assignment[v.idx()] = from; // revert
            }
        }

        // Component merges along contracted edges.
        let snapshot = Partition::from_assignment(st.assignment.clone());
        let mut merged_any = false;
        let mut contracted = snapshot.contracted_edges(g);
        contracted.sort_unstable();
        contracted.dedup();
        for (a, b) in contracted {
            // Ids in `snapshot` space equal ids in `st.assignment` after
            // normalization; re-derive states to stay consistent.
            let states = snapshot.component_states(g);
            if a == b || states[a as usize] + states[b as usize] > bound {
                continue;
            }
            let trial: Vec<u32> = snapshot
                .assignment()
                .iter()
                .map(|&c| if c == b { a } else { c })
                .collect();
            let tp = Partition::from_assignment(trial.clone());
            if tp.is_well_ordered(g) {
                st.assignment = tp.assignment().to_vec();
                st.comp_state = tp.component_states(g);
                improved = true;
                merged_any = true;
                break; // contracted edges are stale; restart pass
            }
        }
        let _ = merged_any;

        if !improved {
            break;
        }
    }

    let out = Partition::from_assignment(st.assignment);
    debug_assert!(out.validate(g, bound).is_ok());
    debug_assert!(
        out.bandwidth(g, ra) <= p.bandwidth(g, ra),
        "refinement must not worsen bandwidth"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag_greedy;
    use ccs_graph::gen::{self, LayeredCfg, StateDist};
    use ccs_graph::Ratio;

    fn analyzed(g: &StreamGraph) -> RateAnalysis {
        RateAnalysis::analyze_single_io(g).unwrap()
    }

    #[test]
    fn refinement_never_worsens_and_stays_valid() {
        let cfg = LayeredCfg {
            layers: 5,
            max_width: 4,
            density: 0.35,
            state: StateDist::Uniform(10, 60),
            max_q: 2,
        };
        for seed in 0..25u64 {
            let g = gen::layered(&cfg, seed);
            let ra = analyzed(&g);
            let bound = 150u64.max(g.max_state());
            let p0 = dag_greedy::greedy_topo(&g, bound);
            let before = p0.bandwidth(&g, &ra);
            let p1 = refine(&g, &ra, bound, &p0, 20);
            assert!(p1.validate(&g, bound).is_ok(), "seed {seed}");
            assert!(
                p1.bandwidth(&g, &ra) <= before,
                "seed {seed}: worsened bandwidth"
            );
        }
    }

    #[test]
    fn refinement_finds_obvious_improvement() {
        // Pipeline v0..v3 with huge gain on middle edge; start with a bad
        // partition cutting the heavy edge, refinement should fix it.
        let mut b = ccs_graph::GraphBuilder::new();
        let v0 = b.node("v0", 10);
        let v1 = b.node("v1", 10);
        let v2 = b.node("v2", 10);
        let v3 = b.node("v3", 10);
        b.edge(v0, v1, 1, 5); // gain 1/5... light
        b.edge(v1, v2, 5, 1); // v1 fires 1/5; edge traffic: q(v1)*5
        b.edge(v2, v3, 1, 1);
        let g = b.build().unwrap();
        let ra = analyzed(&g);
        // q: v0=5, v1=1, v2=5, v3=5. weights: e0: 5, e1: 5, e2: 5. Hmm,
        // uniform weights; use state bound to force 2 components of 2.
        let bad = Partition::from_assignment(vec![0, 0, 1, 1]);
        let refined = refine(&g, &ra, 20, &bad, 10);
        assert!(refined.bandwidth(&g, &ra) <= bad.bandwidth(&g, &ra));
    }

    #[test]
    fn merge_collapses_when_bound_allows() {
        let g = gen::split_join(3, 2, StateDist::Fixed(4), 9);
        let ra = analyzed(&g);
        let p0 = Partition::singletons(&g);
        let refined = refine(&g, &ra, 10_000, &p0, 50);
        // Everything fits in one component; refinement should reach
        // bandwidth zero by repeated merging.
        assert_eq!(refined.bandwidth(&g, &ra), Ratio::ZERO);
        assert_eq!(refined.num_components(), 1);
    }
}
