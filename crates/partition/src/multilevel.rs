//! Multilevel dag partitioning (coarsen → partition → refine).
//!
//! The classic scheme of Hendrickson–Leland and Karypis–Kumar (both cited
//! in the paper's §7), adapted to streaming dags:
//!
//! * coarsening only contracts edges whose contraction keeps the graph
//!   acyclic (no *indirect* directed path between the endpoints), so
//!   every coarse graph is itself a streaming dag and coarse partitions
//!   lift to well-ordered fine partitions;
//! * contraction performs standard SDF *clustering*: a merged node fires
//!   `gcd(q(u), q(v))` times per steady state, with the endpoints' edge
//!   rates scaled by `q(u)/gcd` and `q(v)/gcd`, which preserves
//!   rate-matching and leaves every remaining edge's per-iteration
//!   traffic — and hence every partition's bandwidth — unchanged.

use crate::dag_greedy;
use crate::dag_local;
use crate::types::Partition;
use ccs_graph::ratio::gcd_u64;
use ccs_graph::{GraphBuilder, NodeId, RateAnalysis, StreamGraph};

/// How far to coarsen before partitioning directly.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelCfg {
    /// Stop coarsening at (or below) this many nodes.
    pub coarse_target: usize,
    /// Refinement passes at each level.
    pub refine_passes: usize,
}

impl Default for MultilevelCfg {
    fn default() -> Self {
        MultilevelCfg {
            coarse_target: 24,
            refine_passes: 8,
        }
    }
}

/// One coarsening level: the coarse graph plus the mapping fine node →
/// coarse node.
struct Level {
    graph: StreamGraph,
    /// fine node index -> coarse node id
    map: Vec<u32>,
}

/// Contract a maximal matching of heavy, contraction-safe edges.
/// Returns `None` when no edge can be contracted (fixpoint).
///
/// Safety condition for *simultaneous* matching contraction: an edge
/// `(u, v)` is contractible only if **all** of `u`'s out-edges lead to
/// `v`, or **all** of `v`'s in-edges come from `u`. Either way the merged
/// quotient node cannot be traversed "backwards" (entered at `v`'s side
/// and exited at `u`'s), so any quotient cycle would map to a directed
/// cycle of the fine dag — impossible. (Per-edge indirect-path checks are
/// *not* sufficient when a whole matching is contracted at once.)
fn coarsen_once(g: &StreamGraph, ra: &RateAnalysis, bound: u64) -> Option<Level> {
    let n = g.node_count();

    // Candidate edges by descending traffic: contract heavy edges first —
    // they are exactly the ones we never want crossing.
    let mut edges: Vec<ccs_graph::EdgeId> = g.edge_ids().collect();
    edges.sort_by_key(|&e| std::cmp::Reverse(ra.edge_traffic(g, e)));

    // partner[x] = Some(y) for both endpoints of each matched pair.
    let mut partner: Vec<Option<NodeId>> = vec![None; n];
    let mut any = false;
    for e in edges {
        let edge = g.edge(e);
        let (u, v) = (edge.src, edge.dst);
        if partner[u.idx()].is_some() || partner[v.idx()].is_some() {
            continue;
        }
        if g.state(u) + g.state(v) > bound {
            continue;
        }
        let u_exits_only_to_v = g.out_edges(u).iter().all(|&e2| g.edge(e2).dst == v);
        let v_enters_only_from_u = g.in_edges(v).iter().all(|&e2| g.edge(e2).src == u);
        if !(u_exits_only_to_v || v_enters_only_from_u) {
            continue;
        }
        partner[u.idx()] = Some(v);
        partner[v.idx()] = Some(u);
        any = true;
    }
    if !any {
        return None;
    }

    // Build the coarse graph. The representative of a pair is the
    // lower-indexed endpoint (deterministic).
    let mut map = vec![u32::MAX; n];
    // Per-fine-node rate multiplier: q(x)/gcd(q(u), q(v)) for matched
    // nodes, 1 otherwise.
    let mut factor = vec![1u64; n];
    let mut b = GraphBuilder::new();
    for x in g.node_ids() {
        if map[x.idx()] != u32::MAX {
            continue;
        }
        match partner[x.idx()] {
            Some(y) if y.idx() > x.idx() => {
                let gq = gcd_u64(ra.q(x), ra.q(y));
                factor[x.idx()] = ra.q(x) / gq;
                factor[y.idx()] = ra.q(y) / gq;
                let id = b.node(
                    format!("{}+{}", g.node(x).name, g.node(y).name),
                    g.state(x) + g.state(y),
                );
                map[x.idx()] = id.0;
                map[y.idx()] = id.0;
            }
            Some(_) => unreachable!("partner with smaller index maps first"),
            None => {
                let id = b.node(g.node(x).name.clone(), g.state(x));
                map[x.idx()] = id.0;
            }
        }
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let (cu, cv) = (map[edge.src.idx()], map[edge.dst.idx()]);
        if cu == cv {
            continue; // contracted away
        }
        // SDF clustering: scale each endpoint's rate by its firing
        // multiplier so per-iteration traffic is preserved.
        b.edge(
            NodeId(cu),
            NodeId(cv),
            edge.produce * factor[edge.src.idx()],
            edge.consume * factor[edge.dst.idx()],
        );
    }
    let graph = b.build().expect("safe contraction keeps the graph a dag");
    Some(Level { graph, map })
}

/// Multilevel partition of `g` under the state `bound`.
pub fn multilevel(
    g: &StreamGraph,
    ra: &RateAnalysis,
    bound: u64,
    cfg: &MultilevelCfg,
) -> Partition {
    // Coarsening phase. Levels[i].graph is the graph after i+1
    // contractions; analyses are recomputed per level (clustering
    // preserves rate-matching, so this cannot fail).
    let mut levels: Vec<(Level, RateAnalysis)> = Vec::new();
    {
        let mut cur_graph = g.clone();
        let mut cur_ra = ra.clone();
        while cur_graph.node_count() > cfg.coarse_target {
            let Some(level) = coarsen_once(&cur_graph, &cur_ra, bound) else {
                break;
            };
            let next_ra = RateAnalysis::analyze(&level.graph)
                .expect("SDF clustering preserves rate-matching");
            cur_graph = level.graph.clone();
            cur_ra = next_ra.clone();
            levels.push((level, next_ra));
        }
    }

    // Initial partition at the coarsest level.
    let (coarsest_graph, coarsest_ra) = match levels.last() {
        Some((level, lra)) => (&level.graph, lra),
        None => (g, ra),
    };
    let mut partition = dag_greedy::greedy_topo(coarsest_graph, bound);
    partition = dag_local::refine(
        coarsest_graph,
        coarsest_ra,
        bound,
        &partition,
        cfg.refine_passes,
    );

    // Uncoarsening: project through each level and refine on the finer
    // graph.
    for i in (0..levels.len()).rev() {
        let (fine_graph, fine_ra): (&StreamGraph, &RateAnalysis) = if i == 0 {
            (g, ra)
        } else {
            (&levels[i - 1].0.graph, &levels[i - 1].1)
        };
        let map = &levels[i].0.map;
        let assignment: Vec<u32> = (0..fine_graph.node_count())
            .map(|j| partition.component_of(NodeId(map[j])))
            .collect();
        partition = Partition::from_assignment(assignment);
        partition = dag_local::refine(fine_graph, fine_ra, bound, &partition, cfg.refine_passes);
    }

    debug_assert!(partition.validate(g, bound).is_ok());
    partition
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen::{self, LayeredCfg, StateDist};
    use ccs_graph::Ratio;

    fn analyzed(g: &StreamGraph) -> RateAnalysis {
        RateAnalysis::analyze_single_io(g).unwrap()
    }

    #[test]
    fn coarsen_once_preserves_dag_rates_and_traffic() {
        let cfg = LayeredCfg {
            layers: 5,
            max_width: 5,
            density: 0.3,
            state: StateDist::Uniform(4, 32),
            max_q: 3,
        };
        for seed in 0..10u64 {
            let g = gen::layered(&cfg, seed);
            let ra = analyzed(&g);
            let total_traffic: u64 = g.edge_ids().map(|e| ra.edge_traffic(&g, e)).sum();
            if let Some(level) = coarsen_once(&g, &ra, 1 << 20) {
                assert!(level.graph.node_count() < g.node_count(), "seed {seed}");
                let cra = RateAnalysis::analyze(&level.graph).unwrap();
                assert!(cra.check_balance(&level.graph), "seed {seed}");
                // Mapping is total and in range.
                for i in 0..g.node_count() {
                    assert!((level.map[i] as usize) < level.graph.node_count());
                }
                // Surviving traffic equals fine traffic minus contracted
                // edges' traffic — in particular it never grows.
                let coarse_traffic: u64 = level
                    .graph
                    .edge_ids()
                    .map(|e| cra.edge_traffic(&level.graph, e))
                    .sum();
                assert!(coarse_traffic <= total_traffic, "seed {seed}");
            }
        }
    }

    #[test]
    fn clustering_preserves_bandwidth_of_lifted_partitions() {
        // Any partition of the coarse graph, lifted to the fine graph,
        // has identical bandwidth (as a traffic count).
        let cfg = LayeredCfg {
            layers: 4,
            max_width: 4,
            density: 0.3,
            state: StateDist::Uniform(4, 32),
            max_q: 3,
        };
        for seed in 0..8u64 {
            let g = gen::layered(&cfg, seed);
            let ra = analyzed(&g);
            let Some(level) = coarsen_once(&g, &ra, 1 << 20) else {
                continue;
            };
            let cra = RateAnalysis::analyze(&level.graph).unwrap();
            let cp = dag_greedy::greedy_topo(&level.graph, 1 << 20);
            let lifted = Partition::from_assignment(
                (0..g.node_count())
                    .map(|i| cp.component_of(NodeId(level.map[i])))
                    .collect(),
            );
            // Compare per-iteration traffic across cross edges (bandwidth
            // scaled by q(source), which contraction can change by a
            // constant; traffic is the invariant quantity).
            let coarse_traffic: u64 = cp
                .cross_edges(&level.graph)
                .into_iter()
                .map(|e| cra.edge_traffic(&level.graph, e))
                .sum();
            let fine_traffic: u64 = lifted
                .cross_edges(&g)
                .into_iter()
                .map(|e| ra.edge_traffic(&g, e))
                .sum();
            assert_eq!(coarse_traffic, fine_traffic, "seed {seed}");
            assert!(lifted.is_well_ordered(&g), "seed {seed}");
        }
    }

    #[test]
    fn multilevel_valid_and_competitive_with_greedy() {
        let cfg = LayeredCfg {
            layers: 8,
            max_width: 6,
            density: 0.3,
            state: StateDist::Uniform(8, 48),
            max_q: 2,
        };
        for seed in 0..8u64 {
            let g = gen::layered(&cfg, seed);
            let ra = analyzed(&g);
            let bound = g.max_state().max(160);
            let ml = multilevel(&g, &ra, bound, &MultilevelCfg::default());
            assert!(ml.validate(&g, bound).is_ok(), "seed {seed}");
            let greedy = dag_greedy::greedy_topo(&g, bound);
            let bw_ml = ml.bandwidth(&g, &ra);
            let bw_gr = greedy.bandwidth(&g, &ra);
            assert!(
                bw_ml.to_f64() <= bw_gr.to_f64() * 1.5 + 1.0,
                "seed {seed}: multilevel {bw_ml} vs greedy {bw_gr}"
            );
        }
    }

    #[test]
    fn small_graph_skips_coarsening() {
        let g = gen::split_join(2, 1, StateDist::Fixed(8), 0);
        let ra = analyzed(&g);
        let p = multilevel(&g, &ra, 1000, &MultilevelCfg::default());
        assert!(p.validate(&g, 1000).is_ok());
        assert_eq!(p.num_components(), 1, "everything fits in one component");
    }

    #[test]
    fn contraction_respects_state_bound() {
        // Nodes whose combined state exceeds the bound are never merged.
        let g = gen::pipeline_uniform(10, 60);
        let ra = analyzed(&g);
        let level = coarsen_once(&g, &ra, 100);
        if let Some(level) = level {
            for v in level.graph.node_ids() {
                assert!(level.graph.state(v) <= 120);
            }
        }
        let none = coarsen_once(&g, &ra, 59); // no pair fits
        assert!(none.is_none());
    }

    #[test]
    fn whole_pipeline_contracts_to_target() {
        let g = gen::pipeline_uniform(64, 4);
        let ra = analyzed(&g);
        let p = multilevel(
            &g,
            &ra,
            1 << 20,
            &MultilevelCfg {
                coarse_target: 8,
                refine_passes: 4,
            },
        );
        assert!(p.validate(&g, 1 << 20).is_ok());
        // Bound is huge: refinement should merge everything down to very
        // few components.
        assert!(p.bandwidth(&g, &ra) <= Ratio::integer(8));
    }
}
