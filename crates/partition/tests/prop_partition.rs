//! Property-based tests for the partitioners.

use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};
use ccs_graph::{RateAnalysis, Ratio};
use ccs_partition::{dag_exact, dag_greedy, dag_local, pipeline, Partition};
use proptest::prelude::*;

fn analyzed(g: &ccs_graph::StreamGraph) -> RateAnalysis {
    RateAnalysis::analyze_single_io(g).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 5 greedy always produces a valid partition with components
    /// at most 8M (the paper's constant), and its bandwidth equals the
    /// Theorem 3 lower-bound quantity built from the same W segments.
    #[test]
    fn greedy_theorem5_invariants(seed in 0u64..5_000, len in 4usize..48,
                                  m in 32u64..512) {
        let cfg = PipelineCfg {
            len,
            state: StateDist::Uniform(1, m),
            max_q: 4,
            max_rate_scale: 3,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = analyzed(&g);
        let pp = pipeline::greedy_theorem5(&g, &ra, m).unwrap();
        prop_assert!(pp.partition.validate(&g, 8 * m).is_ok());
        prop_assert!(pp.max_component_state <= 8 * m);
        let lb = pipeline::theorem3_lower_bound_gain(&g, &ra, m).unwrap();
        prop_assert_eq!(lb, pp.bandwidth);
    }

    /// The pipeline DP is optimal: no brute-force segmentation under the
    /// same bound has smaller bandwidth, and the DP result is valid.
    #[test]
    fn pipeline_dp_is_optimal(seed in 0u64..5_000, len in 2usize..12,
                              bound_mult in 1u64..6) {
        let cfg = PipelineCfg {
            len,
            state: StateDist::Uniform(1, 32),
            max_q: 4,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = analyzed(&g);
        let bound = g.max_state() * bound_mult;
        let dp = pipeline::dp_min_bandwidth(&g, &ra, bound).unwrap();
        let bf = pipeline::brute_force_min_bandwidth(&g, &ra, bound).unwrap();
        prop_assert_eq!(dp.bandwidth, bf.bandwidth);
        prop_assert!(dp.partition.validate(&g, bound).is_ok());
    }

    /// Both dag greedies always yield valid bounded well-ordered
    /// partitions, on dags and pipelines alike.
    #[test]
    fn dag_greedy_validity(seed in 0u64..5_000, layers in 1usize..6,
                           width in 1usize..5, max_q in 1u64..4) {
        let cfg = LayeredCfg {
            layers,
            max_width: width,
            density: 0.3,
            state: StateDist::Uniform(1, 64),
            max_q,
        };
        let g = gen::layered(&cfg, seed);
        let ra = analyzed(&g);
        let bound = g.max_state().max(128);
        let a = dag_greedy::greedy_topo(&g, bound);
        prop_assert!(a.validate(&g, bound).is_ok());
        let b = dag_greedy::greedy_affinity(&g, &ra, bound);
        prop_assert!(b.validate(&g, bound).is_ok());
    }

    /// Local search never worsens bandwidth and preserves validity.
    #[test]
    fn refinement_monotone(seed in 0u64..5_000, max_q in 1u64..3) {
        let cfg = LayeredCfg {
            layers: 4,
            max_width: 4,
            density: 0.35,
            state: StateDist::Uniform(4, 48),
            max_q,
        };
        let g = gen::layered(&cfg, seed);
        let ra = analyzed(&g);
        let bound = g.max_state().max(120);
        let p0 = dag_greedy::greedy_topo(&g, bound);
        let before = p0.bandwidth(&g, &ra);
        let p1 = dag_local::refine(&g, &ra, bound, &p0, 12);
        prop_assert!(p1.validate(&g, bound).is_ok());
        prop_assert!(p1.bandwidth(&g, &ra) <= before);
    }

    /// The exact solver lower-bounds every heuristic, and its output
    /// validates.
    #[test]
    fn exact_is_a_lower_bound(seed in 0u64..5_000) {
        let cfg = LayeredCfg {
            layers: 2,
            max_width: 3,
            density: 0.4,
            state: StateDist::Uniform(2, 24),
            max_q: 2,
        };
        let g = gen::layered(&cfg, seed);
        prop_assume!(g.node_count() <= 12);
        let ra = analyzed(&g);
        let bound = g.max_state().max(48);
        let (pe, bw) = dag_exact::min_bandwidth_exact(&g, &ra, bound).unwrap();
        prop_assert!(pe.validate(&g, bound).is_ok());
        for heur in [
            dag_greedy::greedy_topo(&g, bound),
            dag_greedy::greedy_affinity(&g, &ra, bound),
        ] {
            prop_assert!(bw <= heur.bandwidth(&g, &ra));
        }
    }

    /// Partition bandwidth is monotone under merging: merging two
    /// components never increases bandwidth.
    #[test]
    fn merging_never_increases_bandwidth(seed in 0u64..5_000) {
        let cfg = LayeredCfg::default();
        let g = gen::layered(&cfg, seed);
        let ra = analyzed(&g);
        let p = Partition::singletons(&g);
        let bw_singletons = p.bandwidth(&g, &ra);
        // Merge the two endpoints of the first edge.
        if g.edge_count() > 0 {
            let e = g.edge(ccs_graph::EdgeId(0));
            let mut asg = p.assignment().to_vec();
            let from = asg[e.dst.idx()];
            let to = asg[e.src.idx()];
            for c in asg.iter_mut() {
                if *c == from {
                    *c = to;
                }
            }
            let merged = Partition::from_assignment(asg);
            prop_assert!(merged.bandwidth(&g, &ra) <= bw_singletons);
        }
    }

    /// Whole-graph partitions always have zero bandwidth; singleton
    /// partitions have bandwidth equal to the sum of all edge gains.
    #[test]
    fn bandwidth_extremes(seed in 0u64..5_000) {
        let g = gen::layered(&LayeredCfg::default(), seed);
        let ra = analyzed(&g);
        prop_assert_eq!(Partition::whole(&g).bandwidth(&g, &ra), Ratio::ZERO);
        let total: Ratio = g.edge_ids().map(|e| ra.edge_gain(&g, e)).sum();
        prop_assert_eq!(Partition::singletons(&g).bandwidth(&g, &ra), total);
    }
}
