//! # ccs-adapt — online drift-driven segment migration
//!
//! The paper's c-bounded partition is computed once, offline. This
//! crate is its dynamic counterpart: a controller that watches the live
//! per-worker counter-window stream (`ccs-obs` [`WindowSample`]s reduced
//! to [`WindowReport`]s by the executor) and decides, window by window,
//! whether a segment should move to another worker. Detection reuses
//! the exact EWMA change-point tracker the offline analyzer runs
//! ([`ccs_insight::OnlineEwma`], proven index-identical to
//! [`ccs_insight::ewma_change_points`]), plus two cruder triggers — a
//! step-ratio jump in per-batch cost and a stall-share threshold — so
//! drift is caught even on PMU-less machines where windows degrade to
//! timing-only.
//!
//! The controller only *decides*; the executor owns the handoff
//! protocol (quiescing the segment at a batch boundary and transferring
//! it under a mutex). Decisions are therefore pure state-machine logic,
//! unit-testable without threads, and the non-negotiable correctness
//! bar — migrations change *where* work runs, never *what* is computed
//! — lives entirely in the executor's equivalence tests.
//!
//! Thrash protection is explicit: a migrated segment may not move again
//! until [`AdaptConfig::hysteresis_windows`] further windows have been
//! observed ([`Controller::hysteresis_clear`]), and nothing moves before
//! [`AdaptConfig::min_windows`] windows have seeded the trackers.
//!
//! [`WindowSample`]: ccs_insight::WindowPoint

#![warn(missing_docs)]

use ccs_insight::OnlineEwma;
use std::collections::BTreeMap;

/// Tuning knobs of the [`Controller`]. The defaults are deliberately
/// conservative: act only on a sustained, large signal, and never
/// bounce a segment back and forth.
#[derive(Clone, Debug)]
pub struct AdaptConfig {
    /// Noise floor for the mpki change-point tracker (the same scale as
    /// [`ccs_insight::MPKI_EPS`]).
    pub mpki_eps: f64,
    /// Noise floor for the per-batch-cost change-point tracker,
    /// nanoseconds.
    pub time_eps_ns: f64,
    /// Window stall share (stall / span) above which a worker counts as
    /// drifting even without a change point.
    pub stall_share: f64,
    /// Per-batch cost jump ratio (new / tracked level) that triggers
    /// immediately, without waiting for the EWMA band.
    pub step_ratio: f64,
    /// Windows a migrated segment must sit out before it may move again
    /// (the thrash guard).
    pub hysteresis_windows: u64,
    /// Windows a worker must have reported before its triggers act
    /// (the trackers need a few points to mean something).
    pub min_windows: u64,
    /// Consecutive flagged windows after which the controller escalates
    /// from single-segment migration to moving the top two segments —
    /// the lightweight re-partition when one migration did not fix the
    /// cell.
    pub escalate_windows: u64,
}

impl Default for AdaptConfig {
    fn default() -> AdaptConfig {
        AdaptConfig {
            mpki_eps: ccs_insight::MPKI_EPS,
            time_eps_ns: 100.0,
            stall_share: 0.6,
            step_ratio: 1.8,
            hysteresis_windows: 4,
            min_windows: 3,
            escalate_windows: 3,
        }
    }
}

/// One segment's share of a closed window: how many of the window's
/// batches it ran and how long they took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegCost {
    /// Segment index (contracted topological order).
    pub seg: usize,
    /// Batches of this segment inside the window.
    pub batches: u64,
    /// Total batch time of this segment inside the window, nanoseconds.
    pub ns: u64,
}

/// What the executor reports to the controller each time a worker
/// closes a counter window: the window's signals reduced to exactly
/// what the triggers consume.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Reporting worker.
    pub worker: usize,
    /// Window ordinal within that worker.
    pub window_index: u64,
    /// Misses per kilo-instruction over the window; `None` when the
    /// window was timing-only (no PMU).
    pub mpki: Option<f64>,
    /// Wall-clock span of the window, nanoseconds.
    pub span_ns: u64,
    /// Batches inside the window.
    pub batches: u64,
    /// Stall time the worker accumulated during the window, nanoseconds.
    pub stall_ns: u64,
    /// Per-segment cost breakdown of the window's batches.
    pub segments: Vec<SegCost>,
}

/// One decided handoff: move `seg` from worker `from` to worker `to`.
/// The executor performs it at the segment's next batch boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationCmd {
    /// Segment to move.
    pub seg: usize,
    /// Worker currently running it.
    pub from: usize,
    /// Worker that should run it next.
    pub to: usize,
}

/// Per-worker tracker state.
#[derive(Debug)]
struct Lane {
    /// Change-point tracker over window mpki.
    mpki: OnlineEwma,
    /// Change-point tracker over per-batch cost (ns/batch).
    cost: OnlineEwma,
    /// EWMA load signal used for target selection, ns of segment work
    /// per window batch.
    load: f64,
    /// Windows reported so far.
    windows: u64,
    /// Consecutive flagged windows.
    streak: u64,
}

impl Lane {
    fn new(cfg: &AdaptConfig) -> Lane {
        Lane {
            mpki: OnlineEwma::new(cfg.mpki_eps),
            cost: OnlineEwma::new(cfg.time_eps_ns),
            load: 0.0,
            windows: 0,
            streak: 0,
        }
    }
}

/// The decision engine: feed it one [`WindowReport`] per closed window
/// ([`observe`](Controller::observe)) and it returns the migrations to
/// perform, already reflected in its own ownership map.
#[derive(Debug)]
pub struct Controller {
    cfg: AdaptConfig,
    lanes: Vec<Lane>,
    /// `owners[seg]` = worker currently responsible for `seg`.
    owners: Vec<usize>,
    /// Global window clock: total windows observed across workers.
    clock: u64,
    /// Segment -> clock value at its last migration.
    last_migrated: BTreeMap<usize, u64>,
    /// Total migrations decided.
    migrations: u64,
}

impl Controller {
    /// A controller for `workers` workers over the initial placement
    /// `owners` (`owners[seg]` = the worker the static partition
    /// assigned segment `seg` to).
    pub fn new(cfg: AdaptConfig, workers: usize, owners: Vec<usize>) -> Controller {
        let lanes = (0..workers.max(1)).map(|_| Lane::new(&cfg)).collect();
        Controller {
            cfg,
            lanes,
            owners,
            clock: 0,
            last_migrated: BTreeMap::new(),
            migrations: 0,
        }
    }

    /// Whether `seg` has sat out the hysteresis window since its last
    /// migration (always true for a segment that never moved). The
    /// thrash guard every victim must clear.
    pub fn hysteresis_clear(&self, seg: usize) -> bool {
        match self.last_migrated.get(&seg) {
            None => true,
            Some(&at) => self.clock.saturating_sub(at) >= self.cfg.hysteresis_windows,
        }
    }

    /// Current owner of `seg` per the controller's map.
    pub fn owner(&self, seg: usize) -> Option<usize> {
        self.owners.get(seg).copied()
    }

    /// Migrations decided so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Absorb one closed window and decide. Returns the migrations to
    /// perform (usually empty; at most two under escalation). The
    /// returned commands are already applied to the controller's
    /// ownership map — the executor just has to carry them out.
    pub fn observe(&mut self, report: &WindowReport) -> Vec<MigrationCmd> {
        self.clock += 1;
        let w = report.worker;
        if w >= self.lanes.len() {
            return Vec::new();
        }
        let busy_ns: u64 = report.segments.iter().map(|s| s.ns).sum();
        let cost_per_batch = if report.batches > 0 {
            busy_ns as f64 / report.batches as f64
        } else {
            0.0
        };

        // Evaluate triggers against the pre-update levels, then absorb.
        let lane = &mut self.lanes[w];
        let prev_cost = lane.cost.mean();
        let step_jump =
            prev_cost.is_some_and(|m| m > 0.0 && cost_per_batch > self.cfg.step_ratio * m);
        let cost_cp = lane.cost.push(cost_per_batch);
        let mpki_cp = report.mpki.map(|m| lane.mpki.push(m)).unwrap_or(false);
        let stalled = report.span_ns > 0
            && report.stall_ns as f64 / report.span_ns as f64 > self.cfg.stall_share;
        lane.load += 0.3 * (cost_per_batch - lane.load);
        lane.windows += 1;

        let flagged = cost_cp || mpki_cp || step_jump || stalled;
        if !flagged {
            lane.streak = 0;
            return Vec::new();
        }
        lane.streak += 1;
        if lane.windows < self.cfg.min_windows || self.lanes.len() < 2 {
            return Vec::new();
        }

        // Victims: this worker's segments, costliest first, that clear
        // the thrash guard. Escalate to the top two when the drift has
        // persisted across consecutive windows.
        let victims = if self.lanes[w].streak >= self.cfg.escalate_windows {
            2
        } else {
            1
        };
        let mut owned: Vec<&SegCost> = report
            .segments
            .iter()
            .filter(|s| self.owners.get(s.seg) == Some(&w))
            .collect();
        // Never empty the worker entirely: keep its cheapest segment.
        if owned.len() <= 1 {
            return Vec::new();
        }
        owned.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.seg.cmp(&b.seg)));
        let movable = owned.len() - 1;

        let target = match (0..self.lanes.len()).filter(|&t| t != w).min_by(|&a, &b| {
            self.lanes[a]
                .load
                .partial_cmp(&self.lanes[b].load)
                .unwrap_or(std::cmp::Ordering::Equal)
        }) {
            Some(t) => t,
            None => return Vec::new(),
        };

        let mut cmds = Vec::new();
        for s in owned.into_iter().take(victims.min(movable)) {
            if !self.hysteresis_clear(s.seg) {
                continue;
            }
            self.owners[s.seg] = target;
            self.last_migrated.insert(s.seg, self.clock);
            self.migrations += 1;
            cmds.push(MigrationCmd {
                seg: s.seg,
                from: w,
                to: target,
            });
        }
        cmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(worker: usize, index: u64, cost_ns: u64, segs: &[(usize, u64)]) -> WindowReport {
        WindowReport {
            worker,
            window_index: index,
            mpki: None,
            span_ns: cost_ns + 1_000,
            batches: segs.iter().map(|&(_, b)| b).sum(),
            stall_ns: 0,
            segments: segs
                .iter()
                .map(|&(seg, batches)| SegCost {
                    seg,
                    batches,
                    ns: cost_ns * batches / segs.iter().map(|&(_, b)| b).sum::<u64>().max(1),
                })
                .collect(),
        }
    }

    fn steady_then_step(
        ctrl: &mut Controller,
        worker: usize,
        segs: &[(usize, u64)],
    ) -> Vec<MigrationCmd> {
        // Seed enough steady windows to pass min_windows and warm the
        // tracker, then one 10x step.
        let mut out = Vec::new();
        for i in 0..6 {
            out.extend(ctrl.observe(&report(worker, i, 10_000, segs)));
        }
        out.extend(ctrl.observe(&report(worker, 6, 100_000, segs)));
        out
    }

    #[test]
    fn steady_load_never_migrates() {
        let mut c = Controller::new(AdaptConfig::default(), 2, vec![0, 0, 1, 1]);
        for i in 0..50 {
            assert!(c
                .observe(&report(0, i, 10_000, &[(0, 4), (1, 4)]))
                .is_empty());
            assert!(c
                .observe(&report(1, i, 10_000, &[(2, 4), (3, 4)]))
                .is_empty());
        }
        assert_eq!(c.migrations(), 0);
    }

    #[test]
    fn a_cost_step_migrates_the_costliest_segment_to_the_idlest_worker() {
        let mut c = Controller::new(AdaptConfig::default(), 2, vec![0, 0, 1, 1]);
        // Worker 1 reports light steady windows so its load EWMA is low.
        for i in 0..6 {
            c.observe(&report(1, i, 1_000, &[(2, 4), (3, 4)]));
        }
        let cmds = steady_then_step(&mut c, 0, &[(0, 6), (1, 2)]);
        assert_eq!(cmds.len(), 1, "{cmds:?}");
        assert_eq!(cmds[0].from, 0);
        assert_eq!(cmds[0].to, 1);
        // Costliest by window share: seg 0 ran 6 of 8 batches.
        assert_eq!(cmds[0].seg, 0);
        assert_eq!(c.owner(0), Some(1));
        assert_eq!(c.migrations(), 1);
    }

    #[test]
    fn hysteresis_blocks_an_immediate_bounce_back() {
        let cfg = AdaptConfig::default();
        let k = cfg.hysteresis_windows;
        let mut c = Controller::new(cfg, 2, vec![0, 0, 1]);
        let cmds = steady_then_step(&mut c, 0, &[(0, 6), (1, 2)]);
        assert_eq!(cmds.len(), 1);
        let moved = cmds[0].seg;
        assert!(
            !c.hysteresis_clear(moved),
            "just-moved segment must be locked"
        );
        // The new owner drifts immediately: the moved segment may not
        // come back within K windows, whatever else happens.
        for i in 0..(k - 1) {
            let back = c.observe(&report(1, i, 200_000, &[(moved, 6), (2, 2)]));
            assert!(
                back.iter().all(|m| m.seg != moved),
                "seg {moved} bounced back within {k} windows: {back:?}"
            );
            assert!(!c.hysteresis_clear(moved), "guard released early");
        }
        // One more observed window completes the sit-out.
        c.observe(&report(1, k, 200_000, &[(moved, 6), (2, 2)]));
        assert!(c.hysteresis_clear(moved));
    }

    #[test]
    fn never_empties_a_worker() {
        let mut c = Controller::new(AdaptConfig::default(), 2, vec![0, 1]);
        let cmds = steady_then_step(&mut c, 0, &[(0, 8)]);
        assert!(cmds.is_empty(), "sole segment must stay put: {cmds:?}");
        assert_eq!(c.owner(0), Some(0));
    }

    #[test]
    fn single_worker_never_migrates() {
        let mut c = Controller::new(AdaptConfig::default(), 1, vec![0, 0]);
        let cmds = steady_then_step(&mut c, 0, &[(0, 4), (1, 4)]);
        assert!(cmds.is_empty(), "{cmds:?}");
    }

    #[test]
    fn sustained_drift_escalates_to_two_victims() {
        let cfg = AdaptConfig {
            hysteresis_windows: 100, // lock each victim after one move
            ..AdaptConfig::default()
        };
        let escalate = cfg.escalate_windows;
        let mut c = Controller::new(cfg, 2, vec![0, 0, 0, 0, 0, 0, 1]);
        let segs: Vec<(usize, u64)> = (0..6).map(|s| (s, 2)).collect();
        for i in 0..5 {
            c.observe(&report(0, i, 10_000, &segs));
        }
        // Keep stepping up so every window flags; by `escalate_windows`
        // consecutive flags the controller moves two segments at once.
        let mut cost = 10_000u64;
        let mut batch_sizes = Vec::new();
        for i in 0..escalate + 1 {
            cost *= 3;
            let cmds = c.observe(&report(0, 5 + i, cost, &segs));
            batch_sizes.push(cmds.len());
        }
        assert!(
            batch_sizes.contains(&2),
            "no escalated double migration in {batch_sizes:?}"
        );
    }

    #[test]
    fn stall_share_alone_triggers() {
        let mut c = Controller::new(AdaptConfig::default(), 2, vec![0, 0, 1]);
        for i in 0..4 {
            c.observe(&report(0, i, 10_000, &[(0, 4), (1, 4)]));
        }
        let mut r = report(0, 4, 10_000, &[(0, 6), (1, 2)]);
        r.stall_ns = r.span_ns; // fully stalled window
        let cmds = c.observe(&r);
        assert_eq!(cmds.len(), 1, "{cmds:?}");
    }

    #[test]
    fn timing_only_windows_still_drive_decisions() {
        // No mpki anywhere (CCS_NO_PERF): the cost trackers carry it.
        let mut c = Controller::new(AdaptConfig::default(), 2, vec![0, 0, 1]);
        let cmds = steady_then_step(&mut c, 0, &[(0, 4), (1, 4)]);
        assert_eq!(cmds.len(), 1, "{cmds:?}");
        assert!(cmds.iter().all(|m| m.to == 1));
    }

    #[test]
    fn min_windows_gates_early_action() {
        let mut c = Controller::new(AdaptConfig::default(), 2, vec![0, 0, 1]);
        // A violent step on the very first windows: trackers not seeded.
        assert!(c
            .observe(&report(0, 0, 10_000, &[(0, 4), (1, 4)]))
            .is_empty());
        assert!(c
            .observe(&report(0, 1, 500_000, &[(0, 4), (1, 4)]))
            .is_empty());
    }
}
