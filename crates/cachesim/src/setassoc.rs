//! Set-associative LRU cache simulator.
//!
//! Real hardware caches are set-associative, not fully associative. This
//! simulator lets experiments check that the paper's fully-associative
//! analysis survives realistic associativity (conflict misses appear but
//! do not change the asymptotic picture for streaming layouts).

use crate::stats::CacheStats;

#[derive(Clone, Copy, Debug)]
struct Way {
    block: u64,
    stamp: u64,
    dirty: bool,
    valid: bool,
}

/// `ways`-way set-associative LRU over block ids.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    data: Vec<Way>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// `capacity_blocks` total blocks organized as `ways`-way sets.
    /// `capacity_blocks` must be a multiple of `ways`.
    pub fn new(capacity_blocks: u64, ways: usize) -> SetAssocCache {
        assert!(ways > 0 && capacity_blocks > 0);
        assert!(
            capacity_blocks.is_multiple_of(ways as u64),
            "capacity must divide into {ways}-way sets"
        );
        let sets = (capacity_blocks / ways as u64) as usize;
        SetAssocCache {
            sets,
            ways,
            data: vec![
                Way {
                    block: 0,
                    stamp: 0,
                    dirty: false,
                    valid: false,
                };
                sets * ways
            ],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_of(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }

    /// Access `block`; returns `true` on a miss.
    pub fn access(&mut self, block: u64, write: bool) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let set = self.set_of(block);
        let base = set * self.ways;
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for i in base..base + self.ways {
            let w = &mut self.data[i];
            if w.valid && w.block == block {
                w.stamp = self.clock;
                w.dirty |= write;
                self.stats.hits += 1;
                return false;
            }
            let stamp = if w.valid { w.stamp } else { 0 };
            if stamp < victim_stamp {
                victim_stamp = stamp;
                victim = i;
            }
        }
        self.stats.misses += 1;
        let w = &mut self.data[victim];
        if w.valid && w.dirty {
            self.stats.writebacks += 1;
        }
        *w = Way {
            block,
            stamp: self.clock,
            dirty: write,
            valid: true,
        };
        true
    }

    /// Empty the cache, counting writebacks for dirty blocks.
    pub fn flush(&mut self) {
        for w in &mut self.data {
            if w.valid && w.dirty {
                self.stats.writebacks += 1;
            }
            w.valid = false;
        }
        self.stats.flushes += 1;
    }

    pub fn contains(&self, block: u64) -> bool {
        let base = self.set_of(block) * self.ways;
        self.data[base..base + self.ways]
            .iter()
            .any(|w| w.valid && w.block == block)
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflicts() {
        // 4 sets, 1 way: blocks 0 and 4 conflict.
        let mut c = SetAssocCache::new(4, 1);
        assert!(c.access(0, false));
        assert!(c.access(4, false)); // evicts 0
        assert!(c.access(0, false)); // conflict miss
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn two_way_absorbs_pairwise_conflict() {
        let mut c = SetAssocCache::new(8, 2);
        c.access(0, false);
        c.access(4, false);
        assert!(!c.access(0, false), "2-way set holds both");
        assert!(!c.access(4, false));
    }

    #[test]
    fn lru_within_set() {
        let mut c = SetAssocCache::new(2, 2); // one set, 2 ways
        c.access(10, false);
        c.access(20, false);
        c.access(10, false); // 20 is LRU
        c.access(30, false); // evicts 20
        assert!(c.contains(10));
        assert!(!c.contains(20));
        assert!(c.contains(30));
    }

    #[test]
    fn writebacks_and_flush() {
        let mut c = SetAssocCache::new(2, 1);
        c.access(0, true);
        c.access(2, false); // same set (2 sets: block%2) — evicts dirty 0
        assert_eq!(c.stats().writebacks, 1);
        c.access(1, true);
        c.flush();
        assert_eq!(c.stats().writebacks, 2);
        assert!(!c.contains(1));
    }

    #[test]
    fn fully_assoc_equivalence_when_one_set() {
        // With a single set, set-associative LRU == fully-associative LRU.
        use crate::lru::LruCache;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let trace: Vec<u64> = (0..2000).map(|_| rng.gen_range(0..32)).collect();
        let mut sa = SetAssocCache::new(8, 8);
        let mut fa = LruCache::new(8);
        for &b in &trace {
            sa.access(b, false);
            fa.access(b, false);
        }
        assert_eq!(sa.stats().misses, fa.stats().misses);
    }
}
