//! Belady's MIN: offline optimal replacement.
//!
//! The DAM model assumes optimal replacement. MIN needs the whole trace up
//! front, so it is exposed as a function over a recorded block sequence.
//! Experiments use it to check that LRU's miss counts are within the
//! Sleator–Tarjan factor of optimal on our workloads.

/// Number of misses incurred by the optimal (farthest-in-future)
/// replacement policy on `trace` with a cache of `capacity_blocks` blocks.
pub fn simulate_min(trace: &[u64], capacity_blocks: u64) -> u64 {
    assert!(capacity_blocks > 0);
    let cap = capacity_blocks as usize;
    let n = trace.len();

    // next_use[i] = position of the next access to trace[i] after i,
    // or n if none.
    let mut next_use = vec![n; n];
    let mut last_pos: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for i in (0..n).rev() {
        if let Some(&p) = last_pos.get(&trace[i]) {
            next_use[i] = p;
        }
        last_pos.insert(trace[i], i);
    }

    // Resident set: block -> its currently scheduled next use.
    // Max-heap of (next_use, block) with lazy deletion picks the victim
    // whose next use is farthest in the future.
    let mut resident: std::collections::HashMap<u64, usize> =
        std::collections::HashMap::with_capacity(cap);
    let mut heap: std::collections::BinaryHeap<(usize, u64)> = std::collections::BinaryHeap::new();
    let mut misses = 0u64;

    for (i, &b) in trace.iter().enumerate() {
        let nu = next_use[i];
        match resident.get_mut(&b) {
            Some(entry) => {
                *entry = nu;
                heap.push((nu, b));
            }
            None => {
                misses += 1;
                if resident.len() == cap {
                    // Evict farthest-in-future resident block.
                    loop {
                        let (stamp, victim) = heap.pop().expect("resident set is non-empty");
                        if resident.get(&victim) == Some(&stamp) {
                            resident.remove(&victim);
                            break;
                        }
                        // stale heap entry; skip
                    }
                }
                resident.insert(b, nu);
                heap.push((nu, b));
            }
        }
    }
    misses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruCache;
    use rand::{Rng, SeedableRng};

    fn lru_misses(trace: &[u64], cap: u64) -> u64 {
        let mut c = LruCache::new(cap);
        for &b in trace {
            c.access(b, false);
        }
        c.stats().misses
    }

    #[test]
    fn textbook_example() {
        // Classic example where MIN beats LRU.
        let trace = [1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
        // MIN with 4 frames: misses = 6 (classic result for OPT on the
        // Belady anomaly sequence).
        assert_eq!(simulate_min(&trace, 4), 6);
        assert_eq!(lru_misses(&trace, 4), 8);
    }

    #[test]
    fn min_never_beaten_by_lru() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        for _ in 0..10 {
            let trace: Vec<u64> = (0..800).map(|_| rng.gen_range(0..40)).collect();
            for cap in [2u64, 4, 8, 16] {
                let opt = simulate_min(&trace, cap);
                let lru = lru_misses(&trace, cap);
                assert!(opt <= lru, "OPT {opt} > LRU {lru} at cap {cap}");
            }
        }
    }

    #[test]
    fn sleator_tarjan_bound_on_random_traces() {
        // LRU with capacity k is (k/(k-h+1))-competitive against OPT with
        // capacity h. With k = 2h this is <= 2 (plus cold misses).
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let trace: Vec<u64> = (0..4000).map(|_| rng.gen_range(0..64)).collect();
        for h in [4u64, 8, 16] {
            let opt = simulate_min(&trace, h);
            let lru = lru_misses(&trace, 2 * h);
            assert!(
                lru <= 2 * opt + 64,
                "LRU(2h)={lru} not within 2*OPT(h)={opt} (+cold)"
            );
        }
    }

    #[test]
    fn min_all_distinct_all_miss() {
        let trace: Vec<u64> = (0..100).collect();
        assert_eq!(simulate_min(&trace, 10), 100);
    }

    #[test]
    fn min_fits_entirely() {
        let trace = [1u64, 2, 3, 1, 2, 3, 1, 2, 3];
        assert_eq!(simulate_min(&trace, 3), 3);
    }
}
