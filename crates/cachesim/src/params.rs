//! Cache parameters and the word-addressed memory layout.
//!
//! The paper analyzes schedules in the external-memory (DAM / I/O) model
//! [Aggarwal–Vitter]: a fast memory (cache) of `M` words and an arbitrarily
//! large slow memory, both organized in blocks of `B` words. We measure
//! every size in *words*, where one stream item occupies one word.

use serde::{Deserialize, Serialize};

/// Word address in the simulated memory.
pub type Addr = u64;

/// The `(M, B)` pair of the I/O model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Cache capacity `M`, in words. Must be a positive multiple of `block`.
    pub capacity: u64,
    /// Block (cache line) size `B`, in words. Must be positive.
    pub block: u64,
}

impl CacheParams {
    pub fn new(capacity: u64, block: u64) -> CacheParams {
        assert!(block > 0, "block size must be positive");
        assert!(
            capacity >= block,
            "cache must hold at least one block (M={capacity}, B={block})"
        );
        assert!(
            capacity.is_multiple_of(block),
            "cache capacity must be a multiple of the block size"
        );
        CacheParams { capacity, block }
    }

    /// Number of blocks the cache holds: `M / B`.
    #[inline]
    pub fn blocks(&self) -> u64 {
        self.capacity / self.block
    }

    /// The block containing word address `addr`.
    #[inline]
    pub fn block_of(&self, addr: Addr) -> u64 {
        addr / self.block
    }

    /// Number of blocks spanned by `[base, base + len)`.
    #[inline]
    pub fn blocks_spanned(&self, base: Addr, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        self.block_of(base + len - 1) - self.block_of(base) + 1
    }
}

/// A contiguous region of simulated memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    pub base: Addr,
    /// Length in words.
    pub len: u64,
}

impl Region {
    /// Word address of the `i`-th word (no bounds check beyond debug).
    #[inline]
    pub fn word(&self, i: u64) -> Addr {
        debug_assert!(i < self.len);
        self.base + i
    }

    /// Word address of logical ring position `pos` in a ring buffer laid
    /// out over this region: `base + (pos mod len)`.
    #[inline]
    pub fn ring_word(&self, pos: u64) -> Addr {
        debug_assert!(self.len > 0);
        self.base + pos % self.len
    }
}

/// A bump allocator handing out block-aligned regions of the simulated
/// address space.
///
/// Block alignment means distinct objects never share a block, so the
/// simulator's per-object miss attribution is exact. This wastes at most
/// `B - 1` words per object, which is irrelevant to the asymptotics and
/// mirrors what a real allocator using aligned arenas would do.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    next: Addr,
    block: u64,
}

impl AddressSpace {
    pub fn new(block: u64) -> AddressSpace {
        assert!(block > 0);
        AddressSpace { next: 0, block }
    }

    /// Allocate `len` words (at least one block even for `len == 0`, so
    /// every object has a distinct identity).
    pub fn alloc(&mut self, len: u64) -> Region {
        let base = self.next;
        let words = len.max(1);
        let blocks = words.div_ceil(self.block);
        self.next += blocks * self.block;
        Region { base, len: words }
    }

    /// Total words allocated so far (including alignment padding).
    pub fn used(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_accessors() {
        let p = CacheParams::new(1024, 16);
        assert_eq!(p.blocks(), 64);
        assert_eq!(p.block_of(0), 0);
        assert_eq!(p.block_of(15), 0);
        assert_eq!(p.block_of(16), 1);
        assert_eq!(p.blocks_spanned(0, 16), 1);
        assert_eq!(p.blocks_spanned(15, 2), 2);
        assert_eq!(p.blocks_spanned(0, 0), 0);
        assert_eq!(p.blocks_spanned(8, 16), 2);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_unaligned_capacity() {
        CacheParams::new(100, 16);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn rejects_tiny_capacity() {
        CacheParams::new(8, 16);
    }

    #[test]
    fn alloc_is_block_aligned_and_disjoint() {
        let mut a = AddressSpace::new(8);
        let r1 = a.alloc(5);
        let r2 = a.alloc(9);
        let r3 = a.alloc(0);
        assert_eq!(r1.base % 8, 0);
        assert_eq!(r2.base % 8, 0);
        assert_eq!(r3.base % 8, 0);
        assert!(r1.base + 8 <= r2.base);
        assert_eq!(r2.base, 8);
        assert_eq!(r3.base, 24);
        assert_eq!(a.used(), 32);
    }

    #[test]
    fn ring_word_wraps() {
        let r = Region { base: 100, len: 10 };
        assert_eq!(r.ring_word(0), 100);
        assert_eq!(r.ring_word(9), 109);
        assert_eq!(r.ring_word(10), 100);
        assert_eq!(r.ring_word(25), 105);
    }
}
