//! The memory simulator: range/ring touches over a block cache, with
//! per-tag miss attribution and optional trace recording.

use crate::lru::LruCache;
use crate::params::{Addr, CacheParams, Region};
use crate::setassoc::SetAssocCache;
use crate::stats::CacheStats;

/// Anything that can stand in for the cache in the DAM simulation.
pub trait BlockCache {
    /// Access a block; `true` on miss.
    fn access(&mut self, block: u64, write: bool) -> bool;
    /// Drop all contents (counting writebacks of dirty blocks).
    fn flush(&mut self);
    fn stats(&self) -> &CacheStats;
}

impl BlockCache for LruCache {
    fn access(&mut self, block: u64, write: bool) -> bool {
        LruCache::access(self, block, write)
    }
    fn flush(&mut self) {
        LruCache::flush(self)
    }
    fn stats(&self) -> &CacheStats {
        LruCache::stats(self)
    }
}

impl BlockCache for SetAssocCache {
    fn access(&mut self, block: u64, write: bool) -> bool {
        SetAssocCache::access(self, block, write)
    }
    fn flush(&mut self) {
        SetAssocCache::flush(self)
    }
    fn stats(&self) -> &CacheStats {
        SetAssocCache::stats(self)
    }
}

/// Word-level memory simulator over a block cache.
///
/// Accesses are issued as ranges; the simulator touches each spanned block
/// once per range touch (a module streaming through `s` words of state
/// costs `⌈s/B⌉` block accesses, as in the paper's accounting).
pub struct MemorySim<C: BlockCache> {
    params: CacheParams,
    cache: C,
    miss_by_tag: Vec<u64>,
    recording: Option<Vec<u64>>,
}

impl MemorySim<LruCache> {
    /// Fully-associative LRU simulator — the default instrument.
    pub fn lru(params: CacheParams) -> MemorySim<LruCache> {
        let cache = LruCache::new(params.blocks());
        MemorySim::with_cache(params, cache)
    }
}

impl MemorySim<SetAssocCache> {
    /// Set-associative variant for hardware-realism experiments.
    pub fn set_assoc(params: CacheParams, ways: usize) -> MemorySim<SetAssocCache> {
        let cache = SetAssocCache::new(params.blocks(), ways);
        MemorySim::with_cache(params, cache)
    }
}

impl<C: BlockCache> MemorySim<C> {
    pub fn with_cache(params: CacheParams, cache: C) -> MemorySim<C> {
        MemorySim {
            params,
            cache,
            miss_by_tag: Vec::new(),
            recording: None,
        }
    }

    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Record the block sequence of every access (for Belady MIN replay).
    pub fn enable_recording(&mut self) {
        self.recording = Some(Vec::new());
    }

    /// The recorded block sequence, if recording was enabled.
    pub fn recorded_blocks(&self) -> Option<&[u64]> {
        self.recording.as_deref()
    }

    #[inline]
    fn access_block(&mut self, block: u64, write: bool, tag: u32) {
        if let Some(rec) = &mut self.recording {
            rec.push(block);
        }
        let miss = self.cache.access(block, write);
        if miss {
            let t = tag as usize;
            if t >= self.miss_by_tag.len() {
                self.miss_by_tag.resize(t + 1, 0);
            }
            self.miss_by_tag[t] += 1;
        }
    }

    /// Touch the contiguous word range `[base, base + len)`.
    pub fn touch(&mut self, base: Addr, len: u64, write: bool, tag: u32) {
        if len == 0 {
            return;
        }
        let first = self.params.block_of(base);
        let last = self.params.block_of(base + len - 1);
        for b in first..=last {
            self.access_block(b, write, tag);
        }
    }

    /// Touch `len` words of the ring buffer laid out over `region`,
    /// starting at logical position `pos` (wrapping modulo the region
    /// length).
    pub fn touch_ring(&mut self, region: Region, pos: u64, len: u64, write: bool, tag: u32) {
        debug_assert!(len <= region.len, "touching more words than the ring holds");
        if len == 0 {
            return;
        }
        let start = pos % region.len;
        let first_part = (region.len - start).min(len);
        self.touch(region.base + start, first_part, write, tag);
        if first_part < len {
            self.touch(region.base, len - first_part, write, tag);
        }
    }

    /// Flush the cache (e.g. to model a cold start between phases).
    pub fn flush(&mut self) {
        self.cache.flush();
    }

    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Misses attributed to `tag` so far.
    pub fn misses_for(&self, tag: u32) -> u64 {
        self.miss_by_tag.get(tag as usize).copied().unwrap_or(0)
    }

    /// The full per-tag miss table.
    pub fn miss_table(&self) -> &[u64] {
        &self.miss_by_tag
    }

    pub fn cache(&self) -> &C {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CacheParams {
        CacheParams::new(64, 8) // 8 blocks of 8 words
    }

    #[test]
    fn range_touch_costs_blocks_spanned() {
        let mut m = MemorySim::lru(params());
        m.touch(0, 20, false, 0); // words 0..20 -> blocks 0,1,2
        assert_eq!(m.stats().misses, 3);
        m.touch(0, 20, false, 0);
        assert_eq!(m.stats().misses, 3, "warm touch hits");
        assert_eq!(m.stats().hits, 3);
        assert_eq!(m.misses_for(0), 3);
    }

    #[test]
    fn unaligned_range_spans_extra_block() {
        let mut m = MemorySim::lru(params());
        m.touch(7, 2, false, 1); // words 7,8 -> blocks 0 and 1
        assert_eq!(m.stats().misses, 2);
    }

    #[test]
    fn ring_touch_wraps() {
        let mut m = MemorySim::lru(params());
        let ring = Region { base: 16, len: 16 }; // blocks 2 and 3
        m.touch_ring(ring, 12, 8, true, 2); // words 12..16 then 0..4
        assert_eq!(m.stats().misses, 2);
        assert_eq!(m.misses_for(2), 2);
        // Warm: same logical positions hit.
        m.touch_ring(ring, 12, 8, true, 2);
        assert_eq!(m.stats().misses, 2);
    }

    #[test]
    fn per_tag_attribution_separates_objects() {
        let mut m = MemorySim::lru(params());
        m.touch(0, 8, false, 0);
        m.touch(8, 8, false, 5);
        m.touch(16, 8, true, 5);
        assert_eq!(m.misses_for(0), 1);
        assert_eq!(m.misses_for(5), 2);
        assert_eq!(m.misses_for(9), 0);
        assert_eq!(m.miss_table().len(), 6);
    }

    #[test]
    fn capacity_eviction_under_streaming() {
        let mut m = MemorySim::lru(params()); // 8 blocks
                                              // Stream 16 distinct blocks, then re-stream: nothing survives.
        m.touch(0, 128, false, 0);
        assert_eq!(m.stats().misses, 16);
        m.touch(0, 128, false, 0);
        assert_eq!(m.stats().misses, 32);
    }

    #[test]
    fn recording_captures_block_sequence() {
        let mut m = MemorySim::lru(params());
        m.enable_recording();
        m.touch(0, 17, false, 0);
        assert_eq!(m.recorded_blocks().unwrap(), &[0, 1, 2]);
        let opt = crate::min::simulate_min(m.recorded_blocks().unwrap(), m.params().blocks());
        assert_eq!(opt, 3);
    }

    #[test]
    fn flush_forces_cold_reload() {
        let mut m = MemorySim::lru(params());
        m.touch(0, 8, true, 0);
        m.flush();
        m.touch(0, 8, false, 0);
        assert_eq!(m.stats().misses, 2);
        assert_eq!(m.stats().writebacks, 1);
    }

    #[test]
    fn zero_len_touch_is_free() {
        let mut m = MemorySim::lru(params());
        m.touch(5, 0, true, 0);
        assert_eq!(m.stats().accesses, 0);
    }
}
