//! Two-level inclusive cache hierarchy.
//!
//! The paper's analysis is single-level (the DAM model), but real
//! machines have hierarchies; §7 raises multi-level questions as future
//! work. This simulator composes two LRU levels (think L1/L2 in the
//! model's units): an access missing L1 probes L2, and a block filled
//! into L1 is also filled into L2 (inclusive). Experiments use it to
//! check that a schedule optimized for the `(M₂, B)` DAM model also
//! behaves well at a smaller first level.

use crate::lru::LruCache;
use crate::stats::CacheStats;

/// Inclusive two-level LRU hierarchy.
#[derive(Clone, Debug)]
pub struct TwoLevelCache {
    l1: LruCache,
    l2: LruCache,
}

/// Statistics for both levels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TwoLevelStats {
    pub l1: CacheStats,
    pub l2: CacheStats,
}

impl TwoLevelCache {
    /// `l1_blocks < l2_blocks` required (inclusive hierarchy).
    pub fn new(l1_blocks: u64, l2_blocks: u64) -> TwoLevelCache {
        assert!(
            l1_blocks < l2_blocks,
            "L1 ({l1_blocks}) must be smaller than L2 ({l2_blocks})"
        );
        TwoLevelCache {
            l1: LruCache::new(l1_blocks),
            l2: LruCache::new(l2_blocks),
        }
    }

    /// Access a block. Returns `(l1_miss, l2_miss)`; `l2_miss` implies a
    /// memory transfer.
    pub fn access(&mut self, block: u64, write: bool) -> (bool, bool) {
        let l1_miss = self.l1.access(block, write);
        if !l1_miss {
            return (false, false);
        }
        let l2_miss = self.l2.access(block, write);
        (true, l2_miss)
    }

    pub fn stats(&self) -> TwoLevelStats {
        TwoLevelStats {
            l1: *self.l1.stats(),
            l2: *self.l2.stats(),
        }
    }

    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }
}

/// A [`crate::sim::BlockCache`] view counting only level-2 (memory)
/// misses as misses — the DAM-comparable number — while still simulating
/// the first level.
impl crate::sim::BlockCache for TwoLevelCache {
    fn access(&mut self, block: u64, write: bool) -> bool {
        self.access(block, write).1
    }
    fn flush(&mut self) {
        TwoLevelCache::flush(self)
    }
    fn stats(&self) -> &CacheStats {
        // The L2 stats are the memory-transfer counts.
        self.l2.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_hit_never_probes_l2() {
        let mut c = TwoLevelCache::new(2, 8);
        assert_eq!(c.access(1, false), (true, true)); // cold in both
        assert_eq!(c.access(1, false), (false, false));
        assert_eq!(c.stats().l2.accesses, 1, "L2 probed once");
    }

    #[test]
    fn l1_eviction_still_hits_l2() {
        let mut c = TwoLevelCache::new(1, 8);
        c.access(1, false);
        c.access(2, false); // evicts 1 from L1, both resident in L2
        let (l1_miss, l2_miss) = c.access(1, false);
        assert!(l1_miss);
        assert!(!l2_miss, "L2 retains the block");
    }

    #[test]
    fn l2_miss_counts_agree_with_single_level_lru() {
        // For inclusive LRU levels, L2 sees the L1-miss stream; the L2
        // miss count equals single-level LRU of size L2 on the full trace
        // only when L1 hits don't disturb recency. Verify the weaker,
        // always-true property: L2 misses <= single-level-L1-sized misses
        // and >= compulsory misses.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let trace: Vec<u64> = (0..4000).map(|_| rng.gen_range(0..64)).collect();
        let mut two = TwoLevelCache::new(8, 32);
        let mut small = crate::lru::LruCache::new(8);
        let mut mem2 = 0u64;
        let mut mem_small = 0u64;
        for &b in &trace {
            mem2 += two.access(b, false).1 as u64;
            mem_small += small.access(b, false) as u64;
        }
        let distinct = 64u64;
        assert!(mem2 >= distinct);
        assert!(mem2 <= mem_small, "bigger L2 can only help");
    }

    #[test]
    #[should_panic(expected = "smaller")]
    fn rejects_inverted_sizes() {
        TwoLevelCache::new(8, 8);
    }

    #[test]
    fn works_through_memory_sim() {
        use crate::params::CacheParams;
        use crate::sim::MemorySim;
        let params = CacheParams::new(256, 8);
        let cache = TwoLevelCache::new(4, params.blocks());
        let mut sim = MemorySim::with_cache(params, cache);
        sim.touch(0, 64, false, 0); // 8 blocks: cold everywhere
        sim.touch(0, 64, false, 0); // L2-resident: no memory misses
        assert_eq!(sim.stats().misses, 8);
    }
}
