//! CLOCK (second-chance) replacement.
//!
//! A cheap LRU approximation used by real systems; experiments use it to
//! check that the paper's conclusions are robust to the replacement
//! policy, not an artifact of true LRU.

use crate::stats::CacheStats;
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
struct Frame {
    block: u64,
    referenced: bool,
    dirty: bool,
    valid: bool,
}

/// CLOCK replacement over block ids.
#[derive(Clone, Debug)]
pub struct ClockCache {
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    hand: usize,
    stats: CacheStats,
}

impl ClockCache {
    pub fn new(capacity_blocks: u64) -> ClockCache {
        assert!(capacity_blocks > 0);
        let cap = usize::try_from(capacity_blocks).expect("capacity fits");
        ClockCache {
            frames: vec![
                Frame {
                    block: 0,
                    referenced: false,
                    dirty: false,
                    valid: false,
                };
                cap
            ],
            map: HashMap::with_capacity(cap),
            hand: 0,
            stats: CacheStats::default(),
        }
    }

    /// Access `block`; `true` on a miss.
    pub fn access(&mut self, block: u64, write: bool) -> bool {
        self.stats.accesses += 1;
        if let Some(&i) = self.map.get(&block) {
            self.stats.hits += 1;
            self.frames[i].referenced = true;
            self.frames[i].dirty |= write;
            return false;
        }
        self.stats.misses += 1;
        // Advance the hand to a victim: skip referenced frames, clearing
        // their bit (second chance).
        let victim = loop {
            let f = &mut self.frames[self.hand];
            if !f.valid {
                break self.hand;
            }
            if f.referenced {
                f.referenced = false;
                self.hand = (self.hand + 1) % self.frames.len();
            } else {
                break self.hand;
            }
        };
        let f = &mut self.frames[victim];
        if f.valid {
            if f.dirty {
                self.stats.writebacks += 1;
            }
            self.map.remove(&f.block);
        }
        *f = Frame {
            block,
            referenced: true,
            dirty: write,
            valid: true,
        };
        self.map.insert(block, victim);
        self.hand = (victim + 1) % self.frames.len();
        true
    }

    /// Empty the cache, counting writebacks for dirty frames.
    pub fn flush(&mut self) {
        for f in &mut self.frames {
            if f.valid && f.dirty {
                self.stats.writebacks += 1;
            }
            f.valid = false;
            f.referenced = false;
        }
        self.map.clear();
        self.hand = 0;
        self.stats.flushes += 1;
    }

    pub fn contains(&self, block: u64) -> bool {
        self.map.contains_key(&block)
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

impl crate::sim::BlockCache for ClockCache {
    fn access(&mut self, block: u64, write: bool) -> bool {
        ClockCache::access(self, block, write)
    }
    fn flush(&mut self) {
        ClockCache::flush(self)
    }
    fn stats(&self) -> &CacheStats {
        ClockCache::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruCache;
    use rand::{Rng, SeedableRng};

    #[test]
    fn basic_hit_miss() {
        let mut c = ClockCache::new(2);
        assert!(c.access(1, false));
        assert!(c.access(2, false));
        assert!(!c.access(1, false));
        assert!(!c.access(2, false));
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn degrades_to_fifo_when_all_referenced() {
        // With every frame referenced, the hand clears all bits and
        // evicts the first frame it started from — FIFO order.
        let mut c = ClockCache::new(2);
        c.access(1, false);
        c.access(2, false);
        c.access(3, false); // clears both, evicts 1 (first in)
        assert!(!c.contains(1));
        assert!(c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn second_chance_protects_referenced() {
        // After the pass above, 2's reference bit is cleared while 3's is
        // set (fresh fill): the next miss must evict 2 and spare 3.
        let mut c = ClockCache::new(2);
        c.access(1, false);
        c.access(2, false);
        c.access(3, false); // state: [3 (ref), 2 (cleared)]
        c.access(4, false); // second chance: evict 2, keep 3
        assert!(c.contains(3));
        assert!(!c.contains(2));
        assert!(c.contains(4));
    }

    #[test]
    fn writeback_accounting() {
        let mut c = ClockCache::new(1);
        c.access(1, true);
        c.access(2, false);
        assert_eq!(c.stats().writebacks, 1);
        c.access(3, true);
        c.flush();
        assert_eq!(c.stats().writebacks, 2);
        assert!(!c.contains(3));
    }

    #[test]
    fn clock_tracks_lru_on_random_traces() {
        // CLOCK approximates LRU: miss counts within a modest factor on
        // random workloads.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let trace: Vec<u64> = (0..6000).map(|_| rng.gen_range(0..96)).collect();
        for cap in [8u64, 16, 32, 64] {
            let mut clock = ClockCache::new(cap);
            let mut lru = LruCache::new(cap);
            let (mut mc, mut ml) = (0u64, 0u64);
            for &b in &trace {
                mc += clock.access(b, false) as u64;
                ml += lru.access(b, false) as u64;
            }
            assert!(
                (mc as f64) <= 1.3 * ml as f64 + 16.0,
                "cap {cap}: clock {mc} vs lru {ml}"
            );
        }
    }

    #[test]
    fn streaming_scan_all_miss() {
        let mut c = ClockCache::new(8);
        for b in 0..64u64 {
            assert!(c.access(b, false));
        }
        assert_eq!(c.stats().misses, 64);
    }
}
