//! Fully-associative LRU cache simulator.
//!
//! The DAM model assumes an ideal (offline optimal) replacement policy;
//! LRU with double the capacity is within a factor of two of it
//! (Sleator–Tarjan), so LRU is the standard concrete stand-in. The
//! implementation is O(1) per access: an intrusive doubly-linked list over
//! a slab of slots, plus a block → slot hash map.

use crate::stats::CacheStats;
use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Slot {
    block: u64,
    prev: u32,
    next: u32,
    dirty: bool,
}

/// Fully-associative LRU over block ids.
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity: usize,
    slots: Vec<Slot>,
    free: Vec<u32>,
    map: HashMap<u64, u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    stats: CacheStats,
}

impl LruCache {
    /// A cache holding `capacity_blocks` blocks.
    pub fn new(capacity_blocks: u64) -> LruCache {
        assert!(capacity_blocks > 0, "cache must hold at least one block");
        let capacity = usize::try_from(capacity_blocks).expect("capacity fits usize");
        LruCache {
            capacity,
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    fn unlink(&mut self, i: u32) {
        let (p, n) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if p != NIL {
            self.slots[p as usize].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slots[n as usize].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Access `block`; returns `true` on a miss. A `write` marks the block
    /// dirty; evicting a dirty block counts a writeback.
    pub fn access(&mut self, block: u64, write: bool) -> bool {
        self.stats.accesses += 1;
        if let Some(&i) = self.map.get(&block) {
            self.stats.hits += 1;
            self.unlink(i);
            self.push_front(i);
            if write {
                self.slots[i as usize].dirty = true;
            }
            return false;
        }
        self.stats.misses += 1;
        let slot = if self.map.len() < self.capacity {
            match self.free.pop() {
                Some(i) => i,
                None => {
                    let i = self.slots.len() as u32;
                    self.slots.push(Slot {
                        block,
                        prev: NIL,
                        next: NIL,
                        dirty: false,
                    });
                    i
                }
            }
        } else {
            // Evict LRU.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let victim_block = self.slots[victim as usize].block;
            if self.slots[victim as usize].dirty {
                self.stats.writebacks += 1;
            }
            self.map.remove(&victim_block);
            self.unlink(victim);
            victim
        };
        self.slots[slot as usize].block = block;
        self.slots[slot as usize].dirty = write;
        self.map.insert(block, slot);
        self.push_front(slot);
        true
    }

    /// Empty the cache, counting writebacks for dirty blocks.
    pub fn flush(&mut self) {
        for s in &self.slots {
            if self.map.contains_key(&s.block) && s.dirty {
                self.stats.writebacks += 1;
            }
        }
        self.map.clear();
        self.free.clear();
        self.free.extend(0..self.slots.len() as u32);
        self.head = NIL;
        self.tail = NIL;
        self.stats.flushes += 1;
    }

    /// True if `block` currently resides in cache (no stats side effect).
    pub fn contains(&self, block: u64) -> bool {
        self.map.contains_key(&block)
    }

    /// Number of blocks currently resident.
    pub fn resident(&self) -> usize {
        self.map.len()
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_then_hits() {
        let mut c = LruCache::new(4);
        for b in 0..4 {
            assert!(c.access(b, false), "cold access must miss");
        }
        for b in 0..4 {
            assert!(!c.access(b, false), "warm access must hit");
        }
        assert_eq!(c.stats().misses, 4);
        assert_eq!(c.stats().hits, 4);
        assert_eq!(c.resident(), 4);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.access(1, false);
        c.access(2, false);
        c.access(1, false); // 2 is now LRU
        c.access(3, false); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = LruCache::new(1);
        c.access(1, true);
        c.access(2, false); // evicts dirty 1
        assert_eq!(c.stats().writebacks, 1);
        c.access(3, false); // evicts clean 2
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_empties_and_counts_dirty() {
        let mut c = LruCache::new(4);
        c.access(1, true);
        c.access(2, false);
        c.flush();
        assert_eq!(c.resident(), 0);
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().flushes, 1);
        assert!(c.access(1, false), "flushed block must miss");
    }

    #[test]
    fn single_block_cache_thrashes() {
        // Alternating over 2 blocks with capacity 1: every access misses.
        let mut c = LruCache::new(1);
        for _ in 0..10 {
            assert!(c.access(1, false));
            assert!(c.access(2, false));
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 20);
    }

    #[test]
    fn sequential_scan_reuses_nothing() {
        let mut c = LruCache::new(8);
        for b in 0..100u64 {
            assert!(c.access(b, false));
        }
        assert_eq!(c.stats().misses, 100);
    }

    #[test]
    fn lru_inclusion_property() {
        // A larger LRU cache never misses more than a smaller one on the
        // same trace (stack property of LRU).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        let trace: Vec<u64> = (0..5000).map(|_| rng.gen_range(0..64)).collect();
        let mut last = u64::MAX;
        for cap in [1u64, 2, 4, 8, 16, 32, 64] {
            let mut c = LruCache::new(cap);
            for &b in &trace {
                c.access(b, false);
            }
            assert!(
                c.stats().misses <= last,
                "cap {cap}: {} > {last}",
                c.stats().misses
            );
            last = c.stats().misses;
        }
    }
}
