//! # ccs-cachesim — the external-memory (DAM) model, executable
//!
//! The paper analyzes streaming schedules in the I/O model of Aggarwal and
//! Vitter: a cache of `M` words organized in blocks of `B` words over an
//! unbounded memory; the cost of a schedule is the number of block
//! fetches. This crate makes that model executable:
//!
//! * [`CacheParams`] — the `(M, B)` pair; [`AddressSpace`] — a
//!   block-aligned region allocator; [`Region`] — contiguous objects
//!   (module state, ring buffers).
//! * [`LruCache`] — fully-associative LRU (the standard constant-factor
//!   stand-in for the model's optimal replacement).
//! * [`SetAssocCache`] — set-associative LRU for hardware-realism
//!   experiments.
//! * [`ClockCache`] — CLOCK (second-chance) replacement, a realistic LRU
//!   approximation for policy-robustness experiments.
//! * [`TwoLevelCache`] — an inclusive L1/L2 hierarchy (the paper's §7
//!   multi-level direction, executable).
//! * [`min::simulate_min`] — Belady's offline-optimal replacement, used to
//!   bound how far LRU is from ideal on recorded traces.
//! * [`MemorySim`] — range/ring touches with per-object miss attribution.

pub mod clock;
pub mod hierarchy;
pub mod lru;
pub mod min;
pub mod params;
pub mod setassoc;
pub mod sim;
pub mod stats;

pub use clock::ClockCache;
pub use hierarchy::TwoLevelCache;
pub use lru::LruCache;
pub use params::{Addr, AddressSpace, CacheParams, Region};
pub use setassoc::SetAssocCache;
pub use sim::{BlockCache, MemorySim};
pub use stats::CacheStats;
