//! Cache statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a cache simulator.
///
/// The paper's cost metric is the number of *cache misses* (block
/// fetches); `writebacks` are tracked separately so callers can also
/// report total block transfers (`misses + writebacks`) if desired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
    pub flushes: u64,
}

impl CacheStats {
    /// Misses plus writebacks: every block moved between cache and memory.
    pub fn transfers(&self) -> u64 {
        self.misses + self.writebacks
    }

    /// Miss ratio in `[0, 1]`; zero for an empty trace.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses + other.accesses,
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            writebacks: self.writebacks + other.writebacks,
            flushes: self.flushes + other.flushes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_merge() {
        let a = CacheStats {
            accesses: 10,
            hits: 6,
            misses: 4,
            writebacks: 2,
            flushes: 1,
        };
        assert_eq!(a.transfers(), 6);
        assert!((a.miss_ratio() - 0.4).abs() < 1e-12);
        let b = a.merged(&a);
        assert_eq!(b.accesses, 20);
        assert_eq!(b.misses, 8);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
