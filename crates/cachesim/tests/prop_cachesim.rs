//! Property-based tests for the cache simulators.

use ccs_cachesim::{min, CacheParams, LruCache, MemorySim, SetAssocCache};
use proptest::prelude::*;

fn lru_misses(trace: &[u64], cap: u64) -> u64 {
    let mut c = LruCache::new(cap);
    for &b in trace {
        c.access(b, false);
    }
    c.stats().misses
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LRU stack inclusion: larger capacity never misses more.
    #[test]
    fn lru_inclusion(trace in prop::collection::vec(0u64..128, 1..2000)) {
        let mut last = u64::MAX;
        for cap in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            let m = lru_misses(&trace, cap);
            prop_assert!(m <= last);
            last = m;
        }
    }

    /// Belady MIN never loses to LRU at equal capacity, and misses are
    /// bounded below by the number of distinct blocks.
    #[test]
    fn belady_optimal(trace in prop::collection::vec(0u64..64, 1..1500),
                      cap in 1u64..64) {
        let opt = min::simulate_min(&trace, cap);
        let lru = lru_misses(&trace, cap);
        prop_assert!(opt <= lru);
        let distinct = {
            let mut s: Vec<u64> = trace.clone();
            s.sort_unstable();
            s.dedup();
            s.len() as u64
        };
        // Every distinct block costs at least one compulsory miss.
        prop_assert!(opt >= distinct);
    }

    /// Full associativity equivalence: a one-set set-associative cache
    /// matches fully-associative LRU exactly.
    #[test]
    fn one_set_equals_fully_associative(
        trace in prop::collection::vec(0u64..96, 1..1200), ways in 1usize..32) {
        let mut sa = SetAssocCache::new(ways as u64, ways);
        let mut fa = LruCache::new(ways as u64);
        for &b in &trace {
            let m1 = sa.access(b, false);
            let m2 = fa.access(b, false);
            prop_assert_eq!(m1, m2);
        }
    }

    /// Set-associative caches only add conflict misses: at equal
    /// capacity, a set-associative cache never beats fully-associative
    /// LRU by more than... in fact LRU(full) <= LRU(set-assoc) on every
    /// trace is NOT a theorem, but hit counts are bounded by accesses and
    /// stats are internally consistent.
    #[test]
    fn stats_consistency(trace in prop::collection::vec(0u64..64, 1..800),
                         cap_pow in 1u32..6, ways_pow in 0u32..3) {
        let cap = 1u64 << (cap_pow + ways_pow);
        let ways = 1usize << ways_pow;
        let mut c = SetAssocCache::new(cap, ways);
        let mut writes = 0u64;
        for (i, &b) in trace.iter().enumerate() {
            let w = i % 3 == 0;
            writes += w as u64;
            c.access(b, w);
        }
        let st = c.stats();
        prop_assert_eq!(st.accesses, trace.len() as u64);
        prop_assert_eq!(st.hits + st.misses, st.accesses);
        prop_assert!(st.writebacks <= writes);
    }

    /// Range touches cost exactly the blocks spanned when cold, and zero
    /// when repeated within capacity.
    #[test]
    fn range_touch_block_accounting(base in 0u64..10_000, len in 1u64..500) {
        let params = CacheParams::new(1 << 16, 16);
        let mut sim = MemorySim::lru(params);
        sim.touch(base, len, false, 0);
        let spanned = params.blocks_spanned(base, len);
        prop_assert_eq!(sim.stats().misses, spanned);
        sim.touch(base, len, false, 0);
        prop_assert_eq!(sim.stats().misses, spanned, "warm touch must hit");
    }

    /// Ring touches wrap correctly: walking a ring of capacity C by
    /// chunks of k items touches at most ceil(C/B)+1 distinct blocks per
    /// lap and always hits once the ring is cache resident.
    #[test]
    fn ring_touch_wraps(cap in 8u64..256, k in 1u64..8) {
        let params = CacheParams::new(1 << 14, 8);
        let mut sim = MemorySim::lru(params);
        let region = ccs_cachesim::Region { base: 64, len: cap };
        let mut pos = 0u64;
        // Two full laps.
        for _ in 0..(2 * cap / k.min(cap)).max(4) {
            let n = k.min(cap);
            sim.touch_ring(region, pos, n, true, 0);
            pos += n;
        }
        // All misses are cold: at most the ring's block count + 1 for
        // alignment spill.
        let ring_blocks = params.blocks_spanned(region.base, region.len);
        prop_assert!(sim.stats().misses <= ring_blocks + 1);
    }

    /// MIN with capacity >= distinct blocks gives exactly one miss per
    /// distinct block.
    #[test]
    fn min_compulsory_only(trace in prop::collection::vec(0u64..32, 1..400)) {
        let distinct = {
            let mut s = trace.clone();
            s.sort_unstable();
            s.dedup();
            s.len() as u64
        };
        prop_assert_eq!(min::simulate_min(&trace, 64), distinct);
    }
}
