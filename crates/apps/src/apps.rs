//! The application graphs.

use ccs_graph::{GraphBuilder, StreamGraph};

/// A named application workload.
pub struct App {
    pub name: &'static str,
    pub description: &'static str,
    pub graph: StreamGraph,
}

/// StreamIt's FM radio: a pipeline with a decimating low-pass front end,
/// FM demodulation, and a cascade of equalizer band filters.
///
/// `bands` equalizer sections (default in the literature: 8 or more).
pub fn fm_radio(bands: usize) -> StreamGraph {
    assert!(bands >= 1);
    let taps = 64u64;
    let mut b = GraphBuilder::new();
    let src = b.node("antenna", 16);
    // Low-pass FIR, decimating 4:1. State = taps coefficients + window.
    let lpf = b.node("lpf-decim", 2 * taps);
    b.edge(src, lpf, 4, 4); // src pushes 4 samples; lpf consumes 4
    let demod = b.node("fm-demod", 24);
    b.edge(lpf, demod, 1, 1);
    let mut prev = demod;
    for i in 0..bands {
        let eq = b.node(format!("eq-band-{i}"), 2 * taps + 8);
        b.edge(prev, eq, 1, 1);
        prev = eq;
    }
    let sum = b.node("eq-sum", 8);
    b.edge(prev, sum, 1, 1);
    let sink = b.node("speaker", 16);
    b.edge(sum, sink, 1, 1);
    b.build().expect("fm radio is a valid pipeline")
}

/// A multirate analysis/synthesis filter bank: `bands` parallel chains,
/// each decimating by `bands` and re-interpolating, summed at the end.
pub fn filterbank(bands: u64) -> StreamGraph {
    assert!(bands >= 2);
    let taps = 32u64;
    let mut b = GraphBuilder::new();
    let src = b.node("source", 16);
    let split = b.node("duplicate", 8);
    b.edge(src, split, 1, 1);
    let join = b.node("adder", 8 + bands);
    for band in 0..bands {
        // Analysis filter consumes `bands` samples, emits 1 (polyphase
        // decimation); synthesis emits `bands` again.
        let analysis = b.node(format!("analysis-{band}"), 2 * taps);
        b.edge(split, analysis, bands, bands);
        let down = b.node(format!("process-{band}"), 48);
        b.edge(analysis, down, 1, bands); // decimate: fires 1/bands as often
        let up = b.node(format!("synthesis-{band}"), 2 * taps);
        b.edge(down, up, 1, 1);
        b.edge(up, join, bands, 1); // interpolate back up
    }
    let sink = b.node("sink", 16);
    b.edge(join, sink, 1, 1);
    b.build().expect("filterbank is valid and rate matched")
}

/// A beamformer: `channels` input channels each with a two-stage FIR
/// front end; `beams` beam-forming nodes each combining one sample from
/// every channel; detectors into a collector sink. Homogeneous.
pub fn beamformer(channels: usize, beams: usize) -> StreamGraph {
    assert!(channels >= 1 && beams >= 1);
    let mut b = GraphBuilder::new();
    let src = b.node("source", 16);
    let mut chan_out = Vec::with_capacity(channels);
    for c in 0..channels {
        let coarse = b.node(format!("ch{c}-coarse"), 128);
        b.edge(src, coarse, 1, 1);
        let fine = b.node(format!("ch{c}-fine"), 64);
        b.edge(coarse, fine, 1, 1);
        chan_out.push(fine);
    }
    let collector = b.node("collector", 8 + beams as u64);
    for beam in 0..beams {
        // Beam weights: one complex weight per channel plus a work area.
        let bf = b.node(format!("beam{beam}"), 2 * channels as u64 + 16);
        for &ch in &chan_out {
            b.edge(ch, bf, 1, 1);
        }
        let det = b.node(format!("detect{beam}"), 32);
        b.edge(bf, det, 1, 1);
        b.edge(det, collector, 1, 1);
    }
    let sink = b.node("sink", 8);
    b.edge(collector, sink, 1, 1);
    b.build().expect("beamformer is valid")
}

/// An FFT dataflow: `log_n` butterfly stages over `2^log_n` lanes, with
/// per-node twiddle/workspace state.
pub fn fft(log_n: u32) -> StreamGraph {
    use ccs_graph::gen::{butterfly, StateDist};
    butterfly(log_n, StateDist::Fixed(32), 0xFF7)
}

/// A bitonic sorting network over `2^log_n` lanes: each stage is a column
/// of 2-in/2-out comparators. Homogeneous.
pub fn bitonic_sort(log_n: u32) -> StreamGraph {
    let width = 1usize << log_n;
    let mut b = GraphBuilder::new();
    let src = b.node("source", 8);
    // Lane heads.
    let mut lanes: Vec<_> = (0..width).map(|i| b.node(format!("in{i}"), 4)).collect();
    for &l in &lanes {
        b.edge(src, l, 1, 1);
    }
    // Bitonic network: for k in powers of two, j descending.
    let mut stage = 0usize;
    let mut k = 2usize;
    while k <= width {
        let mut j = k / 2;
        while j >= 1 {
            let mut next = lanes.clone();
            let mut done = vec![false; width];
            for i in 0..width {
                let partner = i ^ j;
                if partner > i && !done[i] {
                    done[i] = true;
                    done[partner] = true;
                    let cmp = b.node(format!("s{stage}c{i}"), 16);
                    b.edge(lanes[i], cmp, 1, 1);
                    b.edge(lanes[partner], cmp, 1, 1);
                    // Comparator emits both lanes.
                    let lo = b.node(format!("s{stage}o{i}"), 4);
                    let hi = b.node(format!("s{stage}o{partner}"), 4);
                    b.edge(cmp, lo, 1, 1);
                    b.edge(cmp, hi, 1, 1);
                    next[i] = lo;
                    next[partner] = hi;
                }
            }
            lanes = next;
            stage += 1;
            j /= 2;
        }
        k *= 2;
    }
    let sink = b.node("sink", 8);
    for &l in &lanes {
        b.edge(l, sink, 1, 1);
    }
    b.build().expect("bitonic network is valid")
}

/// A JPEG-style transform coder pipeline operating on 8x8 blocks. The
/// entropy stages use fixed design-point rates (see crate docs).
pub fn jpeg_like() -> StreamGraph {
    let mut b = GraphBuilder::new();
    let src = b.node("raster", 16);
    let shift = b.node("level-shift", 8);
    b.edge(src, shift, 64, 64);
    let dct = b.node("dct-8x8", 64 + 128); // block + cosine tables
    b.edge(shift, dct, 64, 64);
    let quant = b.node("quantize", 64 + 64);
    b.edge(dct, quant, 64, 64);
    let zigzag = b.node("zigzag", 64 + 64);
    b.edge(quant, zigzag, 64, 64);
    let rle = b.node("rle", 32);
    b.edge(zigzag, rle, 64, 64); // 64 coefficients in, ~16 symbols out
    let huff = b.node("entropy", 512); // code tables
    b.edge(rle, huff, 16, 16);
    let sink = b.node("bitstream", 16);
    b.edge(huff, sink, 8, 8);
    b.build().expect("jpeg pipeline is valid")
}

/// A channel vocoder: pipeline with an up-sampling tail — exercises gain
/// greater than one downstream.
pub fn vocoder(bands: usize) -> StreamGraph {
    assert!(bands >= 1);
    let mut b = GraphBuilder::new();
    let src = b.node("mic", 16);
    let window = b.node("window", 256 + 64);
    b.edge(src, window, 32, 32);
    let mut prev = window;
    for i in 0..bands {
        let band = b.node(format!("band-{i}"), 96);
        b.edge(prev, band, 1, 1);
        prev = band;
    }
    let pitch = b.node("pitch-shift", 128);
    b.edge(prev, pitch, 2, 2);
    let interp = b.node("interpolate", 64);
    b.edge(pitch, interp, 3, 1); // upsample 3x
    let smooth = b.node("smooth", 2 * 32);
    b.edge(interp, smooth, 1, 1);
    let sink = b.node("speaker", 16);
    b.edge(smooth, sink, 1, 1);
    b.build().expect("vocoder is valid")
}

/// A DES-style block cipher: an initial permutation, `rounds` Feistel
/// rounds (each with an S-box table as state), and a final permutation.
/// Operates on 2-word blocks; homogeneous per block.
pub fn des_like(rounds: usize) -> StreamGraph {
    assert!(rounds >= 1);
    let mut b = GraphBuilder::new();
    let src = b.node("plaintext", 8);
    let ip = b.node("initial-perm", 64);
    b.edge(src, ip, 2, 2);
    let mut prev = ip;
    for r in 0..rounds {
        // Each round holds its subkey schedule and S-box tables.
        let round = b.node(format!("round-{r}"), 256 + 48);
        b.edge(prev, round, 2, 2);
        prev = round;
    }
    let fp = b.node("final-perm", 64);
    b.edge(prev, fp, 2, 2);
    let sink = b.node("ciphertext", 8);
    b.edge(fp, sink, 2, 2);
    b.build().expect("des pipeline is valid")
}

/// Streaming dense matrix–vector multiply: the vector streams through
/// `rows` row-modules, each holding one matrix row of `cols` words and
/// emitting one dot product per `cols` inputs; a collector gathers the
/// row results.
pub fn matvec_stream(rows: usize, cols: u64) -> StreamGraph {
    assert!(rows >= 1 && cols >= 1);
    let mut b = GraphBuilder::new();
    let src = b.node("vector-in", 16);
    let fan = b.node("broadcast", 8);
    b.edge(src, fan, cols, cols);
    let gather = b.node("gather", 8 + rows as u64);
    for r in 0..rows {
        let row = b.node(format!("row-{r}"), cols);
        b.edge(fan, row, cols, cols); // sees the whole vector
        b.edge(row, gather, 1, 1); // emits one dot product
    }
    let sink = b.node("result", 8);
    b.edge(gather, sink, rows as u64, rows as u64);
    b.build().expect("matvec graph is valid")
}

/// An audio effects chain: delay lines (echo, reverb) are state-heavy
/// modules; a final limiter. Homogeneous sample-by-sample processing
/// with block-based I/O.
pub fn audio_effects(echo_taps: u64, reverb_size: u64) -> StreamGraph {
    let mut b = GraphBuilder::new();
    let src = b.node("adc", 16);
    let gain = b.node("input-gain", 8);
    b.edge(src, gain, 64, 64);
    let echo = b.node("echo", echo_taps);
    b.edge(gain, echo, 1, 1);
    let reverb = b.node("reverb", reverb_size);
    b.edge(echo, reverb, 1, 1);
    let eq_lo = b.node("eq-low", 2 * 32);
    b.edge(reverb, eq_lo, 1, 1);
    let eq_hi = b.node("eq-high", 2 * 32);
    b.edge(eq_lo, eq_hi, 1, 1);
    let limiter = b.node("limiter", 24);
    b.edge(eq_hi, limiter, 1, 1);
    let sink = b.node("dac", 16);
    b.edge(limiter, sink, 64, 64);
    b.build().expect("audio chain is valid")
}

/// The default benchmark suite with literature-typical parameters.
/// A phase-shift perturbation pipeline: uniform rates, but the first
/// half of the stages ("hot" stages) are bound — by
/// [`crate::bind::phase_shift_instance`] — to kernels whose per-firing
/// *work* steps up by a known multiple after a known firing count,
/// while their *output* stays the exact same function of the input
/// stream. The cost landscape a static placement was sized for shifts
/// mid-run; what is computed does not. That makes it the canonical
/// workload for the adaptive executor's equivalence bar: any run — with
/// or without migrations — must produce the bit-identical sink digest.
pub fn phase_shift() -> StreamGraph {
    let mut b = GraphBuilder::new();
    let src = b.node("source", 16);
    let mut prev = src;
    for i in 0..4 {
        let stage = b.node(format!("phase-hot-{i}"), 96);
        b.edge(prev, stage, 1, 1);
        prev = stage;
    }
    for i in 0..4 {
        let stage = b.node(format!("phase-cold-{i}"), 96);
        b.edge(prev, stage, 1, 1);
        prev = stage;
    }
    let sink = b.node("sink", 16);
    b.edge(prev, sink, 1, 1);
    b.build().expect("phase-shift is a valid pipeline")
}

pub fn suite() -> Vec<App> {
    vec![
        App {
            name: "fm-radio",
            description: "FM radio with 8-band equalizer (pipeline, decimating)",
            graph: fm_radio(8),
        },
        App {
            name: "filterbank",
            description: "8-band multirate analysis/synthesis filter bank",
            graph: filterbank(8),
        },
        App {
            name: "beamformer",
            description: "4-channel, 4-beam beamformer (homogeneous dag)",
            graph: beamformer(4, 4),
        },
        App {
            name: "fft",
            description: "16-lane butterfly FFT network (homogeneous dag)",
            graph: fft(4),
        },
        App {
            name: "bitonic",
            description: "8-lane bitonic sorting network (homogeneous dag)",
            graph: bitonic_sort(3),
        },
        App {
            name: "jpeg",
            description: "JPEG-style 8x8 block transform coder (pipeline)",
            graph: jpeg_like(),
        },
        App {
            name: "vocoder",
            description: "channel vocoder with upsampling tail (pipeline)",
            graph: vocoder(6),
        },
        App {
            name: "des",
            description: "16-round Feistel block cipher (pipeline, 2-word blocks)",
            graph: des_like(16),
        },
        App {
            name: "matvec",
            description: "streaming 16x64 matrix-vector multiply (fan-out dag)",
            graph: matvec_stream(16, 64),
        },
        App {
            name: "audio",
            description: "audio effects chain with heavy delay lines (pipeline)",
            graph: audio_effects(1024, 4096),
        },
        App {
            name: "phase-shift",
            description: "seeded mid-run work-cost step (adaptive perturbation pipeline)",
            graph: phase_shift(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::RateAnalysis;

    #[test]
    fn all_apps_are_valid_single_io_rate_matched() {
        for app in suite() {
            let ra = RateAnalysis::analyze_single_io(&app.graph)
                .unwrap_or_else(|e| panic!("{}: {e}", app.name));
            assert!(ra.check_balance(&app.graph), "{}", app.name);
            assert!(app.graph.node_count() >= 5, "{} too trivial", app.name);
        }
    }

    #[test]
    fn fm_radio_is_pipeline() {
        let g = fm_radio(8);
        assert!(g.is_pipeline());
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        // Decimation by 4: sink fires 1/4 as often as source... source
        // pushes 4 per firing so q(src) = q(lpf); demod onward all fire at
        // lpf rate.
        let src = ra.source.unwrap();
        let sink = ra.sink.unwrap();
        assert_eq!(ra.q(src), ra.q(sink));
    }

    #[test]
    fn filterbank_rates_balance() {
        let g = filterbank(8);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        assert!(ra.check_balance(&g));
        assert!(!g.is_pipeline());
        assert!(!g.is_homogeneous());
    }

    #[test]
    fn beamformer_homogeneous() {
        let g = beamformer(4, 4);
        assert!(g.is_homogeneous());
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        assert!(ra.repetitions.iter().all(|&q| q == 1));
    }

    #[test]
    fn bitonic_structure() {
        let g = bitonic_sort(3);
        assert!(g.is_homogeneous());
        RateAnalysis::analyze_single_io(&g).unwrap();
        // 8 lanes: 6 stages of 4 comparators, each comparator adds 3 nodes.
        assert!(g.node_count() > 8 + 2);
    }

    #[test]
    fn jpeg_gains_shrink_downstream() {
        let g = jpeg_like();
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let src = ra.source.unwrap();
        let sink = ra.sink.unwrap();
        // 64 pixels -> 16 symbols -> 8 bits-ish: sink fires less often
        // per steady state than the pixel stages.
        assert!(ra.q(sink) <= ra.q(src));
    }

    #[test]
    fn vocoder_has_upsampling_gain() {
        let g = vocoder(6);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let src = ra.source.unwrap();
        let sink = ra.sink.unwrap();
        // The interpolate stage triples the rate.
        assert!(ra.gain_from(src, sink) > ccs_graph::Ratio::ZERO);
        assert!(ra.q(sink) > ra.q(src));
    }

    #[test]
    fn suite_has_varied_shapes() {
        let apps = suite();
        assert!(apps.iter().any(|a| a.graph.is_pipeline()));
        assert!(apps.iter().any(|a| !a.graph.is_pipeline()));
        assert!(apps.iter().any(|a| a.graph.is_homogeneous()));
        assert!(apps.iter().any(|a| !a.graph.is_homogeneous()));
        assert!(apps.len() >= 10);
    }

    #[test]
    fn des_rounds_scale() {
        let g8 = des_like(8);
        let g16 = des_like(16);
        assert_eq!(g16.node_count() - g8.node_count(), 8);
        assert!(g8.is_pipeline());
        let ra = RateAnalysis::analyze_single_io(&g16).unwrap();
        // Uniform 2:2 rates: everyone fires at the same rate.
        assert!(ra.repetitions.iter().all(|&q| q == 1));
    }

    #[test]
    fn matvec_structure() {
        let g = matvec_stream(16, 64);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        assert!(ra.check_balance(&g));
        assert!(!g.is_pipeline());
        // Each row module holds one row: 64 words.
        let rows: Vec<_> = g
            .node_ids()
            .filter(|&v| g.node(v).name.starts_with("row-"))
            .collect();
        assert_eq!(rows.len(), 16);
        for r in rows {
            assert_eq!(g.state(r), 64);
        }
    }

    #[test]
    fn audio_effects_state_dominated_by_delay_lines() {
        let g = audio_effects(1024, 4096);
        assert!(g.is_pipeline());
        RateAnalysis::analyze_single_io(&g).unwrap();
        assert!(g.total_state() > 5000);
        assert_eq!(g.max_state(), 4096);
    }
}
