//! Kernel bindings: real DSP kernels for the application graphs.

use ccs_graph::StreamGraph;
use ccs_runtime::instance::Instance;
use ccs_runtime::kernel::{FirFilter, Kernel, SinkCollect, SourceGen, SyntheticKernel};

/// Bind a graph with real FIR kernels at the filter stages (nodes whose
/// names mark them as filters) and synthetic state-streaming kernels
/// elsewhere. Works for any graph whose filter nodes have even state
/// (taps + window); falls back to synthetic kernels when the shape
/// doesn't fit.
pub fn fir_instance(graph: StreamGraph) -> Instance {
    let source = graph.single_source();
    let sink = graph.single_sink();
    Instance::with_factory(graph, move |g, v| {
        let words = g.state(v).max(1) as usize;
        let name = &g.node(v).name;
        if Some(v) == source {
            return Box::new(SourceGen::new(words));
        }
        if Some(v) == sink {
            return Box::new(SinkCollect::new(words));
        }
        let is_filter = name.contains("lpf")
            || name.contains("eq-")
            || name.contains("analysis")
            || name.contains("synthesis")
            || name.contains("smooth");
        let single_in = g.in_edges(v).len() == 1 && g.out_edges(v).len() == 1;
        if is_filter && single_in && words.is_multiple_of(2) {
            let consume = g.edge(g.in_edges(v)[0]).consume as usize;
            let taps = words / 2;
            if taps >= consume {
                return Box::new(FirFilter::new(taps, consume));
            }
        }
        Box::new(SyntheticKernel::new(words, false))
    })
}

/// A kernel whose per-firing *work* steps up `mult`× after `step_at`
/// firings while its *output* remains the exact same deterministic
/// function of the input stream — the seeded perturbation behind the
/// `phase-shift` app. The repeated state sweeps all produce the same
/// value (the state is never mutated) and only the last one feeds the
/// output, so the digest is invariant to when — or where — the step is
/// observed; `black_box` keeps the compiler from hoisting the extra
/// sweeps away.
struct PhaseShiftKernel {
    state: Box<[f32]>,
    fires: u64,
    step_at: u64,
    mult: u32,
}

impl PhaseShiftKernel {
    fn new(state_words: usize, step_at: u64, mult: u32) -> PhaseShiftKernel {
        PhaseShiftKernel {
            state: (0..state_words.max(1))
                .map(|i| ((i * 2654435761usize) as f32) * 1e-12)
                .collect(),
            fires: 0,
            step_at,
            mult: mult.max(1),
        }
    }
}

impl Kernel for PhaseShiftKernel {
    fn state_words(&self) -> usize {
        self.state.len()
    }

    fn fire(&mut self, inputs: &[&[f32]], outputs: &mut [&mut [f32]]) {
        let mut acc = 0.0f32;
        for input in inputs {
            for &x in input.iter() {
                acc += x;
            }
        }
        let reps = if self.fires >= self.step_at {
            self.mult
        } else {
            1
        };
        let mut sacc = 0.0f32;
        for _ in 0..reps {
            sacc = std::hint::black_box(&self.state).iter().sum();
        }
        self.fires += 1;
        let y = acc * 0.5 + sacc * 1e-6;
        for out in outputs.iter_mut() {
            for slot in out.iter_mut() {
                *slot = y;
            }
        }
    }
}

/// Firing count at which [`bound_instance`]'s phase-shift kernels step
/// (with uniform rates and granularity `T`, that is batch
/// `DEFAULT_PHASE_STEP_FIRES / T` of each hot stage's segment).
pub const DEFAULT_PHASE_STEP_FIRES: u64 = 96;

/// Work multiplier [`bound_instance`] applies after the step.
pub const DEFAULT_PHASE_STEP_MULT: u32 = 16;

/// Bind the `phase-shift` graph: hot stages get phase-shift kernels
/// that step `mult`× after `step_at` firings, everything else runs the
/// standard deterministic source/sink/synthetic kernels. The output
/// stream — and so the sink digest — is independent of `step_at` and
/// `mult`; only the cost landscape changes.
pub fn phase_shift_instance(graph: StreamGraph, step_at: u64, mult: u32) -> Instance {
    let source = graph.single_source();
    let sink = graph.single_sink();
    Instance::with_factory(graph, move |g, v| {
        let words = g.state(v).max(1) as usize;
        if Some(v) == source {
            return Box::new(SourceGen::new(words));
        }
        if Some(v) == sink {
            return Box::new(SinkCollect::new(words));
        }
        if g.node(v).name.starts_with("phase-hot-") {
            return Box::new(PhaseShiftKernel::new(words, step_at, mult));
        }
        Box::new(SyntheticKernel::new(words, false))
    })
}

/// The workload-aware binding the sweep engine and CLI use: the
/// `phase-shift` app gets its stepping kernels (at the default seed),
/// every other workload keeps the plain synthetic binding — so adding
/// the perturbation app changes nothing for existing cells.
pub fn bound_instance(name: &str, graph: StreamGraph) -> Instance {
    if name == "phase-shift" {
        phase_shift_instance(graph, DEFAULT_PHASE_STEP_FIRES, DEFAULT_PHASE_STEP_MULT)
    } else {
        Instance::synthetic(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use ccs_graph::RateAnalysis;
    use ccs_sched::baseline;

    #[test]
    fn fm_radio_fir_binding_runs() {
        let g = apps::fm_radio(4);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = baseline::single_appearance(&g, &ra, 8);
        let mut inst = fir_instance(g);
        let stats = ccs_runtime::serial::execute(&mut inst, &run);
        assert!(stats.sink_items > 0);
        assert!(stats.digest.is_some());
    }

    #[test]
    fn fir_binding_is_schedule_independent() {
        let g = apps::fm_radio(4);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let sink = ra.sink.unwrap();
        let sas = baseline::single_appearance(&g, &ra, 6);
        let dem = baseline::demand_driven(&g, &ra, sas.count(sink));
        let mut i1 = fir_instance(g.clone());
        let mut i2 = fir_instance(g);
        let d1 = ccs_runtime::serial::execute(&mut i1, &sas).digest;
        let d2 = ccs_runtime::serial::execute(&mut i2, &dem).digest;
        assert_eq!(d1, d2);
    }

    #[test]
    fn all_suite_apps_bind_and_run() {
        for app in apps::suite() {
            let ra = RateAnalysis::analyze_single_io(&app.graph).unwrap();
            let run = baseline::single_appearance(&app.graph, &ra, 2);
            let mut inst = fir_instance(app.graph.clone());
            let stats = ccs_runtime::serial::execute(&mut inst, &run);
            assert!(stats.firings > 0, "{}", app.name);
        }
    }
}
