//! Kernel bindings: real DSP kernels for the application graphs.

use ccs_graph::StreamGraph;
use ccs_runtime::instance::Instance;
use ccs_runtime::kernel::{FirFilter, SinkCollect, SourceGen, SyntheticKernel};

/// Bind a graph with real FIR kernels at the filter stages (nodes whose
/// names mark them as filters) and synthetic state-streaming kernels
/// elsewhere. Works for any graph whose filter nodes have even state
/// (taps + window); falls back to synthetic kernels when the shape
/// doesn't fit.
pub fn fir_instance(graph: StreamGraph) -> Instance {
    let source = graph.single_source();
    let sink = graph.single_sink();
    Instance::with_factory(graph, move |g, v| {
        let words = g.state(v).max(1) as usize;
        let name = &g.node(v).name;
        if Some(v) == source {
            return Box::new(SourceGen::new(words));
        }
        if Some(v) == sink {
            return Box::new(SinkCollect::new(words));
        }
        let is_filter = name.contains("lpf")
            || name.contains("eq-")
            || name.contains("analysis")
            || name.contains("synthesis")
            || name.contains("smooth");
        let single_in = g.in_edges(v).len() == 1 && g.out_edges(v).len() == 1;
        if is_filter && single_in && words.is_multiple_of(2) {
            let consume = g.edge(g.in_edges(v)[0]).consume as usize;
            let taps = words / 2;
            if taps >= consume {
                return Box::new(FirFilter::new(taps, consume));
            }
        }
        Box::new(SyntheticKernel::new(words, false))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use ccs_graph::RateAnalysis;
    use ccs_sched::baseline;

    #[test]
    fn fm_radio_fir_binding_runs() {
        let g = apps::fm_radio(4);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = baseline::single_appearance(&g, &ra, 8);
        let mut inst = fir_instance(g);
        let stats = ccs_runtime::serial::execute(&mut inst, &run);
        assert!(stats.sink_items > 0);
        assert!(stats.digest.is_some());
    }

    #[test]
    fn fir_binding_is_schedule_independent() {
        let g = apps::fm_radio(4);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let sink = ra.sink.unwrap();
        let sas = baseline::single_appearance(&g, &ra, 6);
        let dem = baseline::demand_driven(&g, &ra, sas.count(sink));
        let mut i1 = fir_instance(g.clone());
        let mut i2 = fir_instance(g);
        let d1 = ccs_runtime::serial::execute(&mut i1, &sas).digest;
        let d2 = ccs_runtime::serial::execute(&mut i2, &dem).digest;
        assert_eq!(d1, d2);
    }

    #[test]
    fn all_suite_apps_bind_and_run() {
        for app in apps::suite() {
            let ra = RateAnalysis::analyze_single_io(&app.graph).unwrap();
            let run = baseline::single_appearance(&app.graph, &ra, 2);
            let mut inst = fir_instance(app.graph.clone());
            let stats = ccs_runtime::serial::execute(&mut inst, &run);
            assert!(stats.firings > 0, "{}", app.name);
        }
    }
}
