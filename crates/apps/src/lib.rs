//! # ccs-apps — StreamIt-style streaming applications
//!
//! The paper motivates its scheduler with classic digital-signal-processing
//! streaming programs (StreamIt, GNU Radio). This crate reimplements the
//! canonical benchmark *topologies* — rates and state-size profiles — as
//! [`ccs_graph::StreamGraph`]s, plus kernel bindings for real execution.
//!
//! State sizes are in words (one `f32` item = one word) and follow the
//! usual shapes: FIR filters carry `2·taps` words (coefficients +
//! window), transforms carry coefficient tables, glue modules carry a few
//! words. Where a real codec has data-dependent rates (RLE, Huffman), we
//! fix the rate at its design-point average, as the paper prescribes for
//! modules that violate the static-rate assumption (§1, footnote 2).

pub mod apps;
pub mod bind;

pub use apps::{
    audio_effects, beamformer, bitonic_sort, des_like, fft, filterbank, fm_radio, jpeg_like,
    matvec_stream, phase_shift, suite, vocoder, App,
};
pub use bind::{
    bound_instance, fir_instance, phase_shift_instance, DEFAULT_PHASE_STEP_FIRES,
    DEFAULT_PHASE_STEP_MULT,
};
