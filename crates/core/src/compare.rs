//! The scheduler-comparison harness: run every applicable scheduler on a
//! graph at a common sink-output target and tabulate misses per output.
//!
//! This is the engine behind the baseline-comparison experiments (E7 and
//! friends in EXPERIMENTS.md).

use crate::planner::{Horizon, Planner, Strategy};
use ccs_cachesim::CacheParams;
use ccs_graph::{RateAnalysis, StreamGraph};
use ccs_sched::{baseline, partitioned, ExecOptions, Executor, SchedRun};

/// One scheduler's outcome on a workload.
#[derive(Clone, Debug)]
pub struct Comparison {
    pub label: String,
    pub misses: u64,
    pub interior_misses: u64,
    pub outputs: u64,
    pub inputs: u64,
    pub buffer_words: u64,
    pub misses_per_output: f64,
}

fn run_one(
    g: &StreamGraph,
    ra: &RateAnalysis,
    params: CacheParams,
    run: SchedRun,
) -> Option<Comparison> {
    let mut ex = Executor::new(
        g,
        ra,
        run.capacities.clone(),
        params,
        ExecOptions::default(),
    );
    ex.run(&run.firings).ok()?;
    let rep = ex.report();
    let outputs = rep.outputs.max(1);
    Some(Comparison {
        label: run.label.clone(),
        misses: rep.stats.misses,
        interior_misses: rep.interior_misses(),
        outputs: rep.outputs,
        inputs: rep.inputs,
        buffer_words: run.buffer_words(),
        misses_per_output: rep.stats.misses as f64 / outputs as f64,
    })
}

/// Run all applicable schedulers on `g`, each until the sink has fired
/// (at least) `sink_target` times, and return one row per scheduler.
///
/// Included: single-appearance, cache-budget execution scaling, demand
/// driven, Kohli greedy (pipelines), the partitioned scheduler with the
/// Auto strategy, and for pipelines additionally the DP-optimal
/// partition.
pub fn compare_schedulers(
    g: &StreamGraph,
    params: CacheParams,
    sink_target: u64,
) -> Vec<Comparison> {
    let ra = match RateAnalysis::analyze_single_io(g) {
        Ok(ra) => ra,
        Err(_) => return Vec::new(),
    };
    let sink = ra.sink.expect("single sink");
    let q_sink = ra.q(sink).max(1);
    let iterations = sink_target.div_ceil(q_sink);
    let mut rows = Vec::new();

    // Single-appearance steady state.
    rows.extend(run_one(
        g,
        &ra,
        params,
        baseline::single_appearance(g, &ra, iterations),
    ));

    // Execution scaling with the cache as the buffer budget.
    let scale = baseline::choose_scale(g, &ra, params.capacity);
    if scale > 1 {
        rows.extend(run_one(
            g,
            &ra,
            params,
            baseline::scaled_sas(g, &ra, scale, iterations.div_ceil(scale)),
        ));
    }

    // Demand driven.
    rows.extend(run_one(
        g,
        &ra,
        params,
        baseline::demand_driven(g, &ra, sink_target),
    ));

    // Phased (Karczmarek-style breadth-synchronous iterations).
    rows.extend(run_one(
        g,
        &ra,
        params,
        baseline::phased(g, &ra, iterations),
    ));

    // Kohli greedy (pipelines only). The heuristic targets buffers that
    // fit in cache *alongside* module state, so give it a quarter of M.
    if g.is_pipeline() {
        rows.extend(run_one(
            g,
            &ra,
            params,
            baseline::kohli_greedy(g, &ra, params.capacity / 4, sink_target),
        ));
    }

    // The paper's partitioned scheduler (Auto strategy).
    let planner = Planner::new(params);
    if let Ok(plan) = planner.plan(g, Horizon::SinkFirings(sink_target)) {
        rows.extend(run_one(g, &ra, params, plan.run));
    }

    // DP-optimal partition for pipelines (bandwidth-optimal comparison).
    if g.is_pipeline() {
        let dp_planner = Planner::new(params).with_strategy(Strategy::PipelineDp);
        if let Ok(plan) = dp_planner.plan(g, Horizon::SinkFirings(sink_target)) {
            let mut run = plan.run;
            run.label = "partitioned-dp".into();
            rows.extend(run_one(g, &ra, params, run));
        }
    }

    // Inhomogeneous/homogeneous static partitioned schedule for dags was
    // already included via the planner; also add a whole-graph (single
    // component) run when everything fits in cache, as the trivial
    // best case.
    if g.total_state() <= params.capacity / 2 {
        let p = ccs_partition::Partition::whole(g);
        let run = if g.is_homogeneous() {
            partitioned::homogeneous(
                g,
                &ra,
                &p,
                params.capacity,
                rounds_for(g, &ra, params.capacity, sink_target),
            )
        } else {
            partitioned::inhomogeneous(
                g,
                &ra,
                &p,
                params.capacity,
                rounds_for(g, &ra, params.capacity, sink_target),
            )
        };
        if let Ok(mut run) = run {
            run.label = "whole-graph".into();
            rows.extend(run_one(g, &ra, params, run));
        }
    }

    rows
}

fn rounds_for(g: &StreamGraph, ra: &RateAnalysis, m_items: u64, sink_target: u64) -> u64 {
    let sink = ra.sink.expect("single sink");
    let t = partitioned::granularity_t(g, ra, m_items).unwrap_or(m_items.max(1));
    let per_round = (ccs_graph::Ratio::integer(t as i128) * ra.gain(sink))
        .floor()
        .max(1) as u64;
    sink_target.div_ceil(per_round)
}

/// Render rows as an aligned text table (for experiment binaries).
pub fn format_table(title: &str, rows: &[Comparison]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "## {title}");
    let _ = writeln!(
        s,
        "{:<32} {:>12} {:>12} {:>10} {:>14} {:>12}",
        "scheduler", "misses", "interior", "outputs", "misses/output", "buf words"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<32} {:>12} {:>12} {:>10} {:>14.4} {:>12}",
            r.label, r.misses, r.interior_misses, r.outputs, r.misses_per_output, r.buffer_words
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen;

    #[test]
    fn comparison_covers_expected_schedulers_on_pipeline() {
        let g = gen::pipeline_uniform(16, 128);
        let params = CacheParams::new(512, 16);
        let rows = compare_schedulers(&g, params, 200);
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert!(labels.contains(&"single-appearance"), "{labels:?}");
        assert!(labels.contains(&"demand-driven"));
        assert!(labels.contains(&"kohli-greedy"));
        assert!(
            labels.iter().any(|l| l.starts_with("partitioned")),
            "{labels:?}"
        );
        // Every row produced at least the target outputs.
        for r in &rows {
            assert!(r.outputs >= 200, "{}: {}", r.label, r.outputs);
        }
    }

    #[test]
    fn partitioned_wins_when_state_thrashes() {
        // The headline comparison: total state 16x the cache.
        let g = gen::pipeline_uniform(32, 256);
        let params = CacheParams::new(512, 16);
        let rows = compare_schedulers(&g, params, 1024);
        let naive = rows
            .iter()
            .find(|r| r.label == "single-appearance")
            .unwrap();
        let part = rows
            .iter()
            .filter(|r| r.label.starts_with("partitioned"))
            .min_by(|a, b| a.misses_per_output.total_cmp(&b.misses_per_output))
            .unwrap();
        assert!(
            part.misses_per_output * 4.0 < naive.misses_per_output,
            "partitioned {} vs naive {}",
            part.misses_per_output,
            naive.misses_per_output
        );
    }

    #[test]
    fn table_formatting_contains_rows() {
        let g = gen::pipeline_uniform(8, 64);
        let params = CacheParams::new(256, 16);
        let rows = compare_schedulers(&g, params, 64);
        let table = format_table("test", &rows);
        assert!(table.contains("single-appearance"));
        assert!(table.contains("misses/output"));
    }
}
