//! Lower-bound calculators (Theorems 3, 7, and 10).
//!
//! The paper's lower bounds say: any schedule that pushes `T` inputs
//! through the graph incurs `Ω((T/B)·LB)` cache misses, where `LB` is the
//! Theorem 3 quantity for pipelines (sum of gain-minimizing edges over
//! disjoint `≥2M`-state segments) or `minBW₃(G)` for dags (bandwidth of
//! an optimal well-ordered 3-bounded partition). These functions compute
//! the `LB` quantities exactly so experiments can compare measured misses
//! against `(T/B)·LB`.

use ccs_cachesim::CacheParams;
use ccs_graph::{RateAnalysis, Ratio, StreamGraph};
use ccs_partition::{dag_exact, pipeline};

/// Theorem 3 lower-bound quantity for a pipeline (per-input bandwidth of
/// the gain-minimizing cross edges).
pub fn pipeline_lb_gain(g: &StreamGraph, ra: &RateAnalysis, m: u64) -> Option<Ratio> {
    pipeline::theorem3_lower_bound_gain(g, ra, m).ok()
}

/// `minBW₃(G)` (Theorem 7/10): the bandwidth of an optimal well-ordered
/// 3M-bounded partition, computed exactly. Only feasible for graphs of at
/// most [`dag_exact::MAX_EXACT_NODES`] nodes; `None` otherwise or when no
/// bounded partition exists.
pub fn dag_min_bw3(g: &StreamGraph, ra: &RateAnalysis, m: u64) -> Option<Ratio> {
    if g.node_count() > dag_exact::MAX_EXACT_NODES {
        return None;
    }
    dag_exact::min_bandwidth_exact(g, ra, 3 * m).map(|(_, bw)| bw)
}

/// Scale a per-input bandwidth quantity to a total miss lower bound for
/// `t_inputs` source firings: `(T/B)·LB`.
pub fn misses_lower_bound(lb_gain: Ratio, t_inputs: u64, params: CacheParams) -> f64 {
    lb_gain.to_f64() * t_inputs as f64 / params.block as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen;

    #[test]
    fn pipeline_lb_scales_with_state() {
        let g = gen::pipeline_uniform(16, 64); // 1024 words total
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        // Small cache: many segments -> large LB. Huge cache: zero LB.
        let small = pipeline_lb_gain(&g, &ra, 64).unwrap();
        let large = pipeline_lb_gain(&g, &ra, 4096).unwrap();
        assert!(small > Ratio::ZERO);
        assert_eq!(large, Ratio::ZERO);
    }

    #[test]
    fn dag_min_bw3_zero_when_fits() {
        let g = gen::split_join(2, 1, ccs_graph::gen::StateDist::Fixed(8), 0);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        assert_eq!(dag_min_bw3(&g, &ra, 1000), Some(Ratio::ZERO));
    }

    #[test]
    fn misses_lb_arithmetic() {
        let lb = Ratio::new(3, 2);
        let params = CacheParams::new(1024, 16);
        let total = misses_lower_bound(lb, 3200, params);
        assert!((total - 300.0).abs() < 1e-9);
    }

    #[test]
    fn dag_min_bw3_declines_with_cache() {
        let g = gen::split_join(2, 2, ccs_graph::gen::StateDist::Fixed(30), 1);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let tight = dag_min_bw3(&g, &ra, 10).unwrap(); // 3M = 30: singletons
        let loose = dag_min_bw3(&g, &ra, 100).unwrap(); // everything fits
        assert!(tight > loose);
        assert_eq!(loose, Ratio::ZERO);
    }
}
