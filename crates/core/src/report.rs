//! Serializable evaluation reports (JSON) for tooling and the CLI.

use ccs_sched::EvalReport;
use serde::{Deserialize, Serialize};

/// A flat, serializable summary of a plan evaluation.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Report {
    pub graph_nodes: usize,
    pub graph_edges: usize,
    pub total_state: u64,
    pub cache_m: u64,
    pub cache_b: u64,
    pub strategy: String,
    pub components: usize,
    pub bandwidth: f64,
    pub misses: u64,
    pub interior_misses: u64,
    pub writebacks: u64,
    pub inputs: u64,
    pub outputs: u64,
    pub misses_per_input: f64,
    pub misses_per_output: f64,
    pub buffer_words: u64,
    pub footprint_words: u64,
}

impl Report {
    /// Assemble from a plan and its evaluation.
    pub fn new(
        g: &ccs_graph::StreamGraph,
        params: ccs_cachesim::CacheParams,
        plan: &crate::planner::Plan,
        eval: &EvalReport,
    ) -> Report {
        Report {
            graph_nodes: g.node_count(),
            graph_edges: g.edge_count(),
            total_state: g.total_state(),
            cache_m: params.capacity,
            cache_b: params.block,
            strategy: plan.strategy_used.to_string(),
            components: plan.partition.num_components(),
            bandwidth: plan.bandwidth.to_f64(),
            misses: eval.stats.misses,
            interior_misses: eval.interior_misses(),
            writebacks: eval.stats.writebacks,
            inputs: eval.inputs,
            outputs: eval.outputs,
            misses_per_input: eval.misses_per_input(),
            misses_per_output: eval.stats.misses as f64 / eval.outputs.max(1) as f64,
            buffer_words: plan.run.buffer_words(),
            footprint_words: eval.footprint,
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Horizon, Planner};
    use ccs_cachesim::CacheParams;
    use ccs_graph::gen;

    #[test]
    fn report_roundtrips_json() {
        let g = gen::pipeline_uniform(12, 64);
        let params = CacheParams::new(512, 16);
        let planner = Planner::new(params);
        let plan = planner.plan(&g, Horizon::SinkFirings(100)).unwrap();
        let eval = planner.evaluate(&g, &plan).unwrap();
        let report = Report::new(&g, params, &plan, &eval);
        let json = report.to_json();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(json.contains("misses_per_output"));
        assert_eq!(report.graph_nodes, 12);
        assert!(report.misses > 0);
    }
}
