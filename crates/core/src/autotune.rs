//! Strategy autotuning: pick the partitioner empirically.
//!
//! The paper reduces scheduling to partitioning but leaves the choice of
//! partitioner open (exact for small graphs, heuristics otherwise, DP
//! for pipelines). Since partitioning happens at compile time and the
//! application runs for a long time, spending a short simulated trial on
//! each candidate and keeping the best-measuring plan is a sound
//! engineering move — this module does exactly that.

use crate::planner::{Horizon, Plan, PlanError, Planner, Strategy};
use ccs_graph::StreamGraph;

/// The outcome of one strategy trial.
#[derive(Clone, Debug)]
pub struct Trial {
    pub strategy: Strategy,
    pub strategy_used: &'static str,
    pub misses_per_output: f64,
    pub components: usize,
    pub bandwidth: f64,
}

/// Result of autotuning: the winning plan plus the full trial table.
pub struct Tuned {
    pub plan: Plan,
    pub trials: Vec<Trial>,
}

/// Try every applicable strategy with a short trial horizon and return
/// the plan with the fewest measured misses per output, re-planned at
/// the requested horizon.
pub fn autotune(
    planner: &Planner,
    g: &StreamGraph,
    trial_horizon: Horizon,
    final_horizon: Horizon,
) -> Result<Tuned, PlanError> {
    let mut candidates = vec![
        Strategy::DagGreedyRefined,
        Strategy::DagMultilevel,
        Strategy::DagAnneal,
    ];
    if g.is_pipeline() {
        candidates.push(Strategy::PipelineGreedy2M);
        candidates.push(Strategy::PipelineDp);
    }
    if g.node_count() <= ccs_partition::dag_exact::MAX_EXACT_NODES {
        candidates.push(Strategy::DagExact);
    }

    let mut trials = Vec::new();
    let mut best: Option<(f64, Strategy)> = None;
    for &strategy in &candidates {
        let p = Planner {
            strategy,
            ..*planner
        };
        let Ok(plan) = p.plan(g, trial_horizon) else {
            continue;
        };
        let Ok(rep) = p.evaluate(g, &plan) else {
            continue;
        };
        let mpo = rep.stats.misses as f64 / rep.outputs.max(1) as f64;
        trials.push(Trial {
            strategy,
            strategy_used: plan.strategy_used,
            misses_per_output: mpo,
            components: plan.partition.num_components(),
            bandwidth: plan.bandwidth.to_f64(),
        });
        if best.is_none_or(|(b, _)| mpo < b) {
            best = Some((mpo, strategy));
        }
    }
    let (_, strategy) = best.ok_or(PlanError::Infeasible {
        bound: planner.params.capacity,
        max_state: g.max_state(),
    })?;
    let winner = Planner {
        strategy,
        ..*planner
    };
    let plan = winner.plan(g, final_horizon)?;
    Ok(Tuned { plan, trials })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_cachesim::CacheParams;
    use ccs_graph::gen::{self, PipelineCfg, StateDist};

    #[test]
    fn autotune_tries_pipeline_strategies() {
        let g = gen::pipeline(
            &PipelineCfg {
                len: 20,
                state: StateDist::Uniform(16, 64),
                max_q: 3,
                max_rate_scale: 2,
            },
            3,
        );
        let planner = Planner::new(CacheParams::new(1024, 16));
        let tuned = autotune(
            &planner,
            &g,
            Horizon::SinkFirings(200),
            Horizon::SinkFirings(500),
        )
        .unwrap();
        assert!(tuned.trials.len() >= 2, "{:?}", tuned.trials);
        // The chosen plan's trial must be the minimum.
        let min = tuned
            .trials
            .iter()
            .map(|t| t.misses_per_output)
            .fold(f64::INFINITY, f64::min);
        assert!(tuned
            .trials
            .iter()
            .any(|t| (t.misses_per_output - min).abs() < 1e-12));
        // And it evaluates fine at the final horizon.
        let rep = planner.evaluate(&g, &tuned.plan).unwrap();
        assert!(rep.outputs >= 500);
    }

    #[test]
    fn autotune_small_dag_includes_exact() {
        let g = gen::split_join(2, 2, StateDist::Fixed(24), 1);
        let planner = Planner::new(CacheParams::new(512, 16));
        let tuned = autotune(&planner, &g, Horizon::Rounds(1), Horizon::Rounds(2)).unwrap();
        assert!(tuned
            .trials
            .iter()
            .any(|t| t.strategy == Strategy::DagExact));
    }

    #[test]
    fn autotune_errors_when_nothing_fits() {
        let g = gen::pipeline_uniform(4, 100_000);
        let planner = Planner::new(CacheParams::new(256, 16));
        assert!(autotune(&planner, &g, Horizon::Rounds(1), Horizon::Rounds(1)).is_err());
    }
}
