//! # ccs-core — cache-conscious scheduling of streaming applications
//!
//! The public facade of this reproduction of *"Cache-Conscious Scheduling
//! of Streaming Applications"* (Agrawal, Fineman, Krage, Leiserson,
//! Toledo — SPAA 2012).
//!
//! The paper's result: scheduling a synchronous-dataflow graph to
//! minimize cache misses reduces to finding a *well-ordered partition* of
//! its modules into cache-sized components minimizing *bandwidth* (items
//! crossing components per input); the induced two-level schedule is
//! within a constant factor of any schedule, given constant-factor cache
//! augmentation.
//!
//! * [`Planner`] — graph + cache parameters → partition + schedule
//!   ([`Plan`]), with pluggable [`Strategy`].
//! * [`bounds`] — the paper's lower-bound quantities (Theorem 3 for
//!   pipelines, `minBW₃` for dags), for experiment tables.
//! * [`compare`] — run every applicable scheduler on a workload and
//!   tabulate misses per output.
//!
//! ```
//! use ccs_core::prelude::*;
//!
//! let graph = ccs_graph::gen::pipeline_uniform(24, 128); // 24 modules
//! let planner = Planner::new(CacheParams::new(1024, 16));
//! let plan = planner.plan(&graph, Horizon::SinkFirings(1000)).unwrap();
//! let report = planner.evaluate(&graph, &plan).unwrap();
//! assert!(report.outputs >= 1000);
//! println!("{} misses for {} outputs via {} components",
//!          report.stats.misses, report.outputs,
//!          plan.partition.num_components());
//! ```

pub mod autotune;
pub mod bounds;
pub mod compare;
pub mod planner;
pub mod report;

pub use planner::{Horizon, ParallelRun, Plan, PlanError, Planner, Strategy};

/// Convenient glob import for downstream code and examples.
pub mod prelude {
    pub use crate::autotune::{autotune, Tuned};
    pub use crate::bounds;
    pub use crate::compare::{compare_schedulers, format_table, Comparison};
    pub use crate::planner::{Horizon, ParallelRun, Plan, PlanError, Planner, Strategy};
    pub use crate::report::Report;
    pub use ccs_cachesim::{CacheParams, CacheStats};
    pub use ccs_exec::{execute_dag, execute_dag_cfg, DagRunStats, Placement, RunConfig};
    pub use ccs_graph::{GraphBuilder, NodeId, RateAnalysis, Ratio, StreamGraph};
    pub use ccs_partition::Partition;
    pub use ccs_sched::{EvalReport, SchedRun};
    pub use ccs_topo::{TopoSpec, Topology};
}
