//! The high-level planner: graph + cache → partition + schedule.

use ccs_cachesim::CacheParams;
use ccs_exec::{execute_dag_cfg, DagExecError, DagRunStats, RunConfig};
use ccs_graph::{RateAnalysis, RateError, Ratio, StreamGraph};
use ccs_partition::{dag_exact, dag_greedy, dag_local, pipeline, Partition};
use ccs_runtime::Instance;
use ccs_sched::{partitioned, EvalReport, ExecError, ExecOptions, Executor, SchedRun};
use std::fmt;

/// How far to run a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Horizon {
    /// High-level rounds (each round moves one granularity `T` of input
    /// through the whole graph).
    Rounds(u64),
    /// Fire the sink at least this many times.
    SinkFirings(u64),
}

/// Partitioning strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's Theorem 5 greedy 2M-segmentation (pipelines only).
    PipelineGreedy2M,
    /// Minimum-bandwidth segmentation by dynamic programming (pipelines
    /// only).
    PipelineDp,
    /// Greedy topological segmentation plus local-search refinement.
    DagGreedyRefined,
    /// Multilevel coarsen/partition/refine (Hendrickson–Leland style).
    DagMultilevel,
    /// Simulated annealing seeded by the refined greedy.
    DagAnneal,
    /// Exact exponential partitioner (up to 20 nodes).
    DagExact,
    /// Pick automatically: pipelines use Greedy2M; small dags use the
    /// exact solver; everything else uses greedy + refinement.
    Auto,
}

/// Errors from planning or evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    Rates(RateError),
    Pipeline(pipeline::PipelineError),
    Sched(partitioned::PartSchedError),
    Exec(ExecError),
    /// The parallel dag executor rejected the plan.
    Parallel(DagExecError),
    /// Strategy requires a pipeline but the graph is not one.
    NotAPipeline,
    /// No bounded partition exists (a module exceeds the bound).
    Infeasible {
        bound: u64,
        max_state: u64,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Rates(e) => write!(f, "rate analysis failed: {e}"),
            PlanError::Pipeline(e) => write!(f, "pipeline partitioning failed: {e}"),
            PlanError::Sched(e) => write!(f, "scheduling failed: {e}"),
            PlanError::Exec(e) => write!(f, "execution failed: {e}"),
            PlanError::Parallel(e) => {
                write!(f, "parallel execution failed: {e}")
            }
            PlanError::NotAPipeline => write!(f, "strategy requires a pipeline"),
            PlanError::Infeasible { bound, max_state } => write!(
                f,
                "no partition: max module state {max_state} exceeds bound {bound}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<RateError> for PlanError {
    fn from(e: RateError) -> Self {
        PlanError::Rates(e)
    }
}
impl From<pipeline::PipelineError> for PlanError {
    fn from(e: pipeline::PipelineError) -> Self {
        PlanError::Pipeline(e)
    }
}
impl From<partitioned::PartSchedError> for PlanError {
    fn from(e: partitioned::PartSchedError) -> Self {
        PlanError::Sched(e)
    }
}
impl From<ExecError> for PlanError {
    fn from(e: ExecError) -> Self {
        PlanError::Exec(e)
    }
}
impl From<DagExecError> for PlanError {
    fn from(e: DagExecError) -> Self {
        PlanError::Parallel(e)
    }
}

/// Outcome of [`Planner::plan_and_run_parallel`]: the chosen partition
/// plus the real multicore execution's statistics.
#[derive(Debug)]
pub struct ParallelRun {
    pub partition: Partition,
    /// Exact bandwidth of the partition (items crossing per source firing).
    pub bandwidth: Ratio,
    /// Which partitioner produced it.
    pub strategy_used: &'static str,
    /// Aggregate and per-worker execution statistics.
    pub stats: DagRunStats,
}

/// A complete cache-conscious execution plan.
#[derive(Clone, Debug)]
pub struct Plan {
    pub partition: Partition,
    /// Exact bandwidth of the partition (items crossing per source firing).
    pub bandwidth: Ratio,
    /// Which partitioner produced it.
    pub strategy_used: &'static str,
    /// The concrete schedule (firing sequence + buffer capacities).
    pub run: SchedRun,
    /// Predicted upper bound on misses per input in the DAM model:
    /// `bandwidth / B` plus the amortized state term (reported for
    /// experiment tables; the measured value comes from `evaluate`).
    pub predicted_misses_per_input: f64,
}

/// Planner configuration. The defaults encode the paper's constants: the
/// Theorem 5 partition parameter is `M/8` (its components can reach `8m`,
/// so they then fit the actual cache), and bounded partitions for general
/// dags target `M/2`, leaving headroom for streaming blocks.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    pub params: CacheParams,
    pub strategy: Strategy,
    /// Partition parameter for the Theorem 5 greedy (default `M/8`).
    pub theorem5_m: Option<u64>,
    /// State bound for DP/dag partitioners (default `M/2`).
    pub bound: Option<u64>,
}

impl Planner {
    pub fn new(params: CacheParams) -> Planner {
        Planner {
            params,
            strategy: Strategy::Auto,
            theorem5_m: None,
            bound: None,
        }
    }

    pub fn with_strategy(mut self, strategy: Strategy) -> Planner {
        self.strategy = strategy;
        self
    }

    fn t5_m(&self) -> u64 {
        self.theorem5_m.unwrap_or((self.params.capacity / 8).max(1))
    }

    fn dag_bound(&self) -> u64 {
        self.bound.unwrap_or((self.params.capacity / 2).max(1))
    }

    /// Partition `g` according to the configured strategy.
    pub fn partition(
        &self,
        g: &StreamGraph,
        ra: &RateAnalysis,
    ) -> Result<(Partition, Ratio, &'static str), PlanError> {
        let strategy = match self.strategy {
            Strategy::Auto => {
                if g.is_pipeline() {
                    Strategy::PipelineGreedy2M
                } else if g.node_count() <= 16 {
                    Strategy::DagExact
                } else {
                    Strategy::DagGreedyRefined
                }
            }
            s => s,
        };
        match strategy {
            Strategy::PipelineGreedy2M => {
                let pp = pipeline::greedy_theorem5(g, ra, self.t5_m())?;
                Ok((pp.partition, pp.bandwidth, "pipeline-greedy-2m"))
            }
            Strategy::PipelineDp => {
                let pp = pipeline::dp_min_bandwidth(g, ra, self.dag_bound())?;
                Ok((pp.partition, pp.bandwidth, "pipeline-dp"))
            }
            Strategy::DagGreedyRefined => {
                let bound = self.dag_bound();
                if g.max_state() > bound {
                    return Err(PlanError::Infeasible {
                        bound,
                        max_state: g.max_state(),
                    });
                }
                let p0 = dag_greedy::greedy_best(g, ra, bound);
                let p = dag_local::refine(g, ra, bound, &p0, 16);
                let bw = p.bandwidth(g, ra);
                Ok((p, bw, "dag-greedy-refined"))
            }
            Strategy::DagMultilevel => {
                let bound = self.dag_bound();
                if g.max_state() > bound {
                    return Err(PlanError::Infeasible {
                        bound,
                        max_state: g.max_state(),
                    });
                }
                let p = ccs_partition::multilevel::multilevel(
                    g,
                    ra,
                    bound,
                    &ccs_partition::multilevel::MultilevelCfg::default(),
                );
                let bw = p.bandwidth(g, ra);
                Ok((p, bw, "dag-multilevel"))
            }
            Strategy::DagAnneal => {
                let bound = self.dag_bound();
                if g.max_state() > bound {
                    return Err(PlanError::Infeasible {
                        bound,
                        max_state: g.max_state(),
                    });
                }
                let p0 = dag_greedy::greedy_best(g, ra, bound);
                let p0 = dag_local::refine(g, ra, bound, &p0, 16);
                let p = ccs_partition::annealing::anneal(
                    g,
                    ra,
                    bound,
                    &p0,
                    &ccs_partition::annealing::AnnealCfg::default(),
                );
                let bw = p.bandwidth(g, ra);
                Ok((p, bw, "dag-anneal"))
            }
            Strategy::DagExact => {
                let bound = self.dag_bound();
                match dag_exact::min_bandwidth_exact(g, ra, bound) {
                    Some((p, bw)) => Ok((p, bw, "dag-exact")),
                    None => Err(PlanError::Infeasible {
                        bound,
                        max_state: g.max_state(),
                    }),
                }
            }
            Strategy::Auto => unreachable!("resolved above"),
        }
    }

    /// Produce a complete plan: partition plus schedule for `horizon`.
    pub fn plan(&self, g: &StreamGraph, horizon: Horizon) -> Result<Plan, PlanError> {
        let ra = RateAnalysis::analyze_single_io(g)?;
        let (partition, bandwidth, strategy_used) = self.partition(g, &ra)?;
        let m_items = self.params.capacity;

        // Schedule: dynamic for pipelines with a sink target, otherwise
        // the static round-based schedulers.
        let run = if g.is_pipeline() {
            match horizon {
                Horizon::SinkFirings(t) => {
                    partitioned::pipeline_dynamic(g, &ra, &partition, m_items, t)?
                }
                Horizon::Rounds(r) => {
                    if g.is_homogeneous() {
                        partitioned::homogeneous(g, &ra, &partition, m_items, r)?
                    } else {
                        partitioned::inhomogeneous(g, &ra, &partition, m_items, r)?
                    }
                }
            }
        } else {
            let rounds = match horizon {
                Horizon::Rounds(r) => r,
                Horizon::SinkFirings(t) => {
                    // Sink firings per round: T·gain(sink).
                    let sink = ra.sink.expect("single sink");
                    let tgran = partitioned::granularity_t(g, &ra, m_items)?;
                    let per_round = (Ratio::integer(tgran as i128) * ra.gain(sink))
                        .floor()
                        .max(1) as u64;
                    t.div_ceil(per_round)
                }
            };
            if g.is_homogeneous() {
                partitioned::homogeneous(g, &ra, &partition, m_items, rounds)?
            } else {
                partitioned::inhomogeneous(g, &ra, &partition, m_items, rounds)?
            }
        };

        // Predicted DAM cost per input: cross traffic (bandwidth/B) plus
        // the amortized state reload term Σ s(V_i) / (M·B) per input.
        let b = self.params.block as f64;
        let state_term = g.total_state() as f64 / (self.params.capacity as f64 * b);
        let predicted = bandwidth.to_f64() * 2.0 / b + state_term + 2.0 / b;
        Ok(Plan {
            partition,
            bandwidth,
            strategy_used,
            run,
            predicted_misses_per_input: predicted,
        })
    }

    /// Partition the bound instance's graph, then run it for real on
    /// segment-affine threads via the cache-aware dag executor
    /// (`ccs-exec`): `rounds` granularity-`T` batches per segment, with
    /// the configured partitioning strategy and the worker count,
    /// placement policy, machine topology, and core pinning of `cfg`.
    ///
    /// Multi-source/multi-sink graphs (which the paper's schedulers
    /// reject) are accepted: the instance is automatically rebuilt over
    /// `add_super_endpoints` — a unit-state super-source/super-sink pair
    /// restores the single-I/O form while preserving rate matching and
    /// the original kernels.
    pub fn plan_and_run_parallel(
        &self,
        inst: Instance,
        rounds: u64,
        cfg: &RunConfig,
    ) -> Result<ParallelRun, PlanError> {
        let inst = if inst.graph.single_source().is_none() || inst.graph.single_sink().is_none() {
            // Surface unbalanced rates as a planning error instead of
            // letting the augmentation panic on them.
            RateAnalysis::analyze(&inst.graph)?;
            inst.with_super_endpoints()
        } else {
            inst
        };
        let ra = RateAnalysis::analyze_single_io(&inst.graph)?;
        let (partition, bandwidth, strategy_used) = self.partition(&inst.graph, &ra)?;
        let stats = execute_dag_cfg(inst, &ra, &partition, self.params.capacity, rounds, cfg)?;
        Ok(ParallelRun {
            partition,
            bandwidth,
            strategy_used,
            stats,
        })
    }

    /// Execute a plan in the DAM simulator and report cache statistics.
    pub fn evaluate(&self, g: &StreamGraph, plan: &Plan) -> Result<EvalReport, PlanError> {
        self.evaluate_with(g, &plan.run, ExecOptions::default())
    }

    /// Execute any schedule under this planner's cache parameters.
    pub fn evaluate_with(
        &self,
        g: &StreamGraph,
        run: &SchedRun,
        opts: ExecOptions,
    ) -> Result<EvalReport, PlanError> {
        let ra = RateAnalysis::analyze_single_io(g)?;
        let mut ex = Executor::new(g, &ra, run.capacities.clone(), self.params, opts);
        ex.run(&run.firings)?;
        Ok(ex.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};

    #[test]
    fn auto_plans_pipeline() {
        let g = gen::pipeline_uniform(24, 128);
        let planner = Planner::new(CacheParams::new(1024, 16));
        let plan = planner.plan(&g, Horizon::SinkFirings(500)).unwrap();
        assert_eq!(plan.strategy_used, "pipeline-greedy-2m");
        assert!(plan.partition.num_components() > 1);
        let rep = planner.evaluate(&g, &plan).unwrap();
        assert!(rep.outputs >= 500);
    }

    #[test]
    fn auto_plans_small_dag_exactly() {
        let g = gen::split_join(2, 2, StateDist::Fixed(32), 3);
        let planner = Planner::new(CacheParams::new(256, 16));
        let plan = planner.plan(&g, Horizon::Rounds(2)).unwrap();
        assert_eq!(plan.strategy_used, "dag-exact");
        let rep = planner.evaluate(&g, &plan).unwrap();
        assert!(rep.outputs > 0);
    }

    #[test]
    fn auto_plans_large_dag_heuristically() {
        let cfg = LayeredCfg {
            layers: 6,
            max_width: 5,
            density: 0.3,
            state: StateDist::Uniform(16, 64),
            max_q: 2,
        };
        let mut g = gen::layered(&cfg, 3);
        // Ensure it is big enough to bypass the exact solver.
        while g.node_count() <= 16 {
            g = gen::layered(&cfg, 17);
        }
        let planner = Planner::new(CacheParams::new(512, 16));
        let plan = planner.plan(&g, Horizon::Rounds(2)).unwrap();
        assert_eq!(plan.strategy_used, "dag-greedy-refined");
        planner.evaluate(&g, &plan).unwrap();
    }

    #[test]
    fn infeasible_when_module_exceeds_bound() {
        let g = gen::pipeline_uniform(4, 4096);
        let planner =
            Planner::new(CacheParams::new(256, 16)).with_strategy(Strategy::DagGreedyRefined);
        let err = planner.plan(&g, Horizon::Rounds(1)).unwrap_err();
        assert!(matches!(err, PlanError::Infeasible { .. }));
    }

    #[test]
    fn dp_strategy_on_pipeline() {
        let g = gen::pipeline(
            &PipelineCfg {
                len: 16,
                state: StateDist::Uniform(16, 100),
                max_q: 3,
                max_rate_scale: 2,
            },
            5,
        );
        let planner = Planner::new(CacheParams::new(512, 16)).with_strategy(Strategy::PipelineDp);
        let plan = planner.plan(&g, Horizon::Rounds(2)).unwrap();
        assert_eq!(plan.strategy_used, "pipeline-dp");
        assert!(plan.partition.max_component_state(&g) <= 256);
        planner.evaluate(&g, &plan).unwrap();
    }

    #[test]
    fn parallel_run_with_llc_placement_and_topology() {
        use ccs_exec::Placement;
        use ccs_topo::{TopoSpec, Topology};
        let g = gen::pipeline_uniform(12, 64);
        let planner = Planner::new(CacheParams::new(512, 16));
        let topo = Topology::synthetic(&TopoSpec::new(1, 2, 2));
        let cfg = RunConfig::new(4)
            .with_placement(Placement::Llc)
            .with_topology(topo);
        let inst = Instance::synthetic(g);
        let pr = planner.plan_and_run_parallel(inst, 2, &cfg).unwrap();
        assert!(pr.stats.run.digest.is_some());
        assert!(pr.partition.num_components() > 1);
    }

    #[test]
    fn parallel_run_auto_augments_multi_io() {
        use ccs_exec::Placement;
        // Fan-in/fan-out: two sources, two sinks. The planner must
        // apply the super-endpoint transform instead of failing rate
        // analysis.
        let mut b = ccs_graph::GraphBuilder::new();
        let s1 = b.node("src1", 16);
        let s2 = b.node("src2", 16);
        let m = b.node("mix", 32);
        let t1 = b.node("sink1", 16);
        let t2 = b.node("sink2", 16);
        b.edge(s1, m, 1, 1);
        b.edge(s2, m, 1, 1);
        b.edge(m, t1, 1, 1);
        b.edge(m, t2, 1, 1);
        let g = b.build().unwrap();
        assert!(g.single_source().is_none());
        let planner = Planner::new(CacheParams::new(64, 8));
        let cfg = RunConfig::new(2).with_placement(Placement::CommGreedy);
        let inst = Instance::synthetic(g.clone());
        let pr = planner.plan_and_run_parallel(inst, 2, &cfg).unwrap();
        assert!(pr.stats.run.digest.is_some());
        // Identical reruns are bit-identical (the augmentation is
        // deterministic).
        let again = planner
            .plan_and_run_parallel(Instance::synthetic(g), 2, &cfg)
            .unwrap();
        assert_eq!(pr.stats.run.digest, again.stats.run.digest);
    }

    #[test]
    fn predicted_cost_is_finite_positive() {
        let g = gen::pipeline_uniform(8, 64);
        let planner = Planner::new(CacheParams::new(1024, 16));
        let plan = planner.plan(&g, Horizon::Rounds(1)).unwrap();
        assert!(plan.predicted_misses_per_input.is_finite());
        assert!(plan.predicted_misses_per_input > 0.0);
    }
}
