//! Statistics for paired repeated-run experiments (`e21_steady_state`).
//!
//! Hardware counter readings are noisy: the OS schedules other work,
//! the PMU multiplexes, frequencies drift. A single run per cell (as in
//! `e20_cache_counters`) is a point estimate; comparing two point
//! estimates says nothing about whether an observed llc-vs-rr delta is
//! signal or noise. The tools here turn R interleaved repeats per cell
//! into a statistical claim:
//!
//! * [`Summary`] — per-cell sample mean and (sample) standard
//!   deviation;
//! * [`paired_deltas`] — per-repeat differences between two cells run
//!   back to back (pairing removes the run-to-run drift both cells
//!   share);
//! * [`bootstrap_mean_ci`] — a percentile-bootstrap confidence interval
//!   for the mean, driven by the *deterministic* vendored `SmallRng`
//!   (splitmix64), so a report is bit-reproducible for a given seed.
//!
//! All pure `f64` math, unit-tested without hardware.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sample mean; `None` for an empty sample.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample standard deviation (Bessel-corrected, `n - 1` denominator);
/// `None` below two observations.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Mean and spread of one cell's repeated measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation; `None` below two observations.
    pub stddev: Option<f64>,
}

impl Summary {
    /// Summarize a sample; `None` when it is empty.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        Some(Summary {
            n: xs.len(),
            mean: mean(xs)?,
            stddev: stddev(xs),
        })
    }
}

/// Per-repeat differences `a[i] - b[i]` between two cells measured in
/// the same interleaved repeat. The inputs must be index-aligned —
/// `a[i]` and `b[i]` from the same repeat — so if a repeat is dropped
/// (e.g. to counter unavailability) it must be dropped from *both*
/// series before calling this, as `e21_steady_state` does; truncating
/// just one series would pair measurements from different repeats and
/// defeat the drift cancellation pairing exists for.
pub fn paired_deltas(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Percentile-bootstrap confidence interval for the mean of `xs`:
/// resample `xs` with replacement `iters` times, take the empirical
/// `(1-confidence)/2` and `1-(1-confidence)/2` quantiles of the
/// resampled means. Deterministic for a given `seed` (vendored
/// splitmix64 `SmallRng`). `None` for an empty sample, degenerate
/// `iters = 0`, or a `confidence` outside `(0, 1)`.
///
/// With very small R (CI smoke runs use R = 2) the interval is honest
/// but wide — it brackets the handful of achievable resample means —
/// which is exactly the warning a reader should get from two repeats.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    iters: usize,
    confidence: f64,
    seed: u64,
) -> Option<(f64, f64)> {
    if xs.is_empty() || iters == 0 || !(confidence > 0.0 && confidence < 1.0) {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(iters);
    for _ in 0..iters {
        let s: f64 = (0..xs.len()).map(|_| xs[rng.gen_range(0..xs.len())]).sum();
        means.push(s / xs.len() as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - confidence) / 2.0;
    let pick = |q: f64| {
        let i = ((iters as f64 - 1.0) * q).round() as usize;
        means[i.min(iters - 1)]
    };
    Some((pick(alpha), pick(1.0 - alpha)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0]), Some(2.0));
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(stddev(&[1.0]), None);
        // {2, 4, 4, 4, 5, 5, 7, 9}: sample variance 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let sd = stddev(&xs).unwrap();
        assert!((sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn paired_deltas_pair_by_index() {
        assert_eq!(
            paired_deltas(&[3.0, 5.0, 7.0], &[1.0, 1.0, 10.0]),
            vec![2.0, 4.0, -3.0]
        );
        // Unequal lengths: only the paired prefix.
        assert_eq!(paired_deltas(&[3.0, 5.0], &[1.0]), vec![2.0]);
        assert!(paired_deltas(&[], &[1.0]).is_empty());
    }

    #[test]
    fn bootstrap_is_deterministic_and_brackets_the_mean() {
        let xs = [4.0, 4.5, 5.0, 5.5, 6.0, 5.2, 4.8, 5.1];
        let a = bootstrap_mean_ci(&xs, 1000, 0.9, 42).unwrap();
        let b = bootstrap_mean_ci(&xs, 1000, 0.9, 42).unwrap();
        assert_eq!(a, b, "same seed, same interval");
        let c = bootstrap_mean_ci(&xs, 1000, 0.9, 43).unwrap();
        assert_ne!(a, c, "different seed, different resamples");
        let m = mean(&xs).unwrap();
        assert!(a.0 <= m && m <= a.1, "{a:?} should bracket {m}");
        assert!(a.0 >= 4.0 && a.1 <= 6.0, "within the sample range");
        // Wider confidence, wider (or equal) interval.
        let wide = bootstrap_mean_ci(&xs, 1000, 0.99, 42).unwrap();
        assert!(wide.0 <= a.0 && wide.1 >= a.1);
    }

    #[test]
    fn bootstrap_degenerate_inputs() {
        assert_eq!(bootstrap_mean_ci(&[], 100, 0.9, 1), None);
        assert_eq!(bootstrap_mean_ci(&[1.0], 0, 0.9, 1), None);
        assert_eq!(bootstrap_mean_ci(&[1.0], 100, 1.0, 1), None);
        assert_eq!(bootstrap_mean_ci(&[1.0], 100, 0.0, 1), None);
        // A constant sample has a zero-width interval.
        let ci = bootstrap_mean_ci(&[3.0, 3.0, 3.0], 200, 0.9, 7).unwrap();
        assert_eq!(ci, (3.0, 3.0));
        // A single observation resamples to itself.
        let ci = bootstrap_mean_ci(&[2.5], 100, 0.9, 7).unwrap();
        assert_eq!(ci, (2.5, 2.5));
    }
}
