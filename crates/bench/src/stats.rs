//! Statistics for paired repeated-run experiments (`ccs_bench::sweep`).
//!
//! Hardware counter readings are noisy: the OS schedules other work,
//! the PMU multiplexes, frequencies drift. A single run per cell (as in
//! `e20_cache_counters`) is a point estimate; comparing two point
//! estimates says nothing about whether an observed llc-vs-rr delta is
//! signal or noise. The tools here turn R interleaved repeats per cell
//! into a statistical claim:
//!
//! * [`Summary`] — per-cell sample mean and (sample) standard
//!   deviation;
//! * [`paired_deltas`] — per-repeat differences between two cells run
//!   back to back (pairing removes the run-to-run drift both cells
//!   share);
//! * [`bootstrap_mean_ci`] — a percentile-bootstrap confidence interval
//!   for the mean, driven by the *deterministic* vendored `SmallRng`
//!   (splitmix64), so a report is bit-reproducible for a given seed;
//! * [`bootstrap_mean_pvalue`] — a two-sided bootstrap test of
//!   `mean == 0` over the same deterministic resampling;
//! * [`benjamini_hochberg`] — step-up false-discovery-rate adjustment
//!   across a *family* of comparisons, so a sweep that declares many
//!   pairwise deltas does not manufacture significance by volume.
//!
//! All pure `f64` math, unit-tested without hardware.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sample mean; `None` for an empty sample.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample standard deviation (Bessel-corrected, `n - 1` denominator);
/// `None` below two observations.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Mean and spread of one cell's repeated measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation; `None` below two observations.
    pub stddev: Option<f64>,
}

impl Summary {
    /// Summarize a sample; `None` when it is empty.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        Some(Summary {
            n: xs.len(),
            mean: mean(xs)?,
            stddev: stddev(xs),
        })
    }
}

/// Per-repeat differences `a[i] - b[i]` between two cells measured in
/// the same interleaved repeat. The inputs must be index-aligned —
/// `a[i]` and `b[i]` from the same repeat — so if a repeat is dropped
/// (e.g. to counter unavailability) it must be dropped from *both*
/// series before calling this, as `e21_steady_state` does; truncating
/// just one series would pair measurements from different repeats and
/// defeat the drift cancellation pairing exists for.
pub fn paired_deltas(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Percentile-bootstrap confidence interval for the mean of `xs`:
/// resample `xs` with replacement `iters` times, take the empirical
/// `(1-confidence)/2` and `1-(1-confidence)/2` quantiles of the
/// resampled means. Deterministic for a given `seed` (vendored
/// splitmix64 `SmallRng`). `None` for an empty sample, degenerate
/// `iters = 0`, or a `confidence` outside `(0, 1)`.
///
/// With very small R (CI smoke runs use R = 2) the interval is honest
/// but wide — it brackets the handful of achievable resample means —
/// which is exactly the warning a reader should get from two repeats.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    iters: usize,
    confidence: f64,
    seed: u64,
) -> Option<(f64, f64)> {
    if xs.is_empty() || iters == 0 || !(confidence > 0.0 && confidence < 1.0) {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(iters);
    for _ in 0..iters {
        let s: f64 = (0..xs.len()).map(|_| xs[rng.gen_range(0..xs.len())]).sum();
        means.push(s / xs.len() as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - confidence) / 2.0;
    let pick = |q: f64| {
        let i = ((iters as f64 - 1.0) * q).round() as usize;
        means[i.min(iters - 1)]
    };
    Some((pick(alpha), pick(1.0 - alpha)))
}

/// Two-sided percentile-bootstrap p-value for the null hypothesis that
/// the mean of `xs` is zero: resample with replacement `iters` times
/// and take twice the smaller tail fraction of resampled means landing
/// at or beyond zero, with add-one smoothing so the p-value never
/// reaches an impossible exact 0 (the floor is `1/(iters+1)`).
/// Deterministic for a given `seed` — the same splitmix64 stream as
/// [`bootstrap_mean_ci`]. `None` for an empty sample or `iters = 0`.
///
/// This is the per-comparison input to [`benjamini_hochberg`]: a sweep
/// computes one such p-value per declared paired delta, then adjusts
/// the whole family.
pub fn bootstrap_mean_pvalue(xs: &[f64], iters: usize, seed: u64) -> Option<f64> {
    if xs.is_empty() || iters == 0 {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let (mut le, mut ge) = (0usize, 0usize);
    for _ in 0..iters {
        let s: f64 = (0..xs.len()).map(|_| xs[rng.gen_range(0..xs.len())]).sum();
        let m = s / xs.len() as f64;
        if m <= 0.0 {
            le += 1;
        }
        if m >= 0.0 {
            ge += 1;
        }
    }
    let p_lo = (le + 1) as f64 / (iters + 1) as f64;
    let p_hi = (ge + 1) as f64 / (iters + 1) as f64;
    Some((2.0 * p_lo.min(p_hi)).min(1.0))
}

/// Benjamini–Hochberg step-up adjustment: given the raw p-values of a
/// family of comparisons, returns the adjusted p-values (q-values) in
/// the same order. Rejecting every comparison with `adjusted <= alpha`
/// controls the false-discovery rate at `alpha`. The adjustment is
/// `p[i] · n / rank(i)` made monotone from the largest rank down and
/// clamped to 1. Empty input yields an empty vector; p-values must be
/// finite.
pub fn benjamini_hochberg(ps: &[f64]) -> Vec<f64> {
    let n = ps.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| ps[a].partial_cmp(&ps[b]).expect("finite p-values"));
    let mut adjusted = vec![0.0f64; n];
    let mut running = 1.0f64;
    for rank in (0..n).rev() {
        let i = order[rank];
        running = running.min(ps[i] * n as f64 / (rank + 1) as f64);
        adjusted[i] = running.min(1.0);
    }
    adjusted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0]), Some(2.0));
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(stddev(&[1.0]), None);
        // {2, 4, 4, 4, 5, 5, 7, 9}: sample variance 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let sd = stddev(&xs).unwrap();
        assert!((sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn paired_deltas_pair_by_index() {
        assert_eq!(
            paired_deltas(&[3.0, 5.0, 7.0], &[1.0, 1.0, 10.0]),
            vec![2.0, 4.0, -3.0]
        );
        // Unequal lengths: only the paired prefix.
        assert_eq!(paired_deltas(&[3.0, 5.0], &[1.0]), vec![2.0]);
        assert!(paired_deltas(&[], &[1.0]).is_empty());
    }

    #[test]
    fn bootstrap_is_deterministic_and_brackets_the_mean() {
        let xs = [4.0, 4.5, 5.0, 5.5, 6.0, 5.2, 4.8, 5.1];
        let a = bootstrap_mean_ci(&xs, 1000, 0.9, 42).unwrap();
        let b = bootstrap_mean_ci(&xs, 1000, 0.9, 42).unwrap();
        assert_eq!(a, b, "same seed, same interval");
        let c = bootstrap_mean_ci(&xs, 1000, 0.9, 43).unwrap();
        assert_ne!(a, c, "different seed, different resamples");
        let m = mean(&xs).unwrap();
        assert!(a.0 <= m && m <= a.1, "{a:?} should bracket {m}");
        assert!(a.0 >= 4.0 && a.1 <= 6.0, "within the sample range");
        // Wider confidence, wider (or equal) interval.
        let wide = bootstrap_mean_ci(&xs, 1000, 0.99, 42).unwrap();
        assert!(wide.0 <= a.0 && wide.1 >= a.1);
    }

    #[test]
    fn bootstrap_pvalue_is_deterministic_and_directionless() {
        // A sample far from zero: every resampled mean is positive, so
        // the p-value sits at the smoothing floor, 2/(iters+1).
        let far = [5.0, 5.5, 6.0, 5.2, 5.8];
        let p = bootstrap_mean_pvalue(&far, 999, 42).unwrap();
        assert!((p - 2.0 / 1000.0).abs() < 1e-12, "{p}");
        // Same for the mirrored sample (two-sided symmetry).
        let neg: Vec<f64> = far.iter().map(|x| -x).collect();
        assert_eq!(bootstrap_mean_pvalue(&neg, 999, 42), Some(p));
        // A sample straddling zero is not significant.
        let noisy = [1.0, -1.2, 0.8, -0.9, 0.3, -0.1];
        let p = bootstrap_mean_pvalue(&noisy, 999, 42).unwrap();
        assert!(p > 0.1, "{p}");
        // Deterministic in the seed.
        assert_eq!(
            bootstrap_mean_pvalue(&noisy, 999, 7),
            bootstrap_mean_pvalue(&noisy, 999, 7)
        );
        // Degenerate inputs.
        assert_eq!(bootstrap_mean_pvalue(&[], 100, 1), None);
        assert_eq!(bootstrap_mean_pvalue(&[1.0], 0, 1), None);
    }

    #[test]
    fn benjamini_hochberg_matches_hand_computed_fixtures() {
        // n = 4, ps sorted: .005, .01, .03, .04 with raw step-up values
        // .02, .02, .04, .04 — already monotone, so the adjusted
        // p-values (in input order) are:
        let adj = benjamini_hochberg(&[0.01, 0.04, 0.03, 0.005]);
        let want = [0.02, 0.04, 0.04, 0.02];
        for (a, w) in adj.iter().zip(want) {
            assert!((a - w).abs() < 1e-12, "{adj:?}");
        }
        // Monotone enforcement: raw values .06, .045, .04 collapse to
        // the running minimum .04 everywhere.
        let adj = benjamini_hochberg(&[0.02, 0.03, 0.04]);
        for a in &adj {
            assert!((a - 0.04).abs() < 1e-12, "{adj:?}");
        }
        // A single comparison is untouched.
        assert_eq!(benjamini_hochberg(&[0.2]), vec![0.2]);
        // Clamped to 1.
        let adj = benjamini_hochberg(&[0.9, 0.95]);
        assert!(adj.iter().all(|a| *a <= 1.0), "{adj:?}");
        assert!(benjamini_hochberg(&[]).is_empty());
    }

    #[test]
    fn benjamini_hochberg_rejection_set_is_step_up() {
        // Classic example: alpha = 0.05 over 5 p-values. The largest i
        // with p(i) <= alpha*i/n is i = 2 (0.02 <= 0.02), so exactly
        // the two smallest survive adjustment at 0.05.
        let ps = [0.01, 0.02, 0.04, 0.3, 0.8];
        let adj = benjamini_hochberg(&ps);
        let rejected: Vec<bool> = adj.iter().map(|a| *a <= 0.05).collect();
        assert_eq!(rejected, vec![true, true, false, false, false], "{adj:?}");
        // Adjustment preserves the ordering of the raw p-values.
        for w in ps.windows(2).zip(adj.windows(2)) {
            let ((p1, p2), (a1, a2)) = ((w.0[0], w.0[1]), (w.1[0], w.1[1]));
            assert!((p1 <= p2) == (a1 <= a2));
        }
    }

    #[test]
    fn bootstrap_degenerate_inputs() {
        assert_eq!(bootstrap_mean_ci(&[], 100, 0.9, 1), None);
        assert_eq!(bootstrap_mean_ci(&[1.0], 0, 0.9, 1), None);
        assert_eq!(bootstrap_mean_ci(&[1.0], 100, 1.0, 1), None);
        assert_eq!(bootstrap_mean_ci(&[1.0], 100, 0.0, 1), None);
        // A constant sample has a zero-width interval.
        let ci = bootstrap_mean_ci(&[3.0, 3.0, 3.0], 200, 0.9, 7).unwrap();
        assert_eq!(ci, (3.0, 3.0));
        // A single observation resamples to itself.
        let ci = bootstrap_mean_ci(&[2.5], 100, 0.9, 7).unwrap();
        assert_eq!(ci, (2.5, 2.5));
    }
}
