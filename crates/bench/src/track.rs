//! Cross-run performance tracking: bench history, machine
//! fingerprints, and regression verdicts.
//!
//! A single sweep answers "which cell is faster *today*"; nothing in
//! PRs 3–7 remembered yesterday. This module adds the longitudinal
//! layer behind `ccs bench`:
//!
//! * [`canonical_sweep`] — the fixed grid every tracked run measures
//!   (serial baseline, round-robin, and LLC-aware placement, counters
//!   on), so records are comparable across time.
//! * [`SCHEMA`] (`ccs-bench/v1`) — one compact record per run: the
//!   per-(workload, cell, metric) repeat series and their summaries,
//!   stamped with a git revision, a caller-supplied timestamp, and a
//!   machine [`Fingerprint`].
//! * An NDJSON history store (one record per line, appended under
//!   `results/history/`): [`append_record`], [`load_history`],
//!   [`latest_matching`].
//! * [`compare_records`] — paired per-repeat deltas against the
//!   matching-fingerprint baseline, tested with the same
//!   percentile-bootstrap + Benjamini–Hochberg machinery the sweep
//!   comparisons use, then classified into verdicts
//!   (regressed / improved / unchanged / skipped) with a relative
//!   tolerance band so statistically-significant-but-tiny wobble does
//!   not gate CI.
//! * Text renderers for a record, a comparison, and the
//!   sparkline-per-metric trend view behind `ccs report --history`.
//!
//! Records only compare within a fingerprint: a timing-only container
//! and a PMU-backed workstation produce records that must never be
//! judged against each other, so the baseline lookup skips mismatches
//! instead of raising false regressions.

use crate::stats::{benjamini_hochberg, bootstrap_mean_ci, bootstrap_mean_pvalue, Summary};
use crate::sweep::{self, Cell, Metric, Sweep};
use ccs_exec::Placement;
use serde_json::Value;
use std::error::Error;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Version marker of a bench history record; `ccs report` dispatches on
/// it and the history parser rejects anything else.
pub const SCHEMA: &str = "ccs-bench/v1";

/// Relative tolerance band on PMU-backed machines: a significant mean
/// shift within ±10% still reads "unchanged".
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Wider band for timing-only fingerprints (no counters, wall-clock
/// jitter dominates): ±25%.
pub const TIMING_ONLY_TOLERANCE: f64 = 0.25;

/// Where `ccs bench` appends by default:
/// `results/history/bench.ndjson`.
pub fn default_history_path() -> PathBuf {
    crate::results_dir().join("history").join("bench.ndjson")
}

/// The canonical tracked grid: serial two-level baseline, round-robin
/// parallel, and LLC-aware parallel (2 workers each), counters on,
/// first quarter of the rounds excluded as warmup. Unpinned, so the
/// grid runs identically on restricted CI runners; the machine shape
/// lands in the fingerprint instead.
pub fn canonical_sweep(
    repeats: usize,
    rounds: u64,
    apps: &[String],
) -> Result<Sweep, Box<dyn Error>> {
    canonical_sweep_fused(repeats, rounds, apps, false)
}

/// [`canonical_sweep`] with every cell routed through the fused hot
/// path (`ccs bench --fused`). A distinct grid — and a distinct
/// [`Fingerprint`] — so fused and classic histories never compare
/// against each other.
pub fn canonical_sweep_fused(
    repeats: usize,
    rounds: u64,
    apps: &[String],
    fused: bool,
) -> Result<Sweep, Box<dyn Error>> {
    let mut workloads = Vec::new();
    for a in apps {
        workloads.push(sweep::workload(a).ok_or_else(|| format!("unknown workload '{a}'"))?);
    }
    if workloads.is_empty() {
        return Err("bench needs at least one workload".into());
    }
    let warmup = (rounds / 4).max(1);
    Ok(Sweep::new("bench-canonical")
        .with_repeats(repeats)
        .with_rounds(rounds)
        .with_workloads(workloads)
        .with_cell(
            Cell::serial()
                .with_counters(true)
                .with_warmup(warmup)
                .with_fused(fused),
        )
        .with_cell(
            Cell::parallel(2, Placement::RoundRobin)
                .with_counters(true)
                .with_warmup(warmup)
                .with_fused(fused),
        )
        .with_cell(
            Cell::parallel(2, Placement::Llc)
                .with_counters(true)
                .with_warmup(warmup)
                .with_fused(fused),
        ))
}

/// What must match for two bench records to be comparable: the machine
/// shape, whether counters were real, the warmup discipline, and the
/// exact grid dimensions. Anything else differing is measurement
/// noise; any of these differing is a different experiment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Topology shape, `source/NxCxK` (nodes × llc clusters × cores).
    pub topology: String,
    /// `"pmu"` or `"timing-only"` (probe failed or `CCS_NO_PERF`).
    pub counters: String,
    /// Warmup reset discipline of the grid's cells.
    pub warmup_mode: String,
    /// Interleaved repeats per cell.
    pub repeats: u64,
    /// Batches per segment per run.
    pub rounds: u64,
    /// `cell,cell,... x workload,workload,...`.
    pub grid: String,
    /// Any cell ran the fused hot path. Absent in pre-fused records,
    /// parsed as `false`, so old histories stay valid — and a fused
    /// grid never compares against a classic baseline.
    pub fused: bool,
}

impl Fingerprint {
    /// Fingerprint the current machine + a sweep declaration (the
    /// probe and topology discovery behind
    /// [`sweep::machine_json`]).
    pub fn detect(sweep: &Sweep) -> Fingerprint {
        let machine = sweep::machine_json();
        Fingerprint {
            topology: machine["topology_shape"]
                .as_str()
                .unwrap_or("?")
                .to_string(),
            counters: machine["counters"].as_str().unwrap_or("?").to_string(),
            warmup_mode: sweep
                .cells
                .first()
                .map(|c| c.warmup_mode.name().to_string())
                .unwrap_or_default(),
            repeats: sweep.repeats as u64,
            rounds: sweep.rounds,
            grid: format!(
                "{} x {}",
                sweep
                    .cells
                    .iter()
                    .map(|c| c.label())
                    .collect::<Vec<_>>()
                    .join(","),
                sweep
                    .workloads
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .collect::<Vec<_>>()
                    .join(","),
            ),
            fused: sweep.cells.iter().any(|c| c.fused),
        }
    }

    /// True when every counter reading degraded to wall clock — the
    /// wider tolerance band applies.
    pub fn timing_only(&self) -> bool {
        self.counters == "timing-only"
    }

    /// The JSON block embedded in a record.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "topology": self.topology,
            "counters": self.counters,
            "warmup_mode": self.warmup_mode,
            "repeats": self.repeats,
            "rounds": self.rounds,
            "grid": self.grid,
            "fused": self.fused,
        })
    }

    /// Parse the block back; `None` on a malformed record. A missing
    /// `fused` key (pre-fused records) reads as `false`.
    pub fn from_json(v: &Value) -> Option<Fingerprint> {
        Some(Fingerprint {
            topology: v["topology"].as_str()?.to_string(),
            counters: v["counters"].as_str()?.to_string(),
            warmup_mode: v["warmup_mode"].as_str()?.to_string(),
            repeats: v["repeats"].as_u64()?,
            rounds: v["rounds"].as_u64()?,
            grid: v["grid"].as_str()?.to_string(),
            fused: v["fused"].as_bool().unwrap_or(false),
        })
    }

    /// Records compare only on exact fingerprint equality.
    pub fn matches(&self, other: &Fingerprint) -> bool {
        self == other
    }

    /// One-line text form for reports. Unfused records render exactly
    /// as before the fused field existed (golden fixtures pin this).
    pub fn render(&self) -> String {
        format!(
            "{} | counters: {} | warmup: {} | {}x{} | grid: {}{}",
            self.topology,
            self.counters,
            self.warmup_mode,
            self.repeats,
            self.rounds,
            self.grid,
            if self.fused { " | fused" } else { "" },
        )
    }
}

fn opt(x: Option<f64>) -> Value {
    match x {
        Some(v) => serde_json::json!(v),
        None => Value::Null,
    }
}

/// Build a `ccs-bench/v1` record from a finished `ccs-sweep/v1`
/// document. Honors the `CCS_BENCH_SLOW` test hook (a factor `f > 1`
/// scales wall and stall time up and throughput down, simulating a
/// deliberately slowed executor so the regression gate can be
/// exercised without shipping a slow build).
pub fn record_from_sweep(
    doc: &Value,
    fp: &Fingerprint,
    git_rev: &str,
    timestamp: u64,
) -> Result<Value, Box<dyn Error>> {
    let slow = std::env::var("CCS_BENCH_SLOW")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|f| f.is_finite() && *f > 0.0)
        .unwrap_or(1.0);
    record_from_sweep_scaled(doc, fp, git_rev, timestamp, slow)
}

/// [`record_from_sweep`] with the slow factor passed explicitly
/// (testable without environment races).
pub fn record_from_sweep_scaled(
    doc: &Value,
    fp: &Fingerprint,
    git_rev: &str,
    timestamp: u64,
    slow: f64,
) -> Result<Value, Box<dyn Error>> {
    if doc["schema"].as_str() != Some(sweep::SCHEMA) {
        return Err(format!(
            "not a {} document (schema: {:?})",
            sweep::SCHEMA,
            doc["schema"].as_str()
        )
        .into());
    }
    let Value::Array(cells) = &doc["cells"] else {
        return Err("sweep document has no cells".into());
    };
    let mut series = Vec::new();
    for cell in cells {
        let workload = cell["workload"].as_str().unwrap_or("?");
        let label = cell["label"].as_str().unwrap_or("?");
        let Value::Array(runs) = &cell["runs"] else {
            continue;
        };
        for m in Metric::ALL {
            let scale = match m {
                Metric::WallMs | Metric::StallMs => slow,
                Metric::ItemsPerSec => 1.0 / slow,
                _ => 1.0,
            };
            // Nulls stay null (a repeat where the counter group never
            // opened), so pairing against a baseline drops exactly the
            // repeats that measured nothing.
            let vals: Vec<Value> = runs
                .iter()
                .map(|r| opt(r[m.name()].as_f64().map(|x| x * scale)))
                .collect();
            let xs: Vec<f64> = vals.iter().filter_map(|v| v.as_f64()).collect();
            let Some(s) = Summary::of(&xs) else {
                continue; // metric absent on this cell (e.g. serial stall_ms)
            };
            series.push(serde_json::json!({
                "workload": workload,
                "cell": label,
                "metric": m.name(),
                "runs": Value::Array(vals),
                "mean": s.mean,
                "stddev": opt(s.stddev),
            }));
        }
    }
    Ok(serde_json::json!({
        "schema": SCHEMA,
        "sweep": doc["sweep"].clone(),
        "timestamp": timestamp,
        "git_rev": git_rev,
        "fingerprint": fp.to_json(),
        "machine": doc["machine"].clone(),
        "series": series,
    }))
}

/// Append one record as a compact NDJSON line, creating
/// `results/history/` on first use.
pub fn append_record(path: &Path, record: &Value) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let line = serde_json::to_string(record)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut text = std::fs::read_to_string(path).unwrap_or_default();
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&line);
    text.push('\n');
    std::fs::write(path, text)
}

/// Parse an NDJSON history: one `ccs-bench/v1` record per non-blank
/// line, in file order. A malformed or off-schema line is an error —
/// history corruption should be loud, not silently skipped.
pub fn parse_history(text: &str) -> Result<Vec<Value>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("history line {}: {e}", i + 1))?;
        if v["schema"].as_str() != Some(SCHEMA) {
            return Err(format!(
                "history line {}: not a {SCHEMA} record (schema: {:?})",
                i + 1,
                v["schema"].as_str()
            ));
        }
        records.push(v);
    }
    Ok(records)
}

/// Load a history file; a missing file is an empty history (the first
/// `ccs bench` on a machine seeds it).
pub fn load_history(path: &Path) -> Result<Vec<Value>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_history(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// The newest record whose fingerprint matches — the baseline a fresh
/// run is judged against. Mismatched records (other machines, other
/// grids, timing-only vs pmu) are skipped, never compared.
pub fn latest_matching<'a>(history: &'a [Value], fp: &Fingerprint) -> Option<&'a Value> {
    history
        .iter()
        .rev()
        .find(|r| Fingerprint::from_json(&r["fingerprint"]).is_some_and(|f| f.matches(fp)))
}

/// Outcome of one per-metric baseline comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictKind {
    /// Significant shift beyond tolerance, in the bad direction.
    Regressed,
    /// Significant shift beyond tolerance, in the good direction.
    Improved,
    /// No significant shift, or within the tolerance band.
    Unchanged,
    /// Not comparable (metric absent on one side).
    Skipped,
}

impl VerdictKind {
    /// JSON/report name.
    pub fn name(&self) -> &'static str {
        match self {
            VerdictKind::Regressed => "regressed",
            VerdictKind::Improved => "improved",
            VerdictKind::Unchanged => "unchanged",
            VerdictKind::Skipped => "skipped",
        }
    }
}

/// Relative change of `cur` against `base` (positive = larger). A zero
/// baseline with a nonzero current is an infinite shift — always
/// beyond any tolerance.
pub fn rel_delta(base: f64, cur: f64) -> f64 {
    if base == 0.0 {
        if cur == 0.0 {
            0.0
        } else if cur > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        (cur - base) / base.abs()
    }
}

/// Classify one metric's shift: only a *significant* mean shift whose
/// relative magnitude exceeds the tolerance band earns a directional
/// verdict; everything else is unchanged.
pub fn classify(
    higher_is_better: bool,
    base_mean: f64,
    cur_mean: f64,
    significant: bool,
    tolerance: f64,
) -> VerdictKind {
    let rel = rel_delta(base_mean, cur_mean);
    if !significant || rel.abs() <= tolerance {
        return VerdictKind::Unchanged;
    }
    if (rel > 0.0) == higher_is_better {
        VerdictKind::Improved
    } else {
        VerdictKind::Regressed
    }
}

/// Knobs of a baseline comparison; [`CompareCfg::for_fingerprint`]
/// picks the tolerance band by counter availability.
#[derive(Clone, Copy, Debug)]
pub struct CompareCfg {
    /// Relative tolerance band (e.g. 0.10 = ±10%).
    pub tolerance: f64,
    /// Bootstrap resamples per series.
    pub bootstrap_iters: usize,
    /// CI mass; the family is tested at FDR `1 − confidence`.
    pub confidence: f64,
    /// Deterministic bootstrap base seed.
    pub seed: u64,
}

impl CompareCfg {
    /// Defaults, with the tolerance band widened on timing-only
    /// fingerprints.
    pub fn for_fingerprint(fp: &Fingerprint) -> CompareCfg {
        CompareCfg {
            tolerance: if fp.timing_only() {
                TIMING_ONLY_TOLERANCE
            } else {
                DEFAULT_TOLERANCE
            },
            bootstrap_iters: 1000,
            confidence: 0.9,
            seed: 42,
        }
    }
}

fn series_key(s: &Value) -> (String, String, String) {
    (
        s["workload"].as_str().unwrap_or("?").to_string(),
        s["cell"].as_str().unwrap_or("?").to_string(),
        s["metric"].as_str().unwrap_or("?").to_string(),
    )
}

fn paired(base: &Value, cur: &Value) -> Vec<f64> {
    let (Value::Array(b), Value::Array(c)) = (&base["runs"], &cur["runs"]) else {
        return Vec::new();
    };
    b.iter()
        .zip(c)
        .filter_map(|(b, c)| Some(c.as_f64()? - b.as_f64()?))
        .collect()
}

/// Compare a fresh record against its matching-fingerprint baseline:
/// per-series paired deltas, bootstrap p-values BH-adjusted across the
/// whole family, then tolerance-banded verdicts. Returns the
/// comparison document the CLI renders and gates on.
pub fn compare_records(baseline: &Value, current: &Value, cfg: &CompareCfg) -> Value {
    let empty = Vec::new();
    let base_series = match &baseline["series"] {
        Value::Array(s) => s,
        _ => &empty,
    };
    let cur_series = match &current["series"] {
        Value::Array(s) => s,
        _ => &empty,
    };
    let alpha = 1.0 - cfg.confidence;

    // (cur series, matching base series, paired deltas); a series
    // present on only one side becomes a skipped row below.
    let mut rows: Vec<(&Value, Option<&Value>, Vec<f64>)> = Vec::new();
    for cur in cur_series {
        let key = series_key(cur);
        let base = base_series.iter().find(|b| series_key(b) == key);
        let deltas = base.map(|b| paired(b, cur)).unwrap_or_default();
        rows.push((cur, base, deltas));
    }

    // One BH family across every testable series.
    type RowStats = (Option<f64>, Option<f64>, Option<(f64, f64)>);
    let stats: Vec<RowStats> = rows
        .iter()
        .enumerate()
        .map(|(k, (_, base, deltas))| {
            if base.is_none() {
                return (None, None, None);
            }
            let seed = cfg.seed.wrapping_add(k as u64);
            (
                bootstrap_mean_pvalue(deltas, cfg.bootstrap_iters, seed),
                None,
                bootstrap_mean_ci(deltas, cfg.bootstrap_iters, cfg.confidence, seed),
            )
        })
        .collect();
    let tested: Vec<f64> = stats.iter().filter_map(|(p, _, _)| *p).collect();
    let mut adjusted = benjamini_hochberg(&tested).into_iter();
    let stats: Vec<RowStats> = stats
        .into_iter()
        .map(|(p, _, ci)| (p, p.and_then(|_| adjusted.next()), ci))
        .collect();

    let mut counts = [0u64; 4]; // regressed, improved, unchanged, skipped
    let mut verdicts: Vec<Value> = Vec::new();
    for ((cur, base, deltas), (p, p_adj, ci)) in rows.iter().zip(&stats) {
        let (workload, cell, metric) = series_key(cur);
        let hib = Metric::parse(&metric).map(|m| m.higher_is_better());
        let base_mean = base.and_then(|b| b["mean"].as_f64());
        let cur_mean = cur["mean"].as_f64();
        let verdict = match (base_mean, cur_mean, hib) {
            (Some(b), Some(c), Some(hib)) => {
                let significant = p_adj.map(|q| q <= alpha).unwrap_or(false);
                classify(hib, b, c, significant, cfg.tolerance)
            }
            _ => VerdictKind::Skipped,
        };
        counts[match verdict {
            VerdictKind::Regressed => 0,
            VerdictKind::Improved => 1,
            VerdictKind::Unchanged => 2,
            VerdictKind::Skipped => 3,
        }] += 1;
        let rel = match (base_mean, cur_mean) {
            (Some(b), Some(c)) => {
                let r = rel_delta(b, c);
                if r.is_finite() {
                    Some(r)
                } else {
                    None // infinite shift; means still tell the story
                }
            }
            _ => None,
        };
        verdicts.push(serde_json::json!({
            "workload": workload,
            "cell": cell,
            "metric": metric,
            "base_mean": opt(base_mean),
            "cur_mean": opt(cur_mean),
            "rel_delta": opt(rel),
            "pairs": deltas.len() as u64,
            "ci_lo": opt(ci.map(|c| c.0)),
            "ci_hi": opt(ci.map(|c| c.1)),
            "p": opt(*p),
            "p_adjusted": opt(*p_adj),
            "verdict": verdict.name(),
        }));
    }
    // Baseline-only series: the metric disappeared — surface, don't
    // hide.
    for base in base_series {
        let key = series_key(base);
        if cur_series.iter().any(|c| series_key(c) == key) {
            continue;
        }
        counts[3] += 1;
        verdicts.push(serde_json::json!({
            "workload": key.0,
            "cell": key.1,
            "metric": key.2,
            "base_mean": base["mean"].clone(),
            "cur_mean": Value::Null,
            "rel_delta": Value::Null,
            "pairs": 0u64,
            "ci_lo": Value::Null,
            "ci_hi": Value::Null,
            "p": Value::Null,
            "p_adjusted": Value::Null,
            "verdict": VerdictKind::Skipped.name(),
        }));
    }

    serde_json::json!({
        "baseline_timestamp": baseline["timestamp"].clone(),
        "baseline_git_rev": baseline["git_rev"].clone(),
        "tolerance": cfg.tolerance,
        "fdr_alpha": alpha,
        "verdicts": verdicts,
        "regressed": counts[0],
        "improved": counts[1],
        "unchanged": counts[2],
        "skipped": counts[3],
    })
}

/// Current git revision, read from `.git` directly (no `git` binary on
/// minimal CI images): resolve `HEAD` through its ref or
/// `packed-refs`, walking up from the crate and the working directory.
/// `"unknown"` when nothing resolves — a record is still useful
/// without it.
pub fn git_rev() -> String {
    let mut roots: Vec<PathBuf> = Vec::new();
    if let Ok(d) = std::env::var("CARGO_MANIFEST_DIR") {
        roots.push(PathBuf::from(d));
    }
    if let Ok(d) = std::env::current_dir() {
        roots.push(d);
    }
    for root in roots {
        let mut cur = root;
        for _ in 0..6 {
            let git = cur.join(".git");
            if git.is_dir() {
                if let Some(rev) = rev_from_git_dir(&git) {
                    return rev;
                }
            }
            if !cur.pop() {
                break;
            }
        }
    }
    "unknown".to_string()
}

fn rev_from_git_dir(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(r) = head.strip_prefix("ref: ") else {
        return (!head.is_empty()).then(|| head.to_string());
    };
    if let Ok(s) = std::fs::read_to_string(git.join(r)) {
        let s = s.trim();
        if !s.is_empty() {
            return Some(s.to_string());
        }
    }
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    for line in packed.lines() {
        if let Some((hash, name)) = line.split_once(' ') {
            if name.trim() == r {
                return Some(hash.trim().to_string());
            }
        }
    }
    None
}

fn short_rev(v: &Value) -> String {
    let r = v.as_str().unwrap_or("unknown");
    r.chars().take(12).collect()
}

/// Render one `ccs-bench/v1` record as text: header, fingerprint, and
/// a per-(workload, cell) table of metric means.
pub fn render_record(doc: &Value) -> Result<String, String> {
    if doc["schema"].as_str() != Some(SCHEMA) {
        return Err(format!(
            "not a {SCHEMA} record (schema: {:?})",
            doc["schema"].as_str()
        ));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench: {} @ {} (rev {})",
        doc["sweep"].as_str().unwrap_or("?"),
        doc["timestamp"].as_u64().unwrap_or(0),
        short_rev(&doc["git_rev"]),
    );
    if let Some(fp) = Fingerprint::from_json(&doc["fingerprint"]) {
        let _ = writeln!(out, "fingerprint: {}", fp.render());
    }
    let Value::Array(series) = &doc["series"] else {
        return Err("record has no series".into());
    };
    // Pivot: one row per (workload, cell), one column per metric mean.
    let mut keys: Vec<(String, String)> = Vec::new();
    for s in series {
        let k = (
            s["workload"].as_str().unwrap_or("?").to_string(),
            s["cell"].as_str().unwrap_or("?").to_string(),
        );
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let mut table = crate::Table::new(
        "metric means over repeats",
        &[
            "workload",
            "cell",
            "miss/item",
            "wall ms",
            "items/s",
            "ipc",
            "mpki",
            "stall ms",
        ],
    );
    for (workload, cell) in &keys {
        let mut row = vec![workload.clone(), cell.clone()];
        for m in Metric::ALL {
            let mean = series.iter().find_map(|s| {
                (s["workload"].as_str() == Some(workload)
                    && s["cell"].as_str() == Some(cell)
                    && s["metric"].as_str() == Some(m.name()))
                .then(|| s["mean"].as_f64())
                .flatten()
            });
            row.push(mean.map_or_else(|| "n/a".to_string(), crate::f));
        }
        table.row(row);
    }
    out.push_str(&table.render());
    Ok(out)
}

/// Render a comparison document: one verdict row per series, then the
/// one-line verdict CI greps.
pub fn render_comparison(cmp: &Value) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "baseline: @ {} (rev {}), tolerance +/-{}%, fdr {}",
        cmp["baseline_timestamp"].as_u64().unwrap_or(0),
        short_rev(&cmp["baseline_git_rev"]),
        crate::f(cmp["tolerance"].as_f64().unwrap_or(0.0) * 100.0),
        crate::f(cmp["fdr_alpha"].as_f64().unwrap_or(0.0)),
    );
    let mut table = crate::Table::new(
        "verdicts (paired vs baseline)",
        &[
            "workload", "cell", "metric", "base", "cur", "delta", "p_adj", "verdict",
        ],
    );
    if let Value::Array(verdicts) = &cmp["verdicts"] {
        for v in verdicts {
            let delta = v["rel_delta"]
                .as_f64()
                .map_or_else(|| "n/a".to_string(), |r| format!("{:+.1}%", r * 100.0));
            table.row(vec![
                v["workload"].as_str().unwrap_or("?").to_string(),
                v["cell"].as_str().unwrap_or("?").to_string(),
                v["metric"].as_str().unwrap_or("?").to_string(),
                v["base_mean"]
                    .as_f64()
                    .map_or_else(|| "n/a".to_string(), crate::f),
                v["cur_mean"]
                    .as_f64()
                    .map_or_else(|| "n/a".to_string(), crate::f),
                delta,
                v["p_adjusted"]
                    .as_f64()
                    .map_or_else(|| "n/a".to_string(), crate::f),
                v["verdict"].as_str().unwrap_or("?").to_string(),
            ]);
        }
    }
    out.push_str(&table.render());
    let (reg, imp, unch, skip) = (
        cmp["regressed"].as_u64().unwrap_or(0),
        cmp["improved"].as_u64().unwrap_or(0),
        cmp["unchanged"].as_u64().unwrap_or(0),
        cmp["skipped"].as_u64().unwrap_or(0),
    );
    let _ = writeln!(
        out,
        "verdict: {} — {reg} regressed, {imp} improved, {unch} unchanged, {skip} skipped",
        if reg > 0 { "REGRESSED" } else { "ok" },
    );
    out
}

/// Unicode sparkline of a series, min–max normalized (flat series
/// renders mid-height).
pub fn sparkline(xs: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    xs.iter()
        .map(|&x| {
            if hi <= lo {
                BARS[3]
            } else {
                let t = (x - lo) / (hi - lo);
                BARS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Render the trend view behind `ccs report --history`: records
/// grouped by fingerprint, and per (workload, cell, metric) a
/// sparkline of the last `last` means with the relative move from the
/// window's first record to its latest.
pub fn render_history(records: &[Value], last: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench history: {} record(s), trend over last {last}",
        records.len(),
    );
    if records.is_empty() {
        out.push_str("  (empty — run `ccs bench` to seed it)\n");
        return out;
    }
    // Group by fingerprint, preserving first-seen order.
    let mut groups: Vec<(Fingerprint, Vec<&Value>)> = Vec::new();
    for r in records {
        let Some(fp) = Fingerprint::from_json(&r["fingerprint"]) else {
            continue;
        };
        match groups.iter_mut().find(|(g, _)| g.matches(&fp)) {
            Some((_, rs)) => rs.push(r),
            None => groups.push((fp, vec![r])),
        }
    }
    for (fp, rs) in &groups {
        let window = &rs[rs.len().saturating_sub(last.max(1))..];
        let _ = writeln!(
            out,
            "fingerprint: {} — {} record(s), showing {}",
            fp.render(),
            rs.len(),
            window.len(),
        );
        // Keys in the order the newest record lists them.
        let newest = window.last().expect("non-empty group");
        let Value::Array(series) = &newest["series"] else {
            continue;
        };
        for s in series {
            let key = series_key(s);
            let means: Vec<f64> = window
                .iter()
                .filter_map(|r| {
                    let Value::Array(ss) = &r["series"] else {
                        return None;
                    };
                    ss.iter()
                        .find(|x| series_key(x) == key)
                        .and_then(|x| x["mean"].as_f64())
                })
                .collect();
            if means.is_empty() {
                continue;
            }
            let first = means[0];
            let latest = means[means.len() - 1];
            let rel = rel_delta(first, latest);
            let move_txt = if means.len() < 2 {
                "single record".to_string()
            } else if rel.is_finite() {
                format!(
                    "{:+.1}% ({} -> {})",
                    rel * 100.0,
                    crate::f(first),
                    crate::f(latest)
                )
            } else {
                format!("{} -> {}", crate::f(first), crate::f(latest))
            };
            let _ = writeln!(
                out,
                "  {}/{} {}: {}  {}",
                key.0,
                key.1,
                key.2,
                sparkline(&means),
                move_txt,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(counters: &str) -> Fingerprint {
        Fingerprint {
            topology: "sysfs/1x1x1".into(),
            counters: counters.into(),
            warmup_mode: "epoch".into(),
            repeats: 3,
            rounds: 8,
            grid: "serial,rr/w2 x fm-radio".into(),
            fused: false,
        }
    }

    fn sweep_doc(wall: &[f64]) -> Value {
        let runs: Vec<Value> = wall
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                serde_json::json!({
                    "repeat": i,
                    "wall_ms": w,
                    "items_per_sec": 1000.0 / w,
                    "llc_misses_per_item": 2.5,
                    "ipc": Value::Null,
                    "mpki": Value::Null,
                    "stall_ms": Value::Null,
                })
            })
            .collect();
        let cell = serde_json::json!({
            "workload": "fm-radio",
            "label": "serial",
            "runs": runs,
        });
        serde_json::json!({
            "schema": sweep::SCHEMA,
            "sweep": "bench-canonical",
            "cells": vec![cell],
        })
    }

    #[test]
    fn fingerprint_roundtrip_and_matching() {
        let a = fp("pmu");
        let parsed = Fingerprint::from_json(&a.to_json()).expect("roundtrip");
        assert!(a.matches(&parsed));
        let mut b = fp("pmu");
        b.counters = "timing-only".into();
        assert!(!a.matches(&b));
        assert!(b.timing_only() && !a.timing_only());
        let mut c = fp("pmu");
        c.rounds = 16;
        assert!(!a.matches(&c));
        // Fused grids are a distinct fingerprint; pre-fused records
        // (no "fused" key) parse as unfused and still match classics.
        let mut d = fp("pmu");
        d.fused = true;
        assert!(!a.matches(&d));
        assert!(d.render().ends_with(" | fused"));
        let legacy = serde_json::json!({
            "topology": "sysfs/1x1x1",
            "counters": "pmu",
            "warmup_mode": "epoch",
            "repeats": 3u64,
            "rounds": 8u64,
            "grid": "serial,rr/w2 x fm-radio",
        });
        let parsed = Fingerprint::from_json(&legacy).expect("legacy parses");
        assert!(a.matches(&parsed));
        assert_eq!(
            Fingerprint::from_json(&serde_json::json!({"topology": "x"})),
            None
        );
    }

    #[test]
    fn classify_verdicts() {
        // Cost metric (higher is worse): a significant +30% is a
        // regression, −30% an improvement.
        assert_eq!(
            classify(false, 10.0, 13.0, true, 0.1),
            VerdictKind::Regressed
        );
        assert_eq!(classify(false, 10.0, 7.0, true, 0.1), VerdictKind::Improved);
        // Benefit metric flips direction.
        assert_eq!(classify(true, 10.0, 13.0, true, 0.1), VerdictKind::Improved);
        assert_eq!(classify(true, 10.0, 7.0, true, 0.1), VerdictKind::Regressed);
        // Insignificant, or within tolerance: unchanged.
        assert_eq!(
            classify(false, 10.0, 13.0, false, 0.1),
            VerdictKind::Unchanged
        );
        assert_eq!(
            classify(false, 10.0, 10.5, true, 0.1),
            VerdictKind::Unchanged
        );
        // Zero baseline, nonzero current: beyond every tolerance.
        assert_eq!(
            classify(false, 0.0, 1.0, true, 10.0),
            VerdictKind::Regressed
        );
        assert_eq!(rel_delta(0.0, 0.0), 0.0);
        assert_eq!(rel_delta(10.0, 15.0), 0.5);
    }

    #[test]
    fn record_extraction_and_slow_scaling() {
        let doc = sweep_doc(&[10.0, 10.0]);
        let r = record_from_sweep_scaled(&doc, &fp("pmu"), "deadbeef", 7, 1.0).expect("record");
        assert_eq!(r["schema"].as_str(), Some(SCHEMA));
        assert_eq!(r["timestamp"].as_u64(), Some(7));
        let series = match &r["series"] {
            Value::Array(s) => s,
            _ => panic!("series"),
        };
        // wall, items/s, miss/item present; ipc/mpki/stall all-null dropped.
        assert_eq!(series.len(), 3);
        let wall = series
            .iter()
            .find(|s| s["metric"].as_str() == Some("wall_ms"))
            .expect("wall series");
        assert_eq!(wall["mean"].as_f64(), Some(10.0));

        let slow = record_from_sweep_scaled(&doc, &fp("pmu"), "deadbeef", 8, 3.0).expect("record");
        let wall = match &slow["series"] {
            Value::Array(s) => s
                .iter()
                .find(|x| x["metric"].as_str() == Some("wall_ms"))
                .and_then(|x| x["mean"].as_f64())
                .expect("scaled wall"),
            _ => unreachable!(),
        };
        assert!(
            (wall - 30.0).abs() < 1e-9,
            "wall scaled by slow factor: {wall}"
        );
        let ips = match &slow["series"] {
            Value::Array(s) => s
                .iter()
                .find(|x| x["metric"].as_str() == Some("items_per_sec"))
                .and_then(|x| x["mean"].as_f64())
                .expect("ips"),
            _ => unreachable!(),
        };
        assert!(
            (ips - 100.0 / 3.0).abs() < 1e-9,
            "throughput divided: {ips}"
        );

        assert!(record_from_sweep_scaled(
            &serde_json::json!({"schema": "nope"}),
            &fp("pmu"),
            "x",
            0,
            1.0
        )
        .is_err());
    }

    #[test]
    fn compare_unchanged_regressed_and_skipped() {
        let f = fp("pmu");
        let cfg = CompareCfg::for_fingerprint(&f);
        let base = record_from_sweep_scaled(&sweep_doc(&[10.0, 10.1, 9.9, 10.0]), &f, "a", 1, 1.0)
            .expect("base");
        // Same tree: every verdict unchanged.
        let cur = record_from_sweep_scaled(&sweep_doc(&[10.0, 10.1, 9.9, 10.0]), &f, "b", 2, 1.0)
            .expect("cur");
        let cmp = compare_records(&base, &cur, &cfg);
        assert_eq!(cmp["regressed"].as_u64(), Some(0));
        assert_eq!(cmp["unchanged"].as_u64(), Some(3));
        // 3x slower executor: wall regresses, throughput regresses,
        // miss/item (unscaled, identical) stays unchanged.
        let slow = record_from_sweep_scaled(&sweep_doc(&[10.0, 10.1, 9.9, 10.0]), &f, "c", 3, 3.0)
            .expect("slow");
        let cmp = compare_records(&base, &slow, &cfg);
        assert_eq!(cmp["regressed"].as_u64(), Some(2));
        assert_eq!(cmp["unchanged"].as_u64(), Some(1));
        let wall = match &cmp["verdicts"] {
            Value::Array(vs) => vs
                .iter()
                .find(|v| v["metric"].as_str() == Some("wall_ms"))
                .cloned()
                .expect("wall verdict"),
            _ => unreachable!(),
        };
        assert_eq!(wall["verdict"].as_str(), Some("regressed"));
        assert!(wall["rel_delta"].as_f64().expect("rel") > 1.9);
        // An improvement reads improved, not regressed.
        let fast = record_from_sweep_scaled(&sweep_doc(&[5.0, 5.05, 4.95, 5.0]), &f, "d", 4, 1.0)
            .expect("fast");
        let cmp = compare_records(&base, &fast, &cfg);
        assert_eq!(cmp["regressed"].as_u64(), Some(0));
        assert_eq!(cmp["improved"].as_u64(), Some(2));
        // A metric absent on one side is skipped, both directions.
        let kept: Vec<Value> = match &base["series"] {
            Value::Array(s) => s
                .iter()
                .filter(|x| x["metric"].as_str() != Some("wall_ms"))
                .cloned()
                .collect(),
            _ => unreachable!(),
        };
        let pruned = serde_json::json!({
            "schema": SCHEMA,
            "timestamp": base["timestamp"].clone(),
            "git_rev": base["git_rev"].clone(),
            "fingerprint": base["fingerprint"].clone(),
            "series": kept,
        });
        let cmp = compare_records(&pruned, &cur, &cfg);
        assert_eq!(cmp["skipped"].as_u64(), Some(1));
        let cmp = compare_records(&cur, &pruned, &cfg);
        assert_eq!(cmp["skipped"].as_u64(), Some(1));
    }

    #[test]
    fn history_roundtrip_and_baseline_lookup() {
        let f = fp("pmu");
        let r1 = record_from_sweep_scaled(&sweep_doc(&[10.0]), &f, "a", 1, 1.0).expect("r1");
        let r2 = record_from_sweep_scaled(&sweep_doc(&[11.0]), &f, "b", 2, 1.0).expect("r2");
        let other = record_from_sweep_scaled(&sweep_doc(&[9.0]), &fp("timing-only"), "c", 3, 1.0)
            .expect("other");
        let text = format!(
            "{}\n{}\n{}\n",
            serde_json::to_string(&r1).unwrap(),
            serde_json::to_string(&other).unwrap(),
            serde_json::to_string(&r2).unwrap(),
        );
        let history = parse_history(&text).expect("parse");
        assert_eq!(history.len(), 3);
        // Newest matching fingerprint wins; the timing-only record is
        // never the baseline for a pmu run.
        let baseline = latest_matching(&history, &f).expect("baseline");
        assert_eq!(baseline["git_rev"].as_str(), Some("b"));
        let baseline = latest_matching(&history, &fp("timing-only")).expect("baseline");
        assert_eq!(baseline["git_rev"].as_str(), Some("c"));
        let mut missing = f.clone();
        missing.grid = "elsewhere".into();
        assert!(latest_matching(&history, &missing).is_none());
        // Corrupt lines are loud.
        assert!(parse_history("{\"schema\": \"nope\"}\n").is_err());
        assert!(parse_history("not json\n").is_err());
        assert_eq!(parse_history("\n\n").expect("blank ok").len(), 0);
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[1.0, 2.0, 3.0]), "▁▅█");
        assert_eq!(sparkline(&[2.0, 2.0]), "▄▄");
        assert_eq!(sparkline(&[]), "");
    }
}
