//! # ccs-bench — experiment harnesses
//!
//! One binary per experiment in `EXPERIMENTS.md` (`e01` … `e21`), each
//! regenerating a paper-claim-shaped table, plus criterion benchmarks for
//! the hot algorithmic paths. Shared table/CSV plumbing, the
//! repeated-runs statistics ([`stats`]), the declarative cell-sweep
//! engine ([`sweep`]), and the cross-run bench history / regression
//! tracking ([`track`]) live here.

pub mod stats;
pub mod sweep;
pub mod track;

use std::fmt::Write as _;
use std::path::PathBuf;

/// A printable, CSV-serializable results table.
#[derive(Clone, Debug)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "## {}", self.title);
        s.push_str(&self.body());
        s
    }

    /// The aligned header + rows without the title line (the shared
    /// alignment core; sweep reports embed this directly).
    pub fn body(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(s, "{:>w$}  ", h, w = widths[i]);
        }
        s.push('\n');
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(s, "{:>w$}  ", c, w = widths[i]);
            }
            s.push('\n');
        }
        s
    }

    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write as CSV under `results/`.
    pub fn save_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        std::fs::write(&path, s)?;
        Ok(path)
    }
}

/// Where experiment CSVs land (`results/` at the workspace root, or the
/// current directory when run elsewhere).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("results")
}

/// Format a float tersely for tables.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let out = t.render();
        assert!(out.contains("## demo"));
        assert!(out.contains("long-header"));
        assert_eq!(out.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(123.456), "123");
        assert_eq!(f(1.5), "1.50");
        assert_eq!(f(0.1234), "0.1234");
    }
}
