//! Declarative experiment grids over the real executors.
//!
//! The paper's claims are comparative — steady-state misses and
//! throughput of cache-aware placement against baselines, across
//! machine shapes — so every experiment in this repository is some
//! *sweep*: a set of configuration **cells**, each run R times with the
//! repeats interleaved (cell 1, cell 2, …, cell 1, cell 2, … — so slow
//! drift hits all cells alike and pairs out), with digest equivalence
//! asserted across every cell and a family of declared pairwise
//! comparisons evaluated statistically at the end.
//!
//! This module is the one engine behind all of them:
//!
//! * [`Cell`] — one point of the grid: workload-independent executor
//!   configuration (serial or parallel; workers, placement, pinning,
//!   topology, counters, per-segment attribution, warmup window and
//!   reset mode, first-touch ring placement, event tracing and counter
//!   windows).
//! * [`Sweep`] — a named set of cells × workloads × repeats plus the
//!   declared [`Comparison`]s. [`Sweep::run`] executes the grid through
//!   [`execute_dag_cfg`](ccs_exec::execute_dag_cfg) (parallel cells)
//!   and [`execute_counted_warm`](ccs_runtime::serial::execute_counted_warm)
//!   (serial cells), errors on any digest divergence, and emits one
//!   versioned [`SCHEMA`] JSON document: per-cell per-metric
//!   mean ± stddev, and per-comparison paired deltas with
//!   percentile-bootstrap confidence intervals and p-values,
//!   [Benjamini–Hochberg](crate::stats::benjamini_hochberg)-adjusted
//!   across the whole family of comparisons.
//! * [`render`] — the shared text renderer for that document, used by
//!   both the experiment binaries and `ccs report`.
//! * [`from_spec`] — build a [`Sweep`] from a JSON spec document
//!   (`ccs sweep --spec FILE`).
//!
//! The experiment binaries `e19`/`e20`/`e21` are thin declarations over
//! this module; new experiments should be too.

use crate::stats::{benjamini_hochberg, bootstrap_mean_ci, bootstrap_mean_pvalue, Summary};
use ccs_cachesim::CacheParams;
use ccs_core::{Horizon, Planner};
use ccs_exec::{AdaptConfig, Placement, RunConfig, WarmupMode};
use ccs_graph::gen::{self, LayeredCfg, StateDist};
use ccs_graph::{RateAnalysis, StreamGraph};
use ccs_perf::CounterKind;
use ccs_topo::{TopoSpec, Topology};
use serde_json::Value;
use std::error::Error;
use std::fmt::Write as _;

/// Version marker of the results document every sweep emits; `ccs
/// report` accepts exactly this schema.
pub const SCHEMA: &str = "ccs-sweep/v1";

/// Stall share (stall / (busy + stall), run-wide) above which the
/// report warns that a cell is bottlenecked.
pub const STALL_WARN_SHARE: f64 = 0.4;

/// `CCS_SMOKE=1`: shrink sweeps for CI.
pub fn smoke() -> bool {
    std::env::var("CCS_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// `CCS_REPEATS=n` overrides an experiment's repeat count.
pub fn repeats_or(default: usize) -> usize {
    std::env::var("CCS_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The cache-size heuristic shared by every experiment: a third of the
/// total state (so partitions are non-trivial), at least eight times
/// the largest module (so every module fits), at least 512 words,
/// rounded to a block multiple.
pub fn cache_m(g: &StreamGraph) -> u64 {
    (g.total_state() / 3)
        .max(8 * g.max_state())
        .max(512)
        .next_multiple_of(16)
}

/// Resolve a workload by name: any app of [`ccs_apps::suite`] plus
/// `layered-dag`, the canonical seeded layered DAG the experiment
/// binaries pair with `fm-radio`.
pub fn workload(name: &str) -> Option<(String, StreamGraph)> {
    if name == "layered-dag" {
        return Some((
            name.to_string(),
            gen::layered(
                &LayeredCfg {
                    layers: 6,
                    max_width: 5,
                    density: 0.35,
                    state: StateDist::Uniform(128, 512),
                    max_q: 2,
                },
                3,
            ),
        ));
    }
    ccs_apps::suite()
        .into_iter()
        .find(|a| a.name == name)
        .map(|a| (a.name.to_string(), a.graph))
}

/// The workload pair every stock experiment sweeps: a real decimating
/// pipeline and a generated irregular DAG.
pub fn builtin_workloads() -> Vec<(String, StreamGraph)> {
    ["fm-radio", "layered-dag"]
        .iter()
        .map(|n| workload(n).expect("builtin workload"))
        .collect()
}

/// Which executor a [`Cell`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellEngine {
    /// The paper's two-level schedule on one thread
    /// (`execute_counted_warm`).
    Serial,
    /// The segment-affine multicore executor (`execute_dag_cfg`).
    Parallel,
}

/// One point of the experiment grid: a complete executor configuration,
/// crossed with every workload of the sweep.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Display/reference label; `None` derives one from the fields.
    pub label: Option<String>,
    pub engine: CellEngine,
    /// Worker threads (parallel cells).
    pub workers: usize,
    pub placement: Placement,
    pub pin_cores: bool,
    /// Synthetic machine model; `None` uses the default (host discovery
    /// where placement or pinning needs it).
    pub topology: Option<TopoSpec>,
    /// Open hardware counters.
    pub counters: bool,
    /// Attribute counters to individual segments.
    pub segment_counters: bool,
    /// Per-segment sampling stride (0/1 = every batch).
    pub counter_stride: u64,
    /// Warmup batches excluded from counter readings.
    pub warmup: u64,
    /// Warmup reset discipline (exact epoch barrier vs legacy
    /// per-worker).
    pub warmup_mode: WarmupMode,
    /// Fault ring pages in from consumer workers before steady state.
    pub first_touch: bool,
    /// Record per-worker event timelines (`ccs-obs`): batch/stall
    /// spans, warmup resets, window boundaries. On the serial engine,
    /// block spans chunked by round.
    pub trace: bool,
    /// Close a counter window every this many batches per worker (0 =
    /// off). Serial cells convert the cadence to firings so windows
    /// line up with W-round parallel ones.
    pub windows: u64,
    /// Run the `ccs-adapt` online controller over the window stream
    /// (parallel cells only; requires `windows > 0`): segments migrate
    /// between workers live when counter drift or stall pressure says
    /// the static placement went stale.
    pub adapt: bool,
    /// Run batches through the fused hot path: one bulk ring op per
    /// cross edge per batch, intra-segment traffic in a flat arena,
    /// software prefetch on the next firing's inputs. Serial cells go
    /// through [`ccs_exec::execute_serial_fused`]; the digest stays
    /// bit-identical either way (asserted by the cross-cell check).
    pub fused: bool,
}

impl Cell {
    /// A parallel cell with everything else at defaults.
    pub fn parallel(workers: usize, placement: Placement) -> Cell {
        Cell {
            label: None,
            engine: CellEngine::Parallel,
            workers,
            placement,
            pin_cores: false,
            topology: None,
            counters: false,
            segment_counters: false,
            counter_stride: 1,
            warmup: 0,
            warmup_mode: WarmupMode::default(),
            first_touch: false,
            trace: false,
            windows: 0,
            adapt: false,
            fused: false,
        }
    }

    /// A serial-executor baseline cell.
    pub fn serial() -> Cell {
        Cell {
            engine: CellEngine::Serial,
            workers: 1,
            ..Cell::parallel(1, Placement::RoundRobin)
        }
    }

    pub fn with_label(mut self, label: impl Into<String>) -> Cell {
        self.label = Some(label.into());
        self
    }

    pub fn with_pinning(mut self, pin: bool) -> Cell {
        self.pin_cores = pin;
        self
    }

    pub fn with_topology(mut self, spec: TopoSpec) -> Cell {
        self.topology = Some(spec);
        self
    }

    pub fn with_counters(mut self, on: bool) -> Cell {
        self.counters = on;
        self
    }

    pub fn with_segment_counters(mut self, on: bool) -> Cell {
        self.segment_counters = on;
        self
    }

    pub fn with_counter_stride(mut self, stride: u64) -> Cell {
        self.counter_stride = stride;
        self
    }

    pub fn with_warmup(mut self, warmup: u64) -> Cell {
        self.warmup = warmup;
        self
    }

    pub fn with_warmup_mode(mut self, mode: WarmupMode) -> Cell {
        self.warmup_mode = mode;
        self
    }

    pub fn with_first_touch(mut self, on: bool) -> Cell {
        self.first_touch = on;
        self
    }

    pub fn with_trace(mut self, on: bool) -> Cell {
        self.trace = on;
        self
    }

    pub fn with_windows(mut self, every: u64) -> Cell {
        self.windows = every;
        self
    }

    pub fn with_adapt(mut self, on: bool) -> Cell {
        self.adapt = on;
        self
    }

    pub fn with_fused(mut self, on: bool) -> Cell {
        self.fused = on;
        self
    }

    /// The label comparisons and reports refer to: the explicit one, or
    /// one derived from the distinguishing fields (`llc+pin/w4`,
    /// `rr/w2/2x2x2`, `serial`).
    pub fn label(&self) -> String {
        if let Some(l) = &self.label {
            return l.clone();
        }
        if self.engine == CellEngine::Serial {
            return if self.fused {
                "serial+fused".to_string()
            } else {
                "serial".to_string()
            };
        }
        let mut l = match self.placement {
            Placement::RoundRobin => "rr".to_string(),
            Placement::CommGreedy => "greedy".to_string(),
            Placement::Llc => "llc".to_string(),
        };
        if self.pin_cores {
            l.push_str("+pin");
        }
        if self.adapt {
            l.push_str("+adapt");
        }
        if self.fused {
            l.push_str("+fused");
        }
        let _ = write!(l, "/w{}", self.workers);
        if let Some(t) = &self.topology {
            let _ = write!(l, "/{t}");
        }
        l
    }
}

/// A measured quantity cells report and comparisons test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// LLC misses per sink item over the steady-state window — the
    /// paper's headline metric.
    LlcMissesPerItem,
    /// Wall-clock time of the firing loop.
    WallMs,
    /// Sink throughput.
    ItemsPerSec,
    /// Instructions per cycle.
    Ipc,
    /// Misses per kilo-instruction.
    Mpki,
    /// Wall-clock stall time across workers (parallel cells only).
    StallMs,
    /// Retired instructions per sink item over the steady-state window
    /// — the hot-path efficiency metric the fused executor targets.
    InstructionsPerItem,
}

impl Metric {
    /// The bench-record metric set, in report order. Frozen at six:
    /// `ccs-bench/v1` records and their golden renderings are built
    /// from exactly these, so later metrics join [`Metric::KNOWN`]
    /// (parseable, sweepable) without reshaping history records.
    pub const ALL: [Metric; 6] = [
        Metric::LlcMissesPerItem,
        Metric::WallMs,
        Metric::ItemsPerSec,
        Metric::Ipc,
        Metric::Mpki,
        Metric::StallMs,
    ];

    /// Every metric a sweep can measure and compare.
    pub const KNOWN: [Metric; 7] = [
        Metric::LlcMissesPerItem,
        Metric::WallMs,
        Metric::ItemsPerSec,
        Metric::Ipc,
        Metric::Mpki,
        Metric::StallMs,
        Metric::InstructionsPerItem,
    ];

    /// JSON key / CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::LlcMissesPerItem => "llc_misses_per_item",
            Metric::WallMs => "wall_ms",
            Metric::ItemsPerSec => "items_per_sec",
            Metric::Ipc => "ipc",
            Metric::Mpki => "mpki",
            Metric::StallMs => "stall_ms",
            Metric::InstructionsPerItem => "instructions_per_item",
        }
    }

    /// Parse a CLI/JSON name.
    pub fn parse(name: &str) -> Option<Metric> {
        Metric::KNOWN.into_iter().find(|m| m.name() == name)
    }

    /// Whether a larger value is the better outcome (throughput, IPC)
    /// rather than a cost (misses, wall time, stalls).
    pub fn higher_is_better(&self) -> bool {
        matches!(self, Metric::ItemsPerSec | Metric::Ipc)
    }
}

/// One declared paired comparison: per workload, the per-repeat deltas
/// `baseline − treatment` of a metric between two cells.
#[derive(Clone, Debug)]
pub struct Comparison {
    pub metric: Metric,
    /// Label of the baseline cell.
    pub baseline: String,
    /// Label of the treatment cell.
    pub treatment: String,
}

/// A named grid: workloads × cells × interleaved repeats, plus the
/// comparison family. Build with the `with_*` methods, execute with
/// [`Sweep::run`].
#[derive(Clone, Debug)]
pub struct Sweep {
    pub name: String,
    /// Interleaved repeats per cell.
    pub repeats: usize,
    /// Granularity-`T` batches per segment per run.
    pub rounds: u64,
    pub workloads: Vec<(String, StreamGraph)>,
    pub cells: Vec<Cell>,
    pub comparisons: Vec<Comparison>,
    /// Bootstrap resamples per interval/p-value.
    pub bootstrap_iters: usize,
    /// CI mass; the comparison family is tested at FDR `1 − confidence`.
    pub confidence: f64,
    /// Bootstrap base seed (each comparison offsets deterministically).
    pub seed: u64,
    /// PMU-residency ratio below which a counter window counts as
    /// low-residency in the obs accounting and the report warnings.
    pub warn_residency: f64,
}

impl Sweep {
    pub fn new(name: impl Into<String>) -> Sweep {
        Sweep {
            name: name.into(),
            repeats: 1,
            rounds: 8,
            workloads: Vec::new(),
            cells: Vec::new(),
            comparisons: Vec::new(),
            bootstrap_iters: 1000,
            confidence: 0.9,
            seed: 42,
            warn_residency: ccs_obs::MULTIPLEX_WARN_RATIO,
        }
    }

    pub fn with_repeats(mut self, repeats: usize) -> Sweep {
        self.repeats = repeats;
        self
    }

    pub fn with_rounds(mut self, rounds: u64) -> Sweep {
        self.rounds = rounds;
        self
    }

    pub fn with_workload(mut self, name: impl Into<String>, g: StreamGraph) -> Sweep {
        self.workloads.push((name.into(), g));
        self
    }

    pub fn with_workloads(mut self, ws: Vec<(String, StreamGraph)>) -> Sweep {
        self.workloads.extend(ws);
        self
    }

    pub fn with_cell(mut self, cell: Cell) -> Sweep {
        self.cells.push(cell);
        self
    }

    pub fn with_comparison(
        mut self,
        metric: Metric,
        baseline: impl Into<String>,
        treatment: impl Into<String>,
    ) -> Sweep {
        self.comparisons.push(Comparison {
            metric,
            baseline: baseline.into(),
            treatment: treatment.into(),
        });
        self
    }
}

/// One repeat's measurements for one (workload, cell).
struct RunRecord {
    wall_ms: f64,
    items_per_sec: f64,
    llc_mpi: Option<f64>,
    ipc: Option<f64>,
    mpki: Option<f64>,
    stall_ms: Option<f64>,
    /// Instructions retired per measured sink item.
    instr_pi: Option<f64>,
    seg_mpi: Vec<(usize, Option<f64>)>,
    digest: Option<u64>,
    segments: usize,
    /// A counter group opened somewhere in this run.
    counted: bool,
    /// Any reading was multiplex-scaled.
    multiplexed: bool,
    rings_touched: u64,
    /// Trace events kept across all workers (0 when tracing is off).
    trace_events: u64,
    /// Trace events lost to ring overflow.
    trace_dropped: u64,
    /// Counter windows closed across all workers.
    window_count: usize,
    /// Windows with no counter sample (no group opened).
    windows_timing_only: usize,
    /// Windows whose PMU residency fell below the warning threshold.
    windows_scaled_low: usize,
    /// Run-wide stall share, stall / (busy + stall) across workers
    /// (parallel cells only).
    stall_share: Option<f64>,
    /// Top blamed bottleneck from the stall-attribution telemetry
    /// (traced parallel cells only).
    bottleneck: Option<ccs_insight::Bottleneck>,
    /// EWMA change points flagged across the per-worker window mpki
    /// series (windowed cells only) — mid-run counter drift.
    drift_points: u64,
    /// Live segment handoffs performed (adaptive or scripted; 0 on the
    /// serial engine and on static cells).
    migrations: u64,
}

impl RunRecord {
    fn metric(&self, m: Metric) -> Option<f64> {
        match m {
            Metric::LlcMissesPerItem => self.llc_mpi,
            Metric::WallMs => Some(self.wall_ms),
            Metric::ItemsPerSec => Some(self.items_per_sec),
            Metric::Ipc => self.ipc,
            Metric::Mpki => self.mpki,
            Metric::StallMs => self.stall_ms,
            Metric::InstructionsPerItem => self.instr_pi,
        }
    }
}

fn opt_json(v: Option<f64>) -> Value {
    serde_json::to_value(v).unwrap_or(Value::Null)
}

fn summary_json(s: Option<&Summary>) -> Value {
    match s {
        Some(s) => serde_json::json!({
            "n": s.n,
            "mean": s.mean,
            "stddev": opt_json(s.stddev),
        }),
        None => Value::Null,
    }
}

impl Sweep {
    /// Effective (unique) cell labels, validated.
    fn labels(&self) -> Result<Vec<String>, Box<dyn Error>> {
        let labels: Vec<String> = self.cells.iter().map(|c| c.label()).collect();
        for (i, l) in labels.iter().enumerate() {
            if labels[..i].contains(l) {
                return Err(format!("duplicate cell label '{l}'").into());
            }
        }
        for c in &self.comparisons {
            for side in [&c.baseline, &c.treatment] {
                if !labels.contains(side) {
                    return Err(format!(
                        "comparison references unknown cell '{side}' (cells: {})",
                        labels.join(", ")
                    )
                    .into());
                }
            }
        }
        Ok(labels)
    }

    /// Execute the whole grid and produce the versioned results
    /// document ([`SCHEMA`]). Errors on an invalid declaration, a
    /// planning failure, or — the safety net every experiment inherits —
    /// any digest divergence between cells of the same workload.
    pub fn run(&self) -> Result<Value, Box<dyn Error>> {
        if self.workloads.is_empty() {
            return Err("sweep has no workloads".into());
        }
        if self.cells.is_empty() {
            return Err("sweep has no cells".into());
        }
        if self.repeats == 0 || self.rounds == 0 {
            return Err("repeats and rounds must be >= 1".into());
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(format!(
                "confidence must be in (0, 1), got {} (for 95% write 0.95)",
                self.confidence
            )
            .into());
        }
        let labels = self.labels()?;

        let mut cells_json: Vec<Value> = Vec::new();
        // (workload, comparison) -> paired deltas; flattened into the
        // one BH family at the end.
        let mut pending: Vec<(String, &Comparison, Vec<f64>, usize)> = Vec::new();

        for (wname, g) in &self.workloads {
            let planner = Planner::new(CacheParams::new(cache_m(g), 16));
            let serial_plan = if self.cells.iter().any(|c| c.engine == CellEngine::Serial) {
                Some(
                    planner
                        .plan(g, Horizon::Rounds(self.rounds))
                        .map_err(|e| format!("{wname}: serial baseline cannot be planned: {e}"))?,
                )
            } else {
                None
            };

            // Interleave: one repeat visits every cell back to back.
            let mut runs: Vec<Vec<RunRecord>> = (0..self.cells.len()).map(|_| Vec::new()).collect();
            let mut reference: Option<(String, Option<u64>)> = None;
            for _repeat in 0..self.repeats {
                for (ci, cell) in self.cells.iter().enumerate() {
                    let rec = match cell.engine {
                        CellEngine::Serial => run_serial(
                            serial_plan.as_ref().expect("planned above"),
                            wname,
                            g,
                            cell,
                            self.rounds,
                            self.warn_residency,
                        )
                        .map_err(|e| format!("{wname}/{}: {e}", labels[ci]))?,
                        CellEngine::Parallel => {
                            run_parallel(&planner, wname, g, cell, self.rounds, self.warn_residency)
                                .map_err(|e| format!("{wname}/{}: {e}", labels[ci]))?
                        }
                    };
                    match &reference {
                        None => reference = Some((labels[ci].clone(), rec.digest)),
                        Some((ref_label, d)) => {
                            if *d != rec.digest {
                                return Err(format!(
                                    "{wname}: digest diverged — cell '{}' produced \
                                     {:016x}, reference cell '{ref_label}' produced {:016x}",
                                    labels[ci],
                                    rec.digest.unwrap_or(0),
                                    d.unwrap_or(0),
                                )
                                .into());
                            }
                        }
                    }
                    runs[ci].push(rec);
                }
            }

            // Per-cell summaries.
            for (ci, cell) in self.cells.iter().enumerate() {
                cells_json.push(cell_json(wname, cell, &labels[ci], &runs[ci], self.rounds));
            }

            // Collect this workload's paired deltas.
            for comp in &self.comparisons {
                let series = |label: &str| -> &Vec<RunRecord> {
                    let i = labels.iter().position(|l| l == label).expect("validated");
                    &runs[i]
                };
                let (base, treat) = (series(&comp.baseline), series(&comp.treatment));
                // Pair only repeats where both cells produced the
                // metric; dropping a repeat drops it from both sides.
                let deltas: Vec<f64> = base
                    .iter()
                    .zip(treat)
                    .filter_map(|(b, t)| Some(b.metric(comp.metric)? - t.metric(comp.metric)?))
                    .collect();
                pending.push((wname.clone(), comp, deltas, pending.len()));
            }
        }

        // The family of comparisons: bootstrap each, then BH-adjust the
        // p-values together.
        /// One comparison's bootstrap outputs: interval, p-value, summary.
        type CompStats = (Option<(f64, f64)>, Option<f64>, Option<Summary>);
        let alpha = 1.0 - self.confidence;
        let stats: Vec<CompStats> = pending
            .iter()
            .map(|(_, _, deltas, k)| {
                let seed = self.seed.wrapping_add(*k as u64);
                (
                    bootstrap_mean_ci(deltas, self.bootstrap_iters, self.confidence, seed),
                    bootstrap_mean_pvalue(deltas, self.bootstrap_iters, seed),
                    Summary::of(deltas),
                )
            })
            .collect();
        let tested: Vec<f64> = stats.iter().filter_map(|(_, p, _)| *p).collect();
        let mut adjusted = benjamini_hochberg(&tested).into_iter();
        let comparisons_json: Vec<Value> = pending
            .iter()
            .zip(&stats)
            .map(|((wname, comp, deltas, _), (ci, p, summary))| {
                let p_adj = p.and_then(|_| adjusted.next());
                serde_json::json!({
                    "workload": wname,
                    "metric": comp.metric.name(),
                    "baseline": comp.baseline,
                    "treatment": comp.treatment,
                    "pairs": deltas.len(),
                    "mean": opt_json(summary.as_ref().map(|s| s.mean)),
                    "ci_lo": opt_json(ci.map(|c| c.0)),
                    "ci_hi": opt_json(ci.map(|c| c.1)),
                    "confidence": self.confidence,
                    "p": opt_json(*p),
                    "p_adjusted": opt_json(p_adj),
                    "significant": serde_json::to_value(p_adj.map(|q| q <= alpha))
                        .unwrap_or(Value::Null),
                })
            })
            .collect();

        Ok(serde_json::json!({
            "schema": SCHEMA,
            "sweep": self.name,
            "repeats": self.repeats,
            "rounds": self.rounds,
            "smoke": smoke(),
            "confidence": self.confidence,
            "fdr_alpha": alpha,
            "bootstrap_iters": self.bootstrap_iters,
            "seed": self.seed,
            "warn_residency": self.warn_residency,
            "machine": machine_json(),
            "workloads": self.workloads.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            "cells": cells_json,
            "comparisons": comparisons_json,
        }))
    }
}

/// The machine/counter-availability block every sweep document embeds
/// (`"machine"`), so a saved sweep is self-describing for cross-run
/// comparability: the discovered topology, and whether hardware
/// counters were actually available (`"pmu"`) or every reading degraded
/// to wall-clock only (`"timing-only"`, e.g. under `CCS_NO_PERF=1` or a
/// restrictive `perf_event_paranoid`). `ccs bench` fingerprints history
/// records from the same probe.
pub fn machine_json() -> Value {
    let topo = Topology::discover();
    let probe = ccs_perf::probe();
    serde_json::json!({
        "topology": topo.summary(),
        "topology_shape": format!(
            "{}/{}x{}x{}",
            topo.source().name(),
            topo.node_count(),
            topo.cluster_count(),
            topo.core_count(),
        ),
        "counters": if probe.available { "pmu" } else { "timing-only" },
        "counters_reason": match &probe.reason {
            Some(r) => Value::String(r.clone()),
            None => Value::Null,
        },
    })
}

/// Run one serial repeat: the two-level schedule for the same number of
/// granularity-`T` rounds, through the same counter suite, with the
/// warmup window expressed in firings. A fused cell runs the identical
/// firing sequence through [`ccs_exec::execute_serial_fused`] instead.
fn run_serial(
    plan: &ccs_core::Plan,
    name: &str,
    g: &StreamGraph,
    cell: &Cell,
    rounds: u64,
    warn_residency: f64,
) -> Result<RunRecord, Box<dyn Error>> {
    let mut inst = ccs_apps::bound_instance(name, g.clone());
    let warm = cell.warmup.min(rounds - 1);
    let firings_per_round = (plan.run.firings.len() as u64) / rounds;
    let obs_cfg = ccs_runtime::ObsConfig {
        counters: cell.counters,
        warmup_firings: warm * firings_per_round,
        window_firings: cell.windows * firings_per_round,
        block_firings: if cell.trace { firings_per_round } else { 0 },
        trace: cell.trace,
        ..ccs_runtime::ObsConfig::default()
    };
    let (run, obs) = if cell.fused {
        let ra = RateAnalysis::analyze_single_io(g)?;
        ccs_exec::execute_serial_fused(inst, &ra, &plan.partition, cache_m(g), rounds, &obs_cfg)?
    } else {
        ccs_runtime::serial::execute_obs(&mut inst, &plan.run, &obs_cfg)
    };
    let mpki_series: Vec<f64> = obs
        .windows
        .iter()
        .filter_map(|w| w.sample.as_ref().and_then(|s| s.mpki()))
        .collect();
    let drift_points = ccs_insight::ewma_change_points(&mpki_series, ccs_insight::MPKI_EPS)
        .change_points
        .len() as u64;
    let sample = obs.sample;
    let wall_ms = run.wall.as_secs_f64() * 1e3;
    let measured_items = (run.sink_items / rounds) * (rounds - warm);
    Ok(RunRecord {
        wall_ms,
        items_per_sec: if wall_ms > 0.0 {
            run.sink_items as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        llc_mpi: sample
            .as_ref()
            .and_then(|s| s.per_item(CounterKind::LlcMisses, measured_items)),
        ipc: sample.as_ref().and_then(|s| s.ipc()),
        mpki: sample.as_ref().and_then(|s| s.mpki()),
        stall_ms: None,
        instr_pi: sample
            .as_ref()
            .and_then(|s| s.per_item(CounterKind::Instructions, measured_items)),
        seg_mpi: Vec::new(),
        digest: run.digest,
        segments: plan.partition.num_components(),
        counted: sample.is_some(),
        multiplexed: sample.as_ref().is_some_and(|s| s.multiplexed()),
        rings_touched: 0,
        trace_events: obs.trace.as_ref().map_or(0, |t| t.events.len() as u64),
        trace_dropped: obs.trace.as_ref().map_or(0, |t| t.dropped),
        window_count: obs.windows.len(),
        windows_timing_only: obs.windows.iter().filter(|w| w.timing_only()).count(),
        windows_scaled_low: obs
            .windows
            .iter()
            .filter(|w| w.scaled_below(warn_residency))
            .count(),
        stall_share: None,
        bottleneck: None,
        drift_points,
        migrations: 0,
    })
}

/// Run one parallel repeat under the cell's [`RunConfig`].
fn run_parallel(
    planner: &Planner,
    name: &str,
    g: &StreamGraph,
    cell: &Cell,
    rounds: u64,
    warn_residency: f64,
) -> Result<RunRecord, Box<dyn Error>> {
    let mut cfg = RunConfig::new(cell.workers)
        .with_placement(cell.placement)
        .with_pinning(cell.pin_cores)
        .with_counters(cell.counters)
        .with_warmup(cell.warmup)
        .with_segment_counters(cell.segment_counters)
        .with_counter_stride(cell.counter_stride.max(1))
        .with_warmup_mode(cell.warmup_mode)
        .with_first_touch(cell.first_touch)
        .with_trace(cell.trace)
        .with_windows(cell.windows)
        .with_fused(cell.fused);
    if let Some(spec) = &cell.topology {
        cfg = cfg.with_topology(Topology::synthetic(spec));
    }
    if cell.adapt {
        cfg = cfg.with_adapt(AdaptConfig::default());
    }
    let pr =
        planner.plan_and_run_parallel(ccs_apps::bound_instance(name, g.clone()), rounds, &cfg)?;
    let stats = pr.stats;
    let totals = stats.counter_totals();
    let busy_ms: f64 = stats
        .workers
        .iter()
        .map(|w| w.busy.as_secs_f64() * 1e3)
        .sum();
    let stall_ms = stats.total_stall_time().as_secs_f64() * 1e3;
    let bottleneck = if cell.trace {
        let slices: Vec<(usize, &[ccs_obs::Event])> = stats
            .workers
            .iter()
            .filter_map(|w| w.trace.as_ref().map(|t| (w.worker, &t.events[..])))
            .collect();
        ccs_insight::top_bottleneck(&slices)
    } else {
        None
    };
    let drift_points: u64 = stats
        .workers
        .iter()
        .map(|w| {
            let series: Vec<f64> = w
                .windows
                .iter()
                .filter_map(|win| win.sample.as_ref().and_then(|s| s.mpki()))
                .collect();
            ccs_insight::ewma_change_points(&series, ccs_insight::MPKI_EPS)
                .change_points
                .len() as u64
        })
        .sum();
    Ok(RunRecord {
        wall_ms: stats.run.wall.as_secs_f64() * 1e3,
        items_per_sec: stats.items_per_sec(),
        llc_mpi: stats.llc_misses_per_item(),
        ipc: totals.as_ref().and_then(|t| t.ipc()),
        mpki: totals.as_ref().and_then(|t| t.mpki()),
        stall_ms: Some(stall_ms),
        instr_pi: stats.instructions_per_item(),
        seg_mpi: stats.segment_llc_misses_per_item(),
        digest: stats.run.digest,
        segments: stats.segments,
        counted: stats.counted_workers() > 0,
        multiplexed: totals.as_ref().is_some_and(|t| t.multiplexed()),
        rings_touched: stats.rings_first_touched(),
        trace_events: stats.trace_events(),
        trace_dropped: stats.trace_dropped(),
        window_count: stats.window_count(),
        windows_timing_only: stats.windows_timing_only(),
        windows_scaled_low: stats.windows_scaled_below(warn_residency),
        stall_share: if busy_ms + stall_ms > 0.0 {
            Some(stall_ms / (busy_ms + stall_ms))
        } else {
            None
        },
        bottleneck,
        drift_points,
        migrations: stats.total_migrations(),
    })
}

/// Aggregate one (workload, cell)'s repeats into its results entry.
fn cell_json(wname: &str, cell: &Cell, label: &str, runs: &[RunRecord], rounds: u64) -> Value {
    let mpi: Vec<f64> = runs.iter().filter_map(|r| r.llc_mpi).collect();
    let counted = runs.iter().any(|r| r.counted);
    let multiplexed = runs.iter().any(|r| r.multiplexed);
    let status = if !cell.counters {
        "off"
    } else if !mpi.is_empty() {
        if multiplexed {
            "ok (scaled)"
        } else {
            "ok"
        }
    } else if counted {
        // A group opened but the LLC event did not (PMU-less VM).
        "no llc event"
    } else {
        "unavailable"
    };
    let segments = runs.first().map_or(0, |r| r.segments);

    let mut metrics = Vec::new();
    for m in Metric::KNOWN {
        let series: Vec<f64> = runs.iter().filter_map(|r| r.metric(m)).collect();
        if let Some(s) = Summary::of(&series) {
            metrics.push((m.name().to_string(), summary_json(Some(&s))));
        }
    }

    // Per-segment summaries: each segment's series across repeats.
    let mut per_segment = Vec::new();
    if cell.segment_counters {
        for si in 0..segments {
            let series: Vec<f64> = runs
                .iter()
                .filter_map(|r| {
                    r.seg_mpi
                        .iter()
                        .find(|(seg, _)| *seg == si)
                        .and_then(|(_, v)| *v)
                })
                .collect();
            per_segment.push(serde_json::json!({
                "seg": si,
                "llc_misses_per_item": summary_json(Summary::of(&series).as_ref()),
            }));
        }
    }

    let runs_json: Vec<Value> = runs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            serde_json::json!({
                "repeat": i,
                "wall_ms": r.wall_ms,
                "items_per_sec": r.items_per_sec,
                "llc_misses_per_item": opt_json(r.llc_mpi),
                "ipc": opt_json(r.ipc),
                "mpki": opt_json(r.mpki),
                "stall_ms": opt_json(r.stall_ms),
                "instructions_per_item": opt_json(r.instr_pi),
            })
        })
        .collect();

    // Observability accounting, summed over the cell's repeats; absent
    // entirely when neither tracing nor windows were requested, so
    // pre-obs documents and plain cells render identically.
    let obs = if cell.trace || cell.windows > 0 {
        // Per-cell analysis digest: mean run-wide stall share across
        // repeats, and the dominant blamed bottleneck (the (seg, edge,
        // reason) whose repeats' top entries sum to the most blamed
        // time) — the lightweight live cut of `ccs analyze`.
        let shares: Vec<f64> = runs.iter().filter_map(|r| r.stall_share).collect();
        let mut tops: std::collections::BTreeMap<(usize, usize, &'static str), (f64, u64)> =
            std::collections::BTreeMap::new();
        for b in runs.iter().filter_map(|r| r.bottleneck) {
            let e = tops
                .entry((b.seg, b.edge, b.reason.name()))
                .or_insert((0.0, 0));
            e.0 += b.blamed_ms;
            e.1 += b.stalls;
        }
        let top = tops
            .into_iter()
            .max_by(|a, b| {
                a.1 .0
                    .partial_cmp(&b.1 .0)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|((seg, edge, reason), (blamed_ms, stalls))| {
                serde_json::json!({
                    "seg": seg as u64,
                    "edge": edge as u64,
                    "reason": reason,
                    "blamed_ms": blamed_ms,
                    "stalls": stalls,
                })
            })
            .unwrap_or(Value::Null);
        let analysis = serde_json::json!({
            "stall_share": opt_json(Summary::of(&shares).map(|s| s.mean)),
            "top_bottleneck": top,
        });
        serde_json::json!({
            "trace": cell.trace,
            "windows_every": cell.windows,
            "trace_events": runs.iter().map(|r| r.trace_events).sum::<u64>(),
            "trace_dropped": runs.iter().map(|r| r.trace_dropped).sum::<u64>(),
            "windows": runs.iter().map(|r| r.window_count).sum::<usize>(),
            "windows_timing_only": runs.iter().map(|r| r.windows_timing_only).sum::<usize>(),
            "windows_scaled_low": runs.iter().map(|r| r.windows_scaled_low).sum::<usize>(),
            "drift_points": runs.iter().map(|r| r.drift_points).sum::<u64>(),
            "migrations": runs.iter().map(|r| r.migrations).sum::<u64>(),
            "analysis": analysis,
        })
    } else {
        Value::Null
    };

    serde_json::json!({
        "workload": wname,
        "label": label,
        "engine": match cell.engine {
            CellEngine::Serial => "serial",
            CellEngine::Parallel => "parallel",
        },
        "workers": cell.workers,
        "placement": match cell.engine {
            CellEngine::Serial => Value::Null,
            CellEngine::Parallel => Value::String(cell.placement.name().to_string()),
        },
        "pin_cores": cell.pin_cores,
        "topology": match &cell.topology {
            Some(t) => Value::String(t.to_string()),
            None => Value::Null,
        },
        "counters_requested": cell.counters,
        "segment_counters": cell.segment_counters,
        "adapt": cell.adapt,
        "fused": cell.fused,
        "counter_stride": cell.counter_stride.max(1),
        "warmup_batches": cell.warmup.min(rounds.saturating_sub(1)),
        "warmup_mode": cell.warmup_mode.name(),
        "first_touch_rings": cell.first_touch,
        "rings_touched": runs.iter().map(|r| r.rings_touched).max().unwrap_or(0),
        "segments": segments,
        "counters": status,
        "digest": match runs.first().and_then(|r| r.digest) {
            Some(d) => Value::String(format!("{d:016x}")),
            None => Value::Null,
        },
        "runs": runs_json,
        "metrics": Value::Object(metrics),
        "per_segment": per_segment,
        "obs": obs,
    })
}

/// Render a number-or-null JSON field tersely (the shared [`crate::f`]
/// tiering; `n/a` for null).
fn jnum(v: &Value) -> String {
    v.as_f64().map_or_else(|| "n/a".to_string(), crate::f)
}

/// Render a [`SCHEMA`] results document as aligned text — the one
/// renderer behind both the experiment binaries and `ccs report`.
/// Tolerant of nulls (cells measured where counters were unavailable
/// render `n/a`), intolerant of other schemas.
pub fn render(v: &Value) -> Result<String, Box<dyn Error>> {
    if v["schema"].as_str() != Some(SCHEMA) {
        return Err(format!(
            "not a {SCHEMA} document (schema: {}); regenerate with `ccs sweep` \
             or an e19/e20/e21 binary",
            v["schema"].as_str().unwrap_or("missing"),
        )
        .into());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} repeats x {} rounds{}",
        v["sweep"].as_str().unwrap_or("sweep"),
        v["repeats"].as_u64().unwrap_or(0),
        v["rounds"].as_u64().unwrap_or(0),
        if v["smoke"].as_bool() == Some(true) {
            " [smoke]"
        } else {
            ""
        },
    );
    // Pre-`machine` documents simply skip the line, so old saved sweeps
    // (and the checked-in fixtures) render unchanged.
    let machine = &v["machine"];
    if !machine.is_null() {
        let _ = writeln!(
            out,
            "machine: {} | counters: {}{}",
            machine["topology"].as_str().unwrap_or("?"),
            machine["counters"].as_str().unwrap_or("?"),
            match machine["counters_reason"].as_str() {
                Some(r) => format!(" ({r})"),
                None => String::new(),
            },
        );
    }

    let Value::Array(cells) = &v["cells"] else {
        return Err("document has no `cells` array".into());
    };
    let mut table = crate::Table::new(
        "",
        &[
            "workload",
            "cell",
            "workers",
            "pin",
            "segs",
            "n",
            "wall ms",
            "items/s (M)",
            "miss/item",
            "stddev",
            "counters",
        ],
    );
    for c in cells {
        let mpi = &c["metrics"]["llc_misses_per_item"];
        let wall = &c["metrics"]["wall_ms"];
        let ips = &c["metrics"]["items_per_sec"]["mean"];
        table.row(vec![
            c["workload"].as_str().unwrap_or("?").to_string(),
            c["label"].as_str().unwrap_or("?").to_string(),
            c["workers"].as_u64().map_or("?".into(), |w| w.to_string()),
            c["pin_cores"].as_bool().unwrap_or(false).to_string(),
            c["segments"].as_u64().map_or("?".into(), |s| s.to_string()),
            match &c["runs"] {
                Value::Array(r) => r.len(),
                _ => 0,
            }
            .to_string(),
            jnum(&wall["mean"]),
            ips.as_f64()
                .map_or("n/a".into(), |x| format!("{:.3}", x / 1e6)),
            jnum(&mpi["mean"]),
            jnum(&mpi["stddev"]),
            c["counters"].as_str().unwrap_or("?").to_string(),
        ]);
    }
    out.push_str(&table.body());

    // Per-segment attribution, where present.
    for c in cells {
        if let Value::Array(segs) = &c["per_segment"] {
            let lines: Vec<String> = segs
                .iter()
                .filter(|s| !s["llc_misses_per_item"].is_null())
                .map(|s| {
                    format!(
                        "seg {} {} +/- {}",
                        s["seg"].as_u64().unwrap_or(0),
                        jnum(&s["llc_misses_per_item"]["mean"]),
                        jnum(&s["llc_misses_per_item"]["stddev"]),
                    )
                })
                .collect();
            if !lines.is_empty() {
                let _ = writeln!(
                    out,
                    "  {} / {} per-segment miss/item: {}",
                    c["workload"].as_str().unwrap_or("?"),
                    c["label"].as_str().unwrap_or("?"),
                    lines.join(" | "),
                );
            }
        }
    }

    // Observability health, where cells traced or windowed: drops,
    // low-residency windows, and heavy stalling degrade the data (or
    // the run) quietly unless surfaced.
    let warn_residency = v["warn_residency"]
        .as_f64()
        .unwrap_or(ccs_obs::MULTIPLEX_WARN_RATIO);
    for c in cells {
        let obs = &c["obs"];
        if obs.is_null() {
            continue;
        }
        let who = format!(
            "{}/{}",
            c["workload"].as_str().unwrap_or("?"),
            c["label"].as_str().unwrap_or("?"),
        );
        let dropped = obs["trace_dropped"].as_u64().unwrap_or(0);
        if dropped > 0 {
            let _ = writeln!(
                out,
                "  warning: {who}: ring overflow dropped {dropped} trace events \
                 across repeats — the timeline is truncated; raise the ring \
                 capacity (--trace-cap)",
            );
        }
        let windows = obs["windows"].as_u64().unwrap_or(0);
        let scaled_low = obs["windows_scaled_low"].as_u64().unwrap_or(0);
        if scaled_low > 0 {
            let _ = writeln!(
                out,
                "  warning: {who}: {scaled_low} of {windows} counter windows ran below \
                 {:.0}% PMU residency — multiplex-scaled counts are estimates",
                100.0 * warn_residency,
            );
        }
        let timing_only = obs["windows_timing_only"].as_u64().unwrap_or(0);
        if windows > 0 && timing_only == windows {
            let _ = writeln!(
                out,
                "  note: {who}: counter windows are timing-only (no counter group opened)",
            );
        }
        let drift = obs["drift_points"].as_u64().unwrap_or(0);
        if drift > 0 {
            let _ = writeln!(
                out,
                "  warning: {who}: mpki drifted mid-run — {drift} change point(s) flagged \
                 across counter windows (EWMA band); steady-state means may mix regimes",
            );
        }
        let migrations = obs["migrations"].as_u64().unwrap_or(0);
        if migrations > 0 {
            let _ = writeln!(
                out,
                "  note: {who}: {migrations} live segment migration(s) across repeats — \
                 the placement changed mid-run; see `ccs analyze` for where they landed",
            );
        }
        let analysis = &obs["analysis"];
        if let Some(share) = analysis["stall_share"].as_f64() {
            if share >= STALL_WARN_SHARE {
                let top = &analysis["top_bottleneck"];
                let blamed = if top.is_null() {
                    "no attributed bottleneck — re-run with --trace".to_string()
                } else {
                    format!(
                        "bottleneck seg {} via edge {} ({})",
                        top["seg"].as_u64().unwrap_or(0),
                        top["edge"].as_u64().unwrap_or(0),
                        top["reason"].as_str().unwrap_or("?"),
                    )
                };
                let _ = writeln!(
                    out,
                    "  warning: {who}: workers stalled {:.0}% of busy time — {blamed}",
                    100.0 * share,
                );
            }
        }
    }

    // The comparison family.
    if let Value::Array(comps) = &v["comparisons"] {
        if !comps.is_empty() {
            let _ = writeln!(
                out,
                "paired deltas (baseline - treatment), {} comparisons, \
                 BH-corrected at FDR {}:",
                comps.len(),
                jnum(&v["fdr_alpha"]),
            );
        }
        for d in comps {
            let metric = d["metric"].as_str().unwrap_or("?");
            let higher_better = Metric::parse(metric).is_some_and(|m| m.higher_is_better());
            let significant = d["significant"].as_bool();
            let mean = d["mean"].as_f64();
            let verdict = match (significant, mean) {
                (Some(true), Some(m)) => {
                    // delta = baseline − treatment: positive means the
                    // treatment's value is smaller.
                    if (m > 0.0) != higher_better {
                        "  => treatment wins"
                    } else {
                        "  => baseline wins"
                    }
                }
                (Some(false), _) => "  => no significant difference",
                _ => "",
            };
            let _ = writeln!(
                out,
                "  {} {}: {} - {} = {} [{}, {}] over {} pairs, p_adj {}{}",
                d["workload"].as_str().unwrap_or("?"),
                metric,
                d["baseline"].as_str().unwrap_or("?"),
                d["treatment"].as_str().unwrap_or("?"),
                jnum(&d["mean"]),
                jnum(&d["ci_lo"]),
                jnum(&d["ci_hi"]),
                d["pairs"].as_u64().unwrap_or(0),
                jnum(&d["p_adjusted"]),
                verdict,
            );
        }
    }
    Ok(out)
}

/// The shared `main()` tail of every experiment binary: run the
/// declared sweep, print the rendered report, and save the results
/// document under `results/<sweep.name>.json`.
pub fn run_and_save(sweep: &Sweep) -> Value {
    let out = sweep
        .run()
        .unwrap_or_else(|e| panic!("{}: {e}", sweep.name));
    print!("{}", render(&out).expect("own schema renders"));
    let dir = crate::results_dir();
    std::fs::create_dir_all(&dir).expect("results dir exists");
    let path = dir.join(format!("{}.json", sweep.name));
    let json = serde_json::to_string_pretty(&out).expect("document serializes");
    std::fs::write(&path, &json).expect("results written");
    println!(
        "json: {} (render with `ccs report {}`)",
        path.display(),
        path.display()
    );
    if smoke() {
        println!(
            "(smoke mode: repeats = {}, rounds = {})",
            sweep.repeats, sweep.rounds
        );
    }
    out
}

/// Build a [`Sweep`] from a JSON spec document:
///
/// ```json
/// {
///   "name": "my-sweep", "repeats": 5, "rounds": 64, "warmup": 16,
///   "apps": ["fm-radio", "layered-dag"],
///   "cells": [
///     {"engine": "serial", "counters": true},
///     {"workers": 4, "placement": "rr", "pin_cores": true, "counters": true},
///     {"workers": 4, "placement": "llc", "pin_cores": true, "counters": true,
///      "label": "llc", "topology": "2x2x2", "segment_counters": true,
///      "warmup_mode": "epoch", "first_touch": true, "stride": 1,
///      "trace": true, "windows": 4}
///   ],
///   "comparisons": [
///     {"metric": "llc_misses_per_item", "baseline": "rr+pin/w4", "treatment": "llc"}
///   ],
///   "bootstrap_iters": 1000, "confidence": 0.9, "seed": 42,
///   "warn_residency": 0.5
/// }
/// ```
///
/// Unknown apps, placements, metrics, or labels are errors. `warmup` at
/// the top level is the default for cells that do not set their own.
/// With no `comparisons`, every later cell is compared against the
/// first on `llc_misses_per_item` and `wall_ms`.
pub fn from_spec(v: &Value) -> Result<Sweep, Box<dyn Error>> {
    let mut sweep = Sweep::new(v["name"].as_str().unwrap_or("sweep"));
    if let Some(r) = v["repeats"].as_u64() {
        sweep.repeats = r as usize;
    }
    if let Some(r) = v["rounds"].as_u64() {
        sweep.rounds = r;
    }
    if let Some(i) = v["bootstrap_iters"].as_u64() {
        sweep.bootstrap_iters = i as usize;
    }
    if let Some(c) = v["confidence"].as_f64() {
        sweep.confidence = c;
    }
    if let Some(s) = v["seed"].as_u64() {
        sweep.seed = s;
    }
    if let Some(w) = v["warn_residency"].as_f64() {
        sweep.warn_residency = w;
    }
    let default_warmup = v["warmup"].as_u64().unwrap_or(0);

    let Value::Array(apps) = &v["apps"] else {
        return Err("spec needs an `apps` array of workload names".into());
    };
    for a in apps {
        let name = a.as_str().ok_or("app names must be strings")?;
        let (n, g) = workload(name).ok_or_else(|| {
            format!("unknown app '{name}' (try `ccs gen app list`, or 'layered-dag')")
        })?;
        sweep = sweep.with_workload(n, g);
    }

    let Value::Array(cells) = &v["cells"] else {
        return Err("spec needs a `cells` array".into());
    };
    for c in cells {
        let engine = c["engine"].as_str().unwrap_or("parallel");
        let mut cell = match engine {
            "serial" => Cell::serial(),
            "parallel" => {
                let placement = match c["placement"].as_str() {
                    None => Placement::RoundRobin,
                    Some(p) => Placement::parse(p)
                        .ok_or_else(|| format!("unknown placement '{p}' (rr|greedy|llc)"))?,
                };
                Cell::parallel(
                    c["workers"].as_u64().unwrap_or(2).max(1) as usize,
                    placement,
                )
            }
            other => return Err(format!("unknown engine '{other}' (serial|parallel)").into()),
        };
        if let Some(l) = c["label"].as_str() {
            cell = cell.with_label(l);
        }
        if let Some(p) = c["pin_cores"].as_bool() {
            cell = cell.with_pinning(p);
        }
        if let Some(t) = c["topology"].as_str() {
            cell = cell.with_topology(t.parse::<TopoSpec>()?);
        }
        if let Some(b) = c["counters"].as_bool() {
            cell = cell.with_counters(b);
        }
        if let Some(b) = c["segment_counters"].as_bool() {
            cell = cell.with_segment_counters(b).with_counters(true);
        }
        cell = cell.with_counter_stride(c["stride"].as_u64().unwrap_or(1));
        cell = cell.with_warmup(c["warmup"].as_u64().unwrap_or(default_warmup));
        if let Some(m) = c["warmup_mode"].as_str() {
            cell = cell.with_warmup_mode(match m {
                "epoch" => WarmupMode::Epoch,
                "per-worker" => WarmupMode::PerWorker,
                other => return Err(format!("unknown warmup_mode '{other}'").into()),
            });
        }
        if let Some(b) = c["first_touch"].as_bool() {
            cell = cell.with_first_touch(b);
        }
        if let Some(b) = c["trace"].as_bool() {
            cell = cell.with_trace(b);
        }
        cell = cell.with_windows(c["windows"].as_u64().unwrap_or(0));
        if let Some(b) = c["adapt"].as_bool() {
            cell = cell.with_adapt(b);
        }
        if let Some(b) = c["fused"].as_bool() {
            cell = cell.with_fused(b);
        }
        if cell.adapt && cell.windows == 0 {
            return Err(format!(
                "cell '{}' enables adapt without counter windows; set \"windows\" >= 1 \
                 (the controller is driven by the window stream)",
                cell.label()
            )
            .into());
        }
        sweep = sweep.with_cell(cell);
    }

    match &v["comparisons"] {
        Value::Array(comps) => {
            for d in comps {
                let metric_name = d["metric"].as_str().unwrap_or("llc_misses_per_item");
                let metric = Metric::parse(metric_name)
                    .ok_or_else(|| format!("unknown metric '{metric_name}'"))?;
                let baseline = d["baseline"]
                    .as_str()
                    .ok_or("comparison needs `baseline`")?;
                let treatment = d["treatment"]
                    .as_str()
                    .ok_or("comparison needs `treatment`")?;
                sweep = sweep.with_comparison(metric, baseline, treatment);
            }
        }
        Value::Null => {
            sweep = default_comparisons(sweep);
        }
        _ => return Err("`comparisons` must be an array".into()),
    }
    Ok(sweep)
}

/// The default comparison family: every cell after the first against
/// the first, on misses/item and wall time.
pub fn default_comparisons(mut sweep: Sweep) -> Sweep {
    let labels: Vec<String> = sweep.cells.iter().map(|c| c.label()).collect();
    if let Some((base, rest)) = labels.split_first() {
        for t in rest {
            for m in [Metric::LlcMissesPerItem, Metric::WallMs] {
                sweep = sweep.with_comparison(m, base.clone(), t.clone());
            }
        }
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_derived_and_overridable() {
        assert_eq!(Cell::serial().label(), "serial");
        assert_eq!(Cell::parallel(4, Placement::Llc).label(), "llc/w4");
        assert_eq!(
            Cell::parallel(2, Placement::RoundRobin)
                .with_pinning(true)
                .label(),
            "rr+pin/w2"
        );
        assert_eq!(
            Cell::parallel(2, Placement::CommGreedy)
                .with_topology(TopoSpec::new(2, 2, 2))
                .label(),
            "greedy/w2/2x2x2"
        );
        assert_eq!(
            Cell::parallel(2, Placement::RoundRobin)
                .with_windows(2)
                .with_adapt(true)
                .label(),
            "rr+adapt/w2"
        );
        assert_eq!(Cell::serial().with_fused(true).label(), "serial+fused");
        assert_eq!(
            Cell::parallel(4, Placement::Llc).with_fused(true).label(),
            "llc+fused/w4"
        );
        assert_eq!(
            Cell::parallel(2, Placement::Llc).with_label("mine").label(),
            "mine"
        );
    }

    #[test]
    fn metric_names_roundtrip() {
        for m in Metric::KNOWN {
            assert_eq!(Metric::parse(m.name()), Some(m));
        }
        assert_eq!(Metric::parse("bogus"), None);
        assert!(Metric::ItemsPerSec.higher_is_better());
        assert!(!Metric::LlcMissesPerItem.higher_is_better());
        // The bench-record set stays frozen; newer metrics are parseable
        // but never reshape `ccs-bench/v1` records.
        assert!(!Metric::ALL.contains(&Metric::InstructionsPerItem));
        assert!(!Metric::InstructionsPerItem.higher_is_better());
    }

    #[test]
    fn validation_catches_bad_declarations() {
        let base = Sweep::new("t")
            .with_workload("w", ccs_graph::gen::pipeline_uniform(4, 16))
            .with_cell(Cell::parallel(2, Placement::RoundRobin));
        assert!(Sweep::new("t").run().is_err(), "no workloads");
        assert!(
            Sweep::new("t")
                .with_workload("w", ccs_graph::gen::pipeline_uniform(4, 16))
                .run()
                .is_err(),
            "no cells"
        );
        let dup = base
            .clone()
            .with_cell(Cell::parallel(2, Placement::RoundRobin));
        assert!(dup.run().unwrap_err().to_string().contains("duplicate"));
        let dangling = base
            .clone()
            .with_comparison(Metric::WallMs, "rr/w2", "nope");
        assert!(dangling
            .run()
            .unwrap_err()
            .to_string()
            .contains("unknown cell"));
        // A percent-style confidence is rejected up front, not left to
        // silently void every interval.
        let mut pct = base.clone();
        pct.confidence = 95.0;
        assert!(pct.run().unwrap_err().to_string().contains("confidence"));
    }

    #[test]
    fn spec_roundtrip_builds_the_declared_grid() {
        let spec: Value = serde_json::from_str(
            r#"{
              "name": "spec-test", "repeats": 2, "rounds": 4, "warmup": 1,
              "apps": ["fm-radio"],
              "cells": [
                {"engine": "serial", "counters": true},
                {"workers": 2, "placement": "llc", "pin_cores": true,
                 "counters": true, "topology": "1x2x2"},
                {"workers": 2, "placement": "rr", "fused": true}
              ],
              "comparisons": [
                {"metric": "wall_ms", "baseline": "serial", "treatment": "llc+pin/w2/1x2x2"}
              ]
            }"#,
        )
        .unwrap();
        let sweep = from_spec(&spec).unwrap();
        assert_eq!(sweep.name, "spec-test");
        assert_eq!(sweep.repeats, 2);
        assert_eq!(sweep.rounds, 4);
        assert_eq!(sweep.workloads.len(), 1);
        assert_eq!(sweep.cells.len(), 3);
        assert_eq!(sweep.cells[0].engine, CellEngine::Serial);
        assert_eq!(sweep.cells[0].warmup, 1, "top-level warmup default");
        assert_eq!(sweep.cells[1].label(), "llc+pin/w2/1x2x2");
        assert!(sweep.cells[2].fused);
        assert_eq!(sweep.cells[2].label(), "rr+fused/w2");
        assert_eq!(sweep.comparisons.len(), 1);
        // Unknown apps/placements/metrics are errors.
        let bad: Value =
            serde_json::from_str(r#"{"apps": ["nope"], "cells": [{"workers": 2}]}"#).unwrap();
        assert!(from_spec(&bad).is_err());
    }

    #[test]
    fn render_rejects_other_schemas() {
        let legacy: Value =
            serde_json::from_str(r#"{"experiment": "e21_steady_state", "cells": []}"#).unwrap();
        assert!(render(&legacy).is_err());
    }
}
