//! E12 — Reality check: wall clock on real memory.
//!
//! The DAM-model wins must materialize on the host machine. At this
//! workload scale the relevant hardware cache is L1/L2 (tens to hundreds
//! of KB), so the experiment sizes the application state beyond L1 and
//! compares schedulers on real executions with real FIR kernels:
//!
//! * demand-driven: interleaves every module per item — the real
//!   thrasher (its per-item working set is the whole application);
//! * single-appearance: perfect per-module locality but buffer traffic
//!   proportional to the iteration batch;
//! * partitioned: the paper's schedule — state reuse within cache-sized
//!   components and bounded buffers.

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_sched::baseline;

fn run_real(g: &StreamGraph, run: &ccs_sched::SchedRun, reps: usize) -> (f64, u64, Option<u64>) {
    // Median of `reps` runs to tame scheduling noise.
    let mut times = Vec::new();
    let mut items = 0;
    let mut digest = None;
    for _ in 0..reps {
        let mut inst = ccs_apps::fir_instance(g.clone());
        let stats = ccs_runtime::execute(&mut inst, run);
        times.push(stats.wall.as_secs_f64());
        items = stats.sink_items;
        digest = stats.digest;
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], items, digest)
}

/// A pipeline built for the DRAM/L3 regime: every module streams a large
/// state block but processes items 32 at a time, so state traffic — not
/// executor overhead — dominates the wall clock.
fn dram_regime_pipeline(n: usize, state: u64) -> StreamGraph {
    let mut b = GraphBuilder::new();
    let mut prev = b.node("src", state);
    for i in 0..n - 2 {
        let v = b.node(format!("s{i}"), state);
        b.edge(prev, v, 32, 32);
        prev = v;
    }
    let sink = b.node("sink", state);
    b.edge(prev, sink, 32, 32);
    b.build().unwrap()
}

fn main() {
    let mut table = Table::new(
        "E12: wall clock, real execution (FIR kernels, median of 3)",
        &["app", "scheduler", "wall ms", "sink items", "ns/item"],
    );

    // 128 equalizer bands x 136 words = ~70KB of state: past L1d,
    // within L2 — the regime the paper's L1-level claims address.
    for (name, g) in [
        ("fm-radio(128)", ccs_apps::fm_radio(128)),
        ("vocoder(96)", ccs_apps::vocoder(96)),
    ] {
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let sink = ra.sink.unwrap();
        let iterations = 30_000u64;
        let target = iterations * ra.q(sink);

        let mut runs: Vec<ccs_sched::SchedRun> = vec![
            baseline::demand_driven(&g, &ra, target),
            baseline::single_appearance(&g, &ra, iterations),
        ];
        // Partitioned with the static round-based scheduler (exactly the
        // baselines' work — the dynamic variant pre-fills Θ(M) buffers,
        // which only amortizes at much larger targets). Cache sized at 8x
        // the biggest module (L1-scale).
        {
            use ccs_partition::pipeline as ppart;
            use ccs_sched::partitioned;
            let m = (8 * g.max_state()).next_multiple_of(16);
            let t = partitioned::granularity_t(&g, &ra, m).unwrap();
            let per_round = (Ratio::integer(t as i128) * ra.gain(sink)).floor().max(1) as u64;
            let rounds = target.div_ceil(per_round);
            match ppart::greedy_theorem5(&g, &ra, m / 8) {
                Ok(pp) => match partitioned::inhomogeneous(&g, &ra, &pp.partition, m, rounds) {
                    Ok(run) => runs.push(run),
                    Err(e) => println!("{name}: scheduling failed: {e}"),
                },
                Err(e) => println!("{name}: partitioning failed: {e}"),
            }
        }

        let mut digests = Vec::new();
        for run in &runs {
            let (wall, items, digest) = run_real(&g, run, 3);
            digests.push((run.label.clone(), items, digest));
            table.row(vec![
                name.to_string(),
                run.label.clone(),
                f(wall * 1e3),
                items.to_string(),
                f(wall / items.max(1) as f64 * 1e9),
            ]);
        }
        // Equal-length runs must agree bit-for-bit.
        for w in digests.windows(2) {
            if w[0].1 == w[1].1 {
                assert_eq!(w[0].2, w[1].2, "{name}: digest mismatch");
            }
        }
    }

    // The regime where the DAM prediction must show up on real hardware:
    // 32 modules x 96KB of state (3MB total, beyond L2), edges moving 32
    // items per firing so state streaming dominates executor overhead.
    // The partitioned run uses the *static* round-based scheduler so the
    // work is exactly the baselines' (the dynamic variant prefills every
    // Θ(M) buffer, which only amortizes at much larger targets).
    {
        use ccs_partition::pipeline as ppart;
        use ccs_sched::partitioned;
        let n = 32usize;
        let state = 24_576u64; // words = 96KB per module
        let g = dram_regime_pipeline(n, state);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let m_sim = (8 * state).next_multiple_of(16); // 786KB cache model
        let rounds = 2u64;
        let t = partitioned::granularity_t(&g, &ra, m_sim).unwrap();
        let target = rounds * t; // sink firings per round = T·gain(sink) = T

        let mut runs: Vec<ccs_sched::SchedRun> = vec![
            baseline::demand_driven(&g, &ra, target),
            baseline::single_appearance(&g, &ra, target),
        ];
        let pp = ppart::greedy_theorem5(&g, &ra, m_sim / 8).unwrap();
        match partitioned::inhomogeneous(&g, &ra, &pp.partition, m_sim, rounds) {
            Ok(run) => runs.push(run),
            Err(e) => println!("dram-regime: scheduling failed: {e}"),
        }
        for run in &runs {
            let (wall, items, _) = run_real(&g, run, 1);
            table.row(vec![
                "dram-regime(32x96KB)".to_string(),
                run.label.clone(),
                f(wall * 1e3),
                items.to_string(),
                f(wall / items.max(1) as f64 * 1e9),
            ]);
        }
    }

    table.print();
    println!("shape check: in the small apps (state within L2) every schedule already");
    println!("runs near memory speed, and partitioned matches or slightly beats the");
    println!("baselines. In the dram-regime rows the per-iteration working set (3MB)");
    println!("exceeds L2: the interleaving baselines stream it from L3/DRAM once per");
    println!("32 items, while the partitioned schedule keeps each ~768KB component");
    println!("cache-resident across its batch — the DAM-model ordering materializes");
    println!("in wall-clock time (the magnitude is bounded by the ~1.5-3x bandwidth");
    println!("gap between cache levels for streaming sums, exactly as expected).");
    let path = table.save_csv("e12_wall_clock").unwrap();
    println!("csv: {}", path.display());
}
