//! E4 — Corollary 6: O(1)-competitive with O(1) cache augmentation.
//!
//! The partitioned schedule on a cache of size c·M should incur at most a
//! constant factor more misses than the best schedule we can find on a
//! cache of size M. The harness sweeps the augmentation factor c and
//! reports the ratio `partitioned(c·M) / best-known(M)`; the paper
//! predicts the ratio falls to a constant (around or below 1) once c
//! covers the Theorem 5 component constant.

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen::{self, PipelineCfg, StateDist};
use ccs_partition::pipeline as ppart;
use ccs_sched::{partitioned, ExecOptions, Executor};

fn main() {
    let b = 16u64;
    let m = 512u64;
    let sink_target = 3000u64;
    let mut table = Table::new(
        format!("E4: competitive ratio under cache augmentation (M = {m})"),
        &[
            "seed",
            "best(M) label",
            "best(M) mpo",
            "c",
            "partitioned(cM) mpo",
            "ratio",
        ],
    );

    for seed in [1u64, 5, 9] {
        let cfg = PipelineCfg {
            len: 40,
            state: StateDist::Uniform(32, 64),
            max_q: 3,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();

        // Best-known schedule on the base cache M.
        let rows = compare_schedulers(&g, CacheParams::new(m, b), sink_target);
        let best = rows
            .iter()
            .min_by(|a, c| a.misses_per_output.total_cmp(&c.misses_per_output))
            .expect("schedulers ran");

        // Partitioned on c*M for c in 1..8 (partition parameter M/8 so
        // Theorem 5 components are at most M; the augmented cache then
        // holds them c times over). The dynamic scheduler batches ~c·M
        // items per component load, so the output target scales with c
        // to amortize — the bounds hold "for sufficiently large T".
        for c in [1u64, 2, 4, 8] {
            let params = CacheParams::new(c * m, b);
            let Ok(pp) = ppart::greedy_theorem5(&g, &ra, m / 8) else {
                continue;
            };
            let target_c = sink_target.max(16 * c * m);
            let Ok(run) = partitioned::pipeline_dynamic(&g, &ra, &pp.partition, c * m, target_c)
            else {
                continue;
            };
            let mut ex = Executor::new(
                &g,
                &ra,
                run.capacities.clone(),
                params,
                ExecOptions::default(),
            );
            ex.run(&run.firings).unwrap();
            let rep = ex.report();
            let mpo = rep.stats.misses as f64 / rep.outputs.max(1) as f64;
            table.row(vec![
                seed.to_string(),
                best.label.clone(),
                f(best.misses_per_output),
                c.to_string(),
                f(mpo),
                f(mpo / best.misses_per_output),
            ]);
        }
    }

    table.print();
    println!("shape check: the ratio column is bounded and decreasing in c,");
    println!("reaching O(1) (Corollary 6) without needing unbounded augmentation.");
    let path = table.save_csv("e04_competitive_ratio").unwrap();
    println!("csv: {}", path.display());
}
