//! E2 — Theorem 3: the pipeline lower bound.
//!
//! Any schedule that pushes `T` inputs through a pipeline incurs
//! `Ω((T/B)·Σ gain(gainMin(W_i)))` cache misses. The harness computes the
//! exact lower-bound quantity and measures every scheduler's *interior*
//! misses (tape traffic excluded, matching the theorem's accounting);
//! every measured/LB ratio must sit above a constant.

use ccs_bench::{f, Table};
use ccs_core::bounds;
use ccs_core::prelude::*;
use ccs_graph::gen::{self, PipelineCfg, StateDist};

fn main() {
    let b = 16u64;
    let mut table = Table::new(
        "E2: Theorem 3 pipeline lower bound vs measured misses",
        &[
            "M",
            "scheduler",
            "inputs T",
            "LB misses",
            "measured",
            "measured/LB",
        ],
    );

    for m in [256u64, 512, 1024] {
        let cfg = PipelineCfg {
            len: 32,
            state: StateDist::Uniform(32, 128),
            max_q: 3,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, 42);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let params = CacheParams::new(m, b);
        let lb_gain = bounds::pipeline_lb_gain(&g, &ra, m).unwrap();
        if lb_gain == Ratio::ZERO {
            println!("M = {m}: graph fits, lower bound is zero; skipping");
            continue;
        }
        let rows = compare_schedulers(&g, params, 2000);
        for r in &rows {
            let lb = bounds::misses_lower_bound(lb_gain, r.inputs, params);
            table.row(vec![
                m.to_string(),
                r.label.clone(),
                r.inputs.to_string(),
                f(lb),
                r.interior_misses.to_string(),
                f(r.interior_misses as f64 / lb),
            ]);
        }
    }

    table.print();
    println!("shape check: every measured/LB ratio is bounded below (no scheduler");
    println!("beats the lower bound), and the partitioned schedulers sit closest to it.");
    let path = table.save_csv("e02_pipeline_lower_bound").unwrap();
    println!("csv: {}", path.display());
}
