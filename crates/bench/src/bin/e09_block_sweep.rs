//! E9 — Model check: misses scale as 1/B.
//!
//! Both the lower and upper bounds carry a 1/B factor: block transfers
//! amortize over B-word blocks. The harness fixes the workload and M,
//! sweeps B, and reports `misses x B / inputs` — which must stay flat for
//! every scheduler if the 1/B scaling is real.

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen;

fn main() {
    let m = 1024u64;
    let mut table = Table::new(
        format!("E9: block-size scaling (M = {m} words)"),
        &["B", "scheduler", "misses", "inputs", "misses*B/inputs"],
    );

    let g = gen::pipeline_uniform(32, 128); // 4096 words of state
    for b in [4u64, 8, 16, 32, 64] {
        let params = CacheParams::new(m, b);
        let rows = compare_schedulers(&g, params, 1500);
        for r in &rows {
            table.row(vec![
                b.to_string(),
                r.label.clone(),
                r.misses.to_string(),
                r.inputs.to_string(),
                f(r.misses as f64 * b as f64 / r.inputs.max(1) as f64),
            ]);
        }
    }

    table.print();
    println!("shape check: the last column is flat in B per scheduler — miss counts");
    println!("scale as 1/B across the board, as the DAM analysis requires.");
    let path = table.save_csv("e09_block_sweep").unwrap();
    println!("csv: {}", path.display());
}
