//! E7 — The application-suite comparison (the headline table).
//!
//! Every scheduler on every suite application, at a cache that holds a
//! fraction of each app's total state. The related-work chapter reports
//! Moonen et al. observing >4x cache-miss reductions from cache-aware
//! scheduling on a real application; this table reproduces that shape:
//! the partitioned schedulers win by large factors whenever state
//! pressure is real.

use ccs_bench::{f, Table};
use ccs_core::prelude::*;

fn main() {
    let mut table = Table::new(
        "E7: scheduler comparison across the application suite",
        &[
            "app",
            "M",
            "scheduler",
            "misses/output",
            "buf words",
            "speedup vs SAS",
        ],
    );

    for app in ccs_apps::suite() {
        let g = &app.graph;
        // Cache: a quarter of the app state, but at least 8x the largest
        // module (the Theorem 5 parameterization).
        let m = (g.total_state() / 4)
            .max(8 * g.max_state())
            .next_multiple_of(16);
        let params = CacheParams::new(m, 16);
        // Target at least 4 high-level rounds so component loads, cold
        // buffer misses, and the dynamic scheduler's batch overshoot all
        // amortize ("for sufficiently large T").
        let rows = compare_schedulers(g, params, 2000.max(4 * m));
        let sas = rows
            .iter()
            .find(|r| r.label == "single-appearance")
            .map(|r| r.misses_per_output);
        for r in &rows {
            let speedup = sas.map(|s| s / r.misses_per_output).unwrap_or(f64::NAN);
            table.row(vec![
                app.name.to_string(),
                m.to_string(),
                r.label.clone(),
                f(r.misses_per_output),
                r.buffer_words.to_string(),
                f(speedup),
            ]);
        }
    }

    table.print();
    println!("shape check: partitioned rows dominate; speedups of 4x+ over the");
    println!("single-appearance baseline appear wherever total state exceeds the cache");
    println!("(the Moonen et al. factor-4 observation, reproduced in the DAM model).");
    println!();
    println!("caveats the paper predicts: (a) dense networks (fft, bitonic) violate");
    println!("Lemma 8's degree-limited condition at small M — each component touches");
    println!("more cross edges than M/B blocks, costing up to a factor B (see §5,");
    println!("'Notes on the upper bound'); (b) apps whose state fits in M (jpeg,");
    println!("vocoder at this size) are in the crossover regime where partitioning");
    println!("cannot help (E10 maps that regime).");
    let path = table.save_csv("e07_baseline_comparison").unwrap();
    println!("csv: {}", path.display());
}
