//! E19 — topology-aware placement and core pinning (`ccs-topo` × `ccs-exec`).
//!
//! A thin declaration over [`ccs_bench::sweep`]: placement policies
//! (round-robin, communication-greedy, LLC-aware) × core pinning, on
//! both a deterministic synthetic 2×2×2 machine (reproducible
//! placements on every host) and whatever the host actually is.
//! Digest equivalence across every cell — SDF determinism under
//! placement — is asserted by the engine; the declared comparison
//! family tests the throughput/stall claims (LLC-aware placement with
//! pinning against unpinned round-robin) with paired bootstrap
//! statistics, Benjamini–Hochberg-corrected.
//!
//! Results land in `results/e19_topology_placement.json`
//! (schema `ccs-sweep/v1`, render any time with `ccs report`).
//! `CCS_SMOKE=1` shrinks the grid for CI; `CCS_REPEATS=n` overrides R.

use ccs_bench::sweep::{self, Cell, Metric, Sweep};
use ccs_exec::Placement;
use ccs_topo::TopoSpec;

fn main() {
    let smoke = sweep::smoke();
    let rounds: u64 = if smoke { 2 } else { 64 };
    let repeats = sweep::repeats_or(if smoke { 2 } else { 3 });
    let workers = 4usize;

    let mut s = Sweep::new("e19_topology_placement")
        .with_repeats(repeats)
        .with_rounds(rounds)
        .with_workloads(sweep::builtin_workloads());
    // Two machine models: the fixed synthetic box and the host
    // (`None` — discovered where placement or pinning needs it).
    for topo in [Some(TopoSpec::new(2, 2, 2)), None] {
        for placement in [Placement::RoundRobin, Placement::CommGreedy, Placement::Llc] {
            for pin in [false, true] {
                let mut cell = Cell::parallel(workers, placement).with_pinning(pin);
                if let Some(t) = topo {
                    cell = cell.with_topology(t);
                }
                s = s.with_cell(cell);
            }
        }
    }
    // The paper-shaped claims, as paired comparisons against unpinned
    // round-robin on the same machine model.
    for (base, treat) in [("rr/w4/2x2x2", "llc+pin/w4/2x2x2"), ("rr/w4", "llc+pin/w4")] {
        for metric in [Metric::WallMs, Metric::ItemsPerSec, Metric::StallMs] {
            s = s.with_comparison(metric, base, treat);
        }
    }

    sweep::run_and_save(&s);
    println!("shape check: digests are identical across topologies, placements, and");
    println!("pinning modes (SDF determinism, asserted by the sweep engine); llc");
    println!("placement + pinning should cut stall time and raise throughput vs");
    println!("round-robin on multi-LLC machines.");
}
