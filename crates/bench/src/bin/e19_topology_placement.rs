//! E19 — topology-aware placement and core pinning (`ccs-topo` × `ccs-exec`).
//!
//! Sweeps segment→worker placement policies (round-robin,
//! communication-greedy, LLC-aware) crossed with core pinning on both a
//! deterministic synthetic topology and the discovered host machine,
//! reporting throughput, stall passes, and wall-clock stall time, and
//! verifying SDF determinism (bit-identical sink digests across every
//! placement × pinning × topology combination). Emits the usual
//! table/CSV plus a JSON record per configuration.
//!
//! Set `CCS_SMOKE=1` for a tiny iteration count (CI exercises the
//! sysfs-vs-synthetic discovery path on every push without paying for a
//! full sweep).

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen::{self, LayeredCfg, StateDist};
use ccs_runtime::Instance;

fn main() {
    let smoke = std::env::var("CCS_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let rounds: u64 = if smoke { 2 } else { 64 };
    let workers = 4usize;

    let mut table = Table::new(
        "E19: topology-aware placement x core pinning",
        &[
            "workload",
            "topology",
            "placement",
            "pin",
            "segments",
            "wall ms",
            "items/s (M)",
            "stalls",
            "stall ms",
            "pinned",
            "digest",
        ],
    );

    let workloads: Vec<(&str, StreamGraph)> = vec![
        ("fm-radio(8)", ccs_apps::fm_radio(8)),
        (
            "layered-dag",
            gen::layered(
                &LayeredCfg {
                    layers: 6,
                    max_width: 5,
                    density: 0.35,
                    state: StateDist::Uniform(128, 512),
                    max_q: 2,
                },
                3,
            ),
        ),
    ];

    // Two machine models: a deterministic 2-node × 2-LLC × 2-core box
    // (same on every host — the placements it induces are reproducible)
    // and whatever sysfs says this machine is.
    let topologies: Vec<(&str, Topology)> = vec![
        (
            "synthetic-2x2x2",
            Topology::synthetic(&TopoSpec::new(2, 2, 2)),
        ),
        ("discovered", Topology::discover()),
    ];

    let mut records = Vec::new();
    for (name, g) in workloads {
        let m = (g.total_state() / 3)
            .max(8 * g.max_state())
            .max(512)
            .next_multiple_of(16);
        let planner = Planner::new(CacheParams::new(m, 16));
        let mut reference = None;
        for (tname, topo) in &topologies {
            for placement in [Placement::RoundRobin, Placement::CommGreedy, Placement::Llc] {
                for pin in [false, true] {
                    let cfg = RunConfig::new(workers)
                        .with_placement(placement)
                        .with_topology(topo.clone())
                        .with_pinning(pin);
                    let inst = Instance::synthetic(g.clone());
                    let pr = planner
                        .plan_and_run_parallel(inst, rounds, &cfg)
                        .unwrap_or_else(|e| panic!("{name}/{tname}: {e}"));
                    let stats = &pr.stats;
                    match reference {
                        None => reference = Some(stats.run.digest),
                        Some(d) => assert_eq!(
                            d,
                            stats.run.digest,
                            "{name}/{tname}: digest changed ({}, pin={pin})",
                            placement.name()
                        ),
                    }
                    table.row(vec![
                        name.to_string(),
                        tname.to_string(),
                        placement.name().to_string(),
                        pin.to_string(),
                        stats.segments.to_string(),
                        f(stats.run.wall.as_secs_f64() * 1e3),
                        f(stats.items_per_sec() / 1e6),
                        stats.total_stalls().to_string(),
                        f(stats.total_stall_time().as_secs_f64() * 1e3),
                        format!("{}/{workers}", stats.pinned_workers()),
                        format!("{:016x}", stats.run.digest.unwrap_or(0)),
                    ]);
                    records.push(serde_json::json!({
                        "workload": name,
                        "topology": tname,
                        "topology_summary": topo.summary(),
                        "placement": placement.name(),
                        "pin_cores": pin,
                        "pinned_workers": stats.pinned_workers(),
                        "workers": workers,
                        "segments": stats.segments,
                        "granularity_t": stats.t,
                        "rounds": stats.rounds,
                        "strategy": pr.strategy_used,
                        "wall_ms": stats.run.wall.as_secs_f64() * 1e3,
                        "sink_items": stats.run.sink_items,
                        "items_per_sec": stats.items_per_sec(),
                        "stalls": stats.total_stalls(),
                        "stall_ms": stats.total_stall_time().as_secs_f64() * 1e3,
                        "digest": format!("{:016x}", stats.run.digest.unwrap_or(0)),
                    }));
                }
            }
        }
    }

    table.print();
    println!("shape check: digests are identical across topologies, placements, and");
    println!("pinning modes (SDF determinism); llc placement should cut stall time and");
    println!("raise throughput vs round-robin on multi-LLC machines.");
    let path = table.save_csv("e19_topology_placement").unwrap();
    println!("csv: {}", path.display());

    let json = serde_json::to_string_pretty(&records).unwrap();
    let json_path = ccs_bench::results_dir().join("e19_topology_placement.json");
    std::fs::write(&json_path, &json).unwrap();
    println!("json: {}", json_path.display());
    if smoke {
        println!("(smoke mode: rounds = {rounds})");
    } else {
        println!("{json}");
    }
}
