//! E23 — adaptive control as a paired statistical claim.
//!
//! The `ccs-adapt` integration promises two things. First, **adapt off
//! is free**: with no controller configured, the executor's migration
//! plumbing is a handful of never-taken branches, so a windowed run
//! with adaptation disabled must be statistically indistinguishable
//! from the same run before the feature existed. Second, **adaptation
//! answers drift**: on the seeded `phase-shift` perturbation workload —
//! whose hot kernels step their work mid-run while the output stream
//! stays bit-identical — the controller migrates the inflated segments
//! off the overloaded workers, and the adaptive-vs-static wall-time
//! delta measures what that buys (or costs) on this machine. Three
//! cells, R interleaved repeats:
//!
//! * `static`     — windowed executor, no controller,
//! * `static+win` — identical twin of `static` (the null pair: any
//!   "significant" delta here calibrates the noise floor),
//! * `adapt`      — the online controller over the same window stream.
//!
//! The declared comparisons — static−static+win (expected: nothing) and
//! static−adapt on wall time and throughput, per workload — get paired
//! bootstrap confidence intervals and Benjamini–Hochberg-adjusted
//! p-values. Digest equivalence across all three cells (and against the
//! serial reference partition of the same stream) rides along for free:
//! migrations change *where* segments run, never *what* they compute.
//!
//! Results land in `results/e23_adapt_overhead.json` (schema
//! `ccs-sweep/v1`; render any time with `ccs report`). `CCS_SMOKE=1`
//! shrinks for CI; `CCS_REPEATS=n` overrides R.

use ccs_bench::sweep::{self, Cell, Metric, Sweep};
use ccs_exec::Placement;

fn main() {
    let smoke = sweep::smoke();
    let repeats = sweep::repeats_or(if smoke { 2 } else { 7 });
    let rounds: u64 = if smoke { 16 } else { 96 };
    let workers: usize = if smoke { 2 } else { 4 };

    let mut workloads = sweep::builtin_workloads();
    workloads.push(sweep::workload("phase-shift").expect("phase-shift is a suite app"));

    let cell = || Cell::parallel(workers, Placement::Llc).with_windows(4);
    let mut s = Sweep::new("e23_adapt_overhead")
        .with_repeats(repeats)
        .with_rounds(rounds)
        .with_workloads(workloads)
        .with_cell(cell().with_label("static"))
        .with_cell(cell().with_label("static+win"))
        .with_cell(cell().with_adapt(true).with_label("adapt"));
    for treatment in ["static+win", "adapt"] {
        for metric in [Metric::WallMs, Metric::ItemsPerSec] {
            s = s.with_comparison(metric, "static", treatment);
        }
    }

    sweep::run_and_save(&s);
    println!("shape check: digests are identical across all three cells — the controller");
    println!("moves segments, never items. static - static+win is the noise floor (twin");
    println!("cells, expected no significant delta); static - adapt bounds what live");
    println!("migration costs or buys, including on phase-shift where the seeded mid-run");
    println!("work step forces the controller's hand.");
}
