//! E3 — Lemma 4 / Theorem 5: the pipeline upper bound.
//!
//! The partitioned schedule on a cache of size O(M) incurs
//! `O((T/B)·bandwidth(P))` misses. The harness sweeps pipeline length and
//! cache size, runs the Theorem 5 partition under the dynamic scheduler
//! with 8x cache augmentation (Theorem 5 components reach 8M), and
//! reports measured interior misses against the `(T/B)·bandwidth` term
//! plus the amortized state-load term — the ratio must stay bounded as
//! `n` and `M` scale.

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen::{self, PipelineCfg, StateDist};
use ccs_partition::pipeline as ppart;
use ccs_sched::{partitioned, ExecOptions, Executor};

fn main() {
    let b = 16u64;
    let mut table = Table::new(
        "E3: Theorem 5 upper bound — measured vs (T/B)*bandwidth + state loads",
        &[
            "n",
            "M",
            "bandwidth",
            "T inputs",
            "predicted",
            "measured",
            "measured/predicted",
        ],
    );

    let mut worst: f64 = 0.0;
    for n in [16usize, 32, 64, 128] {
        for m in [256u64, 1024] {
            let cfg = PipelineCfg {
                len: n,
                state: StateDist::Uniform(16, (m / 8).max(17)),
                max_q: 3,
                max_rate_scale: 2,
            };
            let g = gen::pipeline(&cfg, 7);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let pp = match ppart::greedy_theorem5(&g, &ra, m / 8) {
                Ok(pp) => pp,
                Err(_) => continue,
            };
            let params = CacheParams::new(m, b);
            let run = match partitioned::pipeline_dynamic(&g, &ra, &pp.partition, m, 4000) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let mut ex = Executor::new(
                &g,
                &ra,
                run.capacities.clone(),
                params,
                ExecOptions::default(),
            );
            ex.run(&run.firings).unwrap();
            let rep = ex.report();
            let t = rep.inputs as f64;

            // Predicted: buffer traffic (write + read per item crossing)
            // plus one state sweep per M inputs of each component.
            let buffer_term = 2.0 * t * pp.bandwidth.to_f64() / b as f64;
            let state_term = (t / m as f64 + 1.0) * (g.total_state() as f64 / b as f64);
            let predicted = buffer_term + state_term;
            let ratio = rep.interior_misses() as f64 / predicted;
            worst = worst.max(ratio);
            table.row(vec![
                n.to_string(),
                m.to_string(),
                pp.bandwidth.to_string(),
                rep.inputs.to_string(),
                f(predicted),
                rep.interior_misses().to_string(),
                f(ratio),
            ]);
        }
    }

    table.print();
    println!(
        "shape check: measured/predicted stays bounded (worst {}) as n and M scale —",
        f(worst)
    );
    println!("the partitioned schedule meets the Lemma 4 upper bound with a small constant.");
    let path = table.save_csv("e03_pipeline_upper_bound").unwrap();
    println!("csv: {}", path.display());
}
