//! E22 — observability overhead as a paired statistical claim.
//!
//! The `ccs-obs` layer promises to be a low-overhead observer: tracing
//! off is one never-taken branch per event site, tracing on is a
//! timestamp read and a slot write, and counter windows are two extra
//! group reads every W batches. This experiment measures that promise
//! the same way every other claim in this repository is measured —
//! three cells over the builtin workload pair, R interleaved repeats:
//!
//! * `off`   — the plain executor (counters on, no trace, no windows),
//! * `trace` — event tracing at the default ring capacity,
//! * `trace+win` — tracing plus a counter window every 4 batches.
//!
//! The declared comparisons — off−trace and off−trace+win on wall time
//! and throughput, per workload — get paired bootstrap confidence
//! intervals and Benjamini–Hochberg-adjusted p-values. An interval
//! containing zero (or a tiny significant delta) is the acceptance
//! evidence quoted in `docs/OBSERVABILITY.md`; digest equivalence
//! across all three cells rides along for free.
//!
//! Results land in `results/e22_trace_overhead.json` (schema
//! `ccs-sweep/v1`; render any time with `ccs report`). `CCS_SMOKE=1`
//! shrinks for CI; `CCS_REPEATS=n` overrides R.

use ccs_bench::sweep::{self, Cell, Metric, Sweep};
use ccs_exec::Placement;

fn main() {
    let smoke = sweep::smoke();
    let repeats = sweep::repeats_or(if smoke { 2 } else { 7 });
    let rounds: u64 = if smoke { 8 } else { 64 };
    let warmup = rounds / 4;
    let workers: usize = if smoke { 2 } else { 4 };

    let cell = || {
        Cell::parallel(workers, Placement::Llc)
            .with_counters(true)
            .with_warmup(warmup)
    };
    let mut s = Sweep::new("e22_trace_overhead")
        .with_repeats(repeats)
        .with_rounds(rounds)
        .with_workloads(sweep::builtin_workloads())
        .with_cell(cell().with_label("off"))
        .with_cell(cell().with_trace(true).with_label("trace"))
        .with_cell(
            cell()
                .with_trace(true)
                .with_windows(4)
                .with_label("trace+win"),
        );
    for treatment in ["trace", "trace+win"] {
        for metric in [Metric::WallMs, Metric::ItemsPerSec] {
            s = s.with_comparison(metric, "off", treatment);
        }
    }

    sweep::run_and_save(&s);
    println!("shape check: digests are identical across all three cells, so observability");
    println!("is an observer, not a participant; the off - trace and off - trace+win wall");
    println!("and throughput deltas (paired, BH-corrected) bound the overhead of the event");
    println!("rings and the W-batch counter windows.");
}
