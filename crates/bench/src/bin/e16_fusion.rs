//! E16 (ablation) — §6's remark: module fusion IS partitioning.
//!
//! The paper notes that the module-fusion heuristic of Sermulins et al.
//! is a special case of its partitioning method. This experiment makes
//! the claim quantitative: fusing each component into one module and then
//! running the *plain single-appearance* schedule on the fused graph
//! recovers most of the two-level partitioned scheduler's win — the
//! partition, not the runtime machinery, carries the benefit.

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen;
use ccs_partition::{dag_greedy, fusion};
use ccs_sched::{baseline, ExecOptions, Executor};

fn mpo(g: &StreamGraph, ra: &RateAnalysis, run: &ccs_sched::SchedRun, params: CacheParams) -> f64 {
    let mut ex = Executor::new(
        g,
        ra,
        run.capacities.clone(),
        params,
        ExecOptions::default(),
    );
    ex.run(&run.firings).unwrap();
    let rep = ex.report();
    rep.stats.misses as f64 / rep.outputs.max(1) as f64
}

fn main() {
    let mut table = Table::new(
        "E16: fusion vs two-level partitioned scheduling",
        &["pipeline", "schedule", "misses/output", "vs naive"],
    );

    for (name, n, state) in [("32x256w", 32usize, 256u64), ("64x128w", 64, 128)] {
        let g = gen::pipeline_uniform(n, state);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let params = CacheParams::new(2048, 16);
        let iters = 4096u64;

        // Naive on the original graph.
        let naive = baseline::single_appearance(&g, &ra, iters);
        let naive_mpo = mpo(&g, &ra, &naive, params);

        // Fusion + scaled SAS on the fused graph (no two-level runtime).
        let p = dag_greedy::greedy_topo(&g, params.capacity / 2);
        let fused = fusion::fuse(&g, &ra, &p).unwrap();
        let fra = RateAnalysis::analyze_single_io(&fused.graph).unwrap();
        let scale = params.capacity / 2;
        let fused_run = baseline::scaled_sas(&fused.graph, &fra, scale, iters.div_ceil(scale));
        let fused_mpo = mpo(&fused.graph, &fra, &fused_run, params);

        // The full two-level partitioned scheduler on the original graph.
        let part = ccs_sched::partitioned::homogeneous(
            &g,
            &ra,
            &p,
            params.capacity,
            iters.div_ceil(params.capacity),
        )
        .unwrap();
        let part_mpo = mpo(&g, &ra, &part, params);

        for (label, value) in [
            ("single-appearance (naive)", naive_mpo),
            ("fusion + scaled SAS", fused_mpo),
            ("two-level partitioned", part_mpo),
        ] {
            table.row(vec![
                name.to_string(),
                label.to_string(),
                f(value),
                f(naive_mpo / value),
            ]);
        }
    }

    table.print();
    println!("shape check: fusion alone recovers the bulk of the partitioned win");
    println!("over naive; the two-level runtime adds the rest (bounded cross");
    println!("buffers and per-component load amortization). Fusion is partitioning,");
    println!("as §6 observes.");
    let path = table.save_csv("e16_fusion").unwrap();
    println!("csv: {}", path.display());
}
