//! E1 — Lemma 1 / Corollary 2: the segment firing bound.
//!
//! For a pipeline segment ⟨u, v⟩ with gain-minimizing edge (x, y), module
//! `u` can fire at most `2M·gain(u)/gain(x,y)` times before either some
//! progeny leaves through `v` or `2M` progeny are buffered inside the
//! segment.
//!
//! The harness plays an *adversarial* schedule that maximizes `u`'s
//! firings: it withholds `v` entirely (so nothing ever leaves) and, after
//! each firing of `u`, greedily fires every interior module that strictly
//! shrinks the number of buffered items (pushing items through
//! compressing stages parks as few items as possible). It then reports
//! the measured firing count against the lemma's bound.

use ccs_bench::{f, Table};
use ccs_graph::gen::{self, PipelineCfg, StateDist};
use ccs_graph::{RateAnalysis, Ratio};

fn main() {
    let m = 512u64;
    let mut table = Table::new(
        format!("E1: segment firing bound (Lemma 1), M = {m} words"),
        &[
            "seed",
            "segment",
            "state",
            "gain(u)",
            "gainMin",
            "fired(u)",
            "bound",
            "fired/bound",
        ],
    );

    let mut worst = 0.0f64;
    for seed in 0..12u64 {
        let cfg = PipelineCfg {
            len: 20,
            state: StateDist::Uniform(64, 256),
            max_q: 4,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let order = g.pipeline_order().unwrap();

        // Choose the first prefix segment with at least 2M state.
        let mut b = 0usize;
        let mut acc = 0u64;
        while b < order.len() && acc < 2 * m {
            acc += g.state(order[b]);
            b += 1;
        }
        if b >= order.len() || b < 2 {
            continue;
        }
        let seg = &order[..b]; // u = seg[0], v = seg[b-1]
        let seg_edges: Vec<ccs_graph::EdgeId> =
            (0..b - 1).map(|i| g.out_edges(seg[i])[0]).collect();

        // Gain-minimizing edge.
        let gain_min = seg_edges
            .iter()
            .map(|&e| ra.edge_gain(&g, e))
            .min()
            .unwrap();
        let gain_u = ra.gain(seg[0]);
        let bound = (Ratio::integer(2 * m as i128) * gain_u / gain_min).ceil() as u64;

        // Adversarial simulation: unbounded buffers, v withheld.
        let mut occ = vec![0u64; b - 1]; // items on segment edge i
        let mut fired_u = 0u64;
        let buffered = |occ: &[u64]| -> u64 { occ.iter().sum() };
        while buffered(&occ) < 2 * m {
            // Fire u once.
            let e0 = g.edge(seg_edges[0]);
            occ[0] += e0.produce;
            fired_u += 1;
            // Compress: fire interior modules (not u, not v) that shrink
            // the buffered total, until fixpoint.
            loop {
                let mut any = false;
                for i in 1..b - 1 {
                    let e_in = g.edge(seg_edges[i - 1]);
                    let e_out = g.edge(seg_edges[i]);
                    // Firing seg[i] consumes e_in.consume, produces
                    // e_out.produce; do it while it doesn't grow buffers.
                    while occ[i - 1] >= e_in.consume && e_out.produce <= e_in.consume {
                        occ[i - 1] -= e_in.consume;
                        occ[i] += e_out.produce;
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
            assert!(
                fired_u <= bound + 1,
                "seed {seed}: Lemma 1 violated: fired {fired_u} > bound {bound}"
            );
        }

        let ratio = fired_u as f64 / bound as f64;
        worst = worst.max(ratio);
        table.row(vec![
            seed.to_string(),
            format!("0..{b}"),
            acc.to_string(),
            gain_u.to_string(),
            gain_min.to_string(),
            fired_u.to_string(),
            bound.to_string(),
            f(ratio),
        ]);
    }

    table.print();
    println!(
        "worst fired/bound ratio: {} (Lemma 1 predicts <= 1)",
        f(worst)
    );
    let path = table.save_csv("e01_segment_bound").unwrap();
    println!("csv: {}", path.display());
}
