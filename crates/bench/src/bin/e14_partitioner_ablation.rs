//! E14 (ablation) — what each partitioner stage contributes.
//!
//! Bandwidth (the paper's objective) across the partitioner family:
//! greedy topological, affinity-ordered greedy, plus local refinement,
//! simulated annealing, multilevel, and the exact optimum where
//! feasible. Shows where the cheap heuristics stop and what the
//! metaheuristics buy.

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen::{self, LayeredCfg, StateDist};
use ccs_partition::{annealing, dag_exact, dag_greedy, dag_local, multilevel};
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "E14: partitioner ablation (bandwidth = items crossing per input)",
        &[
            "seed",
            "nodes",
            "partitioner",
            "bandwidth",
            "components",
            "time us",
        ],
    );

    let cfg = LayeredCfg {
        layers: 6,
        max_width: 5,
        density: 0.35,
        state: StateDist::Uniform(8, 48),
        max_q: 2,
    };
    for seed in [2u64, 7, 13] {
        let g = gen::layered(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let bound = g.max_state().max(140);

        let mut record = |name: &str, p: &Partition, micros: u128| {
            table.row(vec![
                seed.to_string(),
                g.node_count().to_string(),
                name.to_string(),
                f(p.bandwidth(&g, &ra).to_f64()),
                p.num_components().to_string(),
                micros.to_string(),
            ]);
        };

        let t0 = Instant::now();
        let p_topo = dag_greedy::greedy_topo(&g, bound);
        record("greedy-topo", &p_topo, t0.elapsed().as_micros());

        let t0 = Instant::now();
        let p_aff = dag_greedy::greedy_affinity(&g, &ra, bound);
        record("greedy-affinity", &p_aff, t0.elapsed().as_micros());

        let t0 = Instant::now();
        let p_ref = dag_local::refine(&g, &ra, bound, &p_topo, 16);
        record("topo+refine", &p_ref, t0.elapsed().as_micros());

        let t0 = Instant::now();
        let p_ann = annealing::anneal(&g, &ra, bound, &p_ref, &annealing::AnnealCfg::default());
        record("topo+refine+anneal", &p_ann, t0.elapsed().as_micros());

        let t0 = Instant::now();
        let p_ml = multilevel::multilevel(&g, &ra, bound, &multilevel::MultilevelCfg::default());
        record("multilevel", &p_ml, t0.elapsed().as_micros());

        if g.node_count() <= dag_exact::MAX_EXACT_NODES {
            let t0 = Instant::now();
            if let Some((p_ex, _)) = dag_exact::min_bandwidth_exact(&g, &ra, bound) {
                record("exact", &p_ex, t0.elapsed().as_micros());
            }
        }
    }

    table.print();
    println!("shape check: bandwidth is monotone down the heuristic ladder");
    println!("(refinement <= greedy, annealing <= refinement), multilevel is");
    println!("competitive at a fraction of annealing's cost, and where the exact");
    println!("optimum is computable the best heuristic sits within a small factor");
    println!("of it (Corollary 9's alpha).");
    let path = table.save_csv("e14_partitioner_ablation").unwrap();
    println!("csv: {}", path.display());
}
