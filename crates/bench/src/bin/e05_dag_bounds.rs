//! E5 — Theorem 7 / Lemma 8 / Corollary 9: dag bounds.
//!
//! For homogeneous dags small enough to solve exactly, the harness
//! computes `minBW₃(G)` (the Theorem 7 lower-bound quantity), the greedy
//! heuristic's approximation factor α, and the measured misses of the
//! partitioned schedule built from each partition — demonstrating that
//! (a) no schedule beats `(T/B)·minBW₃`, and (b) an α-approximate
//! partition yields an O(α)-competitive schedule (Corollary 9).

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen::{self, LayeredCfg, StateDist};
use ccs_partition::{dag_exact, dag_greedy, dag_local};
use ccs_sched::{partitioned, ExecOptions, Executor};

fn measured(
    g: &StreamGraph,
    ra: &RateAnalysis,
    p: &Partition,
    params: CacheParams,
    rounds: u64,
) -> Option<(u64, u64)> {
    let run = partitioned::homogeneous(g, ra, p, params.capacity, rounds).ok()?;
    let mut ex = Executor::new(
        g,
        ra,
        run.capacities.clone(),
        params,
        ExecOptions::default(),
    );
    ex.run(&run.firings).ok()?;
    let rep = ex.report();
    Some((rep.interior_misses(), rep.inputs))
}

fn main() {
    let b = 16u64;
    let m = 96u64;
    let mut table = Table::new(
        format!("E5: dag bounds (homogeneous, M = {m} words, exact minBW3)"),
        &[
            "seed",
            "nodes",
            "minBW3",
            "alpha",
            "LB misses",
            "exact-part",
            "greedy-part",
            "greedy/exact",
        ],
    );

    for seed in 0..14u64 {
        let cfg = LayeredCfg {
            layers: 3,
            max_width: 3,
            density: 0.35,
            state: StateDist::Uniform(24, 64),
            max_q: 1,
        };
        let g = gen::layered(&cfg, seed);
        if g.node_count() > dag_exact::MAX_EXACT_NODES.min(14) {
            continue;
        }
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let Some((p_opt, bw3)) = dag_exact::min_bandwidth_exact(&g, &ra, 3 * m) else {
            continue;
        };
        let p_greedy = dag_greedy::greedy_best(&g, &ra, 3 * m);
        let p_greedy = dag_local::refine(&g, &ra, 3 * m, &p_greedy, 8);
        let bw_greedy = p_greedy.bandwidth(&g, &ra);
        let alpha = if bw3 == Ratio::ZERO {
            1.0
        } else {
            bw_greedy.to_f64() / bw3.to_f64()
        };

        // Run both partitions on an augmented cache (3M components need
        // a >=3M cache plus stream headroom).
        let params = CacheParams::new((8 * m).next_multiple_of(b), b);
        let rounds = 3u64;
        let Some((miss_opt, inputs)) = measured(&g, &ra, &p_opt, params, rounds) else {
            continue;
        };
        let Some((miss_greedy, _)) = measured(&g, &ra, &p_greedy, params, rounds) else {
            continue;
        };
        let lb = ccs_core::bounds::misses_lower_bound(bw3, inputs, params);
        table.row(vec![
            seed.to_string(),
            g.node_count().to_string(),
            bw3.to_string(),
            f(alpha),
            f(lb),
            miss_opt.to_string(),
            miss_greedy.to_string(),
            f(miss_greedy as f64 / miss_opt.max(1) as f64),
        ]);
    }

    table.print();
    println!("shape check: measured misses never fall below the LB column;");
    println!("greedy/exact miss ratios track O(alpha) (Corollary 9).");
    let path = table.save_csv("e05_dag_bounds").unwrap();
    println!("csv: {}", path.display());
}
