//! E6 — §4 remark: greedy 2M-segmentation vs DP-optimal partitions.
//!
//! The paper notes the minimum-bandwidth c-bounded pipeline partition is
//! computable by dynamic programming, gives no more cache misses than
//! the Theorem 5 greedy — but not asymptotically fewer. The harness
//! measures both bandwidth and actual misses across random pipelines.

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen::{self, PipelineCfg, StateDist};
use ccs_partition::pipeline as ppart;
use ccs_sched::{partitioned, ExecOptions, Executor};

fn misses_for(g: &StreamGraph, ra: &RateAnalysis, p: &Partition, params: CacheParams) -> f64 {
    let run = partitioned::pipeline_dynamic(g, ra, p, params.capacity, 2000).unwrap();
    let mut ex = Executor::new(
        g,
        ra,
        run.capacities.clone(),
        params,
        ExecOptions::default(),
    );
    ex.run(&run.firings).unwrap();
    let rep = ex.report();
    rep.stats.misses as f64 / rep.outputs.max(1) as f64
}

fn main() {
    let m = 512u64;
    let params = CacheParams::new(8 * m, 16);
    let mut table = Table::new(
        format!("E6: greedy-2M vs DP-optimal pipeline partitions (M = {m})"),
        &[
            "seed",
            "bw greedy",
            "bw dp",
            "bw ratio",
            "mpo greedy",
            "mpo dp",
            "mpo ratio",
        ],
    );

    let mut bw_ratios = Vec::new();
    let mut mpo_ratios = Vec::new();
    for seed in 0..12u64 {
        let cfg = PipelineCfg {
            len: 48,
            state: StateDist::Uniform(16, m / 8),
            max_q: 4,
            max_rate_scale: 3,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let greedy = ppart::greedy_theorem5(&g, &ra, m / 8).unwrap();
        // DP at the same achieved component bound for a fair comparison.
        let bound = greedy.max_component_state.max(m / 8);
        let dp = ppart::dp_min_bandwidth(&g, &ra, bound).unwrap();

        let mpo_g = misses_for(&g, &ra, &greedy.partition, params);
        let mpo_d = misses_for(&g, &ra, &dp.partition, params);
        let bw_ratio = if dp.bandwidth == Ratio::ZERO {
            1.0
        } else {
            greedy.bandwidth.to_f64() / dp.bandwidth.to_f64()
        };
        bw_ratios.push(bw_ratio);
        mpo_ratios.push(mpo_g / mpo_d);
        table.row(vec![
            seed.to_string(),
            greedy.bandwidth.to_string(),
            dp.bandwidth.to_string(),
            f(bw_ratio),
            f(mpo_g),
            f(mpo_d),
            f(mpo_g / mpo_d),
        ]);
    }

    table.print();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "bandwidth ratio: avg {} max {} — DP never worse (it is optimal),",
        f(avg(&bw_ratios)),
        f(bw_ratios.iter().fold(0.0f64, |a, &x| a.max(x)))
    );
    println!(
        "miss ratio:      avg {} max {} — but both are within a constant (the paper's point).",
        f(avg(&mpo_ratios)),
        f(mpo_ratios.iter().fold(0.0f64, |a, &x| a.max(x)))
    );
    let path = table.save_csv("e06_partition_quality").unwrap();
    println!("csv: {}", path.display());
}
