//! E8 — §3: the granularity `T` for inhomogeneous graphs.
//!
//! The inhomogeneous scheduler batches `T ≥ M` inputs per round, with
//! cross-edge buffers of exactly `T·gain(e)`. Larger `T` amortizes
//! component loads further but grows buffers. The harness sweeps the `T`
//! target as a multiple of `M` and reports misses per output and total
//! buffer footprint — the curve flattens once loads amortize, while the
//! footprint keeps growing linearly: the paper's reason to stop at Θ(M).

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen::{self, PipelineCfg, StateDist};
use ccs_partition::pipeline as ppart;
use ccs_sched::{partitioned, ExecOptions, Executor};

fn main() {
    let b = 16u64;
    let m = 512u64;
    let params = CacheParams::new(8 * m, b);
    let mut table = Table::new(
        format!("E8: granularity sweep (M = {m} words, cache 8M)"),
        &[
            "T target",
            "T actual",
            "rounds",
            "misses/output",
            "buffer words",
        ],
    );

    let cfg = PipelineCfg {
        len: 32,
        state: StateDist::Uniform(32, m / 8),
        max_q: 4,
        max_rate_scale: 3,
    };
    let g = gen::pipeline(&cfg, 11);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let pp = ppart::greedy_theorem5(&g, &ra, m / 8).unwrap();
    let sink = ra.sink.unwrap();

    for mult in [1u64, 2, 4, 8, 16] {
        let t_target = (m / 4) * mult;
        let t = partitioned::granularity_t(&g, &ra, t_target).unwrap();
        // Fix total sink output across the sweep for comparability.
        let per_round = (Ratio::integer(t as i128) * ra.gain(sink)).floor().max(1) as u64;
        let rounds = (8 * m / 4).div_ceil(per_round).max(1);
        let run = partitioned::inhomogeneous(&g, &ra, &pp.partition, t_target, rounds).unwrap();
        let mut ex = Executor::new(
            &g,
            &ra,
            run.capacities.clone(),
            params,
            ExecOptions::default(),
        );
        ex.run(&run.firings).unwrap();
        let rep = ex.report();
        table.row(vec![
            t_target.to_string(),
            t.to_string(),
            rounds.to_string(),
            f(rep.stats.misses as f64 / rep.outputs.max(1) as f64),
            run.buffer_words().to_string(),
        ]);
    }

    table.print();
    println!("shape check: misses/output falls then flattens with T, while the buffer");
    println!("footprint grows linearly — Θ(M) granularity is the right operating point.");
    let path = table.save_csv("e08_granularity_sweep").unwrap();
    println!("csv: {}", path.display());
}
