//! E17 (extension) — two-level hierarchies (the paper's §7 direction).
//!
//! The paper analyzes one cache level and asks about hierarchies as
//! future work. This experiment runs schedules through an inclusive
//! L1/L2 simulator and shows *why* the question is interesting: the
//! partition tuned for L2 minimizes memory (L2) misses as Theorem 5
//! promises, but its L2-sized components overflow the small L1, so it
//! pays there — single-level optimality does not recurse for free. The
//! natural fix the data points to is recursive partitioning (partition
//! each component again for L1), exactly the direction §7 raises.

use ccs_bench::{f, Table};
use ccs_cachesim::TwoLevelCache;
use ccs_core::prelude::*;
use ccs_graph::gen;
use ccs_sched::{baseline, ExecOptions, Executor};

fn main() {
    let g = gen::pipeline_uniform(32, 128); // 4096 words
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let b = 16u64;
    let l2_words = 1024u64; // the planning target M
    let l1_blocks = 16u64; // 256 words of L1
    let params = CacheParams::new(l2_words, b);

    let mut table = Table::new(
        "E17: inclusive L1/L2 hierarchy (L1 = 256 words, L2 = 1024 words)",
        &[
            "scheduler",
            "L1 misses",
            "L2 misses",
            "outputs",
            "L2 misses/output",
        ],
    );

    let planner = Planner::new(params);
    let mut runs = vec![
        baseline::single_appearance(&g, &ra, 2048),
        baseline::demand_driven(&g, &ra, 2048),
    ];
    let scale = baseline::choose_scale(&g, &ra, params.capacity);
    if scale > 1 {
        runs.push(baseline::scaled_sas(
            &g,
            &ra,
            scale,
            2048u64.div_ceil(scale),
        ));
    }
    if let Ok(plan) = planner.plan(&g, Horizon::SinkFirings(2048)) {
        runs.push(plan.run);
    }

    for run in &runs {
        let cache = TwoLevelCache::new(l1_blocks, params.blocks());
        let mut ex = Executor::with_cache(
            &g,
            &ra,
            run.capacities.clone(),
            params,
            ExecOptions::default(),
            cache,
        );
        ex.run(&run.firings).unwrap();
        let rep = ex.report();
        // `stats` through the BlockCache view are the L2 (memory) misses;
        // L1 misses are the L2 accesses.
        let l2_misses = rep.stats.misses;
        let l1_misses = rep.stats.accesses;
        table.row(vec![
            run.label.clone(),
            l1_misses.to_string(),
            l2_misses.to_string(),
            rep.outputs.to_string(),
            f(l2_misses as f64 / rep.outputs.max(1) as f64),
        ]);
    }

    table.print();
    println!("shape check: at the planned level (L2 = memory misses) the DAM ordering");
    println!("holds — partitioned is best, naive worst by ~40x. At L1 the partitioned");
    println!("schedule pays instead: its components are L2-sized, so the per-item");
    println!("inner rotation overflows a 256-word L1 (scaled-sas, whose working set");
    println!("is per-module, wins there). Single-level optimality does not compose");
    println!("across levels — the recursive-partitioning question the paper's §7");
    println!("leaves open, demonstrated empirically.");
    let path = table.save_csv("e17_hierarchy").unwrap();
    println!("csv: {}", path.display());
}
