//! E21 — steady-state cache attribution with paired statistical reports.
//!
//! A thin declaration over [`ccs_bench::sweep`]: where `e20` produces
//! point estimates per placement cell, this experiment turns the table
//! into a statistical claim. The two placement cells (round-robin vs
//! LLC-aware, both pinned) run **R times, interleaved**, so slow drift
//! (thermal, frequency, background load) hits both alike and pairs
//! out. Every run:
//!
//! * discards a **warmup window** (a quarter of the rounds) under the
//!   exact **epoch reset** — all workers cap at the window and reset
//!   their counter groups at a shared barrier, so per-worker aggregates
//!   cover exactly the steady-state batches;
//! * **first-touches** every SPSC ring from its consumer worker, so
//!   ring pages land on the consuming core's NUMA node;
//! * attributes misses **per segment** (counting windows around each
//!   steady-state batch, normalized to misses per sink item).
//!
//! The declared comparisons — rr−llc on misses/item and wall time, per
//! workload — get paired bootstrap confidence intervals and p-values,
//! Benjamini–Hochberg-corrected across the family. A positive
//! miss/item delta whose interval excludes zero is the paper's
//! prediction, measured: LLC-aware placement removes misses per item.
//!
//! Results land in `results/e21_steady_state.json` (schema
//! `ccs-sweep/v1`, render any time with `ccs report`); where
//! `perf_event_open` is denied every cell still runs, reports
//! `counters: unavailable`, and the digest cross-checks still apply.
//! `CCS_SMOKE=1` shrinks to R=2 for CI; `CCS_REPEATS=n` overrides R.

use ccs_bench::sweep::{self, Cell, Metric, Sweep};
use ccs_exec::Placement;

fn main() {
    let smoke = sweep::smoke();
    let repeats = sweep::repeats_or(if smoke { 2 } else { 5 });
    let rounds: u64 = if smoke { 8 } else { 64 };
    let warmup = rounds / 4;
    let workers: usize = if smoke { 2 } else { 4 };

    let cell = |placement| {
        Cell::parallel(workers, placement)
            .with_pinning(true)
            .with_counters(true)
            .with_segment_counters(true)
            .with_warmup(warmup)
            .with_first_touch(true)
    };
    let mut s = Sweep::new("e21_steady_state")
        .with_repeats(repeats)
        .with_rounds(rounds)
        .with_workloads(sweep::builtin_workloads())
        .with_cell(cell(Placement::RoundRobin).with_label("rr"))
        .with_cell(cell(Placement::Llc).with_label("llc"));
    for metric in [Metric::LlcMissesPerItem, Metric::WallMs] {
        s = s.with_comparison(metric, "rr", "llc");
    }

    sweep::run_and_save(&s);
    println!("shape check: digests are identical across every repeat and placement; with");
    println!("counters available, the paired rr - llc misses/item delta with its bootstrap");
    println!("CI is the paper's cache-affinity prediction as a statistical claim (the");
    println!("family of deltas is Benjamini-Hochberg corrected).");
}
