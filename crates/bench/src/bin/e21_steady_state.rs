//! E21 — steady-state cache attribution with paired statistical reports.
//!
//! `e20_cache_counters` produces one number per placement cell; this
//! experiment turns that table into a statistical claim. Each cell
//! (placement ∈ {rr, llc}, pinned, fixed worker count) runs **R times,
//! interleaved** — rr, llc, rr, llc, … — so slow drift (thermal,
//! frequency, background load) hits both cells alike and pairs out.
//! Every run:
//!
//! * discards a **warmup window** (`RunConfig::warmup_batches`): each
//!   worker zeroes its counter group once its segments have executed
//!   the first quarter of their batches, so readings exclude cold-start
//!   misses — the regime the paper's asymptotics describe;
//! * attributes misses **per segment** (`RunConfig::segment_counters`):
//!   counting windows around each steady-state batch, normalized to
//!   misses per *sink item*, so the cells can be compared segment by
//!   segment, not just in aggregate.
//!
//! The report gives per-cell mean ± stddev and the **paired rr−llc
//! misses/item delta** with a percentile-bootstrap confidence interval
//! (deterministic splitmix64 RNG — same seed, same interval). A
//! positive delta whose CI excludes zero is the paper's prediction,
//! measured: LLC-aware placement removes misses per item.
//!
//! JSON lands in `results/e21_steady_state.json` (render it any time
//! with `ccs report results/e21_steady_state.json`); where
//! `perf_event_open` is denied every cell still runs, reports
//! `counters: unavailable`, and the digest cross-checks still apply.
//! `CCS_SMOKE=1` shrinks to R=2 for CI; `CCS_REPEATS=n` overrides R.

use ccs_bench::stats::{bootstrap_mean_ci, paired_deltas, Summary};
use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen::{self, LayeredCfg, StateDist};
use ccs_runtime::Instance;

/// Bootstrap iterations and confidence for all intervals.
const BOOTSTRAP_ITERS: usize = 1000;
const CONFIDENCE: f64 = 0.9;
const SEED: u64 = 42;

/// One cell of the sweep: a placement mode measured R times.
struct Cell {
    workload: String,
    placement: Placement,
    segments: usize,
    /// Per-repeat aggregate misses/item (None where counters were
    /// unavailable in that repeat).
    mpi: Vec<Option<f64>>,
    /// Per-repeat, per-segment misses/item.
    seg_mpi: Vec<Vec<(usize, Option<f64>)>>,
    wall_ms: Vec<f64>,
    ipc: Vec<Option<f64>>,
    multiplexed: bool,
    /// Whether any repeat opened a counter group at all (a group may
    /// open without the LLC event — e.g. PMU-less VMs expose only
    /// task-clock).
    counted: bool,
}

impl Cell {
    /// The repeats where the aggregate metric existed.
    fn mpi_values(&self) -> Vec<f64> {
        self.mpi.iter().copied().flatten().collect()
    }
}

fn opt(v: Option<f64>) -> String {
    v.map_or("n/a".into(), f)
}

fn summary_json(s: Option<&Summary>) -> serde_json::Value {
    match s {
        Some(s) => serde_json::json!({
            "n": s.n,
            "mean": s.mean,
            "stddev": serde_json::to_value(s.stddev).unwrap_or(serde_json::Value::Null),
        }),
        None => serde_json::Value::Null,
    }
}

fn main() {
    let smoke = std::env::var("CCS_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let repeats: usize = std::env::var("CCS_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2 } else { 5 });
    let rounds: u64 = if smoke { 8 } else { 64 };
    let warmup = rounds / 4;
    let workers: usize = if smoke { 2 } else { 4 };

    let workloads: Vec<(&str, StreamGraph)> = vec![
        ("fm-radio(8)", ccs_apps::fm_radio(8)),
        (
            "layered-dag",
            gen::layered(
                &LayeredCfg {
                    layers: 6,
                    max_width: 5,
                    density: 0.35,
                    state: StateDist::Uniform(128, 512),
                    max_q: 2,
                },
                3,
            ),
        ),
    ];
    let placements = [Placement::RoundRobin, Placement::Llc];

    let mut cells: Vec<Cell> = Vec::new();
    for (name, g) in &workloads {
        let m = (g.total_state() / 3)
            .max(8 * g.max_state())
            .max(512)
            .next_multiple_of(16);
        let planner = Planner::new(CacheParams::new(m, 16));
        let mut reference: Option<Option<u64>> = None;
        let base = cells.len();
        for &placement in &placements {
            cells.push(Cell {
                workload: name.to_string(),
                placement,
                segments: 0,
                mpi: Vec::new(),
                seg_mpi: Vec::new(),
                wall_ms: Vec::new(),
                ipc: Vec::new(),
                multiplexed: false,
                counted: false,
            });
        }
        // Interleave: one repeat visits every placement back to back, so
        // drift lands on all cells of the pair alike.
        for _repeat in 0..repeats {
            for (ci, &placement) in placements.iter().enumerate() {
                let cfg = RunConfig::new(workers)
                    .with_placement(placement)
                    .with_pinning(true)
                    .with_counters(true)
                    .with_warmup(warmup)
                    .with_segment_counters(true);
                let inst = Instance::synthetic(g.clone());
                let pr = planner
                    .plan_and_run_parallel(inst, rounds, &cfg)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                let stats = &pr.stats;
                match &reference {
                    None => reference = Some(stats.run.digest),
                    Some(d) => assert_eq!(
                        *d,
                        stats.run.digest,
                        "{name}: digest changed under {}",
                        placement.name()
                    ),
                }
                let totals = stats.counter_totals();
                let cell = &mut cells[base + ci];
                cell.segments = stats.segments;
                cell.mpi.push(stats.llc_misses_per_item());
                cell.seg_mpi.push(stats.segment_llc_misses_per_item());
                cell.wall_ms.push(stats.run.wall.as_secs_f64() * 1e3);
                cell.ipc.push(totals.as_ref().and_then(|t| t.ipc()));
                cell.multiplexed |= totals.as_ref().is_some_and(|t| t.multiplexed());
                cell.counted |= stats.counted_workers() > 0;
            }
        }
    }

    // ---- render: per-cell table ----
    let mut table = Table::new(
        format!("E21: steady-state misses/item, R={repeats} paired repeats (warmup {warmup}/{rounds} rounds)"),
        &[
            "workload",
            "mode",
            "runs",
            "miss/item mean",
            "stddev",
            "wall ms mean",
            "ipc mean",
            "counters",
        ],
    );
    let mut cells_json = Vec::new();
    for cell in &cells {
        let mpi = cell.mpi_values();
        let mpi_summary = Summary::of(&mpi);
        let wall_summary = Summary::of(&cell.wall_ms);
        let ipc_vals: Vec<f64> = cell.ipc.iter().copied().flatten().collect();
        let counters_status = if !mpi.is_empty() {
            if cell.multiplexed {
                "ok (scaled)"
            } else {
                "ok"
            }
        } else if cell.counted {
            // A group opened but the LLC event did not (PMU-less VM).
            "no llc event"
        } else {
            "unavailable"
        };
        table.row(vec![
            cell.workload.clone(),
            cell.placement.name().to_string(),
            format!("{}", cell.mpi.len()),
            opt(mpi_summary.map(|s| s.mean)),
            opt(mpi_summary.and_then(|s| s.stddev)),
            opt(wall_summary.map(|s| s.mean)),
            opt(Summary::of(&ipc_vals).map(|s| s.mean)),
            counters_status.to_string(),
        ]);

        // Per-segment summaries: collect each segment's series across
        // repeats.
        let mut per_segment = Vec::new();
        for si in 0..cell.segments {
            let series: Vec<f64> = cell
                .seg_mpi
                .iter()
                .filter_map(|run| run.iter().find(|(seg, _)| *seg == si).and_then(|(_, v)| *v))
                .collect();
            per_segment.push(serde_json::json!({
                "seg": si,
                "llc_misses_per_item": summary_json(Summary::of(&series).as_ref()),
            }));
        }
        cells_json.push(serde_json::json!({
            "workload": cell.workload,
            "placement": cell.placement.name(),
            "pin_cores": true,
            "workers": workers,
            "segments": cell.segments,
            "counters": counters_status,
            "runs": cell
                .mpi
                .iter()
                .zip(&cell.wall_ms)
                .enumerate()
                .map(|(r, (mpi, wall))| {
                    serde_json::json!({
                        "repeat": r,
                        "wall_ms": *wall,
                        "llc_misses_per_item":
                            serde_json::to_value(*mpi).unwrap_or(serde_json::Value::Null),
                    })
                })
                .collect::<Vec<_>>(),
            "llc_misses_per_item": summary_json(mpi_summary.as_ref()),
            "wall_ms": summary_json(wall_summary.as_ref()),
            "per_segment": per_segment,
        }));
    }
    table.print();

    // ---- paired deltas with bootstrap CIs ----
    let mut deltas_json = Vec::new();
    println!("paired deltas (baseline - treatment; positive => treatment saves misses):");
    for (name, _) in &workloads {
        let find = |p: Placement| {
            cells
                .iter()
                .find(|c| c.workload == *name && c.placement == p)
                .expect("cell exists")
        };
        let (rr, llc) = (find(Placement::RoundRobin), find(Placement::Llc));
        // Pair only repeats where both cells produced the metric.
        let paired: Vec<(f64, f64)> = rr
            .mpi
            .iter()
            .zip(&llc.mpi)
            .filter_map(|(a, b)| Some(((*a)?, (*b)?)))
            .collect();
        let a: Vec<f64> = paired.iter().map(|p| p.0).collect();
        let b: Vec<f64> = paired.iter().map(|p| p.1).collect();
        let deltas = paired_deltas(&a, &b);
        let summary = Summary::of(&deltas);
        let ci = bootstrap_mean_ci(&deltas, BOOTSTRAP_ITERS, CONFIDENCE, SEED);
        match (&summary, &ci) {
            (Some(s), Some((lo, hi))) => println!(
                "  {name}: rr - llc = {} misses/item, {:.0}% CI [{}, {}] over {} pairs{}",
                f(s.mean),
                CONFIDENCE * 100.0,
                f(*lo),
                f(*hi),
                s.n,
                if *lo > 0.0 {
                    "  => llc placement wins"
                } else if *hi < 0.0 {
                    "  => rr placement wins"
                } else {
                    "  => no significant difference"
                },
            ),
            _ => println!("  {name}: counters unavailable, no delta"),
        }
        deltas_json.push(serde_json::json!({
            "workload": *name,
            "metric": "llc_misses_per_item",
            "baseline": "rr",
            "treatment": "llc",
            "pairs": deltas.len(),
            "mean": serde_json::to_value(summary.map(|s| s.mean))
                .unwrap_or(serde_json::Value::Null),
            "ci_lo": serde_json::to_value(ci.map(|c| c.0)).unwrap_or(serde_json::Value::Null),
            "ci_hi": serde_json::to_value(ci.map(|c| c.1)).unwrap_or(serde_json::Value::Null),
            "confidence": CONFIDENCE,
            "bootstrap_iters": BOOTSTRAP_ITERS,
            "seed": SEED,
        }));
    }

    let report = serde_json::json!({
        "experiment": "e21_steady_state",
        "repeats": repeats,
        "rounds": rounds,
        "warmup_batches": warmup,
        "workers": workers,
        "smoke": smoke,
        "cells": cells_json,
        "deltas": deltas_json,
    });
    let json = serde_json::to_string_pretty(&report).unwrap();
    let path = ccs_bench::results_dir().join("e21_steady_state.json");
    std::fs::create_dir_all(ccs_bench::results_dir()).unwrap();
    std::fs::write(&path, &json).unwrap();
    println!(
        "json: {} (render with `ccs report {}`)",
        path.display(),
        path.display()
    );
    println!("shape check: digests are identical across every repeat and placement; with");
    println!("counters available, the paired rr - llc misses/item delta with its bootstrap");
    println!("CI is the paper's cache-affinity prediction as a statistical claim.");
    if smoke {
        println!("(smoke mode: repeats = {repeats}, rounds = {rounds}, workers = {workers})");
    }
}
