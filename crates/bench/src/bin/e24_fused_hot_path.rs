//! E24 — the fused hot path as a paired statistical claim.
//!
//! The fused executor promises cheaper batches, not different ones:
//! each granularity-`T` batch bulk-loads its cross inputs into a flat
//! arena (one `peek`/`release` per ring per batch), runs the segment's
//! precompiled firing plan against precomputed arena spans with a
//! software prefetch on the next firing's inputs, and bulk-stores the
//! cross outputs (one `reserve`/`commit` per ring per batch). Internal
//! edges never touch a ring. If that is a real win it shows up as fewer
//! retired instructions per sink item — the per-firing ring protocol,
//! occupancy checks, and scratch copies disappear from the hot loop —
//! and it must never show up in the output: every fused cell's digest
//! is bit-identical to its classic twin (the sweep engine hard-errors
//! otherwise).
//!
//! Grid: each engine point {serial, 1, 2, 4 workers} twice, classic and
//! fused, counters on. Declared comparisons per engine point, classic
//! (baseline) − fused (treatment): instructions/item, LLC misses/item,
//! and wall time, per workload, paired per repeat, BH-corrected as one
//! family.
//!
//! Results land in `results/e24_fused_hot_path.json` (schema
//! `ccs-sweep/v1`; render any time with `ccs report`). `CCS_SMOKE=1`
//! shrinks for CI; `CCS_REPEATS=n` overrides R.

use ccs_bench::sweep::{self, Cell, Metric, Sweep};
use ccs_exec::Placement;

fn main() {
    let smoke = sweep::smoke();
    let repeats = sweep::repeats_or(if smoke { 2 } else { 7 });
    let rounds: u64 = if smoke { 16 } else { 96 };
    let warmup = (rounds / 4).max(1);
    let worker_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4] };

    let mut workloads = sweep::builtin_workloads();
    workloads.push(sweep::workload("filterbank").expect("filterbank is a suite app"));

    let mut s = Sweep::new("e24_fused_hot_path")
        .with_repeats(repeats)
        .with_rounds(rounds)
        .with_workloads(workloads)
        .with_cell(Cell::serial().with_counters(true).with_warmup(warmup))
        .with_cell(
            Cell::serial()
                .with_counters(true)
                .with_warmup(warmup)
                .with_fused(true),
        );
    for &w in worker_counts {
        let cell = || {
            Cell::parallel(w, Placement::Llc)
                .with_counters(true)
                .with_warmup(warmup)
        };
        s = s.with_cell(cell());
        s = s.with_cell(cell().with_fused(true));
    }

    // One comparison family: classic (baseline) − fused (treatment) at
    // every engine point. Positive mean on a cost metric = fused wins.
    let mut pairs = vec![("serial".to_string(), "serial+fused".to_string())];
    for &w in worker_counts {
        pairs.push((format!("llc/w{w}"), format!("llc+fused/w{w}")));
    }
    for (base, fused) in pairs {
        for metric in [
            Metric::InstructionsPerItem,
            Metric::LlcMissesPerItem,
            Metric::WallMs,
        ] {
            s = s.with_comparison(metric, base.clone(), fused.clone());
        }
    }

    sweep::run_and_save(&s);
    println!("shape check: digests are identical across every classic/fused twin — fusion");
    println!("changes how a batch executes, never what it computes. Classic - fused on");
    println!("instructions/item is the headline: the per-firing ring protocol and scratch");
    println!("copies leave the hot loop, so fused cells should retire fewer instructions");
    println!("per sink item (and never significantly more) at every worker count.");
}
