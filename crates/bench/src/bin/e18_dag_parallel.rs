//! E18 — the cache-aware multicore dag executor (`ccs-exec`).
//!
//! Runs real partitioned dag execution with segment-affine workers
//! across worker counts and placement policies, reporting throughput and
//! verifying SDF determinism (bit-identical sink digests everywhere).
//! Emits both the usual table/CSV and a JSON record per configuration.

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen::{self, LayeredCfg, StateDist};
use ccs_runtime::Instance;

fn main() {
    let mut table = Table::new(
        "E18: multicore dag execution (segment-affine workers)",
        &[
            "workload",
            "placement",
            "workers",
            "segments",
            "T",
            "wall ms",
            "items/s (M)",
            "stalls",
            "digest",
        ],
    );

    let workloads: Vec<(&str, StreamGraph)> = vec![
        ("fm-radio(8)", ccs_apps::fm_radio(8)),
        ("beamformer(8,8)", ccs_apps::beamformer(8, 8)),
        ("filterbank(8)", ccs_apps::filterbank(8)),
        (
            "layered-dag",
            gen::layered(
                &LayeredCfg {
                    layers: 6,
                    max_width: 5,
                    density: 0.35,
                    state: StateDist::Uniform(128, 512),
                    max_q: 2,
                },
                3,
            ),
        ),
    ];

    let rounds = 64u64;
    let mut records = Vec::new();
    for (name, g) in workloads {
        // Cache sized so the auto partitioner yields several segments
        // (dag bound = M/2, pipeline Theorem 5 parameter = M/8): enough
        // parallel grain to occupy the workers.
        let m = (g.total_state() / 3)
            .max(8 * g.max_state())
            .max(512)
            .next_multiple_of(16);
        let planner = Planner::new(CacheParams::new(m, 16));
        let mut reference = None;
        for placement in [Placement::RoundRobin, Placement::CommGreedy] {
            for workers in [1usize, 2, 4] {
                let inst = Instance::synthetic(g.clone());
                let cfg = RunConfig::new(workers).with_placement(placement);
                let pr = planner
                    .plan_and_run_parallel(inst, rounds, &cfg)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                let stats = &pr.stats;
                match reference {
                    None => reference = Some(stats.run.digest),
                    Some(d) => assert_eq!(
                        d,
                        stats.run.digest,
                        "{name}: digest changed at {workers} workers ({})",
                        placement.name()
                    ),
                }
                let throughput = stats.items_per_sec() / 1e6;
                table.row(vec![
                    name.to_string(),
                    placement.name().to_string(),
                    workers.to_string(),
                    stats.segments.to_string(),
                    stats.t.to_string(),
                    f(stats.run.wall.as_secs_f64() * 1e3),
                    f(throughput),
                    stats.total_stalls().to_string(),
                    format!("{:016x}", stats.run.digest.unwrap_or(0)),
                ]);
                records.push(serde_json::json!({
                    "workload": name,
                    "placement": placement.name(),
                    "workers": workers,
                    "segments": stats.segments,
                    "granularity_t": stats.t,
                    "rounds": stats.rounds,
                    "strategy": pr.strategy_used,
                    "wall_ms": stats.run.wall.as_secs_f64() * 1e3,
                    "sink_items": stats.run.sink_items,
                    "items_per_sec": stats.items_per_sec(),
                    "stalls": stats.total_stalls(),
                    "digest": format!("{:016x}", stats.run.digest.unwrap_or(0)),
                }));
            }
        }
    }

    table.print();
    println!("shape check: digests are identical across worker counts and placements");
    println!("(SDF determinism); throughput should rise with workers on wide dags.");
    let path = table.save_csv("e18_dag_parallel").unwrap();
    println!("csv: {}", path.display());

    let json = serde_json::to_string_pretty(&records).unwrap();
    let json_path = ccs_bench::results_dir().join("e18_dag_parallel.json");
    std::fs::write(&json_path, &json).unwrap();
    println!("json: {}", json_path.display());
    println!("{json}");
}
