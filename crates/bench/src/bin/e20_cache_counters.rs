//! E20 — measured cache misses per placement mode (`ccs-perf` × `ccs-exec`).
//!
//! A thin declaration over [`ccs_bench::sweep`]: the experiment that
//! substantiates the paper's thesis on real hardware. Placement
//! (round-robin, communication-greedy, LLC-aware) × core pinning ×
//! worker count, with hardware counters sampled around every worker's
//! firing loop — plus a serial-executor baseline instrumented through
//! the identical counter suite, so serial-vs-parallel and
//! default-vs-llc comparisons are apples-to-apples. The engine asserts
//! SDF digest determinism across all cells (serial included) and
//! reports **LLC misses per sink item** per cell, with the declared
//! miss/item comparisons evaluated as paired bootstrap deltas under
//! Benjamini–Hochberg correction.
//!
//! Where `perf_event_open` is denied (containers,
//! `perf_event_paranoid`, non-Linux) every cell still runs and reports
//! `counters: unavailable`; CI exercises exactly that fallback under
//! `CCS_SMOKE=1`. Results land in `results/e20_cache_counters.json`
//! (schema `ccs-sweep/v1`); `CCS_REPEATS=n` overrides R.

use ccs_bench::sweep::{self, Cell, Metric, Sweep};
use ccs_exec::Placement;

fn main() {
    let smoke = sweep::smoke();
    let rounds: u64 = if smoke { 2 } else { 64 };
    let worker_counts: &[usize] = if smoke { &[2] } else { &[2, 4] };
    let repeats = sweep::repeats_or(if smoke { 1 } else { 3 });

    let mut s = Sweep::new("e20_cache_counters")
        .with_repeats(repeats)
        .with_rounds(rounds)
        .with_workloads(sweep::builtin_workloads())
        .with_cell(Cell::serial().with_counters(true));
    for &workers in worker_counts {
        for placement in [Placement::RoundRobin, Placement::CommGreedy, Placement::Llc] {
            for pin in [false, true] {
                s = s.with_cell(
                    Cell::parallel(workers, placement)
                        .with_pinning(pin)
                        .with_counters(true),
                );
            }
        }
    }
    // Miss/item claims: llc + pinning against unpinned round-robin at
    // each worker count, and against the serial baseline.
    for &workers in worker_counts {
        s = s.with_comparison(
            Metric::LlcMissesPerItem,
            format!("rr/w{workers}"),
            format!("llc+pin/w{workers}"),
        );
    }
    let top = worker_counts.last().expect("non-empty");
    s = s.with_comparison(
        Metric::LlcMissesPerItem,
        "serial",
        format!("llc+pin/w{top}"),
    );

    sweep::run_and_save(&s);
    println!("shape check: digests are identical across serial and every placement x");
    println!("pinning x workers cell (SDF determinism, asserted by the sweep engine);");
    println!("with counters available, llc placement + pinning should show the lowest");
    println!("llc miss/item of the parallel modes — the paper's cache-affinity claim,");
    println!("measured rather than inferred.");
}
