//! E20 — measured cache misses per placement mode (`ccs-perf` × `ccs-exec`).
//!
//! The experiment that substantiates the paper's thesis on real
//! hardware: sweep segment→worker placement (round-robin,
//! communication-greedy, LLC-aware) × core pinning × worker count, with
//! hardware counters sampled around every worker's steady-state firing
//! loop, and report **LLC misses per sink item** per cell — plus a
//! serial-executor baseline instrumented through the same counter
//! suite, so serial-vs-parallel and default-vs-llc comparisons are
//! apples-to-apples. SDF determinism is asserted across all cells.
//!
//! Where `perf_event_open` is denied (containers,
//! `perf_event_paranoid`, non-Linux) every cell still runs and reports
//! `counters: unavailable` with `llc_misses_per_item: null`; CI
//! exercises exactly that fallback under `CCS_SMOKE=1`.

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen::{self, LayeredCfg, StateDist};
use ccs_perf::{CounterKind, CounterSample};
use ccs_runtime::Instance;

/// Table/JSON rendering of an optional metric.
fn opt(v: Option<f64>) -> String {
    v.map_or("n/a".into(), f)
}

/// One cell's counter-derived fields, shared by the parallel and serial
/// arms. The readings render through `CounterSample::to_json` — the
/// same renderer behind `ccs run-dag --counters` — with a `counters`
/// status key prepended ("ok (scaled)" marks multiplexed, i.e.
/// extrapolated, readings in both the table and the JSON).
fn counter_fields(totals: Option<&CounterSample>, sink_items: u64) -> (String, serde_json::Value) {
    match totals {
        Some(t) => {
            let status = if t.multiplexed() { "ok (scaled)" } else { "ok" };
            let mut v = t.to_json(Some(sink_items));
            if let serde_json::Value::Object(pairs) = &mut v {
                pairs.insert(
                    0,
                    (
                        "counters".to_string(),
                        serde_json::Value::String(status.into()),
                    ),
                );
            }
            (status.to_string(), v)
        }
        None => (
            "unavailable".to_string(),
            serde_json::json!({
                "counters": "unavailable",
                "llc_misses_per_item": serde_json::Value::Null,
            }),
        ),
    }
}

fn main() {
    let smoke = std::env::var("CCS_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let rounds: u64 = if smoke { 2 } else { 64 };
    let worker_counts: &[usize] = if smoke { &[2] } else { &[2, 4] };

    let mut table = Table::new(
        "E20: hardware cache counters x placement mode",
        &[
            "workload",
            "mode",
            "pin",
            "workers",
            "wall ms",
            "items/s (M)",
            "llc miss/item",
            "mpki",
            "ipc",
            "counters",
        ],
    );

    let workloads: Vec<(&str, StreamGraph)> = vec![
        ("fm-radio(8)", ccs_apps::fm_radio(8)),
        (
            "layered-dag",
            gen::layered(
                &LayeredCfg {
                    layers: 6,
                    max_width: 5,
                    density: 0.35,
                    state: StateDist::Uniform(128, 512),
                    max_q: 2,
                },
                3,
            ),
        ),
    ];

    let mut records = Vec::new();
    for (name, g) in workloads {
        let m = (g.total_state() / 3)
            .max(8 * g.max_state())
            .max(512)
            .next_multiple_of(16);
        let planner = Planner::new(CacheParams::new(m, 16));
        let mut reference = None;

        // Serial baseline through the identical counter suite: one
        // thread, the paper's two-level schedule, same number of
        // granularity-T rounds.
        match planner.plan(&g, Horizon::Rounds(rounds)) {
            Ok(plan) => {
                let mut inst = Instance::synthetic(g.clone());
                let (run, sample) =
                    ccs_runtime::serial::execute_counted(&mut inst, &plan.run, true);
                reference = Some(run.digest);
                let (status, counter_rec) = counter_fields(sample.as_ref(), run.sink_items);
                let wall_ms = run.wall.as_secs_f64() * 1e3;
                let items_per_sec = if wall_ms > 0.0 {
                    run.sink_items as f64 / (wall_ms / 1e3)
                } else {
                    0.0
                };
                table.row(vec![
                    name.to_string(),
                    "serial".into(),
                    "-".into(),
                    "1".into(),
                    f(wall_ms),
                    f(items_per_sec / 1e6),
                    opt(sample
                        .as_ref()
                        .and_then(|s| s.per_item(CounterKind::LlcMisses, run.sink_items))),
                    opt(sample.as_ref().and_then(|s| s.mpki())),
                    opt(sample.as_ref().and_then(|s| s.ipc())),
                    status,
                ]);
                let mut rec = serde_json::json!({
                    "workload": name,
                    "placement": "serial",
                    "pin_cores": false,
                    "workers": 1,
                    "rounds": rounds,
                    "strategy": plan.strategy_used,
                    "wall_ms": wall_ms,
                    "sink_items": run.sink_items,
                    "items_per_sec": items_per_sec,
                    "digest": format!("{:016x}", run.digest.unwrap_or(0)),
                });
                merge(&mut rec, counter_rec);
                records.push(rec);
            }
            Err(e) => println!("note: no serial baseline for {name}: {e}"),
        }

        for &workers in worker_counts {
            for placement in [Placement::RoundRobin, Placement::CommGreedy, Placement::Llc] {
                for pin in [false, true] {
                    let cfg = RunConfig::new(workers)
                        .with_placement(placement)
                        .with_pinning(pin)
                        .with_counters(true);
                    let inst = Instance::synthetic(g.clone());
                    let pr = planner
                        .plan_and_run_parallel(inst, rounds, &cfg)
                        .unwrap_or_else(|e| panic!("{name}: {e}"));
                    let stats = &pr.stats;
                    match reference {
                        None => reference = Some(stats.run.digest),
                        Some(d) => assert_eq!(
                            d,
                            stats.run.digest,
                            "{name}: digest changed ({}, pin={pin}, workers={workers})",
                            placement.name()
                        ),
                    }
                    let totals = stats.counter_totals();
                    let (status, counter_rec) =
                        counter_fields(totals.as_ref(), stats.run.sink_items);
                    table.row(vec![
                        name.to_string(),
                        placement.name().to_string(),
                        pin.to_string(),
                        workers.to_string(),
                        f(stats.run.wall.as_secs_f64() * 1e3),
                        f(stats.items_per_sec() / 1e6),
                        opt(stats.llc_misses_per_item()),
                        opt(totals.as_ref().and_then(|t| t.mpki())),
                        opt(totals.as_ref().and_then(|t| t.ipc())),
                        status,
                    ]);
                    let mut rec = serde_json::json!({
                        "workload": name,
                        "placement": placement.name(),
                        "pin_cores": pin,
                        "pinned_workers": stats.pinned_workers(),
                        "counted_workers": stats.counted_workers(),
                        "workers": workers,
                        "segments": stats.segments,
                        "granularity_t": stats.t,
                        "rounds": stats.rounds,
                        "strategy": pr.strategy_used,
                        "wall_ms": stats.run.wall.as_secs_f64() * 1e3,
                        "sink_items": stats.run.sink_items,
                        "items_per_sec": stats.items_per_sec(),
                        "stalls": stats.total_stalls(),
                        "stall_ms": stats.total_stall_time().as_secs_f64() * 1e3,
                        "digest": format!("{:016x}", stats.run.digest.unwrap_or(0)),
                    });
                    merge(&mut rec, counter_rec);
                    records.push(rec);
                }
            }
        }
    }

    table.print();
    println!("shape check: digests are identical across serial and every placement x");
    println!("pinning x workers cell (SDF determinism); with counters available, llc");
    println!("placement + pinning should show the lowest llc miss/item of the parallel");
    println!("modes — the paper's cache-affinity claim, measured rather than inferred.");
    let path = table.save_csv("e20_cache_counters").unwrap();
    println!("csv: {}", path.display());

    let json = serde_json::to_string_pretty(&records).unwrap();
    let json_path = ccs_bench::results_dir().join("e20_cache_counters.json");
    std::fs::write(&json_path, &json).unwrap();
    println!("json: {}", json_path.display());
    if smoke {
        println!("(smoke mode: rounds = {rounds}, workers = {worker_counts:?})");
    } else {
        println!("{json}");
    }
}

/// Merge `extra`'s fields into the record object (the vendored
/// `serde_json` shim's `json!` cannot splice nested maps inline).
fn merge(rec: &mut serde_json::Value, extra: serde_json::Value) {
    if let (serde_json::Value::Object(base), serde_json::Value::Object(more)) = (rec, extra) {
        base.extend(more);
    }
}
