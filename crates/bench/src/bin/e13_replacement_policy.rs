//! E13 (ablation) — robustness to the replacement policy.
//!
//! The DAM model assumes ideal replacement; we simulate with LRU. This
//! ablation replays the *same* block traces under CLOCK (second chance),
//! 8-way set-associative LRU, an inclusive two-level hierarchy, and
//! Belady's optimal MIN — if the paper's conclusions depended on exact
//! LRU they would not survive; they do.

use ccs_bench::{f, Table};
use ccs_cachesim::{min, BlockCache, ClockCache, LruCache, SetAssocCache, TwoLevelCache};
use ccs_core::prelude::*;
use ccs_graph::gen;
use ccs_sched::{baseline, ExecOptions, Executor};

fn replay<C: BlockCache>(trace: &[u64], mut cache: C) -> u64 {
    let mut misses = 0u64;
    for &b in trace {
        misses += cache.access(b, false) as u64;
    }
    misses
}

fn main() {
    let g = gen::pipeline_uniform(32, 128); // 4096 words of state
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let params = CacheParams::new(1024, 16); // 64 blocks
    let blocks = params.blocks();

    let mut table = Table::new(
        "E13: replacement-policy ablation (misses on identical block traces)",
        &[
            "scheduler",
            "LRU",
            "CLOCK",
            "8-way",
            "L1/L2",
            "OPT(MIN)",
            "LRU/OPT",
        ],
    );

    let planner = Planner::new(params);
    let schedules = {
        let mut v = vec![
            baseline::single_appearance(&g, &ra, 400),
            baseline::demand_driven(&g, &ra, 400),
        ];
        if let Ok(plan) = planner.plan(&g, Horizon::SinkFirings(4096)) {
            v.push(plan.run);
        }
        v
    };

    for run in &schedules {
        // Record the block trace through the standard executor.
        let mut ex = Executor::new(
            &g,
            &ra,
            run.capacities.clone(),
            params,
            ExecOptions {
                state_writes: false,
                tapes: true,
            },
        );
        ex.enable_recording();
        ex.run(&run.firings).unwrap();
        let trace = ex.recorded_blocks().unwrap().to_vec();

        let lru = replay(&trace, LruCache::new(blocks));
        let clock = replay(&trace, ClockCache::new(blocks));
        let set8 = replay(&trace, SetAssocCache::new(blocks, 8));
        let two = replay(&trace, TwoLevelCache::new(blocks / 4, blocks));
        let opt = min::simulate_min(&trace, blocks);
        table.row(vec![
            run.label.clone(),
            lru.to_string(),
            clock.to_string(),
            set8.to_string(),
            two.to_string(),
            opt.to_string(),
            f(lru as f64 / opt.max(1) as f64),
        ]);
    }

    table.print();
    println!("shape check: per schedule, all online policies land within a small");
    println!("factor of each other and of OPT (Sleator-Tarjan), and the scheduler");
    println!("ordering (partitioned best) is identical under every policy — the");
    println!("paper's conclusions are not an artifact of exact LRU.");
    let path = table.save_csv("e13_replacement_policy").unwrap();
    println!("csv: {}", path.display());
}
