//! E10 — Crossover: the cache-size sweep.
//!
//! As M grows past the total application state (plus working buffers),
//! scheduling stops mattering: every scheduler converges to compulsory
//! misses. Below that point the partitioned schedulers dominate. The
//! harness sweeps M on the FM radio app and reports misses/output per
//! scheduler per M.

use ccs_bench::{f, Table};
use ccs_core::prelude::*;

fn main() {
    let g = ccs_apps::fm_radio(16); // ~2.4K words of state
    let total = g.total_state();
    let mut table = Table::new(
        format!("E10: cache-size sweep on fm-radio(16) (total state {total} words)"),
        &["M", "scheduler", "misses/output", "vs best at M"],
    );

    for m in [256u64, 512, 1024, 2048, 4096, 8192, 16384] {
        if m / 8 < g.max_state() {
            // Theorem 5 needs s(v) <= M/8 at this parameterization.
            continue;
        }
        let params = CacheParams::new(m, 16);
        let rows = compare_schedulers(&g, params, 3000);
        let best = rows
            .iter()
            .map(|r| r.misses_per_output)
            .fold(f64::INFINITY, f64::min);
        for r in &rows {
            table.row(vec![
                m.to_string(),
                r.label.clone(),
                f(r.misses_per_output),
                f(r.misses_per_output / best),
            ]);
        }
    }

    table.print();
    println!("shape check: large spreads between schedulers at small M; every");
    println!("'vs best' ratio collapses toward 1 once M exceeds the total state —");
    println!("the crossover where cache-conscious scheduling stops being needed.");
    let path = table.save_csv("e10_cache_sweep").unwrap();
    println!("csv: {}", path.display());
}
