//! E11 — §3 extension: the asynchronous/parallel dynamic schedule.
//!
//! Homogeneous graphs admit a parallel dynamic schedule: claim any
//! component with M items on all inputs and empty outputs. The harness
//! runs the real parallel executor across thread counts, reporting
//! throughput and verifying that the output stream is bit-identical in
//! every configuration (SDF determinism).

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen::{self, LayeredCfg, StateDist};
use ccs_partition::dag_greedy;
use ccs_runtime::{execute_parallel, Instance};

fn main() {
    let mut table = Table::new(
        "E11: parallel dynamic schedule (real execution)",
        &["workload", "threads", "wall ms", "items/s (M)", "digest"],
    );

    let workloads: Vec<(&str, StreamGraph)> = vec![
        ("beamformer(4,4)", ccs_apps::beamformer(4, 4)),
        ("pipeline(16x128w)", gen::pipeline_uniform(16, 128)),
        (
            "layered-dag",
            gen::layered(
                &LayeredCfg {
                    layers: 6,
                    max_width: 4,
                    density: 0.3,
                    state: StateDist::Uniform(64, 256),
                    max_q: 1,
                },
                3,
            ),
        ),
    ];

    let m_items = 4096u64;
    let rounds = 24u64;
    for (name, g) in workloads {
        let p = dag_greedy::greedy_topo(&g, 1024.max(g.max_state()));
        let mut reference = None;
        for threads in [1usize, 2, 4, 8] {
            let inst = Instance::synthetic(g.clone());
            let stats = execute_parallel(inst, &p, m_items, rounds, threads);
            let items = stats.sink_items.max(1) as f64;
            let throughput = items / stats.wall.as_secs_f64() / 1e6;
            match reference {
                None => reference = Some(stats.digest),
                Some(d) => assert_eq!(
                    d, stats.digest,
                    "{name}: digest changed with {threads} threads"
                ),
            }
            table.row(vec![
                name.to_string(),
                threads.to_string(),
                f(stats.wall.as_secs_f64() * 1e3),
                f(throughput),
                format!("{:016x}", stats.digest.unwrap_or(0)),
            ]);
        }
    }

    table.print();
    println!("shape check: digests are identical across thread counts (deterministic");
    println!("parallel execution); throughput does not collapse as threads increase.");
    let path = table.save_csv("e11_parallel_runtime").unwrap();
    println!("csv: {}", path.display());
}
