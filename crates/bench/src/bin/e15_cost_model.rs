//! E15 (ablation) — the analytic cost model vs the simulator.
//!
//! Lemma 4/8's accounting, implemented as a closed-form predictor
//! (`ccs_sched::cost`), checked against full DAM simulation across
//! workload scales. Agreement within a small constant demonstrates that
//! the implementation *is* the schedule the analysis describes — and
//! gives users a free planning-time estimate.

use ccs_bench::{f, Table};
use ccs_core::prelude::*;
use ccs_graph::gen::{self, PipelineCfg, StateDist};
use ccs_partition::pipeline as ppart;
use ccs_sched::{cost, partitioned, ExecOptions, Executor};

fn main() {
    let mut table = Table::new(
        "E15: analytic cost model vs simulation (partitioned schedule)",
        &[
            "n",
            "M",
            "rounds",
            "predicted",
            "measured",
            "measured/predicted",
        ],
    );

    for n in [16usize, 32, 64] {
        for m in [512u64, 2048] {
            let cfg = PipelineCfg {
                len: n,
                state: StateDist::Uniform(16, m / 8),
                max_q: 3,
                max_rate_scale: 2,
            };
            let g = gen::pipeline(&cfg, 23);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let params = CacheParams::new(8 * m, 16);
            let Ok(pp) = ppart::greedy_theorem5(&g, &ra, m) else {
                continue;
            };
            let rounds = 3u64;
            let Ok(run) = partitioned::inhomogeneous(&g, &ra, &pp.partition, m, rounds) else {
                continue;
            };
            let t = partitioned::granularity_t(&g, &ra, m).unwrap();

            let mut ex = Executor::new(
                &g,
                &ra,
                run.capacities.clone(),
                params,
                ExecOptions::default(),
            );
            ex.run(&run.firings).unwrap();
            let measured = ex.report().stats.misses;
            let predicted =
                cost::predict_partitioned(&g, &ra, &pp.partition, params, t, rounds).total();
            table.row(vec![
                n.to_string(),
                m.to_string(),
                rounds.to_string(),
                f(predicted),
                measured.to_string(),
                f(measured as f64 / predicted),
            ]);
        }
    }

    table.print();
    println!("shape check: measured/predicted stays within a narrow band (~0.5-1.5)");
    println!("across n and M — the Lemma 4 accounting matches the implementation.");
    let path = table.save_csv("e15_cost_model").unwrap();
    println!("csv: {}", path.display());
}
