//! Integration tests of the declarative sweep engine: the digest
//! contract (every cell of a sweep computes the same stream), the
//! versioned document shape, and the renderer round-trip.

use ccs_bench::sweep::{self, Cell, Metric, Sweep};
use ccs_exec::{Placement, WarmupMode};
use ccs_topo::TopoSpec;
use proptest::prelude::*;
use serde_json::Value;

fn cells_of(doc: &Value) -> &Vec<Value> {
    match &doc["cells"] {
        Value::Array(c) => c,
        other => panic!("cells: {other:?}"),
    }
}

/// Every cell entry of a workload must report the identical digest —
/// the engine asserts it internally; this re-checks the *emitted*
/// document so report consumers can rely on it too.
fn assert_digests_agree(doc: &Value) {
    let cells = cells_of(doc);
    assert!(!cells.is_empty());
    for w in cells
        .iter()
        .filter_map(|c| c["workload"].as_str())
        .collect::<std::collections::BTreeSet<_>>()
    {
        let digests: Vec<&str> = cells
            .iter()
            .filter(|c| c["workload"].as_str() == Some(w))
            .filter_map(|c| c["digest"].as_str())
            .collect();
        assert!(!digests.is_empty(), "{w}: no digests");
        assert!(
            digests.iter().all(|d| *d == digests[0]),
            "{w}: digests diverge in the emitted document: {digests:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Arbitrary cell sets over a generated workload: serial baseline,
    /// random worker counts, placements, pinning, warmup modes,
    /// first-touch — per-cell digests agree across every sweep cell.
    fn per_cell_digests_agree_across_arbitrary_sweeps(
        seed in 0u64..1000,
        rounds in 2u64..5,
        repeats in 1usize..3,
        n_cells in 1usize..4,
        knobs in prop::collection::vec((1usize..5, 0u8..3, 0u8..2, 0u8..2, 0u8..2), 1..4),
    ) {
        prop_assume!(knobs.len() >= n_cells);
        let g = ccs_graph::gen::layered(
            &ccs_graph::gen::LayeredCfg {
                layers: 4,
                max_width: 3,
                density: 0.3,
                state: ccs_graph::gen::StateDist::Uniform(16, 64),
                max_q: 2,
            },
            seed,
        );
        let mut s = Sweep::new(format!("prop-{seed}"))
            .with_repeats(repeats)
            .with_rounds(rounds)
            .with_workload("layered", g)
            .with_cell(Cell::serial().with_counters(true).with_label("serial"));
        for (i, &(workers, placement, pin, mode, touch)) in
            knobs.iter().take(n_cells).enumerate()
        {
            let placement = [Placement::RoundRobin, Placement::CommGreedy, Placement::Llc]
                [placement as usize];
            s = s.with_cell(
                Cell::parallel(workers, placement)
                    .with_label(format!("cell-{i}"))
                    .with_pinning(pin == 1)
                    .with_topology(TopoSpec::new(1, 2, 2))
                    .with_counters(true)
                    .with_warmup(rounds / 2)
                    .with_warmup_mode(if mode == 1 {
                        WarmupMode::PerWorker
                    } else {
                        WarmupMode::Epoch
                    })
                    .with_first_touch(touch == 1),
            );
        }
        let doc = s.run().expect("sweep runs");
        assert_digests_agree(&doc);
        prop_assert_eq!(doc["schema"].as_str(), Some(sweep::SCHEMA));
        prop_assert_eq!(cells_of(&doc).len(), n_cells + 1);
        // Every cell ran the declared number of interleaved repeats.
        for c in cells_of(&doc) {
            match &c["runs"] {
                Value::Array(r) => prop_assert_eq!(r.len(), repeats),
                other => panic!("runs: {other:?}"),
            }
        }
    }
}

#[test]
fn sweep_document_renders_and_reports_the_family() {
    // A small but complete sweep: two workloads, serial + two parallel
    // cells, comparisons on two metrics — the BH family spans
    // workloads × comparisons.
    let mut s = Sweep::new("family")
        .with_repeats(3)
        .with_rounds(4)
        .with_workloads(sweep::builtin_workloads())
        .with_cell(Cell::serial().with_counters(true))
        .with_cell(
            Cell::parallel(2, Placement::RoundRobin)
                .with_counters(true)
                .with_label("rr"),
        )
        .with_cell(
            Cell::parallel(2, Placement::Llc)
                .with_counters(true)
                .with_label("llc"),
        );
    for m in [
        Metric::LlcMissesPerItem,
        Metric::WallMs,
        Metric::ItemsPerSec,
    ] {
        s = s.with_comparison(m, "rr", "llc");
    }
    let doc = s.run().expect("sweep runs");
    assert_digests_agree(&doc);

    let comps = match &doc["comparisons"] {
        Value::Array(c) => c,
        other => panic!("comparisons: {other:?}"),
    };
    // 2 workloads x 3 declared comparisons.
    assert_eq!(comps.len(), 6);
    // Wall time always measures: full pair count, a p-value, and a
    // BH-adjusted p-value no smaller than the raw one.
    for c in comps
        .iter()
        .filter(|c| c["metric"].as_str() == Some("wall_ms"))
    {
        assert_eq!(c["pairs"].as_u64(), Some(3));
        let p = c["p"].as_f64().expect("wall_ms p-value");
        let q = c["p_adjusted"].as_f64().expect("adjusted");
        assert!(q >= p - 1e-12, "adjusted {q} < raw {p}");
        assert!(c["significant"].as_bool().is_some());
    }

    // The renderer accepts its own document and mentions every cell
    // label and comparison verdict line.
    let text = sweep::render(&doc).expect("renders");
    for label in ["serial", "rr", "llc"] {
        assert!(text.contains(label), "{text}");
    }
    assert!(text.contains("paired deltas"), "{text}");
    assert!(text.contains("BH-corrected"), "{text}");

    // Round-trip through JSON text preserves the render.
    let reparsed: Value =
        serde_json::from_str(&serde_json::to_string_pretty(&doc).unwrap()).unwrap();
    assert_eq!(sweep::render(&reparsed).expect("renders"), text);
}

#[test]
fn interleaving_visits_cells_in_declared_order_per_repeat() {
    // The repeat counter in the emitted runs must index interleaved
    // rounds (repeat r of every cell happens before repeat r+1 of
    // any): verify the document exposes `repeat` 0..R per cell.
    let s = Sweep::new("order")
        .with_repeats(2)
        .with_rounds(2)
        .with_workload("w", ccs_graph::gen::pipeline_uniform(6, 32))
        .with_cell(Cell::parallel(1, Placement::RoundRobin))
        .with_cell(Cell::parallel(2, Placement::RoundRobin));
    let doc = s.run().expect("runs");
    for c in cells_of(&doc) {
        let repeats: Vec<u64> = match &c["runs"] {
            Value::Array(r) => r.iter().map(|x| x["repeat"].as_u64().unwrap()).collect(),
            other => panic!("runs: {other:?}"),
        };
        assert_eq!(repeats, vec![0, 1]);
    }
}
