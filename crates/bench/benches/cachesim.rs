//! Criterion benchmarks: the cache simulator's hot paths.

use ccs_cachesim::{min, CacheParams, LruCache, MemorySim, SetAssocCache};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru-access");
    let trace: Vec<u64> = {
        let mut rng = SmallRng::seed_from_u64(1);
        (0..100_000).map(|_| rng.gen_range(0..4096)).collect()
    };
    group.throughput(Throughput::Elements(trace.len() as u64));
    for cap in [256u64, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("random", cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut cache = LruCache::new(cap);
                let mut misses = 0u64;
                for &blk in &trace {
                    misses += cache.access(blk, false) as u64;
                }
                misses
            })
        });
    }
    group.finish();
}

fn bench_set_assoc(c: &mut Criterion) {
    let mut group = c.benchmark_group("set-assoc-access");
    let trace: Vec<u64> = {
        let mut rng = SmallRng::seed_from_u64(2);
        (0..100_000).map(|_| rng.gen_range(0..4096)).collect()
    };
    group.throughput(Throughput::Elements(trace.len() as u64));
    for ways in [2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("ways", ways), &ways, |b, &ways| {
            b.iter(|| {
                let mut cache = SetAssocCache::new(1024, ways);
                let mut misses = 0u64;
                for &blk in &trace {
                    misses += cache.access(blk, false) as u64;
                }
                misses
            })
        });
    }
    group.finish();
}

fn bench_range_touch(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory-sim");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("touch-64w-ranges", |b| {
        b.iter(|| {
            let mut sim = MemorySim::lru(CacheParams::new(1 << 14, 16));
            for i in 0..10_000u64 {
                sim.touch((i * 64) % (1 << 18), 64, i % 2 == 0, 0);
            }
            sim.stats().misses
        })
    });
    group.finish();
}

fn bench_belady(c: &mut Criterion) {
    let trace: Vec<u64> = {
        let mut rng = SmallRng::seed_from_u64(3);
        (0..50_000).map(|_| rng.gen_range(0..2048)).collect()
    };
    let mut group = c.benchmark_group("belady-min");
    group.sample_size(20);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("opt-50k", |b| b.iter(|| min::simulate_min(&trace, 512)));
    group.finish();
}

criterion_group!(
    benches,
    bench_lru,
    bench_set_assoc,
    bench_range_touch,
    bench_belady
);
criterion_main!(benches);
