//! Criterion benchmarks: symbolic execution and scheduling throughput.

use ccs_cachesim::CacheParams;
use ccs_graph::gen::{self, PipelineCfg, StateDist};
use ccs_graph::RateAnalysis;
use ccs_sched::{baseline, partitioned, ExecOptions, Executor};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_symbolic_executor(c: &mut Criterion) {
    let g = gen::pipeline_uniform(32, 128);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let run = baseline::single_appearance(&g, &ra, 256);
    let params = CacheParams::new(2048, 16);

    let mut group = c.benchmark_group("symbolic-exec");
    group.sample_size(20);
    group.throughput(Throughput::Elements(run.firings.len() as u64));
    group.bench_function("sas-32x128w", |b| {
        b.iter(|| {
            let mut ex = Executor::new(
                &g,
                &ra,
                run.capacities.clone(),
                params,
                ExecOptions::default(),
            );
            ex.run(&run.firings).unwrap();
            ex.report().stats.misses
        })
    });
    group.finish();
}

fn bench_schedule_generation(c: &mut Criterion) {
    let cfg = PipelineCfg {
        len: 48,
        state: StateDist::Uniform(16, 128),
        max_q: 3,
        max_rate_scale: 2,
    };
    let g = gen::pipeline(&cfg, 17);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let pp = ccs_partition::pipeline::greedy_theorem5(&g, &ra, 128).unwrap();

    let mut group = c.benchmark_group("schedule-generation");
    group.sample_size(20);
    group.bench_function("demand-driven-1k", |b| {
        b.iter(|| baseline::demand_driven(&g, &ra, 1000).firings.len())
    });
    group.bench_function("pipeline-dynamic-1k", |b| {
        b.iter(|| {
            partitioned::pipeline_dynamic(&g, &ra, &pp.partition, 1024, 1000)
                .unwrap()
                .firings
                .len()
        })
    });
    group.bench_function("inhomogeneous-2rounds", |b| {
        b.iter(|| {
            partitioned::inhomogeneous(&g, &ra, &pp.partition, 1024, 2)
                .unwrap()
                .firings
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_symbolic_executor, bench_schedule_generation);
criterion_main!(benches);
