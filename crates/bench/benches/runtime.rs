//! Criterion benchmarks: real execution throughput.

use ccs_graph::gen;
use ccs_graph::RateAnalysis;
use ccs_runtime::{execute, execute_parallel, Instance, Ring, SpscRing};
use ccs_sched::baseline;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_rings(c: &mut Criterion) {
    let mut group = c.benchmark_group("rings");
    let chunk = [1.0f32; 32];
    let mut out = [0.0f32; 32];
    group.throughput(Throughput::Elements(32 * 1000));
    group.bench_function("serial-push-pop-32x1000", |b| {
        let mut ring = Ring::new(256);
        b.iter(|| {
            for _ in 0..1000 {
                ring.push_slice(&chunk);
                ring.pop_slice(&mut out);
            }
            out[0]
        })
    });
    group.bench_function("spsc-push-pop-32x1000", |b| {
        let ring = SpscRing::new(256);
        b.iter(|| {
            for _ in 0..1000 {
                ring.push_slice(&chunk);
                ring.pop_slice(&mut out);
            }
            out[0]
        })
    });
    group.finish();
}

fn bench_serial_executor(c: &mut Criterion) {
    let g = gen::pipeline_uniform(16, 256);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let run = baseline::single_appearance(&g, &ra, 512);
    let mut group = c.benchmark_group("real-exec");
    group.sample_size(10);
    group.throughput(Throughput::Elements(run.firings.len() as u64));
    group.bench_function("serial-16x256w", |b| {
        b.iter(|| {
            let mut inst = Instance::synthetic(g.clone());
            execute(&mut inst, &run).firings
        })
    });
    group.finish();
}

fn bench_parallel_executor(c: &mut Criterion) {
    let g = gen::pipeline_uniform(16, 256);
    let p = ccs_partition::dag_greedy::greedy_topo(&g, 1024);
    let mut group = c.benchmark_group("parallel-exec");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let inst = Instance::synthetic(g.clone());
                    execute_parallel(inst, &p, 512, 4, threads).firings
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rings,
    bench_serial_executor,
    bench_parallel_executor
);
criterion_main!(benches);
